"""Legacy setup shim.

The offline reproduction environment lacks the ``wheel`` package, which
setuptools needs for PEP 660 editable installs; this shim lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
