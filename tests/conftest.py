"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim import DeviceMemory, GPUDevice, Scheduler

#: event budget for small kernels — generous, but catches livelock
EVENT_BUDGET = 30_000_000


@pytest.fixture
def device() -> GPUDevice:
    """A small device: 4 SMs keeps tests fast while exercising arenas."""
    return GPUDevice(num_sms=4)


@pytest.fixture
def mem() -> DeviceMemory:
    """16 MiB of device memory."""
    return DeviceMemory(16 << 20)


@pytest.fixture
def run_kernel(mem, device):
    """Launch-and-run helper: ``run_kernel(kernel, grid, block, *args)``.

    Returns the :class:`SimReport`; per-thread results are whatever the
    kernel wrote into its args.
    """

    def _run(kernel, grid=1, block=32, args=(), seed=0, max_events=EVENT_BUDGET):
        sched = Scheduler(mem, device, seed=seed)
        handle = sched.launch(kernel, grid, block, args=tuple(args))
        report = sched.run(max_events=max_events)
        return report, handle

    return _run
