"""Edge cases for the reporting helpers (satellite of the perf PR)."""

import math

import pytest

from repro.bench.reporting import (
    Series,
    format_table,
    geometric_mean,
    si,
    signed_pct,
    size_label,
)


class TestSi:
    def test_threshold_boundaries(self):
        assert si(999.994) == "999.99"
        assert si(1_000) == "1.00K"
        assert si(999_999) == "1000.00K"   # scales by magnitude, not rounding
        assert si(1_000_000) == "1.00M"
        assert si(1e9) == "1.00G"
        assert si(0) == "0.00"

    def test_negative_values_scale_by_magnitude(self):
        assert si(-1_000) == "-1.00K"
        assert si(-12_300_000) == "-12.30M"
        assert si(-999) == "-999.00"


class TestSizeLabel:
    def test_unit_boundaries(self):
        assert size_label(8) == "8 B"
        assert size_label(1023) == "1023 B"
        assert size_label(1024) == "1 KB"
        assert size_label((1 << 20) - 1) == "1023 KB"
        assert size_label(1 << 20) == "1 MB"
        assert size_label(512 << 10) == "512 KB"


class TestFormatTable:
    def test_empty_rows_renders_header_only(self):
        out = format_table(["a", "bb"], [])
        lines = out.splitlines()
        assert len(lines) == 2          # header + separator, no data rows
        assert lines[0].split() == ["a", "bb"]
        assert set(lines[1]) <= {"-", " "}

    def test_column_widths_follow_widest_cell(self):
        out = format_table(["x"], [["wide-cell"], ["y"]])
        lines = out.splitlines()
        assert all(len(ln) == len("wide-cell") for ln in lines)

    def test_non_string_cells_stringified(self):
        out = format_table(["n", "v"], [[1, 2.5], [None, True]])
        assert "None" in out and "True" in out and "2.5" in out


class TestGeometricMean:
    def test_single_element_is_identity(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_empty_is_zero(self):
        assert geometric_mean([]) == 0.0

    def test_non_positive_skipped_with_warning(self):
        with pytest.warns(RuntimeWarning, match="non-positive"):
            assert geometric_mean([4.0, 0.0]) == pytest.approx(4.0)

    def test_all_non_positive_is_zero(self):
        with pytest.warns(RuntimeWarning):
            assert geometric_mean([0.0, -1.0]) == 0.0


class TestSignedPct:
    def test_signs_and_rounding(self):
        assert signed_pct(0.123) == "+12.3%"
        assert signed_pct(-0.04) == "-4.0%"
        assert signed_pct(0.0) == "+0.0%"

    def test_infinities_render(self):
        assert signed_pct(math.inf) == "+inf%"
        assert signed_pct(-math.inf) == "-inf%"


class TestSeriesYAt:
    def test_missing_x_raises_keyerror_with_context(self):
        s = Series("line", xs=[1.0, 2.0], ys=[10.0, 20.0])
        assert s.y_at(2.0) == 20.0
        with pytest.raises(KeyError, match="line"):
            s.y_at(3.0)
