"""Smoke tests for the extended benches (shootout, fragmentation)."""

import pytest

from repro.bench import fragmentation, shootout


class TestShootout:
    def test_subset_runs(self):
        res = shootout.run(size=64, nthreads=256, iters=1,
                           which=["ours (scalar)", "bump pointer"])
        names = {p.name for p in res.points}
        assert names == {"ours (scalar)", "bump pointer"}
        for p in res.points:
            assert p.throughput > 0
        assert res.table()

    def test_ours_beats_cuda_at_scale(self):
        res = shootout.run(size=64, nthreads=512, iters=1,
                           which=["ours (scalar)", "CUDA-like"])
        by = {p.name: p for p in res.points}
        assert by["ours (scalar)"].throughput > by["CUDA-like"].throughput

    def test_no_failures_on_small_workload(self):
        res = shootout.run(size=64, nthreads=256, iters=1)
        for p in res.points:
            assert p.failures == 0, p.name


class TestFragmentation:
    def test_two_rounds(self):
        res = fragmentation.run(rounds=2, nthreads=256)
        assert len(res.ours) == 2 and len(res.bump) == 2
        assert res.table()
        # live bytes grow (1/8 kept each round)
        assert res.ours[1].live > res.ours[0].live
        # bump reserved strictly grows; ours is chunk-bounded
        assert res.bump[1].reserved > res.bump[0].reserved

    def test_overhead_metric(self):
        p = fragmentation.FragPoint(round=0, live=100, reserved=250)
        assert p.overhead == 2.5
        empty = fragmentation.FragPoint(round=0, live=0, reserved=10)
        assert empty.overhead == float("inf")


class TestShootoutTotalFailure:
    """Regression: a 100%-failure run used to report throughput(1) — one
    phantom pair — which ranked a completely broken allocator above a
    slow-but-correct one.  Zero completed pairs is zero throughput."""

    def test_wipeout_reports_zero_throughput(self):
        # 8 KB requests exceed ScatterAlloc's one-page size classes:
        # every malloc returns NULL, so no pair ever completes.
        res = shootout.run(size=8192, nthreads=64, iters=1,
                           which=["scatteralloc"])
        (p,) = res.points
        assert p.failures == 64
        assert p.throughput == 0.0

    def test_table_survives_zero_baseline(self):
        points = [
            shootout.ShootoutPoint("ours (scalar)", 0.0, 64, 1000),
            shootout.ShootoutPoint("bump pointer", 5.0e6, 0, 1000),
        ]
        res = shootout.ShootoutResult(size=64, nthreads=64, iters=1,
                                      points=points)
        table = res.table()
        # no ZeroDivisionError, and no relative column against a dead base
        assert "0.00x" not in table and "inf" not in table

    def test_registry_resolution_rejects_unknown_roster(self):
        with pytest.raises(KeyError):
            shootout.run(size=64, nthreads=32, iters=1, which=["tcmalloc"])
