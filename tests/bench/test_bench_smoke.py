"""Smoke tests for the benchmark harnesses at tiny scales.

These validate plumbing and the headline *directional* claims; the
real measurements live under benchmarks/.
"""

import pytest

from repro.bench import ablations, fig5, fig6, fig7, reporting, workloads
from repro.sim import DeviceMemory, GPUDevice, Scheduler


class TestReporting:
    def test_series(self):
        s = reporting.Series("x")
        s.add(1, 10.0)
        s.add(2, 20.0)
        assert s.y_at(2) == 20.0

    def test_series_y_at_missing_x_names_series_and_points(self):
        s = reporting.Series("tput")
        s.add(1, 10.0)
        with pytest.raises(KeyError, match=r"'tput'.*x=7.*\[1\]"):
            s.y_at(7)

    def test_geometric_mean(self):
        assert reporting.geometric_mean([1, 100]) == pytest.approx(10.0)
        assert reporting.geometric_mean([]) == 0.0

    def test_geometric_mean_warns_on_non_positive(self):
        # Regression: zeros used to be dropped silently, inflating the
        # mean of a vector with failed data points.
        with pytest.warns(RuntimeWarning, match="non-positive"):
            assert reporting.geometric_mean([0, 5]) == pytest.approx(5.0)
        with pytest.warns(RuntimeWarning):
            assert reporting.geometric_mean([-1, 0]) == 0.0

    def test_si(self):
        assert reporting.si(12_300_000) == "12.30M"
        assert reporting.si(999) == "999.00"
        assert reporting.si(2.5e9) == "2.50G"

    def test_size_label(self):
        assert reporting.size_label(8) == "8 B"
        assert reporting.size_label(4096) == "4 KB"
        assert reporting.size_label(1 << 20) == "1 MB"

    def test_format_table_aligns(self):
        t = reporting.format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = t.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1


class TestFig5:
    def test_both_primitives_complete(self):
        for kind in ("bulk", "counting"):
            tp = fig5.run_one(kind, 128, 32, block=64)
            assert tp > 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            fig5.run_one("mutex", 64, 32)

    def test_run_produces_aligned_series(self):
        res = fig5.run(thread_counts=(64, 256), batch=32, block=64)
        assert res.counting.xs == res.bulk.xs == [64, 256]
        assert res.table()

    def test_bulk_wins_at_high_concurrency(self):
        """The headline directional claim at a small scale."""
        res = fig5.run(thread_counts=(2048,), batch=128, block=256)
        assert res.bulk.y_at(2048) > res.counting.y_at(2048)

    def test_batch_sweep(self):
        out = fig5.run_batch_sweep(batches=(16, 64), nthreads=256, block=64)
        assert [r.batch for r in out] == [16, 64]


class TestFig6:
    def test_build_list(self):
        mem = DeviceMemory(1 << 20)
        lst, elems = fig6.build_list(mem, 5)
        assert lst.host_items() == elems
        lst.host_check()

    def test_run_one_correctness(self):
        for delegated in (False, True):
            cycles, share, ok = fig6.run_one(4, 8, delegated, block=32)
            assert ok and cycles > 0

    def test_run_grid(self):
        res = fig6.run(ratios=(8,), thread_targets=(128,), block=32)
        assert res.points
        assert res.table()
        for p in res.points:
            assert p.speedup > 0


class TestFig7:
    def test_run_size_both_allocators(self):
        for allocator in ("ours", "cuda"):
            p = fig7.run_size(64, allocator, max_threads=512,
                              max_pool=1 << 19)
            assert p.throughput > 0
            assert 0 <= p.failure_rate <= 1

    def test_degenerate_2k_failure_rate(self):
        p = fig7.run_size(2048, "ours", max_threads=256, max_pool=1 << 19)
        assert p.failure_rate > 0.4  # paper: ~50%

    def test_tbuddy_sizes_do_not_fail(self):
        p = fig7.run_size(8192, "ours", max_threads=128, max_pool=1 << 19)
        assert p.failed == 0

    def test_speedup_math(self):
        pts = [
            fig7.Fig7Point(8, "ours", 10, 100.0, 0, 1),
            fig7.Fig7Point(8, "cuda", 10, 10.0, 0, 1),
        ]
        res = fig7.Fig7Result(pts)
        assert res.speedups() == [10.0]
        assert res.mean_speedup() == pytest.approx(10.0)


class TestAblations:
    def test_buddy_ablation_small(self):
        res = ablations.run_buddy_ablation(thread_counts=(64,), block=32)
        assert res.tbuddy.ys[0] > 0 and res.lock_buddy.ys[0] > 0

    def test_collective_ablation_small(self):
        res = ablations.run_collective_ablation(thread_counts=(64,), block=32)
        assert res.collective.ys[0] > 0 and res.plain.ys[0] > 0
        assert res.table()


class TestWorkloads:
    def test_mixed_size_trace_deterministic(self):
        a = workloads.mixed_size_trace(1, 50, [8, 16, 32])
        b = workloads.mixed_size_trace(1, 50, [8, 16, 32])
        assert a == b
        assert set(a) <= {8, 16, 32}

    def test_producer_consumer_runs(self):
        from repro.core import AllocatorConfig, ThroughputAllocator

        device = GPUDevice(num_sms=2)
        mem = DeviceMemory(16 << 20)
        alloc = ThroughputAllocator(mem, device,
                                    AllocatorConfig(pool_order=8))
        kernel, mailbox = workloads.producer_consumer(alloc, 64, 16, mem, 2)
        s = Scheduler(mem, device, seed=11)
        s.launch(kernel, 2, 32)
        s.run(max_events=20_000_000)
        alloc.ualloc.host_gc()
        alloc.host_check()
        assert alloc.tbuddy.host_free_bytes() == alloc.cfg.pool_size

    def test_producer_consumer_survives_malloc_failure(self):
        """Regression: a producer whose malloc returned NULL used to
        skip its publish, leaving the paired consumer spinning on an
        empty mailbox slot forever (DeadlockError under an undersized
        pool).  Producers now publish a poison token instead."""
        from repro.core import AllocatorConfig, ThroughputAllocator

        device = GPUDevice(num_sms=2)
        mem = DeviceMemory(16 << 20)
        alloc = ThroughputAllocator(mem, device,
                                    AllocatorConfig(pool_order=6))
        kernel, mailbox = workloads.producer_consumer(alloc, 1024, 8, mem, 4)
        s = Scheduler(mem, device, seed=3)
        s.launch(kernel, 4, 32)
        s.run(max_events=20_000_000)  # raised DeadlockError before the fix
        assert alloc.stats.n_malloc_failed > 0, (
            "pool was not undersized enough to exercise the NULL path"
        )
        alloc.ualloc.host_gc()
        alloc.host_check()
        assert alloc.host_used_bytes() == 0
