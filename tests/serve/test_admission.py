"""Admission control: quota ledger exactness, the metered pressure gate."""

from __future__ import annotations

import pytest

from repro.serve.admission import (
    CAUSE_PRESSURE,
    CAUSE_QUOTA,
    AdmissionController,
)


class TestQuota:
    def test_unlimited_admits_everything(self):
        ac = AdmissionController()
        ac.begin_batch()
        assert ac.admit_malloc(0, 1 << 30) is None

    def test_over_quota_rejected_with_cause(self):
        ac = AdmissionController(quota_bytes=100)
        ac.begin_batch()
        assert ac.admit_malloc(0, 60) is None
        assert ac.admit_malloc(0, 60) == CAUSE_QUOTA
        assert ac.ledger(0).rejected == {CAUSE_QUOTA: 1}
        assert ac.rejections == {CAUSE_QUOTA: 1}

    def test_quota_is_per_tenant(self):
        ac = AdmissionController(quota_bytes=100)
        ac.begin_batch()
        assert ac.admit_malloc(0, 80) is None
        assert ac.admit_malloc(1, 80) is None  # separate ledger

    def test_free_releases_quota(self):
        ac = AdmissionController(quota_bytes=100)
        ac.begin_batch()
        assert ac.admit_malloc(0, 80) is None
        assert ac.admit_malloc(0, 80) == CAUSE_QUOTA
        ac.on_freed(0, 80)
        assert ac.admit_malloc(0, 80) is None

    def test_null_refund_releases_reservation(self):
        ac = AdmissionController(quota_bytes=100)
        ac.begin_batch()
        assert ac.admit_malloc(0, 80) is None
        ac.refund_malloc(0, 80)  # the backend returned NULL
        assert ac.admit_malloc(0, 80) is None
        assert ac.ledger(0).outstanding_bytes == 80

    def test_peak_tracks_high_water_mark(self):
        ac = AdmissionController()
        ac.begin_batch()
        ac.admit_malloc(0, 100)
        ac.on_freed(0, 100)
        ac.admit_malloc(0, 40)
        assert ac.ledger(0).peak_bytes == 100
        assert ac.ledger(0).outstanding_bytes == 40

    def test_determinism_same_stream_same_rejections(self):
        def run():
            ac = AdmissionController(quota_bytes=64)
            ac.begin_batch()
            return [ac.admit_malloc(0, s) for s in (32, 32, 32, 16)]

        assert run() == run() == [None, None, CAUSE_QUOTA, CAUSE_QUOTA]

    def test_bad_quota_rejected(self):
        with pytest.raises(ValueError, match="quota_bytes"):
            AdmissionController(quota_bytes=0)

    def test_negative_ledger_is_a_bug(self):
        ac = AdmissionController()
        ac.begin_batch()
        with pytest.raises(AssertionError, match="negative"):
            ac.on_freed(0, 10)


class TestPressureGate:
    def test_budget_sampled_once_per_batch(self):
        calls = []

        def probe():
            calls.append(1)
            return 1000

        ac = AdmissionController(pressure_probe=probe)
        ac.begin_batch()
        ac.admit_malloc(0, 10)
        ac.admit_malloc(1, 10)
        assert len(calls) == 1

    def test_gated_request_draws_down_batch_budget(self):
        ac = AdmissionController(pressure_probe=lambda: 100)
        ac.begin_batch()
        assert ac.admit_malloc(0, 60) is None
        assert ac.admit_malloc(1, 60) == CAUSE_PRESSURE
        ac.begin_batch()  # fresh budget next batch
        assert ac.admit_malloc(1, 60) is None

    def test_min_size_exempts_bin_served_requests(self):
        # The gauge meters page-level supply only: requests below the
        # routing threshold must pass even with a zero budget.
        ac = AdmissionController(pressure_probe=lambda: 0,
                                 pressure_min_size=2049)
        ac.begin_batch()
        assert ac.admit_malloc(0, 2048) is None
        assert ac.admit_malloc(0, 4096) == CAUSE_PRESSURE

    def test_exempt_requests_do_not_draw_budget(self):
        ac = AdmissionController(pressure_probe=lambda: 100,
                                 pressure_min_size=50)
        ac.begin_batch()
        assert ac.admit_malloc(0, 40) is None   # exempt
        assert ac.admit_malloc(0, 100) is None  # full budget still there

    def test_no_probe_means_no_gate(self):
        ac = AdmissionController()
        ac.begin_batch()
        assert ac.admit_malloc(0, 1 << 40) is None

    def test_outstanding_view_is_sorted_per_tenant(self):
        ac = AdmissionController()
        ac.begin_batch()
        ac.admit_malloc(3, 30)
        ac.admit_malloc(1, 10)
        assert ac.outstanding() == {1: 10, 3: 30}
