"""The socket front end, end to end over real TCP on loopback.

The acceptance bar: at least eight concurrent tenant clients against one
live server, zero protocol errors, every reply well-formed and causally
consistent; plus the failure channels — an over-quota tenant is rejected
deterministically, and malformed frames land on the protocol-error
channel without disturbing well-formed sessions.
"""

from __future__ import annotations

import json
import socket
import threading

from repro.serve import protocol
from repro.serve.engine import ServeEngine
from repro.serve.server import ServeServer


class _Client:
    """A tiny synchronous test client (one request in flight at a time)."""

    def __init__(self, host, port, tenant):
        self.conn = socket.create_connection((host, port))
        self.reader = self.conn.makefile("r", encoding="utf-8", newline="\n")
        self._req = 0
        self.hello = self._rpc({"op": "hello", "proto": protocol.PROTOCOL,
                                "tenant": tenant})

    def _rpc(self, msg):
        self.conn.sendall(protocol.encode(msg))
        return json.loads(self.reader.readline())

    def request(self, op, **fields):
        msg = {"op": op, "req": self._req, **fields}
        self._req += 1
        return self._rpc(msg)

    def raw(self, line: str):
        self.conn.sendall(line.encode() + b"\n")
        return json.loads(self.reader.readline())

    def close(self):
        try:
            self._rpc({"op": "bye"})
        finally:
            self.conn.close()


def _server(**engine_kw):
    engine_kw.setdefault("backend", "ours")
    engine_kw.setdefault("pool", 4 << 20)
    engine_kw.setdefault("seed", 0)
    return ServeServer(ServeEngine(**engine_kw), batch_window=0.002,
                       batch_max=32)


class TestSingleSession:
    def test_hello_reports_backend_and_quota(self):
        srv = _server(quota_bytes=1 << 16)
        with srv as (host, port):
            c = _Client(host, port, tenant=0)
            assert c.hello["ok"] and c.hello["proto"] == protocol.PROTOCOL
            assert c.hello["backend"].startswith("ours")
            assert c.hello["quota"] == 1 << 16
            c.close()
        assert srv.protocol_errors == 0

    def test_malloc_free_roundtrip(self):
        srv = _server()
        with srv as (host, port):
            c = _Client(host, port, tenant=1)
            m = c.request("malloc", size=256)
            assert m["ok"] and m["addr"] > 0 and m["latency"] > 0
            f = c.request("free", addr=m["addr"])
            assert f["ok"] and "addr" not in f
            c.close()
        assert srv.engine.live_allocations == 0
        assert srv.protocol_errors == 0

    def test_stats_reflect_own_requests(self):
        srv = _server()
        with srv as (host, port):
            c = _Client(host, port, tenant=2)
            c.request("malloc", size=64)
            s = c.request("stats")
            assert s["ok"] and s["op"] == "stats"
            assert s["tenants"]["2"]["n_malloc"] == 1
            assert s["live_allocations"] == 1
            c.close()

    def test_over_quota_tenant_deterministically_rejected(self):
        # Same request stream, two fresh servers: identical rejections.
        for _ in range(2):
            srv = _server(quota_bytes=512)
            with srv as (host, port):
                c = _Client(host, port, tenant=0)
                first = c.request("malloc", size=400)
                second = c.request("malloc", size=400)
                assert first["ok"]
                assert not second["ok"] and second["cause"] == "quota"
                # freeing makes room again — the ledger is live state
                c.request("free", addr=first["addr"])
                third = c.request("malloc", size=400)
                assert third["ok"]
                c.close()
            assert srv.protocol_errors == 0


class TestProtocolErrorChannel:
    def test_malformed_json_is_counted_and_answered(self):
        srv = _server()
        with srv as (host, port):
            c = _Client(host, port, tenant=0)
            r = c.raw("{not json")
            assert r["error"] == "protocol" and not r["ok"]
            # the session survives: well-formed traffic still works
            m = c.request("malloc", size=64)
            assert m["ok"]
            c.close()
        assert srv.protocol_errors == 1

    def test_request_before_hello_rejected(self):
        srv = _server()
        with srv as (host, port):
            conn = socket.create_connection((host, port))
            reader = conn.makefile("r", encoding="utf-8", newline="\n")
            conn.sendall(protocol.encode({"op": "malloc", "req": 0,
                                          "size": 64}))
            r = json.loads(reader.readline())
            assert r["error"] == "protocol"
            conn.close()
        assert srv.protocol_errors == 1

    def test_unknown_op_rejected_in_session(self):
        srv = _server()
        with srv as (host, port):
            c = _Client(host, port, tenant=0)
            r = c.request("realloc")
            assert r["error"] == "protocol" and "unknown op" in r["detail"]
            c.close()
        assert srv.protocol_errors == 1


class TestConcurrentTenants:
    N_TENANTS = 9  # the acceptance bar is >= 8
    OPS_EACH = 12

    def test_many_concurrent_sessions_zero_protocol_errors(self):
        srv = _server()
        errors = []

        def tenant_session(host, port, tenant):
            try:
                c = _Client(host, port, tenant)
                assert c.hello["ok"]
                addrs = []
                for i in range(self.OPS_EACH):
                    m = c.request("malloc", size=64 + 32 * tenant)
                    assert m["ok"], m
                    addrs.append(m["addr"])
                for a in addrs:
                    f = c.request("free", addr=a)
                    assert f["ok"], f
                c.close()
            except BaseException as e:  # surfaced after the join
                errors.append((tenant, e))

        with srv as (host, port):
            threads = [
                threading.Thread(target=tenant_session,
                                 args=(host, port, t), daemon=True)
                for t in range(self.N_TENANTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
                assert not t.is_alive(), "a tenant session hung"
        assert errors == []
        assert srv.protocol_errors == 0
        totals = srv.engine.totals()
        assert totals.n_malloc == self.N_TENANTS * self.OPS_EACH
        assert totals.n_malloc_failed == 0
        assert totals.n_free == self.N_TENANTS * self.OPS_EACH
        assert srv.engine.live_allocations == 0
        # every tenant got its own ledger, and they never bled together
        assert len(srv.engine.stats) == self.N_TENANTS
        for t in range(self.N_TENANTS):
            st = srv.engine.stats[t]
            assert st.bytes_requested == self.OPS_EACH * (64 + 32 * t)
            assert st.bytes_served == st.bytes_requested
