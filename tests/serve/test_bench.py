"""The deterministic feeder, the bench runner, the bundled fixture."""

from __future__ import annotations

import pytest

from repro.serve.bench import feed_trace, run_backend
from repro.serve.engine import ServeEngine
from repro.workloads import families
from repro.workloads.replay import replay
from repro.workloads.trace import TraceRecorder, load_bundled, validate

POOL = 4 << 20  # ample: the reconciliation tests need zero failures


def _trace(seed=0, events=120, tenants=3):
    return families.generate("multi_tenant_zipf", seed,
                             events=events, tenants=tenants)


class TestFeedTrace:
    def test_every_event_is_submitted_or_skipped(self):
        trace = _trace()
        res = feed_trace(ServeEngine(pool=POOL), trace, batch_max=16)
        assert res.events == len(trace.events)
        assert res.submitted + res.frees_skipped == res.events
        assert res.episodes == res.engine.episodes > 1

    def test_batch_max_bounds_every_episode(self):
        # episodes >= ceil(submitted / batch_max), which only holds if no
        # batch ever exceeded batch_max
        res = feed_trace(ServeEngine(pool=POOL), _trace(), batch_max=8)
        assert res.episodes * 8 >= res.submitted

    def test_bad_batch_max_rejected(self):
        with pytest.raises(ValueError, match="batch_max"):
            feed_trace(ServeEngine(), _trace(), batch_max=0)

    def test_free_in_same_batch_forces_dependency_flush(self):
        rec = TraceRecorder("manual", 0, 1, {})
        a = rec.malloc(0, 64, 0)
        rec.free(a, 1)  # free arrives before its malloc's reply
        b = rec.malloc(0, 32, 2)
        rec.free(b, 3)
        res = feed_trace(ServeEngine(pool=POOL), rec.trace(), batch_max=32)
        assert res.dependency_flushes == 2
        assert res.engine.totals().n_free == 2
        assert res.engine.live_allocations == 0

    def test_determinism_same_inputs_same_service(self):
        def run():
            eng = ServeEngine(pool=POOL, seed=5)
            feed_trace(eng, _trace(seed=5), batch_max=16)
            return (eng.sched.now, eng.latencies,
                    {t: vars(st) for t, st in eng.stats.items()})

        assert run() == run()

    def test_accounting_reconciles_with_direct_replay(self):
        # The acceptance gate's core claim: serving a trace through
        # episodes accounts identically to the closed replayer when the
        # pool is ample (zero failures make the comparison exact).
        trace = _trace(seed=2)
        eng = ServeEngine(pool=POOL, seed=2)
        feed_trace(eng, trace, batch_max=16)
        direct = replay(trace, backend="ours", seed=2, pool=POOL)
        assert set(eng.stats) == set(direct.tenants)
        for t, st in eng.stats.items():
            ref = direct.tenants[t]
            for f in ("n_malloc", "n_malloc_failed", "n_free",
                      "n_free_skipped", "bytes_requested", "bytes_served"):
                assert getattr(st, f) == getattr(ref, f), (t, f)

    def test_ops_per_s_is_positive(self):
        res = feed_trace(ServeEngine(pool=POOL), _trace(), batch_max=16)
        assert res.ops_per_s() > 0
        assert res.cycles == res.engine.sched.now > 0


class TestRunBackend:
    def test_bench_point_fields(self):
        pt = run_backend(_trace(), "ours", seed=0, pool=POOL, batch_max=16)
        assert pt.backend.startswith("ours")
        assert pt.ops_per_s > 0
        assert pt.latency_p99 >= pt.latency_p50 > 0
        assert pt.failure_rate == 0.0  # ample pool
        assert pt.admission_failure_rate == 0.0  # no quota set
        assert pt.episodes > 0 and pt.cycles > 0

    def test_quota_shows_up_as_admission_failures(self):
        pt = run_backend(_trace(), "ours", seed=0, pool=POOL,
                         batch_max=16, quota_bytes=2 << 10)
        assert pt.admission_failure_rate > 0
        assert pt.causes.get("quota", 0) > 0


class TestBundledFixture:
    def test_serve_small_is_a_valid_balanced_trace(self):
        trace = load_bundled("serve_small")
        summary = validate(trace)
        assert trace.family == "served_session"
        assert trace.params["source_family"] == "multi_tenant_zipf"
        assert summary["mallocs"] == summary["frees"] > 0
        assert summary["live_at_end"] == 0
        assert trace.tenants == 3
        assert all(n > 0 for n in summary["mallocs_per_tenant"])

    def test_serve_small_replays_clean_through_the_service(self):
        trace = load_bundled("serve_small")
        eng = ServeEngine(pool=POOL, seed=0)
        res = feed_trace(eng, trace, batch_max=16)
        assert res.frees_skipped == 0
        assert eng.totals().n_malloc_failed == 0
        assert eng.live_allocations == 0
