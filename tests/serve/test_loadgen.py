"""The replay load generator, reconciled against ground truth.

The acceptance bar: loadgen replaying the bundled ``mt_small`` trace
over a real socket produces per-tenant ledgers identical to a direct
(in-process, closed-loop) :func:`repro.workloads.replay.replay` of the
same trace — the open system and the closed system must tell the same
accounting story.
"""

from __future__ import annotations

from repro.serve import loadgen
from repro.serve.engine import ServeEngine
from repro.serve.server import ServeServer
from repro.workloads.replay import replay
from repro.workloads.trace import load_bundled

POOL = 4 << 20  # ample: zero failures make ledger equality exact
LEDGER_FIELDS = ("n_malloc", "n_malloc_failed", "n_free", "n_free_skipped",
                 "bytes_requested", "bytes_served")


def _serve(trace, **engine_kw):
    engine_kw.setdefault("backend", "ours")
    engine_kw.setdefault("pool", POOL)
    engine_kw.setdefault("seed", 0)
    srv = ServeServer(ServeEngine(**engine_kw), batch_window=0.002,
                      batch_max=32)
    with srv as (host, port):
        report = loadgen.run(trace, host, port)
    return srv, report


class TestReplayReconciliation:
    def test_mt_small_ledgers_match_direct_replay(self):
        trace = load_bundled("mt_small")
        srv, report = _serve(trace)
        assert report.protocol_errors == 0
        assert report.sessions == trace.tenants
        direct = replay(trace, backend="ours", seed=0, pool=POOL)
        assert set(report.tenants) == set(direct.tenants)
        for t, st in report.tenants.items():
            ref = direct.tenants[t]
            for f in LEDGER_FIELDS:
                assert getattr(st, f) == getattr(ref, f), (t, f)

    def test_client_ledger_matches_server_ledger(self):
        trace = load_bundled("mt_small")
        srv, report = _serve(trace)
        server_stats = srv.engine.stats
        assert set(report.tenants) == set(server_stats)
        for t, st in report.tenants.items():
            ref = server_stats[t]
            # the server never sees client-side skipped frees, so the
            # causal sum is the comparable quantity
            assert st.n_free + st.n_free_skipped == \
                ref.n_free + ref.n_free_skipped
            for f in ("n_malloc", "n_malloc_failed", "bytes_requested",
                      "bytes_served"):
                assert getattr(st, f) == getattr(ref, f), (t, f)

    def test_latencies_are_reported_per_request(self):
        trace = load_bundled("mt_small")
        _, report = _serve(trace)
        t = report.totals()
        # one latency per completed request (failed ones carry none)
        assert len(report.latencies) == t.n_malloc - t.n_malloc_failed \
            + t.n_free
        assert all(lat > 0 for lat in report.latencies)
        assert report.wall_seconds > 0


class TestQuotaUnderLoad:
    def test_tight_quota_rejections_reach_the_client(self):
        trace = load_bundled("mt_small")
        srv, report = _serve(trace, quota_bytes=2 << 10)
        assert report.protocol_errors == 0
        assert report.causes.get("quota", 0) > 0
        # client and server agree on the rejection count exactly
        assert report.totals().n_malloc_failed == \
            srv.engine.totals().n_malloc_failed
        # skipped frees mirror failed mallocs for a balanced trace
        assert report.totals().n_free_skipped == \
            report.totals().n_malloc_failed


class TestPacing:
    def test_paced_run_accounts_identically(self):
        trace = load_bundled("serve_small")
        _, flat = _serve(trace)
        srv = ServeServer(ServeEngine(backend="ours", pool=POOL, seed=0),
                          batch_window=0.002, batch_max=32)
        with srv as (host, port):
            paced = loadgen.run(trace, host, port,
                                cycles_per_second=10_000_000)
        assert paced.protocol_errors == 0
        for t, st in flat.tenants.items():
            ref = paced.tenants[t]
            for f in LEDGER_FIELDS:
                assert getattr(st, f) == getattr(ref, f), (t, f)
