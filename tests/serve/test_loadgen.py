"""The replay load generator, reconciled against ground truth.

The acceptance bar: loadgen replaying the bundled ``mt_small`` trace
over a real socket produces per-tenant ledgers identical to a direct
(in-process, closed-loop) :func:`repro.workloads.replay.replay` of the
same trace — the open system and the closed system must tell the same
accounting story.
"""

from __future__ import annotations

import socket
import threading

from repro.serve import loadgen
from repro.serve.engine import ServeEngine
from repro.serve.server import ServeServer
from repro.workloads.replay import TenantStats, replay
from repro.workloads.trace import OP_MALLOC, TraceEvent, load_bundled

POOL = 4 << 20  # ample: zero failures make ledger equality exact
LEDGER_FIELDS = ("n_malloc", "n_malloc_failed", "n_free", "n_free_skipped",
                 "bytes_requested", "bytes_served")


def _serve(trace, **engine_kw):
    engine_kw.setdefault("backend", "ours")
    engine_kw.setdefault("pool", POOL)
    engine_kw.setdefault("seed", 0)
    srv = ServeServer(ServeEngine(**engine_kw), batch_window=0.002,
                      batch_max=32)
    with srv as (host, port):
        report = loadgen.run(trace, host, port)
    return srv, report


class TestReplayReconciliation:
    def test_mt_small_ledgers_match_direct_replay(self):
        trace = load_bundled("mt_small")
        srv, report = _serve(trace)
        assert report.protocol_errors == 0
        assert report.sessions == trace.tenants
        direct = replay(trace, backend="ours", seed=0, pool=POOL)
        assert set(report.tenants) == set(direct.tenants)
        for t, st in report.tenants.items():
            ref = direct.tenants[t]
            for f in LEDGER_FIELDS:
                assert getattr(st, f) == getattr(ref, f), (t, f)

    def test_client_ledger_matches_server_ledger(self):
        trace = load_bundled("mt_small")
        srv, report = _serve(trace)
        server_stats = srv.engine.stats
        assert set(report.tenants) == set(server_stats)
        for t, st in report.tenants.items():
            ref = server_stats[t]
            # the server never sees client-side skipped frees, so the
            # causal sum is the comparable quantity
            assert st.n_free + st.n_free_skipped == \
                ref.n_free + ref.n_free_skipped
            for f in ("n_malloc", "n_malloc_failed", "bytes_requested",
                      "bytes_served"):
                assert getattr(st, f) == getattr(ref, f), (t, f)

    def test_latencies_are_reported_per_request(self):
        trace = load_bundled("mt_small")
        _, report = _serve(trace)
        t = report.totals()
        # one latency per completed request (failed ones carry none)
        assert len(report.latencies) == t.n_malloc - t.n_malloc_failed \
            + t.n_free
        assert all(lat > 0 for lat in report.latencies)
        assert report.wall_seconds > 0


class TestQuotaUnderLoad:
    def test_tight_quota_rejections_reach_the_client(self):
        trace = load_bundled("mt_small")
        srv, report = _serve(trace, quota_bytes=2 << 10)
        assert report.protocol_errors == 0
        assert report.causes.get("quota", 0) > 0
        # client and server agree on the rejection count exactly
        assert report.totals().n_malloc_failed == \
            srv.engine.totals().n_malloc_failed
        # skipped frees mirror failed mallocs for a balanced trace
        assert report.totals().n_free_skipped == \
            report.totals().n_malloc_failed


class _FakeClock:
    """Deterministic monotonic clock whose every sleep overshoots."""

    def __init__(self, overshoot: float):
        self.now = 0.0
        self.overshoot = overshoot
        self.sleeps: list = []

    def monotonic(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds + self.overshoot


def _session_shell(events, cps):
    """A _TenantSession with the wire stubbed out: only pacing runs."""
    sess = object.__new__(loadgen._TenantSession)
    sess.stats = TenantStats()
    sess.cps = cps
    sess.events = events
    sess.lock = threading.Lock()
    sess.report = loadgen.LoadReport()
    done = loadgen._Future()
    done.resolve({"ok": False, "cause": "stub"})
    sess._issue = lambda msg: done
    return sess


class TestPacing:
    def test_pacing_anchors_to_an_absolute_schedule(self, monkeypatch):
        # Regression: pacing slept per-event deltas, so every sleep's
        # overshoot (and all send/wait time in between) accumulated —
        # under a clock that overshoots each sleep by 50ms, a 40-event
        # stream drifted ~2s behind its own schedule.  Anchored to t0,
        # the drift is bounded by a single overshoot regardless of
        # stream length.
        overshoot = 0.05
        clock = _FakeClock(overshoot)
        monkeypatch.setattr(loadgen, "_time", clock)
        cps = 1000.0
        events = [TraceEvent(op=OP_MALLOC, id=i, tenant=0, time=i * 100,
                             size=8) for i in range(40)]
        sess = _session_shell(events, cps)
        sess._replay_events()
        span = (events[-1].time - events[0].time) / cps
        assert clock.now >= span, "pacing did not pace at all"
        assert clock.now <= span + 3 * overshoot, (
            f"paced stream drifted {clock.now - span:.3f}s past its "
            f"schedule: per-delta sleeps are accumulating overshoot"
        )

    def test_paced_run_accounts_identically(self):
        trace = load_bundled("serve_small")
        _, flat = _serve(trace)
        srv = ServeServer(ServeEngine(backend="ours", pool=POOL, seed=0),
                          batch_window=0.002, batch_max=32)
        with srv as (host, port):
            paced = loadgen.run(trace, host, port,
                                cycles_per_second=10_000_000)
        assert paced.protocol_errors == 0
        for t, st in flat.tenants.items():
            ref = paced.tenants[t]
            for f in LEDGER_FIELDS:
                assert getattr(st, f) == getattr(ref, f), (t, f)


class TestWedgedReader:
    def test_silent_server_after_bye_is_a_session_error(self, monkeypatch):
        # Regression: the post-bye reader join ignored its timeout, so a
        # server that accepted the session and then went silent without
        # closing left the reader wedged mid-recv while the session
        # reported itself clean.
        monkeypatch.setattr(loadgen, "REPLY_TIMEOUT", 0.2)
        srv = socket.socket()
        srv.bind(("127.0.0.1", 0))
        srv.listen(1)
        _, port = srv.getsockname()
        release = threading.Event()

        def hello_then_silent():
            conn, _ = srv.accept()
            rd = conn.makefile("r", encoding="utf-8", newline="\n")
            rd.readline()                      # the client's hello
            conn.sendall(b'{"ok": true}\n')    # accept the session ...
            release.wait(5.0)                  # ... then wedge: no replies,
            conn.close()                       #     no close

        server = threading.Thread(target=hello_then_silent, daemon=True)
        server.start()
        sess = loadgen._TenantSession(
            "127.0.0.1", port, 0, [], loadgen.LoadReport(),
            threading.Lock(), None)
        try:
            sess._run()
        finally:
            release.set()
            srv.close()
        assert isinstance(sess.error, RuntimeError), sess.error
        assert "reader still alive" in str(sess.error)
