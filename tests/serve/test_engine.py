"""The episode batcher: outcomes, accounting, persistence, determinism."""

from __future__ import annotations

import json

import pytest

from repro.serve.engine import RequestOutcome, ServeEngine, ServeRequest
from repro.workloads.trace import TraceRecorder, validate


def _engine(**kw):
    kw.setdefault("backend", "ours")
    kw.setdefault("pool", 1 << 20)
    kw.setdefault("seed", 0)
    return ServeEngine(**kw)


def _malloc(tenant, size):
    return ServeRequest(tenant, "malloc", size=size)


def _free(tenant, addr):
    return ServeRequest(tenant, "free", addr=addr)


class TestSubmit:
    def test_outcomes_are_positional(self):
        eng = _engine()
        outs = eng.submit([_malloc(0, 64), _malloc(1, 128), _malloc(0, 32)])
        assert len(outs) == 3
        assert all(o.ok for o in outs)
        assert len({o.addr for o in outs}) == 3  # distinct addresses

    def test_empty_batch_is_a_noop(self):
        eng = _engine()
        assert eng.submit([]) == []
        assert eng.episodes == 0

    def test_latency_measured_per_request(self):
        eng = _engine()
        outs = eng.submit([_malloc(0, 64), _malloc(0, 64)])
        assert all(o.latency is not None and o.latency > 0 for o in outs)
        assert all(o.episode == 0 for o in outs)

    def test_free_roundtrip_and_ledger_release(self):
        eng = _engine(quota_bytes=1 << 16)
        [m] = eng.submit([_malloc(2, 512)])
        assert eng.admission.ledger(2).outstanding_bytes == 512
        [f] = eng.submit([_free(2, m.addr)])
        assert f.ok
        assert eng.admission.ledger(2).outstanding_bytes == 0
        assert eng.live_allocations == 0

    def test_unknown_addr_free_rejected(self):
        eng = _engine()
        [out] = eng.submit([_free(0, 0xDEAD)])
        assert not out.ok and out.cause == "unknown-addr"
        assert out.latency is None  # never entered an episode

    def test_foreign_free_rejected(self):
        eng = _engine()
        [m] = eng.submit([_malloc(0, 64)])
        [f] = eng.submit([_free(1, m.addr)])
        assert not f.ok and f.cause == "foreign-free"
        # the allocation stays live and its owner can still free it
        [f2] = eng.submit([_free(0, m.addr)])
        assert f2.ok

    def test_same_batch_double_free_caught(self):
        eng = _engine()
        [m] = eng.submit([_malloc(0, 64)])
        a, b = eng.submit([_free(0, m.addr), _free(0, m.addr)])
        assert a.ok
        assert not b.ok and b.cause == "unknown-addr"

    def test_over_quota_tenant_deterministically_rejected(self):
        for _ in range(2):
            eng = _engine(quota_bytes=256)
            outs = eng.submit([_malloc(0, 200), _malloc(0, 200),
                               _malloc(1, 200)])
            assert [o.ok for o in outs] == [True, False, True]
            assert outs[1].cause == "quota"
            assert eng.stats[0].n_malloc_failed == 1

    def test_bad_op_rejected(self):
        eng = _engine()
        with pytest.raises(ValueError, match="non-batch op"):
            eng.submit([ServeRequest(0, "stats")])


class TestPersistence:
    def test_heap_and_virtual_time_persist_across_episodes(self):
        eng = _engine()
        [m1] = eng.submit([_malloc(0, 64)])
        t1 = eng.sched.now
        [m2] = eng.submit([_malloc(0, 64)])
        assert eng.sched.now > t1          # virtual time is continuous
        assert m1.addr != m2.addr          # first allocation still live
        assert eng.episodes == 2
        assert eng.live_allocations == 2

    def test_determinism_across_fresh_engines(self):
        def run():
            eng = _engine(seed=3)
            outs = []
            outs += eng.submit([_malloc(0, 64), _malloc(1, 256)])
            outs += eng.submit([_free(0, outs[0].addr), _malloc(1, 64)])
            return [(o.ok, o.addr, o.latency, o.episode) for o in outs]

        assert run() == run()


class TestHarnessMode:
    def test_sched_without_handle_rejected(self):
        from repro.sim.memory import DeviceMemory
        from repro.sim.scheduler import Scheduler

        sched = Scheduler(DeviceMemory(1 << 20), seed=0)
        with pytest.raises(ValueError, match="both sched and handle"):
            ServeEngine(sched=sched)


class TestTelemetry:
    def test_totals_and_percentiles(self):
        eng = _engine()
        eng.submit([_malloc(0, 64), _malloc(1, 128)])
        t = eng.totals()
        assert t.n_malloc == 2 and t.bytes_requested == 192
        assert eng.latency_percentile(50) > 0
        assert eng.latency_percentile(99) >= eng.latency_percentile(50)

    def test_empty_percentile_is_zero(self):
        assert _engine().latency_percentile(99) == 0

    def test_report_reuses_replay_qos_vocabulary(self):
        eng = _engine()
        eng.submit([_malloc(0, 64), _malloc(1, 64)])
        rep = eng.report()
        assert rep.backend == eng.backend_name
        assert set(rep.tenants) == {0, 1}
        assert rep.ops_per_s > 0
        assert rep.fairness() > 0  # the replay QoS math applies as-is

    def test_snapshot_is_json_safe(self):
        eng = _engine(quota_bytes=1 << 16)
        eng.submit([_malloc(0, 64), _malloc(2, 128)])
        snap = json.loads(json.dumps(eng.snapshot()))
        assert snap["requests"] == 2
        assert snap["tenants"]["0"]["n_malloc"] == 1
        assert snap["tenants"]["2"]["outstanding_bytes"] == 128

    def test_count_skipped_free_feeds_reconciliation(self):
        eng = _engine()
        eng.count_skipped_free(5)
        assert eng.stats[5].n_free_skipped == 1


class TestRecorder:
    def test_served_session_records_a_valid_trace(self):
        rec = TraceRecorder("served_session", 0, 2, {})
        eng = _engine(recorder=rec)
        outs = eng.submit([_malloc(0, 64), _malloc(1, 128)])
        eng.submit([_free(0, outs[0].addr), _free(1, outs[1].addr)])
        trace = rec.trace()
        summary = validate(trace)
        assert summary["mallocs"] == 2 and summary["frees"] == 2
        assert summary["live_at_end"] == 0
