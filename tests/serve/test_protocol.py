"""Wire protocol: framing, validation, the two failure channels."""

from __future__ import annotations

import json

import pytest

from repro.serve import protocol
from repro.serve.protocol import (
    MAX_LINE,
    PROTOCOL,
    ProtocolError,
    decode_line,
    encode,
    parse_hello,
    parse_request,
)


class TestFraming:
    def test_encode_is_one_lf_terminated_line(self):
        data = encode({"op": "bye", "ok": True})
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1

    def test_encode_decode_roundtrip(self):
        msg = {"op": "malloc", "req": 3, "size": 96}
        assert decode_line(encode(msg).decode().strip()) == msg

    def test_encode_is_canonical(self):
        # sorted keys: byte-identical frames for equal messages
        a = encode({"b": 1, "a": 2})
        b = encode({"a": 2, "b": 1})
        assert a == b

    def test_bad_json_is_protocol_error(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_line("{nope")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="not a JSON object"):
            decode_line("[1, 2]")

    def test_oversize_line_rejected(self):
        line = json.dumps({"op": "x" * MAX_LINE})
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_line(line)


class TestHello:
    def test_valid_hello(self):
        h = parse_hello({"op": "hello", "proto": PROTOCOL, "tenant": 4})
        assert h.tenant == 4

    def test_request_before_hello_rejected(self):
        with pytest.raises(ProtocolError, match="expected 'hello'"):
            parse_hello({"op": "malloc", "req": 0, "size": 8})

    def test_wrong_protocol_version_rejected(self):
        with pytest.raises(ProtocolError, match="unsupported protocol"):
            parse_hello({"op": "hello", "proto": "repro.serve/99",
                         "tenant": 0})

    def test_missing_tenant_rejected(self):
        with pytest.raises(ProtocolError, match="tenant"):
            parse_hello({"op": "hello", "proto": PROTOCOL})

    def test_negative_tenant_rejected(self):
        with pytest.raises(ProtocolError, match=">= 0"):
            parse_hello({"op": "hello", "proto": PROTOCOL, "tenant": -1})


class TestRequests:
    def test_malloc_needs_positive_size(self):
        with pytest.raises(ProtocolError, match=">= 1"):
            parse_request({"op": "malloc", "req": 0, "size": 0})

    def test_malloc_size_must_be_integer(self):
        with pytest.raises(ProtocolError, match="integer 'size'"):
            parse_request({"op": "malloc", "req": 0, "size": "big"})

    def test_bool_is_not_an_integer(self):
        with pytest.raises(ProtocolError, match="integer 'size'"):
            parse_request({"op": "malloc", "req": 0, "size": True})

    def test_free_needs_addr(self):
        with pytest.raises(ProtocolError, match="addr"):
            parse_request({"op": "free", "req": 1})

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            parse_request({"op": "realloc", "req": 0})

    def test_duplicate_hello_rejected(self):
        with pytest.raises(ProtocolError, match="duplicate hello"):
            parse_request({"op": "hello", "proto": PROTOCOL, "tenant": 0})

    def test_valid_malloc_and_free(self):
        m = parse_request({"op": "malloc", "req": 7, "size": 64})
        assert (m.op, m.req, m.size) == ("malloc", 7, 64)
        f = parse_request({"op": "free", "req": 8, "addr": 4096})
        assert (f.op, f.req, f.addr) == ("free", 8, 4096)

    def test_stats_and_bye_need_no_fields(self):
        assert parse_request({"op": "stats"}).op == "stats"
        assert parse_request({"op": "bye"}).op == "bye"


class TestReplies:
    def test_ok_reply_carries_latency_and_episode(self):
        r = protocol.request_reply(5, ok=True, addr=4096, latency=100,
                                   episode=2)
        assert r == {"ok": True, "req": 5, "addr": 4096, "latency": 100,
                     "episode": 2}

    def test_failure_reply_carries_cause_not_addr(self):
        r = protocol.request_reply(5, ok=False, cause="quota")
        assert r == {"ok": False, "req": 5, "cause": "quota"}

    def test_protocol_error_reply_is_distinct_channel(self):
        r = protocol.protocol_error_reply("bad frame")
        assert r["error"] == "protocol" and not r["ok"]
        assert "cause" not in r
