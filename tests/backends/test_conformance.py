"""Every registered backend passes the conformance deck.

The grid is the whole ``product(names(), CHECKS)`` — a new backend
registration automatically grows the test matrix, and a capability the
backend does not claim shows up as an explicit skip, never a silent
pass.
"""

from __future__ import annotations

import pytest

from repro.backends import names
from repro.backends.conformance import CHECKS, CheckOutcome, run_check

CHECK_NAMES = [name for name, _ in CHECKS]


@pytest.mark.parametrize("backend", names())
@pytest.mark.parametrize("check", CHECK_NAMES)
def test_conformance_cell(backend, check):
    out = run_check(backend, check)
    if out.status == "skip":
        pytest.skip(f"{backend}: {out.detail}")
    assert out.status == "pass", f"{backend}/{check}: {out.detail}"


class TestDeckShape:
    def test_expected_skips_are_declared_not_passed(self):
        """The deck's skips come from caps, and only where designed."""
        # bump cannot recycle, XMalloc's stacks carry no allocated-bit
        assert run_check("bump", "double-free").status == "skip"
        assert run_check("xmalloc", "double-free").status == "skip"
        # pool-bounded backends have no size-class ceiling to probe
        for backend in ("ours", "cuda", "lock-buddy", "bump", "hostbased"):
            assert run_check(backend, "oversize").status == "skip"
        # the size-class backends do
        assert run_check("xmalloc", "oversize").status == "pass"
        assert run_check("scatteralloc", "oversize").status == "pass"

    def test_outcome_ok_semantics(self):
        assert CheckOutcome("b", "c", "pass").ok
        assert CheckOutcome("b", "c", "skip", "why").ok
        assert not CheckOutcome("b", "c", "fail", "boom").ok
