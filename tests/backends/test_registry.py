"""Backend registry: lookup, aliasing, collision rejection, building."""

from __future__ import annotations

import pytest

from repro import backends
from repro.backends import Backend, BackendCaps, UnknownBackend
from repro.sim import DeviceMemory, GPUDevice

#: every allocator the repo implements must resolve through the registry
EXPECTED_BACKENDS = (
    "ours",
    "ours-coalesced",
    "cuda",
    "xmalloc",
    "scatteralloc",
    "lock-buddy",
    "bump",
    "hostbased",
)


class TestLookup:
    def test_all_backends_registered_in_order(self):
        assert tuple(backends.names()) == EXPECTED_BACKENDS

    @pytest.mark.parametrize("name", EXPECTED_BACKENDS)
    def test_resolve_by_name(self, name):
        assert backends.get(name).name == name

    @pytest.mark.parametrize("key,want", [
        # historic bench display labels keep working as lookup keys
        ("ours (scalar)", "ours"),
        ("ours (coalesced)", "ours-coalesced"),
        ("CUDA-like", "cuda"),
        ("XMalloc-like", "xmalloc"),
        ("ScatterAlloc-like", "scatteralloc"),
        ("bump pointer", "bump"),
        ("host-based", "hostbased"),
        # explicit aliases
        ("scatter", "scatteralloc"),
        ("lockbuddy", "lock-buddy"),
        ("bell", "hostbased"),
    ])
    def test_resolve_by_display_and_alias(self, key, want):
        assert backends.get(key).name == want

    def test_resolution_is_case_insensitive(self):
        assert backends.get("OURS").name == "ours"
        assert backends.get("  Cuda-Like ").name == "cuda"

    def test_unknown_name_raises_with_roster(self):
        with pytest.raises(UnknownBackend, match="ours"):
            backends.get("tcmalloc")

    def test_duplicate_registration_rejected(self):
        dupe = Backend(name="ours", display="nope", description="",
                       builder=lambda *a: None)
        with pytest.raises(ValueError, match="already registered"):
            backends.register(dupe)

    def test_alias_collision_rejected(self):
        dupe = Backend(name="brand-new", display="scatter",
                       description="", builder=lambda *a: None)
        with pytest.raises(ValueError, match="already registered"):
            backends.register(dupe)


class TestBuild:
    @pytest.fixture
    def env(self):
        return DeviceMemory(16 << 20), GPUDevice(num_sms=2)

    @pytest.mark.parametrize("name", EXPECTED_BACKENDS)
    def test_build_yields_working_handle(self, env, name):
        mem, device = env
        handle = backends.build(name, mem, device, 1 << 20)
        assert handle.name == name
        assert handle.pool_size >= 1 << 20
        assert handle.pool_base % handle.caps.alignment == 0
        assert callable(handle.malloc) and callable(handle.free)
        # host audit hooks are callable at quiescence on a fresh handle
        assert handle.used_bytes() == 0 or not handle.caps.exact_used_bytes
        handle.host_check()
        handle.host_checkpoint(expect_leak_free=True)

    def test_coalesced_capability_matches_entry_point(self, env):
        mem, device = env
        for name in EXPECTED_BACKENDS:
            handle = backends.get(name).build(mem, device, 1 << 18)
            if handle.caps.supports_coalesced:
                assert handle.malloc_coalesced is not None
            else:
                assert handle.malloc_coalesced is None

    def test_caps_are_frozen(self):
        caps = BackendCaps()
        with pytest.raises(AttributeError):
            caps.alignment = 64
