"""Mutation tests: deliberately broken allocators must FAIL conformance.

A conformance suite that never fails proves nothing — each test here
sabotages one allocator invariant behind the registry and asserts the
deck catches it.  ``monkeypatch`` undoes the sabotage after each test,
and the last test re-runs the mutated cells clean to prove it.
"""

from __future__ import annotations

from bisect import insort

from repro.backends.conformance import run_check
from repro.backends.hostbased import HostBasedAllocator
from repro.baselines import BumpAllocator, CudaLikeAllocator, ScatterAlloc
from repro.sim import DeviceMemory, ops

_NULL = DeviceMemory.NULL


def test_scatteralloc_leaked_blocks_fail_roundtrip(monkeypatch):
    """Break ScatterAlloc's free-block accounting: free validates but
    never clears the bitmap bit, so freed blocks stay marked used."""

    def leaky_free(self, ctx, addr):
        if addr == _NULL:
            return
        yield ops.sleep(1)  # round-trips the "work" but clears nothing

    monkeypatch.setattr(ScatterAlloc, "free", leaky_free)
    out = run_check("scatteralloc", "roundtrip")
    assert out.status == "fail"
    assert "leak" in out.detail


def test_cuda_missing_bounds_check_fails_invalid_free(monkeypatch):
    """Drop the CUDA-like free's pool bounds validation: an out-of-pool
    free silently 'succeeds' and the deck must notice."""

    def unvalidated_free(self, ctx, addr):
        return
        yield  # pragma: no cover - generator shape only

    monkeypatch.setattr(CudaLikeAllocator, "free", unvalidated_free)
    out = run_check("cuda", "invalid-free-out-of-pool")
    assert out.status == "fail"
    assert "accepted silently" in out.detail


def test_hostbased_lost_coalescing_fails_roundtrip(monkeypatch):
    """Break the host free list's eager coalescing: adjacent ranges pile
    up and the quiescent structural audit must reject them."""

    def no_coalesce(self, off, nbytes):
        insort(self._free, (off, nbytes))

    monkeypatch.setattr(HostBasedAllocator, "_insert_free", no_coalesce)
    out = run_check("hostbased", "roundtrip")
    assert out.status == "fail"
    assert "uncoalesced" in out.detail


def test_bump_miscounted_null_frees_fail_free_null(monkeypatch):
    """Make the bump pointer count free(NULL) as an invalid free: the
    universal free(NULL)-is-uncounted contract must catch it."""

    def miscounting_free(self, ctx, addr):
        self.n_noop_frees += 1
        return
        yield  # pragma: no cover - generator shape only

    monkeypatch.setattr(BumpAllocator, "free", miscounting_free)
    out = run_check("bump", "free-null")
    assert out.status == "fail"
    assert "counted" in out.detail


def test_mutations_left_no_residue():
    """After the monkeypatches unwind, the mutated cells pass again."""
    for backend, check in [
        ("scatteralloc", "roundtrip"),
        ("cuda", "invalid-free-out-of-pool"),
        ("hostbased", "roundtrip"),
        ("bump", "free-null"),
    ]:
        out = run_check(backend, check)
        assert out.status == "pass", f"{backend}/{check}: {out.detail}"
