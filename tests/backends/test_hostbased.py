"""HostBasedAllocator unit tests: policy, exact audits, serialization."""

from __future__ import annotations

import pytest

from repro.backends.hostbased import (
    HostBasedAllocator,
    HostBasedError,
    REQUEST_CYCLES,
    SERVICE_CYCLES,
)
from repro.sim import DeviceMemory

_NULL = DeviceMemory.NULL

POOL = 1 << 16


@pytest.fixture
def alloc(mem):
    base = mem.host_alloc(POOL, align=16)
    return HostBasedAllocator(mem, base, POOL)


def test_rejects_misaligned_pool(mem):
    with pytest.raises(ValueError):
        HostBasedAllocator(mem, mem.host_alloc(64, align=16) + 8, 64)
    with pytest.raises(ValueError):
        HostBasedAllocator(mem, mem.host_alloc(64, align=16), 40)


def test_first_fit_reuses_lowest_freed_block(alloc, run_kernel):
    got = []

    def kernel(ctx):
        a = yield from alloc.malloc(ctx, 256)
        b = yield from alloc.malloc(ctx, 256)
        yield from alloc.free(ctx, a)
        c = yield from alloc.malloc(ctx, 128)  # fits the hole at a
        got.extend([a, b, c])

    run_kernel(kernel, 1, 1)
    a, b, c = got
    assert b == a + 256  # carved in address order
    assert c == a        # address-ordered first fit reuses the hole
    assert alloc.host_used_bytes() == 256 + 128


def test_free_coalesces_back_to_one_range(alloc, run_kernel):
    def kernel(ctx):
        ptrs = []
        for _ in range(8):
            p = yield from alloc.malloc(ctx, 512)
            ptrs.append(p)
        # free in a scrambled order: merges must happen on both sides
        for i in (3, 0, 7, 2, 5, 1, 6, 4):
            yield from alloc.free(ctx, ptrs[i])

    run_kernel(kernel, 1, 1)
    assert alloc._free == [(0, POOL)]
    assert alloc.host_used_bytes() == 0
    alloc.host_check()


def test_alignment_rounds_request_up(alloc, run_kernel):
    got = []

    def kernel(ctx):
        a = yield from alloc.malloc(ctx, 1)  # rounds to 16
        b = yield from alloc.malloc(ctx, 17)  # rounds to 32
        got.extend([a, b])

    run_kernel(kernel, 1, 1)
    a, b = got
    assert a % 16 == 0 and b % 16 == 0
    assert b == a + 16
    assert alloc.host_used_bytes() == 16 + 32


def test_exhaustion_returns_null_and_stays_auditable(alloc, run_kernel):
    got = []

    def kernel(ctx):
        p = yield from alloc.malloc(ctx, POOL // 2)
        q = yield from alloc.malloc(ctx, POOL // 2 + 16)  # cannot fit now
        got.extend([p, q])

    run_kernel(kernel, 1, 1)
    assert got[0] != _NULL and got[1] == _NULL
    assert alloc.n_malloc_failed == 1
    alloc.host_check()


def test_free_null_is_counted_noop(alloc, run_kernel):
    def kernel(ctx):
        yield from alloc.free(ctx, _NULL)

    run_kernel(kernel, 1, 4)
    assert alloc.n_free_null == 4
    assert alloc.host_used_bytes() == 0


def test_out_of_pool_free_raises(alloc, run_kernel):
    def kernel(ctx):
        yield from alloc.free(ctx, alloc.base + alloc.size + 64)

    with pytest.raises(HostBasedError, match="outside the pool"):
        run_kernel(kernel, 1, 1)


def test_double_free_detected_exactly(alloc, run_kernel):
    def kernel(ctx):
        p = yield from alloc.malloc(ctx, 64)
        yield from alloc.free(ctx, p)
        yield from alloc.free(ctx, p)

    with pytest.raises(HostBasedError, match="not a live block"):
        run_kernel(kernel, 1, 1)
    # the bad request must not poison the host queue for later callers
    assert not alloc.queue.is_locked()


def test_host_check_catches_uncoalesced_free_list(alloc):
    alloc._free = [(0, 256), (256, POOL - 256)]
    with pytest.raises(HostBasedError, match="uncoalesced"):
        alloc.host_check()


def test_host_check_catches_accounting_leak(alloc):
    alloc._free = [(0, POOL - 64)]
    with pytest.raises(HostBasedError, match="accounting leak"):
        alloc.host_check()


def test_requests_serialize_at_the_host(alloc, run_kernel):
    """N concurrent mallocs pay the travel latency once (overlapped) but
    queue for the single host thread: total time grows with N x
    service_cycles, the single-server ceiling the model exists to
    charge."""
    n = 16

    def kernel(ctx):
        yield from alloc.malloc(ctx, 64)

    report, _ = run_kernel(kernel, 1, n)
    assert report.cycles >= REQUEST_CYCLES + n * SERVICE_CYCLES
    assert alloc.n_malloc == n
    assert alloc.host_used_bytes() == n * 64
