"""RaceChecker unit tests: each rule family exercised directly through
the ``mem_op`` / list / grace-period hooks with synthetic op streams.

The checker is driven without a scheduler: ``mem_op`` takes the thread,
op tuple, time and result explicitly, and ``now()`` is satisfied by a
stub scheduler exposing per-tid clocks.
"""

from types import SimpleNamespace

import pytest

from repro.core.tbuddy import ALLOC_BIT, AVAILABLE, BUSY, LOCK_BIT
from repro.sim import ops
from repro.verify.race import RaceChecker

TREE = 0x1000          # watched tree range: 8 node words
SPIN = 0x2000          # watched spinlock word
NODE = 0x3000          # RCU-watched list node


def th(tid):
    return SimpleNamespace(tid=tid)


def make_checker(clock=0):
    c = RaceChecker()
    c.watch_tbuddy(SimpleNamespace(tree_addr=TREE, n_nodes=8))
    c.watch_spinlock(SimpleNamespace(addr=SPIN))
    c._sched = SimpleNamespace(
        _threads={tid: SimpleNamespace(clock=clock) for tid in range(8)}
    )
    return c


def rules(c):
    return [f.rule for f in c.findings]


def acquire_tree(c, tid, addr=TREE, word=AVAILABLE, t=0):
    """Legitimate bit-lock acquire: CAS word -> word|LOCK_BIT."""
    c.mem_op(th(tid), (ops.OP_CAS, addr, word, word | LOCK_BIT), t, word)


class TestTreeBitLocks:
    def test_clean_lock_store_unlock_cycle(self):
        c = make_checker()
        acquire_tree(c, 1)
        # holder's store keeping the bit (parent repair) and the final
        # store-release are both legitimate
        c.mem_op(th(1), (ops.OP_STORE, TREE, BUSY | LOCK_BIT), 1, None)
        c.mem_op(th(1), (ops.OP_STORE, TREE, BUSY), 2, None)
        assert c.ok

    def test_clean_and_release_by_owner(self):
        c = make_checker()
        acquire_tree(c, 1)
        c.mem_op(th(1), (ops.OP_AND, TREE, ~LOCK_BIT), 1, AVAILABLE | LOCK_BIT)
        assert c.ok

    def test_failed_cas_does_not_acquire(self):
        c = make_checker()
        # result != expected: the CAS lost, tid 1 holds nothing
        c.mem_op(th(1), (ops.OP_CAS, TREE, AVAILABLE, AVAILABLE | LOCK_BIT),
                 0, BUSY)
        c.mem_op(th(1), (ops.OP_STORE, TREE, BUSY), 1, None)
        assert rules(c) == ["tree-store-unlocked"]

    def test_unlocked_store_flagged(self):
        c = make_checker()
        c.mem_op(th(2), (ops.OP_STORE, TREE + 8, BUSY), 5, None)
        assert rules(c) == ["tree-store-unlocked"]
        assert c.findings[0].addr == TREE + 8
        assert c.findings[0].tid == 2

    def test_store_over_held_lock_flagged(self):
        c = make_checker()
        acquire_tree(c, 1)
        c.mem_op(th(2), (ops.OP_STORE, TREE, BUSY), 1, None)
        assert rules(c) == ["tree-store-clobbers-lock"]
        # the store wiped the bit: tid 1's subsequent unlock is now of an
        # unheld lock (exactly the stale-DFS corruption cascade)
        c.mem_op(th(1), (ops.OP_AND, TREE, ~LOCK_BIT), 2, BUSY)
        assert rules(c) == ["tree-store-clobbers-lock",
                            "bitlock-release-unheld"]

    def test_and_release_by_nonowner_flagged(self):
        c = make_checker()
        acquire_tree(c, 1)
        c.mem_op(th(2), (ops.OP_AND, TREE, ~LOCK_BIT), 1, AVAILABLE | LOCK_BIT)
        assert rules(c) == ["bitlock-release-nonowner"]

    def test_cas_release_by_nonowner_flagged(self):
        c = make_checker()
        acquire_tree(c, 1, word=BUSY)
        c.mem_op(th(2), (ops.OP_CAS, TREE, BUSY | LOCK_BIT, BUSY),
                 1, BUSY | LOCK_BIT)
        assert rules(c) == ["bitlock-release-nonowner"]

    def test_or_forging_lock_bit_flagged(self):
        c = make_checker()
        c.mem_op(th(3), (ops.OP_OR, TREE, LOCK_BIT), 0, AVAILABLE)
        assert rules(c) == ["bitlock-forged"]

    def test_or_and_of_flag_bits_allowed(self):
        # the ALLOC-bit set/clear on a locked-elsewhere word is the
        # legitimate pattern _alloc_once/free use
        c = make_checker()
        c.mem_op(th(1), (ops.OP_OR, TREE, ALLOC_BIT), 0, BUSY)
        c.mem_op(th(1), (ops.OP_AND, TREE, ~ALLOC_BIT), 1, BUSY | ALLOC_BIT)
        assert c.ok

    def test_raw_atomic_flagged(self):
        c = make_checker()
        c.mem_op(th(1), (ops.OP_ADD, TREE, 1), 0, BUSY)
        assert rules(c) == ["tree-raw-atomic"]

    def test_loads_and_unwatched_addresses_ignored(self):
        c = make_checker()
        c.mem_op(th(1), (ops.OP_LOAD, TREE), 0, BUSY)
        c.mem_op(th(1), (ops.OP_STORE, 0x9000, 7), 0, None)
        assert c.ok


class TestSpinLocks:
    def test_clean_acquire_release(self):
        c = make_checker()
        c.mem_op(th(1), (ops.OP_CAS, SPIN, 0, 1), 0, 0)
        c.mem_op(th(1), (ops.OP_EXCH, SPIN, 0), 1, 1)
        assert c.ok

    def test_failed_acquire_then_owner_release(self):
        c = make_checker()
        c.mem_op(th(1), (ops.OP_CAS, SPIN, 0, 1), 0, 0)   # tid 1 wins
        c.mem_op(th(2), (ops.OP_CAS, SPIN, 0, 1), 1, 1)   # tid 2 loses
        c.mem_op(th(1), (ops.OP_EXCH, SPIN, 0), 2, 1)
        assert c.ok

    def test_release_by_nonowner_flagged(self):
        c = make_checker()
        c.mem_op(th(1), (ops.OP_CAS, SPIN, 0, 1), 0, 0)
        c.mem_op(th(2), (ops.OP_EXCH, SPIN, 0), 1, 1)
        assert rules(c) == ["spinlock-release-nonowner"]

    def test_release_unheld_flagged(self):
        c = make_checker()
        c.mem_op(th(2), (ops.OP_EXCH, SPIN, 0), 0, 0)
        assert rules(c) == ["spinlock-release-unheld"]

    def test_plain_store_flagged(self):
        c = make_checker()
        c.mem_op(th(1), (ops.OP_STORE, SPIN, 0), 0, None)
        assert rules(c) == ["spinlock-plain-store"]

    def test_raw_atomic_flagged(self):
        c = make_checker()
        c.mem_op(th(1), (ops.OP_ADD, SPIN, 1), 0, 0)
        assert rules(c) == ["spinlock-raw-atomic"]


class TestRCUQuarantine:
    OFFSETS = (0, 16)

    def make(self):
        c = make_checker()
        self.dlist = SimpleNamespace()
        self.domain = SimpleNamespace()
        c.watch_rcu_list(self.dlist, self.domain, self.OFFSETS, "bins")
        return c

    def unlink(self, c, tid=1, clock=100):
        c._sched._threads[tid].clock = clock
        c.list_removed(SimpleNamespace(tid=tid), self.dlist, NODE)

    def test_foreign_write_before_grace_flagged(self):
        c = self.make()
        self.unlink(c)
        c.mem_op(th(2), (ops.OP_STORE, NODE + 16, 0), 150, None)
        assert rules(c) == ["rcu-use-after-unlink"]
        f = c.findings[0]
        assert f.addr == NODE + 16 and "bins" in f.detail

    def test_unlinker_may_write_its_own_node(self):
        c = self.make()
        self.unlink(c, tid=1)
        c.mem_op(th(1), (ops.OP_STORE, NODE, 0), 150, None)
        assert c.ok

    def test_mutable_offsets_not_quarantined(self):
        c = self.make()
        self.unlink(c)
        c.mem_op(th(2), (ops.OP_STORE, NODE + 8, 3), 150, None)
        assert c.ok

    def test_reinsertion_lifts_quarantine(self):
        c = self.make()
        self.unlink(c)
        c.list_inserted(SimpleNamespace(tid=2), self.dlist, NODE)
        c.mem_op(th(2), (ops.OP_STORE, NODE, 0), 150, None)
        assert c.ok

    def test_grace_period_lifts_earlier_unlinks(self):
        c = self.make()
        self.unlink(c, clock=100)
        c.rcu_grace_period(SimpleNamespace(tid=0, sm=0), 150, 180,
                           domain=self.domain)
        c.mem_op(th(2), (ops.OP_STORE, NODE, 0), 200, None)
        assert c.ok

    def test_grace_period_does_not_lift_later_unlinks(self):
        c = self.make()
        self.unlink(c, clock=200)  # unlinked after this grace's epoch flip
        c.rcu_grace_period(SimpleNamespace(tid=0, sm=0), 150, 180,
                           domain=self.domain)
        c.mem_op(th(2), (ops.OP_STORE, NODE, 0), 250, None)
        assert rules(c) == ["rcu-use-after-unlink"]

    def test_grace_period_of_other_domain_does_not_lift(self):
        c = self.make()
        self.unlink(c, clock=100)
        c.rcu_grace_period(SimpleNamespace(tid=0, sm=0), 150, 180,
                           domain=SimpleNamespace())
        c.mem_op(th(2), (ops.OP_STORE, NODE, 0), 200, None)
        assert rules(c) == ["rcu-use-after-unlink"]

    def test_unwatched_list_ignored(self):
        c = self.make()
        c.list_removed(SimpleNamespace(tid=1), SimpleNamespace(), NODE)
        c.mem_op(th(2), (ops.OP_STORE, NODE, 0), 150, None)
        assert c.ok


class TestQuiesce:
    def test_leaked_locks_flagged_and_state_reset(self):
        c = make_checker()
        acquire_tree(c, 1)
        c.mem_op(th(2), (ops.OP_CAS, SPIN, 0, 1), 0, 0)
        c.quiesce()
        assert sorted(rules(c)) == ["bitlock-leak", "spinlock-leak"]
        # state was reset: a fresh clean cycle reports nothing new
        acquire_tree(c, 3)
        c.mem_op(th(3), (ops.OP_STORE, TREE, BUSY), 1, None)
        assert sorted(rules(c)) == ["bitlock-leak", "spinlock-leak"]

    def test_quiesce_voids_quarantines(self):
        c = make_checker()
        dlist, domain = SimpleNamespace(), SimpleNamespace()
        c.watch_rcu_list(dlist, domain, (0,), "x")
        c.list_removed(SimpleNamespace(tid=1), dlist, NODE)
        c.quiesce()
        c.mem_op(th(2), (ops.OP_STORE, NODE, 0), 10, None)
        assert c.ok

    def test_clean_quiesce_is_silent(self):
        c = make_checker()
        acquire_tree(c, 1)
        c.mem_op(th(1), (ops.OP_STORE, TREE, BUSY), 1, None)  # released
        c.quiesce()
        assert c.ok


class TestReporting:
    def test_findings_bounded(self):
        c = RaceChecker(max_findings=2)
        c.watch_tbuddy(SimpleNamespace(tree_addr=TREE, n_nodes=8))
        for i in range(5):
            c.mem_op(th(1), (ops.OP_STORE, TREE, BUSY), i, None)
        assert len(c.findings) == 2
        assert c.dropped_findings == 3
        assert not c.ok

    def test_summary_mentions_rule_and_addr(self):
        c = make_checker()
        c.mem_op(th(2), (ops.OP_STORE, TREE, BUSY), 7, None)
        s = c.summary()
        assert "tree-store-unlocked" in s and "tid=2" in s
