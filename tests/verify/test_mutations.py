"""Mutation tests: prove the verification subsystem has teeth.

Each test re-introduces a *known-bad* variant of an allocator protocol
and asserts the default-budget sweep catches it deterministically:

* **Unlocked merge store** — TBuddy's free/merge path publishing BUSY
  with a plain store instead of the locked ``_transition``.  A stale
  DFS can transiently lock the node, so the store clobbers a held lock;
  the race checker flags it on the storm scenario's early seeds.

* **Skipped renege** — a thread whose batch promise fails must renege
  its expectation (``E -= k``); dropping that leaves waiters reserved
  against supply that will never arrive.  Under the OOM storm this
  manifests as a deadlock (threads spin past the event budget) or,
  on schedules that drain, as the ``E == 0`` checkpoint assertion.

Both also run the unmutated control case to show the failure signal
comes from the mutation, not the harness.
"""

import pytest

from repro.core import tbuddy as tb_mod
from repro.sim import ops
from repro.sync.bulk_semaphore import BulkSemaphore
from repro.verify import CaseSpec, run_case
from repro.verify import runner as runner_mod

#: seeds the sweep default (4 seeds) would cover; empirically the
#: mutations below are caught at the very first ones.
MUTATION_A_SEEDS = (0, 1)


@pytest.fixture
def unlocked_merge_store(monkeypatch):
    """Mutation A: free's merge path marks the kept node BUSY with a
    plain store (no lock, no expect_state check)."""
    orig = tb_mod.TBuddy._transition

    def broken(self, ctx, node, new_word, expect_state=None):
        if new_word == tb_mod.BUSY and expect_state is None:
            yield ops.store(self._naddr(node), new_word)
            return True
        res = yield from orig(self, ctx, node, new_word, expect_state)
        return res

    monkeypatch.setattr(tb_mod.TBuddy, "_transition", broken)


@pytest.fixture
def skipped_renege(monkeypatch):
    """Mutation B: a failed batch promise never gives back its
    expectation."""

    def no_renege(self, ctx, k):
        return
        yield  # pragma: no cover - keeps this a generator

    monkeypatch.setattr(BulkSemaphore, "renege", no_renege)
    # A deadlocked case only fails once the event budget trips; shrink
    # the budget (5x headroom over any passing case) to keep this fast.
    monkeypatch.setattr(runner_mod, "EVENT_BUDGET", 2_000_000)


def test_unlocked_merge_store_is_caught(unlocked_merge_store):
    results = [run_case(CaseSpec("storm", seed))
               for seed in MUTATION_A_SEEDS]
    caught = [r for r in results if not r.ok]
    assert caught, (
        "race checker missed the unlocked merge store on seeds "
        f"{MUTATION_A_SEEDS}"
    )
    rules = {f.rule for r in caught for f in r.findings}
    assert rules & {"tree-store-unlocked", "tree-store-clobbers-lock"}, rules
    # every failure is replayable
    for r in caught:
        assert CaseSpec.parse(r.spec.replay) == r.spec


def test_storm_control_passes_without_mutation_a():
    for seed in MUTATION_A_SEEDS:
        res = run_case(CaseSpec("storm", seed))
        assert res.ok, res.describe()


def test_skipped_renege_is_caught(skipped_renege):
    res = run_case(CaseSpec("storm_oom", 0))
    assert not res.ok, "sweep missed the skipped renege"
    assert res.error is not None
    # structural deadlock, the livelock guard (waiters spinning on the
    # phantom expectation past the event budget), or the quiescent
    # accounting check — which one depends on the schedule
    assert ("DeadlockError" in res.error
            or "EventBudgetExceeded" in res.error
            or "renege" in res.error
            or "E ==" in res.error), res.error
    # the outcome taxonomy must agree with the error: a budget trip with
    # no race findings is a "budget" outcome, anything else "protocol"
    if "EventBudgetExceeded" in res.error:
        assert res.budget_exhausted
        assert res.kind == ("protocol" if res.findings else "budget")
    else:
        assert not res.budget_exhausted
        assert res.kind == "protocol"


def test_storm_oom_control_passes_without_mutation_b(monkeypatch):
    monkeypatch.setattr(runner_mod, "EVENT_BUDGET", 2_000_000)
    res = run_case(CaseSpec("storm_oom", 0))
    assert res.ok, res.describe()
