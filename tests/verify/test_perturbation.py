"""Perturbation: spec round-trips, canonical ordering, application."""

import pytest

from repro.sim.cost_model import DEFAULT_COST_MODEL
from repro.verify.perturbation import (
    COST_KNOBS,
    DEFAULT_DECK,
    SMOKE_DECK,
    Perturbation,
    deck,
)


class TestSpec:
    def test_round_trip(self):
        p = Perturbation.parse("atomic_latency=4,jitter=256")
        assert p.spec == "atomic_latency=4,jitter=256"
        assert Perturbation.parse(p.spec) == p

    def test_empty_is_baseline(self):
        p = Perturbation.parse("")
        assert not p
        assert len(p) == 0
        assert p.spec == ""
        assert str(p) == "<baseline>"

    def test_canonical_order_is_sorted(self):
        a = Perturbation.parse("jitter=256,atomic_latency=4")
        b = Perturbation.parse("atomic_latency=4,jitter=256")
        assert a == b
        assert a.spec == "atomic_latency=4,jitter=256"

    def test_fractional_values_round_trip(self):
        p = Perturbation.parse("store_latency=0.25")
        assert Perturbation.parse(p.spec) == p

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown.*warp_speed"):
            Perturbation.parse("warp_speed=9")

    def test_duplicate_knob_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Perturbation.parse("jitter=1,jitter=2")

    def test_non_positive_value_rejected(self):
        with pytest.raises(ValueError, match="> 0"):
            Perturbation.parse("jitter=0")

    def test_malformed_item_rejected(self):
        with pytest.raises(ValueError, match="knob=value"):
            Perturbation.parse("jitter")

    def test_nan_rejected(self):
        # nan slips through the `value <= 0` guard (every comparison
        # with nan is False) and used to construct a poisoned spec
        with pytest.raises(ValueError, match="finite"):
            Perturbation.parse("jitter=nan")
        with pytest.raises(ValueError, match="finite"):
            Perturbation((("atomic_latency", float("nan")),))

    def test_inf_rejected(self):
        # inf round-trips into a spec string no replay can execute
        with pytest.raises(ValueError, match="finite"):
            Perturbation.parse("atomic_latency=inf")
        with pytest.raises(ValueError, match="finite"):
            Perturbation.parse("store_latency=-inf")

    def test_sub_one_jitter_rejected_at_construction(self):
        # jitter=0.5 used to pass the > 0 guard, then truncate to a
        # 0-cycle jitter at apply time — a "perturbed" spec silently
        # identical to the baseline schedule
        with pytest.raises(ValueError, match=">= 1"):
            Perturbation.parse("jitter=0.5")

    def test_steer_round_trips(self):
        p = Perturbation.parse("atomic_latency=4,steer=7")
        assert p.spec == "atomic_latency=4,steer=7"
        assert Perturbation.parse(p.spec) == p
        assert p.steer == 7

    def test_steer_defaults_to_zero_when_absent(self):
        assert Perturbation.parse("jitter=256").steer == 0
        assert Perturbation().steer == 0

    def test_fractional_steer_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            Perturbation.parse("steer=1.5")

    def test_sub_one_steer_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            Perturbation.parse("steer=0.25")


class TestApply:
    def test_baseline_is_identity(self):
        cost, jitter = Perturbation().apply(DEFAULT_COST_MODEL)
        assert cost is DEFAULT_COST_MODEL
        assert jitter == 0

    def test_multiplier_scales_field(self):
        cost, _ = Perturbation.parse("atomic_latency=4").apply(DEFAULT_COST_MODEL)
        assert cost.atomic_latency == DEFAULT_COST_MODEL.atomic_latency * 4
        # untouched fields pass through
        assert cost.load_latency == DEFAULT_COST_MODEL.load_latency

    def test_jitter_is_absolute_not_multiplier(self):
        cost, jitter = Perturbation.parse("jitter=256").apply(DEFAULT_COST_MODEL)
        assert jitter == 256
        assert cost is DEFAULT_COST_MODEL

    def test_shrunk_cost_floors_at_one_cycle(self):
        # 0.0001 * anything rounds to 0; the floor keeps it at 1 cycle.
        cost, _ = Perturbation.parse("store_latency=0.0001").apply(
            DEFAULT_COST_MODEL
        )
        assert cost.store_latency == 1

    def test_fractional_jitter_rounds_instead_of_truncating(self):
        # int(value) used to floor 256.7 to 256 silently; rounding is
        # the documented contract now
        _, jitter = Perturbation.parse("jitter=256.7").apply(
            DEFAULT_COST_MODEL
        )
        assert jitter == 257

    def test_steer_is_not_a_timing_knob(self):
        cost, jitter = Perturbation.parse("steer=5").apply(
            DEFAULT_COST_MODEL
        )
        assert cost is DEFAULT_COST_MODEL
        assert jitter == 0


class TestShrinkSupport:
    def test_without_removes_one_knob(self):
        p = Perturbation.parse("atomic_latency=4,jitter=512")
        q = p.without("jitter")
        assert q.spec == "atomic_latency=4"
        assert p.spec == "atomic_latency=4,jitter=512"  # immutable

    def test_without_missing_knob_is_noop(self):
        p = Perturbation.parse("jitter=256")
        assert p.without("atomic_latency") == p


class TestDecks:
    def test_default_deck_starts_at_baseline(self):
        assert not DEFAULT_DECK[0]

    def test_smoke_deck_is_subset_sized(self):
        assert len(SMOKE_DECK) < len(DEFAULT_DECK)
        assert not SMOKE_DECK[0]

    def test_every_deck_entry_applies_cleanly(self):
        for pert in DEFAULT_DECK + SMOKE_DECK:
            cost, jitter = pert.apply(DEFAULT_COST_MODEL)
            assert jitter >= 0
            for knob in COST_KNOBS:
                assert getattr(cost, knob) >= 1

    def test_deck_builder(self):
        d = deck(["", "jitter=16"])
        assert len(d) == 2 and not d[0] and d[1].spec == "jitter=16"
