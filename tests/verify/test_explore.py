"""Exploration engine: determinism, coverage, outcome taxonomy, teeth.

The teeth test seeds a *contention-gated* protocol bug: TBuddy's
transition path publishes with a plain store — but only when its entry
load observes the target node's lock bit already set.  Executing the bad
store therefore requires a schedule that contends that exact node at
that exact moment, which is precisely the kind of corner a fixed
perturbation grid visits only by luck and a coverage-guided explorer is
built to reach.  The target node was calibrated (see TREE_NODE below)
so the DEFAULT_DECK grid misses the bug at an equal case budget while
the explorer's steered schedules hit it.
"""

import pytest

from repro.core import tbuddy as tb_mod
from repro.sim import ops
from repro.verify import CaseSpec, Perturbation, run_case, shrink_case
from repro.verify import runner as runner_mod
from repro.verify.cli import main as verify_main
from repro.verify.explore import (
    BATCH,
    ExploreItem,
    Explorer,
    deck_coverage,
    explore,
    run_probed,
)

#: equal-budget comparison point for the separation tests: 16 cases is
#: the DEFAULT_DECK's full 2-seed grid over one scenario.
SEP_BUDGET = 16

#: the seeded bug's gated tree node.  Calibrated empirically (schedule-
#: neutral spy on ``_transition`` entry loads): at SEP_BUDGET over the
#: storm scenario, no DEFAULT_DECK schedule ever observes this node's
#: lock bit set at transition entry, while explorer schedules (master
#: seed 0) do.  If a scheduler change shifts schedules, re-run the spy
#: (record nodes with LOCK_BIT set at the first ``_transition`` load,
#: per case) and pick a node in the explorer-only set.
TREE_NODE = 89


@pytest.fixture
def contended_publish(monkeypatch):
    """Seeded bug: when ``_transition``'s entry load sees TREE_NODE's
    lock bit set, publish with a plain store instead of locking.

    The wrapper forwards the original generator's ops verbatim until
    the gate fires, so every schedule is byte-identical to the clean
    run up to the moment the bug executes — the deck/explorer
    separation measured on clean runs carries over exactly.
    """
    orig = tb_mod.TBuddy._transition

    def broken(self, ctx, node, new_word, expect_state=None):
        gen = orig(self, ctx, node, new_word, expect_state)
        op = next(gen)  # _lock's entry load of the node word
        res = yield op
        if (node == TREE_NODE and op[0] == ops.OP_LOAD
                and (res & tb_mod.LOCK_BIT)):
            gen.close()
            yield ops.store(self._naddr(node), new_word)
            return True
        try:
            while True:
                op = gen.send(res)
                res = yield op
        except StopIteration as e:
            return e.value

    monkeypatch.setattr(tb_mod.TBuddy, "_transition", broken)


class TestScheduleIdentity:
    def test_same_spec_same_schedule_digest(self):
        """Replay determinism: the same explore spec produces a
        byte-identical digest chain (prefixes and schedule hash)."""
        item = ExploreItem(
            CaseSpec("churn", 0, Perturbation.parse("steer=2")),
            probe_every=256,
        )
        a, b = run_probed(item), run_probed(item)
        assert a.result.ok and b.result.ok
        assert a.prefixes, "probe never fired"
        assert a.prefixes == b.prefixes
        assert a.schedule == b.schedule
        assert a.peak_contention == b.peak_contention

    def test_distinct_steer_salts_distinct_schedules(self):
        outs = [
            run_probed(ExploreItem(
                CaseSpec("churn", 0, Perturbation.parse(f"steer={s}")),
                probe_every=256,
            ))
            for s in (1, 2)
        ]
        assert outs[0].schedule != outs[1].schedule

    def test_explored_specs_replay_through_existing_machinery(self):
        """Every explored spec — steering suffix included — must round-
        trip through the replay string parser."""
        spec = CaseSpec("storm", 3,
                        Perturbation.parse("atomic_latency=4,steer=7"))
        assert CaseSpec.parse(spec.replay) == spec
        assert "steer=7" in spec.replay


class TestExplorerDeterminism:
    def test_identical_reports_at_any_worker_count(self):
        reports = [
            explore(scenarios=["churn"], budget=2 * BATCH, workers=w)
            for w in (1, 2)
        ]
        a, b = reports
        assert a.cases == b.cases == 2 * BATCH
        assert a.distinct_schedules == b.distinct_schedules
        assert a.distinct_prefixes == b.distinct_prefixes
        assert a.peak_contention == b.peak_contention
        assert ([f.spec.replay for f in a.failures]
                == [f.spec.replay for f in b.failures])

    def test_master_seed_changes_the_walk(self):
        a = explore(scenarios=["churn"], budget=8, master_seed=0)
        b = explore(scenarios=["churn"], budget=8, master_seed=1)
        # round 0 is shared; the steered tail must diverge
        assert a.cases == b.cases == 8
        assert (a.distinct_schedules, a.distinct_prefixes) \
            != (b.distinct_schedules, b.distinct_prefixes)


class TestCoverage:
    def test_explorer_beats_the_deck_at_equal_budget(self):
        """The tentpole's reason to exist: at the same case budget the
        steered walk visits strictly more distinct schedules than the
        fixed grid (deterministic, so pinned with strict >)."""
        ex = explore(scenarios=["churn"], budget=SEP_BUDGET)
        deck = deck_coverage(scenarios=["churn"], budget=SEP_BUDGET)
        assert ex.cases == deck.cases == SEP_BUDGET
        assert ex.distinct_schedules > deck.distinct_schedules
        assert ex.distinct_prefixes > deck.distinct_prefixes


class TestTeeth:
    def test_explorer_finds_seeded_bug_the_deck_misses(self, contended_publish):
        deck = deck_coverage(scenarios=["storm"], budget=SEP_BUDGET)
        assert not deck.failures, (
            "calibration drifted: the DEFAULT_DECK grid now catches the "
            "gated bug — re-calibrate TREE_NODE (see module docstring)\n"
            + deck.describe()
        )
        ex = explore(scenarios=["storm"], budget=SEP_BUDGET)
        assert ex.failures, (
            "explorer lost its teeth: the seeded contention-gated bug "
            "went unnoticed at a budget where steered schedules reach "
            "it\n" + ex.describe()
        )
        rules = {f.rule for res in ex.failures for f in res.findings}
        assert rules & {"tree-store-unlocked", "tree-store-clobbers-lock"}, \
            rules

    def test_explorer_failures_replay_and_shrink(self, contended_publish):
        ex = explore(scenarios=["storm"], budget=SEP_BUDGET)
        assert ex.failures
        first = ex.failures[0]
        # deterministic replay: the bare spec reproduces the failure
        again = run_case(first.spec)
        assert not again.ok
        assert again.kind == first.kind
        assert ({f.rule for f in again.findings}
                == {f.rule for f in first.findings})
        # and the existing shrinker minimizes it
        minimal = shrink_case(first.spec)
        assert not run_case(minimal).ok
        assert len(minimal.perturbation) <= len(first.spec.perturbation)


class TestBudgetTaxonomy:
    def test_budget_exhaustion_is_its_own_outcome(self, monkeypatch):
        monkeypatch.setattr(runner_mod, "EVENT_BUDGET", 2_000)
        res = run_case(CaseSpec("churn", 0))
        assert not res.ok
        assert res.budget_exhausted
        assert res.kind == "budget"
        assert "EventBudgetExceeded" in res.error
        assert "[budget-exhausted]" in res.describe()

    def test_explorer_segregates_budget_trips(self, monkeypatch):
        monkeypatch.setattr(runner_mod, "EVENT_BUDGET", 2_000)
        rep = explore(scenarios=["churn"], budget=4)
        assert not rep.failures          # no protocol violations...
        assert rep.budget_failures       # ...only budget artifacts
        assert rep.ok                    # which are non-fatal by default


class TestCli:
    def test_explore_subcommand_smoke(self, capsys):
        rc = verify_main(["explore", "--budget", "6", "--scenario",
                          "churn", "--quiet", "--min-coverage", "4"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "distinct schedule(s)" in out

    def test_coverage_floor_fails_the_run(self, capsys):
        rc = verify_main(["explore", "--budget", "4", "--scenario",
                          "churn", "--quiet", "--min-coverage", "999"])
        out = capsys.readouterr().out
        assert rc == 1, out
        assert "coverage floor missed" in out
