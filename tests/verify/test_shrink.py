"""Shrinker: greedy knob removal to a 1-minimal failing perturbation."""

from repro.verify import CaseSpec, Perturbation, shrink_case
from repro.verify.runner import CaseResult


def predicate_rerun(fails_when):
    """A stub runner: the case fails iff ``fails_when(knob_names)``."""
    calls = []

    def rerun(spec):
        names = {n for n, _ in spec.perturbation.items}
        calls.append(names)
        return CaseResult(spec,
                          error="boom" if fails_when(names) else None)

    return rerun, calls


def test_shrinks_to_single_culprit_knob():
    spec = CaseSpec("storm", 0, Perturbation.parse(
        "atomic_latency=4,store_latency=8,jitter=256"))
    rerun, _ = predicate_rerun(lambda names: "jitter" in names)
    minimal = shrink_case(spec, rerun=rerun)
    assert minimal.perturbation.spec == "jitter=256"
    assert (minimal.scenario, minimal.seed) == ("storm", 0)


def test_keeps_interacting_pair():
    # failure needs both knobs: neither can be removed alone
    spec = CaseSpec("storm", 0, Perturbation.parse(
        "atomic_latency=4,jitter=512"))
    rerun, _ = predicate_rerun(
        lambda names: {"atomic_latency", "jitter"} <= names)
    minimal = shrink_case(spec, rerun=rerun)
    assert minimal.perturbation.spec == "atomic_latency=4,jitter=512"


def test_baseline_spec_returns_immediately():
    spec = CaseSpec("storm", 0)
    rerun, calls = predicate_rerun(lambda names: True)
    assert shrink_case(spec, rerun=rerun) == spec
    assert calls == []  # nothing to remove, nothing re-run


def test_logs_each_accepted_reduction():
    spec = CaseSpec("churn", 2, Perturbation.parse(
        "atomic_latency=4,jitter=256"))
    rerun, _ = predicate_rerun(lambda names: "jitter" in names)
    lines = []
    minimal = shrink_case(spec, rerun=rerun, log=lines.append)
    assert minimal.perturbation.spec == "jitter=256"
    assert any("dropped atomic_latency" in l for l in lines)
