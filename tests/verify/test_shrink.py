"""Shrinker: greedy knob removal to a 1-minimal failing perturbation."""

import pytest

from repro.verify import CaseSpec, Perturbation, shrink_case
from repro.verify.runner import CaseResult


def predicate_rerun(fails_when):
    """A stub runner: the case fails iff ``fails_when(knob_names)``."""
    calls = []

    def rerun(spec):
        names = {n for n, _ in spec.perturbation.items}
        calls.append(names)
        return CaseResult(spec,
                          error="boom" if fails_when(names) else None)

    return rerun, calls


def test_shrinks_to_single_culprit_knob():
    spec = CaseSpec("storm", 0, Perturbation.parse(
        "atomic_latency=4,store_latency=8,jitter=256"))
    rerun, _ = predicate_rerun(lambda names: "jitter" in names)
    minimal = shrink_case(spec, rerun=rerun)
    assert minimal.perturbation.spec == "jitter=256"
    assert (minimal.scenario, minimal.seed) == ("storm", 0)


def test_keeps_interacting_pair():
    # failure needs both knobs: neither can be removed alone
    spec = CaseSpec("storm", 0, Perturbation.parse(
        "atomic_latency=4,jitter=512"))
    rerun, _ = predicate_rerun(
        lambda names: {"atomic_latency", "jitter"} <= names)
    minimal = shrink_case(spec, rerun=rerun)
    assert minimal.perturbation.spec == "atomic_latency=4,jitter=512"


def test_baseline_spec_returns_immediately():
    spec = CaseSpec("storm", 0)
    rerun, calls = predicate_rerun(lambda names: True)
    assert shrink_case(spec, rerun=rerun) == spec
    assert calls == []  # nothing to remove, nothing re-run


def test_passing_spec_raises_instead_of_misreporting():
    """A spec that does not fail has no failure to minimize; returning
    it unchanged used to be indistinguishable from 'already 1-minimal'
    (the stale-replay-string trap)."""
    spec = CaseSpec("storm", 0, Perturbation.parse("jitter=256"))
    rerun, calls = predicate_rerun(lambda names: False)
    with pytest.raises(ValueError, match="does not fail"):
        shrink_case(spec, rerun=rerun)
    assert calls == [{"jitter"}]  # exactly the fail-first probe


def test_reduction_must_preserve_failure_kind():
    """A protocol failure must not 'shrink' into an event-budget
    artifact — that hands debugging a livelock-guard trip instead of
    the bug."""
    spec = CaseSpec("storm", 0, Perturbation.parse(
        "atomic_latency=4,jitter=256"))

    def rerun(s):
        names = {n for n, _ in s.perturbation.items}
        if names == {"atomic_latency", "jitter"}:
            return CaseResult(s, error="boom")          # protocol
        if names == {"jitter"}:                          # dropped atomic
            return CaseResult(s, error="budget", budget_exhausted=True)
        if names == {"atomic_latency"}:                  # dropped jitter
            return CaseResult(s, error="boom")          # protocol
        return CaseResult(s)                             # baseline passes

    minimal = shrink_case(spec, rerun=rerun)
    # the budget-kind reduction {jitter} was rejected; the protocol-kind
    # one {atomic_latency} accepted and is 1-minimal
    assert minimal.perturbation.spec == "atomic_latency=4"


def test_logs_each_accepted_reduction():
    spec = CaseSpec("churn", 2, Perturbation.parse(
        "atomic_latency=4,jitter=256"))
    rerun, _ = predicate_rerun(lambda names: "jitter" in names)
    lines = []
    minimal = shrink_case(spec, rerun=rerun, log=lines.append)
    assert minimal.perturbation.spec == "jitter=256"
    assert any("dropped atomic_latency" in l for l in lines)
