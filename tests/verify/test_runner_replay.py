"""Runner, replay specs, sweep and the ``verify`` CLI surface."""

import pytest

import repro.__main__ as repro_main
from repro.verify import CaseSpec, Perturbation, run_case, sweep
from repro.verify import cli
from repro.verify.perturbation import deck
from repro.verify.runner import SCENARIOS, CaseResult


class TestCaseSpec:
    def test_replay_round_trip(self):
        spec = CaseSpec("storm", 3, Perturbation.parse("atomic_latency=4,jitter=512"))
        assert spec.replay == "storm:3:atomic_latency=4,jitter=512"
        assert CaseSpec.parse(spec.replay) == spec

    def test_parse_without_perturbation(self):
        spec = CaseSpec.parse("churn:2")
        assert spec == CaseSpec("churn", 2)
        # a trailing colon (baseline spec, as printed) also parses
        assert CaseSpec.parse("churn:2:") == spec

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="replay spec"):
            CaseSpec.parse("storm")
        with pytest.raises(ValueError):
            CaseSpec.parse("storm:notanint")

    def test_parse_round_trips_backend_qualifier(self):
        spec = CaseSpec.parse("storm@cuda:3")
        assert (spec.scenario, spec.backend, spec.seed) == ("storm", "cuda", 3)
        assert CaseSpec.parse(spec.replay) == spec

    @pytest.mark.parametrize("raw", ["@:3", "scen@:3", "@cuda:3", "@:0:"])
    def test_parse_rejects_empty_fragments(self, raw):
        # `scen@:3` used to build a spec with backend="" that only blew
        # up later as an opaque registry KeyError; reject it at parse.
        with pytest.raises(ValueError, match="empty"):
            CaseSpec.parse(raw)

    def test_str_is_replay(self):
        assert str(CaseSpec("churn", 0)) == "churn:0:"

    def test_parse_round_trips_engine_qualifier(self):
        spec = CaseSpec.parse("storm/batch:3")
        assert (spec.scenario, spec.engine, spec.seed) == ("storm", "batch", 3)
        assert spec.replay == "storm/batch:3:"
        assert CaseSpec.parse(spec.replay) == spec
        # engine composes with a backend qualifier
        both = CaseSpec.parse("storm@cuda/batch:3")
        assert (both.backend, both.engine) == ("cuda", "batch")
        assert CaseSpec.parse(both.replay) == both

    def test_event_engine_is_elided_from_replay(self):
        # historic replay strings stay valid and stay canonical: the
        # default engine never appears in the printed spec
        spec = CaseSpec.parse("storm/event:3")
        assert spec.engine == "event"
        assert spec.replay == "storm:3:"

    def test_parse_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            CaseSpec.parse("storm/vector:3")


class TestRunCase:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_case(CaseSpec("warp_storm", 0))

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_every_scenario_passes_clean_at_seed0(self, scenario):
        """The teeth prerequisite: zero findings / failures on the
        unmutated allocator."""
        res = run_case(CaseSpec(scenario, 0))
        assert res.ok, res.describe()
        assert res.findings == []

    def test_deterministic_outcome(self):
        spec = CaseSpec("producer_consumer", 1,
                        Perturbation.parse("jitter=256"))
        a, b = run_case(spec), run_case(spec)
        assert a.ok == b.ok
        assert a.describe() == b.describe()

    def test_allocator_hook_runs_after_setup(self):
        seen = {}

        def hook(harness):
            seen["alloc"] = harness.alloc
            seen["checker"] = harness.checker

        res = run_case(CaseSpec("churn", 0), allocator_hook=hook)
        assert res.ok
        assert seen["alloc"] is not None and seen["checker"] is not None

    def test_hook_failure_becomes_case_failure(self):
        def hook(harness):
            raise AssertionError("sabotage marker")

        res = run_case(CaseSpec("churn", 0), allocator_hook=hook)
        assert not res.ok
        assert "sabotage marker" in res.error
        assert "FAIL churn:0:" in res.describe()

    def test_check_races_false_skips_checker(self):
        seen = {}
        res = run_case(CaseSpec("churn", 0), check_races=False,
                       allocator_hook=lambda h: seen.update(c=h.checker))
        assert res.ok and seen["c"] is None


class TestSweep:
    def test_grid_shape_and_all_pass(self):
        results = sweep([0, 1], deck=deck(["", "jitter=256"]),
                        scenarios=["churn"])
        assert len(results) == 4
        assert all(r.ok for r in results)

    def test_log_callback_sees_every_case(self):
        lines = []
        sweep([0], deck=deck([""]), scenarios=["churn"],
              log=lines.append)
        assert lines == ["PASS churn:0:"]

    def test_fail_fast_stops_at_first_failure(self, monkeypatch):
        calls = []

        def fake_run(spec, **kw):
            calls.append(spec)
            return CaseResult(spec, error="boom")

        import repro.verify.runner as runner_mod
        monkeypatch.setattr(runner_mod, "run_case", fake_run)
        results = runner_mod.sweep([0, 1], deck=deck(["", "jitter=256"]),
                                   scenarios=["churn"], fail_fast=True)
        assert len(results) == len(calls) == 1


class TestCli:
    def test_replay_passing_case_exits_zero(self, capsys):
        assert cli.main(["--replay", "churn:0"]) == 0
        out = capsys.readouterr().out
        assert "PASS churn:0:" in out

    def test_replay_bad_spec_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            cli.main(["--replay", "nope"])
        assert exc.value.code == 2

    def test_small_sweep_exits_zero(self, capsys):
        rc = cli.main(["--scenario", "churn", "--seeds", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "all 8 cases passed" in out  # 1 seed x default deck (8)

    def test_smoke_flag_reduces_grid(self, capsys):
        rc = cli.main(["--smoke", "--scenario", "churn"])
        assert rc == 0
        out = capsys.readouterr().out
        # 2 seeds x smoke deck (4) x 1 scenario
        assert "= 8 cases" in out

    def test_failing_sweep_prints_replay_line(self, monkeypatch, capsys):
        bad = CaseResult(CaseSpec("churn", 0,
                                  Perturbation.parse("jitter=256")),
                         error="AssertionError: leak")

        monkeypatch.setattr(cli, "sweep", lambda *a, **kw: [bad])
        rc = cli.main(["--seeds", "1"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "1 failing case(s)" in out
        assert "replay: python -m repro verify --replay 'churn:0:jitter=256'" in out

    def test_failing_sweep_with_shrink_reports_minimal(self, monkeypatch, capsys):
        spec = CaseSpec("churn", 0, Perturbation.parse("jitter=256"))
        bad = CaseResult(spec, error="AssertionError: leak")
        monkeypatch.setattr(cli, "sweep", lambda *a, **kw: [bad])
        monkeypatch.setattr(cli, "shrink_case",
                            lambda s, log=None: s)
        rc = cli.main(["--seeds", "1", "--shrink"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "minimal reproducer" in out

    def test_main_module_dispatches_verify(self, capsys):
        assert repro_main.main(["verify", "--replay", "churn:0"]) == 0
        assert "PASS churn:0:" in capsys.readouterr().out

    def test_main_module_experiment_surface_unchanged(self):
        # the verify dispatch must not eat the experiment parser's errors
        with pytest.raises(SystemExit):
            repro_main.main(["not-a-target"])
