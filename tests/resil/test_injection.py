"""FaultInjector decisions and the instrumented failure arms (S3).

The first half unit-tests :meth:`FaultInjector.decide` as a pure
function of ``(plan, seed, occurrence order)``; the second half runs
fault-injected kernels against the real allocator and asserts each
``wait(n, b) == -1`` call site's failure arm reneges correctly — the
heap is structurally sound, the semaphore ledgers read ``E == R == 0``,
and no supply is lost.
"""

import pytest

from repro.core import AllocatorConfig, ThroughputAllocator
from repro.resil import FaultInjector, FaultPlan
from repro.sim import DeviceMemory, GPUDevice, Scheduler, ops
from repro.sim.hostrun import drive, host_ctx

NULL = DeviceMemory.NULL


def make_injector(spec: str, seed: int = 0) -> FaultInjector:
    return FaultInjector(FaultPlan.parse(spec), seed=seed)


class TestDecide:
    def test_deterministic_across_instances(self):
        spec = "site=tbuddy.alloc,p=0.5;site=spinlock.hold,p=0.3,cycles=500"
        a = make_injector(spec, seed=42)
        b = make_injector(spec, seed=42)
        stream = [("tbuddy.alloc", i % 4) for i in range(50)] + \
                 [("spinlock.hold", 0)] * 50
        for site, detail in stream:
            assert a.decide(1, site, detail, 100) == b.decide(1, site, detail, 100)
        assert a.trace_text() == b.trace_text()

    def test_seed_changes_sampling(self):
        spec = "site=tbuddy.alloc,p=0.5"
        a = make_injector(spec, seed=1)
        b = make_injector(spec, seed=2)
        da = [a.decide(0, "tbuddy.alloc", 0, t)[0] for t in range(100)]
        db = [b.decide(0, "tbuddy.alloc", 0, t)[0] for t in range(100)]
        assert da != db

    def test_every_after_max_schedule(self):
        inj = make_injector("site=tbuddy.split,every=3,after=2,max=2")
        fired = [occ for occ in range(12)
                 if inj.decide(0, "tbuddy.split", 0, occ)[0] == "fail"]
        # skip occurrences 0-1, then every 3rd matching one, capped at 2
        assert fired == [2, 5]
        assert inj.n_injected == 2

    def test_detail_filter(self):
        inj = make_injector("site=tbuddy.alloc,detail=4")
        outcomes = [inj.decide(0, "tbuddy.alloc", d, 0)[0]
                    for d in (0, 4, 6, 4)]
        assert outcomes == [None, "fail", None, "fail"]

    def test_unplanned_site_never_fires(self):
        inj = make_injector("site=tbuddy.alloc")
        assert inj.decide(0, "spinlock.hold", 0, 0) == (None, 0)
        assert inj.n_injected == 0

    def test_stall_returns_delay_not_fail(self):
        inj = make_injector("site=spinlock.hold,cycles=777")
        assert inj.decide(0, "spinlock.hold", 0, 0) == (None, 777)
        assert inj.counts_by_kind == {"stall": 1}

    def test_first_matching_rule_wins(self):
        inj = make_injector(
            "site=tbuddy.lock,detail=1,cycles=100;site=tbuddy.lock,cycles=900"
        )
        assert inj.decide(0, "tbuddy.lock", 1, 0) == (None, 100)
        assert inj.decide(0, "tbuddy.lock", 2, 0) == (None, 900)
        assert inj.counts_by_site == {"tbuddy.lock": 2}

    def test_trace_records_virtual_time_and_tid(self):
        inj = make_injector("site=ualloc.new_chunk")
        inj.decide(7, "ualloc.new_chunk", 3, 4242)
        assert inj.trace_lines() == [
            "#0 t=4242 tid=7 ualloc.new_chunk[3] -> renege(0)"
        ]


class TestSchedulerDispatch:
    """OP_FAULT through the real scheduler: outcomes and charged delay."""

    def _run_probe(self, site, detail, injector):
        mem = DeviceMemory(1 << 12)
        seen = []

        def kernel(ctx):
            seen.append((yield ops.fault_point(site, detail)))

        s = Scheduler(mem, seed=1, fault_injector=injector)
        s.launch(kernel, 1, 1)
        report = s.run()
        return seen[0], report.cycles

    def test_fail_outcome_reaches_device_code(self):
        outcome, _ = self._run_probe(
            "tbuddy.alloc", 3, make_injector("site=tbuddy.alloc"))
        assert outcome == "fail"

    def test_stall_outcome_is_none_and_charges_cycles(self):
        stall = 7777
        outcome, cycles = self._run_probe(
            "spinlock.hold", 0,
            make_injector(f"site=spinlock.hold,cycles={stall}"))
        clean_outcome, clean_cycles = self._run_probe("spinlock.hold", 0, None)
        assert outcome is None and clean_outcome is None
        assert cycles - clean_cycles >= stall

    def test_no_injector_is_a_noop(self):
        outcome, _ = self._run_probe("tbuddy.split", 0, None)
        assert outcome is None


# ----------------------------------------------------------------------
# S3: instrumented failure arms against the real allocator
# ----------------------------------------------------------------------
def make_alloc(pool_order: int = 6):
    device = GPUDevice(num_sms=1)
    cfg = AllocatorConfig(pool_order=pool_order)
    mem = DeviceMemory((4096 << pool_order) * 2 + (8 << 20))
    return mem, device, ThroughputAllocator(mem, device, cfg)


def run_kernel(mem, device, kernel, injector, nthreads=4, seed=9):
    s = Scheduler(mem, device, seed=seed, fault_injector=injector)
    s.launch(kernel, 1, nthreads)
    s.run(max_events=20_000_000)


def assert_recovered(alloc):
    """Post-fault recovery: sound heap, settled ledgers, full supply."""
    alloc.ualloc.host_gc()
    alloc.host_check()
    assert alloc.tbuddy.host_free_bytes() == alloc.cfg.pool_size
    gauge = alloc.host_pressure()
    assert gauge.free_bytes == alloc.cfg.pool_size
    assert gauge.pressure == 0.0


class TestFailureArms:
    def test_split_arm_reneges(self):
        """tbuddy.split firing after the order-sem promise must renege:
        every allocation that needs the split ascent fails, and the
        ledgers still settle to E == R == 0 with nothing lost."""
        mem, device, alloc = make_alloc()
        inj = make_injector("site=tbuddy.split", seed=3)
        got = []

        def kernel(ctx):
            p = yield from alloc.tbuddy.alloc(ctx, 0)  # forces a split chain
            got.append(p)

        run_kernel(mem, device, kernel, inj)
        assert got and all(p == NULL for p in got)
        assert inj.counts_by_kind.get("renege", 0) >= 1
        assert_recovered(alloc)

    def test_new_chunk_arm_reneges(self):
        """ualloc.new_chunk firing after the bin-sem batch promise must
        renege(n_regular_bins - 1): small mallocs fail cleanly."""
        mem, device, alloc = make_alloc()
        inj = make_injector("site=ualloc.new_chunk", seed=3)
        got = []

        def kernel(ctx):
            p = yield from alloc.malloc(ctx, 64)
            got.append(p)

        run_kernel(mem, device, kernel, inj)
        assert got and all(p == NULL for p in got)
        assert inj.counts_by_site.get("ualloc.new_chunk", 0) >= 1
        assert alloc.stats.n_exhaustion == len(got)
        assert_recovered(alloc)

    def test_null_alloc_at_controlled_depth(self):
        """tbuddy.alloc with detail= targets one order: chunk-order
        requests (UAlloc's supply line) fail while a direct coarse
        allocation at another order still succeeds."""
        mem, device, alloc = make_alloc(pool_order=8)
        chunk_order = alloc.cfg.chunk_order
        inj = make_injector(f"site=tbuddy.alloc,detail={chunk_order}", seed=3)
        got = {}

        # Warm the pool host-side (no probes fire host-side): the split
        # chain seeds one free buddy at every order below the top, so
        # the faulted run's order-0 request need not ascend through the
        # faulted chunk order.
        warm = drive(mem, alloc.malloc(host_ctx(), 4096))
        assert warm != NULL

        def kernel(ctx):
            # routed through UAlloc -> needs a chunk at chunk_order -> NULL
            got["small"] = yield from alloc.malloc(ctx, 64)
            # direct TBuddy allocation at another order -> unaffected
            got["coarse"] = yield from alloc.malloc(ctx, 4096)
            if got["coarse"] != NULL:
                yield from alloc.free(ctx, got["coarse"])

        run_kernel(mem, device, kernel, inj, nthreads=1)
        assert got["small"] == NULL
        assert got["coarse"] != NULL
        assert inj.n_injected >= 1
        assert all(ev.detail == chunk_order for ev in inj.events)
        drive(mem, alloc.free(host_ctx(), warm))
        assert_recovered(alloc)

    def test_malloc_robust_rides_out_transient_faults(self):
        """A bounded fault burst (max=) is exactly the transient the
        robust wrapper exists for: the retry succeeds, and the stats
        classify the recovered attempts as transient."""
        mem, device, alloc = make_alloc()
        # TBuddy's own triage retries 3 times (4 attempts per malloc),
        # so a 4-fault budget fails exactly the first malloc attempt and
        # lets the robust wrapper's first retry through.
        inj = make_injector("site=tbuddy.alloc,max=4", seed=3)
        got = []

        def kernel(ctx):
            p = yield from alloc.malloc_robust(ctx, 4096)
            got.append(p)
            if p != NULL:
                yield from alloc.free(ctx, p)

        run_kernel(mem, device, kernel, inj, nthreads=1)
        assert got == [p for p in got if p != NULL]  # no NULLs surfaced
        assert inj.n_injected == 4
        assert alloc.stats.n_robust_retries == 1
        assert alloc.stats.n_transient == 1
        assert alloc.stats.n_exhaustion == 1  # the failed first attempt
        assert_recovered(alloc)

    def test_lock_stalls_delay_but_preserve_correctness(self):
        """Stall kinds only cost time: a storm with lock holders stalled
        mid-transition still produces a sound, fully-recovered heap."""
        mem, device, alloc = make_alloc()
        inj = make_injector(
            "site=tbuddy.lock,p=0.2,cycles=4000;"
            "site=spinlock.hold,p=0.2,cycles=4000", seed=5)
        got = []

        def kernel(ctx):
            for size in (64, 4096):
                p = yield from alloc.malloc(ctx, size)
                if p != NULL:
                    yield from alloc.free(ctx, p)
                got.append(p)

        run_kernel(mem, device, kernel, inj, nthreads=8)
        assert len(got) == 16
        assert inj.counts_by_kind.get("stall", 0) >= 1
        assert_recovered(alloc)
