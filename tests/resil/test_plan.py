"""Fault-plan model: rule/plan spec round-trips, validation, events."""

import pytest

from repro.resil import (
    ALL_KINDS,
    SITES,
    STALL_KINDS,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    FaultRule,
)


class TestFaultRule:
    @pytest.mark.parametrize("rule", [
        FaultRule("tbuddy.alloc"),
        FaultRule("tbuddy.split", p=0.5, max=8),
        FaultRule("ualloc.new_chunk", every=3, after=2),
        FaultRule("spinlock.hold", p=0.05, cycles=12345),
        FaultRule("tbuddy.lock", detail=4, max=2),
        FaultRule("rcu.grace", p=0.25, every=0, max=7, after=1, cycles=9999),
    ])
    def test_spec_roundtrip(self, rule):
        assert FaultRule.parse(rule.spec) == rule

    def test_spec_omits_defaults(self):
        assert FaultRule("tbuddy.alloc").spec == "site=tbuddy.alloc"
        assert FaultRule("tbuddy.alloc", p=0.5).spec == "site=tbuddy.alloc,p=0.5"

    def test_parse_tolerates_whitespace(self):
        rule = FaultRule.parse(" site=tbuddy.split , p=0.5 ,, max=3 ")
        assert rule == FaultRule("tbuddy.split", p=0.5, max=3)

    def test_kind_derives_from_site(self):
        assert FaultRule("tbuddy.alloc").kind == "null-alloc"
        assert FaultRule("tbuddy.split").kind == "renege"
        assert FaultRule("spinlock.hold").kind == "stall"
        assert FaultRule("rcu.grace").kind == "rcu-delay"

    @pytest.mark.parametrize("bad", [
        "site=nonexistent.site",
        "site=tbuddy.alloc,p=0",
        "site=tbuddy.alloc,p=1.5",
        "site=tbuddy.alloc,every=-1",
        "site=tbuddy.alloc,max=-2",
        "site=tbuddy.alloc,after=-1",
        "site=tbuddy.alloc,cycles=0",
        "p=0.5",                    # missing site=
        "site=tbuddy.alloc,bogus=1",
        "site=tbuddy.alloc,noequals",
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(FaultPlanError):
            FaultRule.parse(bad)

    def test_fault_plan_error_is_value_error(self):
        # CLI layers catch ValueError; the subtype must stay compatible.
        assert issubclass(FaultPlanError, ValueError)


class TestFaultPlan:
    def test_multi_rule_roundtrip(self):
        plan = FaultPlan.parse(
            "site=tbuddy.split,p=0.3,max=6;site=tbuddy.lock,p=0.02,cycles=1500"
        )
        assert len(plan) == 2
        assert FaultPlan.parse(plan.spec) == plan

    def test_empty_plan(self):
        plan = FaultPlan.parse("")
        assert plan == FaultPlan()
        assert not plan and len(plan) == 0
        assert plan.spec == ""
        assert str(plan) == "<no faults>"

    def test_kinds_sorted_distinct(self):
        plan = FaultPlan.parse(
            "site=spinlock.hold;site=tbuddy.lock;site=tbuddy.split"
        )
        assert plan.kinds == ("renege", "stall")

    def test_replay_spec_has_no_colon(self):
        # ResilSpec's "scenario:seed:plan" triple relies on plan specs
        # never containing ":".
        for rule in [FaultRule(site, p=0.5, max=3, cycles=777)
                     for site in SITES]:
            assert ":" not in rule.spec


class TestSitesRegistry:
    def test_every_site_has_a_known_kind(self):
        for site, (kind, desc) in SITES.items():
            assert kind in ALL_KINDS
            assert desc

    def test_all_kinds_covers_stalls_and_failures(self):
        assert STALL_KINDS < set(ALL_KINDS)
        assert set(ALL_KINDS) - STALL_KINDS  # fail kinds exist too


class TestFaultEvent:
    def test_line_format(self):
        ev = FaultEvent(index=3, t=1200, tid=17, site="tbuddy.split",
                        detail=2, kind="renege", arg=0)
        assert ev.line == "#3 t=1200 tid=17 tbuddy.split[2] -> renege(0)"
