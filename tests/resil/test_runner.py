"""Resil runner: specs, decks, recovery assertions, replay, bench."""

import pytest

from repro.resil import ALL_KINDS, FaultPlan
from repro.resil.runner import (
    FULL_DECK,
    QUICK_DECK,
    ResilSpec,
    deck_for,
    kinds_injected,
    run_case,
    run_deck,
)


class TestResilSpec:
    def test_replay_roundtrip(self):
        spec = ResilSpec("storm", 7, FaultPlan.parse("site=tbuddy.split,p=0.5"))
        assert spec.replay == "storm:7:site=tbuddy.split,p=0.5"
        assert ResilSpec.parse(spec.replay) == spec

    def test_parse_without_plan(self):
        spec = ResilSpec.parse("churn:3")
        assert spec == ResilSpec("churn", 3)
        assert not spec.plan

    def test_parse_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            ResilSpec.parse("just-a-scenario")
        with pytest.raises(ValueError):
            ResilSpec.parse("storm:notanint:site=tbuddy.split")

    @pytest.mark.parametrize("raw", ["@:1", "storm@:1", "@cuda:1"])
    def test_parse_rejects_empty_fragments(self, raw):
        with pytest.raises(ValueError, match="empty"):
            ResilSpec.parse(raw)

    def test_parse_round_trips_engine_qualifier(self):
        spec = ResilSpec.parse("storm/batch:7:site=tbuddy.split,p=0.5")
        assert spec.engine == "batch"
        assert spec.replay.startswith("storm/batch:7:")
        assert ResilSpec.parse(spec.replay) == spec
        # the default engine is elided from the canonical form
        assert ResilSpec.parse("storm/event:7").replay == "storm:7:"

    def test_parse_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            ResilSpec.parse("storm/vector:7")

    def test_deck_for_pins_an_engine(self):
        deck = deck_for("quick", engine="batch")
        assert deck and all(s.engine == "batch" for s in deck)
        # spec identity otherwise untouched
        base = deck_for("quick")
        assert [(s.scenario, s.seed, s.plan) for s in deck] == \
            [(s.scenario, s.seed, s.plan) for s in base]

    def test_deck_covers_workload_scenarios(self):
        # the multi-tenant workload runs under faults in the smoke deck,
        # and the recorded-trace replay in the nightly deck
        assert any(s.scenario == "multi_tenant" for s in QUICK_DECK)
        assert any(s.scenario == "trace_replay" for s in FULL_DECK)


class TestDecks:
    def test_deck_for_tiers(self):
        assert deck_for("quick") == QUICK_DECK
        assert deck_for("full") == FULL_DECK
        with pytest.raises(ValueError):
            deck_for("nightly")

    def test_full_deck_extends_quick(self):
        assert FULL_DECK[:len(QUICK_DECK)] == QUICK_DECK
        assert len(FULL_DECK) > len(QUICK_DECK)

    def test_quick_deck_plans_cover_all_kinds(self):
        # The acceptance bar: the CI smoke deck must be able to inject
        # every distinct fault kind the plan model defines.
        kinds = {k for spec in QUICK_DECK for k in spec.plan.kinds}
        assert kinds == set(ALL_KINDS)

    def test_deck_specs_are_unique(self):
        replays = [spec.replay for spec in FULL_DECK]
        assert len(replays) == len(set(replays))


class TestRunCase:
    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError):
            run_case(ResilSpec("nonexistent", 1), replay_check=False)

    def test_injected_case_recovers_and_replays(self):
        spec = ResilSpec.parse("storm:1:site=tbuddy.split,p=0.5,max=4")
        res = run_case(spec, replay_check=True)
        assert res.ok, res.describe()
        assert res.n_injected >= 1
        assert res.replay_ok is True
        assert res.trace  # the fault trace is recorded
        assert "renege" in res.counts_by_kind
        assert res.describe().startswith("PASS")

    def test_unreached_plan_fails_the_case(self):
        # A plan that never fires verifies nothing: min_injected trips.
        spec = ResilSpec("storm", 1,
                         FaultPlan.parse("site=tbuddy.split,after=1000000"))
        res = run_case(spec, replay_check=False)
        assert not res.ok
        assert "faults injected" in res.error
        assert res.describe().startswith("FAIL")

    def test_run_deck_logs_and_collects(self):
        deck = [ResilSpec.parse("storm:1:site=tbuddy.split,p=0.5,max=4"),
                ResilSpec.parse("churn:1:site=ualloc.new_chunk,p=1,max=2")]
        lines = []
        results = run_deck(deck, replay_check=False, log=lines.append)
        assert len(results) == len(lines) == 2
        assert all(r.ok for r in results)
        agg = kinds_injected(results)
        assert agg.get("renege", 0) >= 2  # both cases inject reneges


class TestBench:
    def test_degradation_sweep_smoke(self):
        from repro.resil import bench

        res = bench.run(nthreads=32, iters=1, seed=17)
        levels = [p.level for p in res.points]
        assert levels == ["clean", "light", "heavy"]
        clean = res.point("clean")
        assert clean.faults == 0 and clean.plan == ""
        assert res.point("heavy").faults > 0
        assert res.retained("clean") == 1.0
        assert res.retained("heavy") > 0.0  # degraded, not dead
        assert res.table()  # renders

    def test_bench_case_registered_in_perf_suite(self):
        from repro.perf.suite import CASES

        assert "resil" in CASES
        assert CASES["resil"].runner("quick") is CASES["resil"].quick
