"""The cross-engine parity deck: deck shape, item checks, the report.

Full-deck runs live in CI (``python -m repro perf parity``); here we pin
the machinery on the cheapest real items so a parity regression fails in
the unit tier too.
"""

from __future__ import annotations

import json

import pytest

from repro.perf import parity
from repro.perf.parity import (
    ParityReport,
    check_item,
    default_deck,
    run_parity,
)
from repro.perf.suite import CASES
from repro.verify.runner import SCENARIOS


class TestDeck:
    def test_default_deck_covers_everything(self):
        deck = default_deck()
        bench = {s for s in deck if s.startswith("bench:")}
        verify = {s for s in deck if s.startswith("verify:")}
        assert bench == {f"bench:{n}" for n in CASES}
        assert verify == {f"verify:{s}/{seed}" for s in SCENARIOS
                          for seed in parity.VERIFY_SEEDS}
        assert len(deck) == len(bench) + len(verify)

    def test_deck_is_sorted_and_stable(self):
        assert default_deck() == default_deck()


class TestCheckItem:
    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="parity spec"):
            check_item("mystery:thing")

    def test_bad_bench_case_rejected(self):
        with pytest.raises(KeyError):
            check_item("bench:no_such_case")

    def test_verify_item_agrees(self):
        item = check_item("verify:storm/1")
        assert item.ok, item.detail
        assert item.event_seconds > 0 and item.batch_seconds > 0

    def test_report_over_two_items(self):
        report = run_parity(["verify:storm/1", "verify:churn/3"])
        assert isinstance(report, ParityReport)
        assert report.ok
        assert len(report.items) == 2
        assert report.speedup > 0
        table = report.table()
        assert "verify:storm/1" in table and "verify:churn/3" in table

    def test_report_doc_is_json_round_trippable(self):
        report = run_parity(["verify:storm/1"])
        doc = json.loads(json.dumps(report.to_doc(), sort_keys=True))
        assert doc["schema"] == parity.SCHEMA
        assert doc["ok"] is True
        wall = doc["engine_wall"]
        assert set(wall) == {"event_seconds", "batch_seconds", "speedup"}
        assert doc["items"][0]["spec"] == "verify:storm/1"
