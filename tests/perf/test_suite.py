"""Registry sanity and the tiered runner contract.

Full-suite runs live in CI (`perf-smoke`), not here; these tests
exercise the machinery through the *fastest* registered cases so tier-1
stays quick.
"""

import pytest

from repro.perf.suite import (
    CASES,
    DEFAULT_REPEATS,
    BenchCase,
    run_case,
    run_suite,
)


class TestRegistry:
    def test_expected_cases_registered(self):
        assert {"fig5", "fig6", "fig7", "shootout", "fragmentation",
                "ablation_buddy", "ablation_collective"} <= set(CASES)

    def test_cases_have_both_tiers_and_metadata(self):
        for name, case in CASES.items():
            assert case.name == name
            assert case.description
            assert callable(case.runner("quick"))
            assert callable(case.runner("full"))

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="tier"):
            CASES["fig5"].runner("medium")

    def test_traced_runners_cover_the_figures(self):
        for name in ("fig5", "fig6", "fig7"):
            assert CASES[name].traced_quick is not None


class TestRunCase:
    def test_metrics_shape_and_wall_clock(self):
        run = run_case(CASES["ablation_collective"], "quick", repeats=2)
        assert run.case == "ablation_collective"
        assert run.repeats == 2 and len(run.wall_seconds) == 2
        assert all(w > 0 for w in run.wall_seconds)
        assert run.metrics["wall:seconds"] > 0
        virtual = {k: v for k, v in run.metrics.items()
                   if k.startswith("virtual:")}
        assert virtual, "no virtual metrics recorded"
        assert all(isinstance(v, float) for v in run.metrics.values())

    def test_virtual_metrics_deterministic_across_runs(self):
        a = run_case(CASES["ablation_collective"], "quick", repeats=1)
        b = run_case(CASES["ablation_collective"], "quick", repeats=1)
        va = {k: v for k, v in a.metrics.items() if k.startswith("virtual:")}
        vb = {k: v for k, v in b.metrics.items() if k.startswith("virtual:")}
        assert va == vb

    def test_nondeterministic_case_detected(self):
        ticks = iter(range(100))

        def runner():
            return {"x": float(next(ticks))}, {}

        case = BenchCase(name="drift", seed=0, description="drifts",
                         quick=runner, full=runner)
        with pytest.raises(RuntimeError, match="nondeterministic"):
            run_case(case, "quick", repeats=2)

    def test_repeats_validated(self):
        with pytest.raises(ValueError, match="repeats"):
            run_case(CASES["ablation_collective"], "quick", repeats=0)

    def test_default_repeats_per_tier(self):
        assert DEFAULT_REPEATS["quick"] >= 2  # medians need repeats
        assert DEFAULT_REPEATS["full"] >= 1


class TestRunSuite:
    def test_subset_run_and_progress(self):
        lines = []
        res = run_suite("quick", names=["ablation_collective"],
                        repeats=1, progress=lines.append)
        assert [c.case for c in res.cases] == ["ablation_collective"]
        assert res.case("ablation_collective").metrics
        assert any("ablation_collective" in ln for ln in lines)

    def test_unknown_case_rejected(self):
        with pytest.raises(KeyError, match="nope"):
            run_suite("quick", names=["nope"])
