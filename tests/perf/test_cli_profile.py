"""End-to-end CLI flows (run -> compare gate) and the profiler."""

import json

import pytest

from repro.perf import artifact
from repro.perf.cli import main as perf_main
from repro.perf.profile import profile_case, trace_report
from repro.perf.suite import CASES

#: the cheapest registered case — keeps tier-1 fast
FAST = "ablation_collective"


class TestCliRunCompare:
    def test_run_writes_valid_artifact_and_twins(self, tmp_path, capsys):
        rc = perf_main([
            "run", "--quick", "--case", FAST, "--repeats", "1",
            "--root", str(tmp_path), "--results-dir", str(tmp_path / "results"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "artifact:" in out and FAST in out
        # default label on an empty trajectory is PR3
        doc = artifact.load_artifact(tmp_path / "BENCH_PR3.json")
        assert doc["label"] == "PR3" and doc["tier"] == "quick"
        twin = json.loads((tmp_path / "results" / f"{FAST}.json").read_text())
        assert twin["case"] == FAST

    def test_compare_gate_passes_then_fails_on_regression(self, tmp_path, capsys):
        rc = perf_main([
            "run", "--quick", "--case", FAST, "--repeats", "1",
            "--root", str(tmp_path), "--no-results",
        ])
        assert rc == 0
        # self-compare of a one-artifact trajectory: zero deltas, pass
        assert perf_main(["compare", "--root", str(tmp_path)]) == 0
        assert "PERF GATE: ok" in capsys.readouterr().out

        # synthetically regress every virtual throughput/speedup metric
        base_path = tmp_path / "BENCH_PR3.json"
        doc = artifact.load_artifact(base_path)
        bad = json.loads(json.dumps(doc))
        bad["label"] = "PR4"
        for case in bad["cases"].values():
            for k in case["metrics"]:
                if k.startswith("virtual:"):
                    case["metrics"][k] *= 0.5
        bad_path = tmp_path / "BENCH_PR4.json"
        artifact.write_artifact(bad_path, bad)
        rc = perf_main(["compare", "--root", str(tmp_path)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "PERF GATE: FAIL" in captured.err
        assert "regression" in captured.out

    def test_compare_no_gate_wall_ignores_wall_blowup(self, tmp_path, capsys):
        rc = perf_main([
            "run", "--quick", "--case", FAST, "--repeats", "1",
            "--root", str(tmp_path), "--no-results",
        ])
        assert rc == 0
        doc = artifact.load_artifact(tmp_path / "BENCH_PR3.json")
        slow = json.loads(json.dumps(doc))
        slow["label"] = "PR4"
        for case in slow["cases"].values():
            case["metrics"]["wall:seconds"] *= 100.0
        artifact.write_artifact(tmp_path / "BENCH_PR4.json", slow)
        assert perf_main(["compare", "--root", str(tmp_path)]) == 1
        capsys.readouterr()
        assert perf_main(["compare", "--root", str(tmp_path),
                          "--no-gate-wall"]) == 0
        assert "PERF GATE: ok" in capsys.readouterr().out

    def test_compare_without_artifacts_errors_cleanly(self, tmp_path, capsys):
        assert perf_main(["compare", "--root", str(tmp_path)]) == 2
        assert "no BENCH_" in capsys.readouterr().err

    def test_profile_unknown_case_errors_cleanly(self, capsys):
        assert perf_main(["profile", "--case", "nope"]) == 2
        assert "unknown case" in capsys.readouterr().err


class TestProfiler:
    def test_hotspots_for_fast_case(self):
        report = profile_case(CASES[FAST], tier="quick", top=10)
        assert report.case == FAST
        assert 1 <= len(report.hotspots) <= 10
        # own-time descending, and the table renders
        tots = [h.tottime for h in report.hotspots]
        assert tots == sorted(tots, reverse=True)
        table = report.table()
        assert "tottime" in table and report.hotspots[0].where in table

    def test_trace_report_only_for_traceable_cases(self):
        assert trace_report(CASES[FAST]) is None
        summary = trace_report(CASES["fig5"])
        assert summary is not None and "trace summary" in summary

    @pytest.mark.parametrize("name", ["fig5"])
    def test_profile_cli_lists_hotspots(self, name, capsys):
        assert perf_main(["profile", "--case", name, "--top", "5",
                          "--no-trace"]) == 0
        out = capsys.readouterr().out
        assert "host hotspots" in out and "tottime" in out
