"""The regression gate: directions, tolerance classes, statuses."""

import math

import pytest

from repro.perf import compare
from repro.perf.artifact import SCHEMA


def _doc(metrics, tier="quick", case="fake"):
    return {
        "schema": SCHEMA,
        "label": "T",
        "tier": tier,
        "cost_model": {},
        "cases": {case: {"seed": 1, "repeats": 1, "metrics": dict(metrics)}},
    }


def _one(deltas, metric):
    (d,) = [d for d in deltas if d.metric == metric]
    return d


class TestDirections:
    def test_throughput_drop_is_regression(self):
        base = _doc({"virtual:ops_per_s": 100.0})
        cur = _doc({"virtual:ops_per_s": 80.0})
        d = _one(compare.compare_docs(cur, base), "virtual:ops_per_s")
        assert d.status == "regression"
        assert d.worsening == pytest.approx(0.2)

    def test_throughput_gain_is_improvement(self):
        base = _doc({"virtual:ops_per_s": 100.0})
        cur = _doc({"virtual:ops_per_s": 150.0})
        d = _one(compare.compare_docs(cur, base), "virtual:ops_per_s")
        assert d.status == "improved"
        assert d.worsening == pytest.approx(-0.5)

    def test_lower_better_metrics_invert(self):
        for metric in ("virtual:total_cycles", "virtual:overhead_final",
                       "virtual:failure_rate_mean", "wall:seconds"):
            base = _doc({metric: 100.0})
            worse = _doc({metric: 200.0})
            d = _one(compare.compare_docs(worse, base), metric)
            assert d.worsening == pytest.approx(1.0), metric
            assert d.status == "regression", metric

    def test_within_tolerance_is_ok(self):
        base = _doc({"virtual:ops_per_s": 100.0})
        cur = _doc({"virtual:ops_per_s": 95.0})  # 5% < 10% default
        d = _one(compare.compare_docs(cur, base), "virtual:ops_per_s")
        assert d.status == "ok"

    def test_zero_baseline_appearing_failure_is_regression(self):
        base = _doc({"virtual:failure_rate_mean": 0.0})
        cur = _doc({"virtual:failure_rate_mean": 0.25})
        d = _one(compare.compare_docs(cur, base), "virtual:failure_rate_mean")
        assert d.status == "regression"
        assert d.worsening == math.inf


class TestToleranceClasses:
    def test_wall_gets_looser_tolerance(self):
        base = _doc({"virtual:ops_per_s": 100.0, "wall:seconds": 1.0})
        cur = _doc({"virtual:ops_per_s": 100.0, "wall:seconds": 1.3})
        deltas = compare.compare_docs(cur, base)  # wall 30% < 50% default
        assert _one(deltas, "wall:seconds").status == "ok"
        cur2 = _doc({"virtual:ops_per_s": 100.0, "wall:seconds": 2.0})
        deltas2 = compare.compare_docs(cur2, base)
        assert _one(deltas2, "wall:seconds").status == "regression"

    def test_gate_wall_off_reports_but_never_fails(self):
        base = _doc({"wall:seconds": 1.0})
        cur = _doc({"wall:seconds": 10.0})
        deltas = compare.compare_docs(cur, base, gate_wall=False)
        d = _one(deltas, "wall:seconds")
        assert d.status == "ok" and not d.gated
        assert d.worsening == pytest.approx(9.0)  # still reported
        assert not compare.has_regressions(deltas)

    def test_custom_tolerances(self):
        base = _doc({"virtual:ops_per_s": 100.0})
        cur = _doc({"virtual:ops_per_s": 95.0})
        deltas = compare.compare_docs(cur, base, virtual_tol=0.01)
        assert _one(deltas, "virtual:ops_per_s").status == "regression"


class TestStructure:
    def test_tier_mismatch_raises(self):
        with pytest.raises(compare.CompareError, match="tier"):
            compare.compare_docs(_doc({}, tier="quick"), _doc({}, tier="full"))

    def test_new_and_gone_metrics_flagged_not_gated(self):
        base = _doc({"virtual:old": 1.0})
        cur = _doc({"virtual:new": 1.0})
        deltas = compare.compare_docs(cur, base)
        assert _one(deltas, "virtual:new").status == "new"
        assert _one(deltas, "virtual:old").status == "gone"
        assert not compare.has_regressions(deltas)

    def test_new_case_appears_as_new_metrics(self):
        base = _doc({"virtual:x": 1.0}, case="a")
        cur = _doc({"virtual:x": 1.0}, case="b")
        statuses = {(d.case, d.status)
                    for d in compare.compare_docs(cur, base)}
        assert statuses == {("a", "gone"), ("b", "new")}

    def test_render_and_summary(self):
        base = _doc({"virtual:ops_per_s": 100.0, "wall:seconds": 1.0})
        cur = _doc({"virtual:ops_per_s": 50.0, "wall:seconds": 1.0})
        deltas = compare.compare_docs(cur, base)
        table = compare.render_deltas(deltas)
        assert "virtual:ops_per_s" in table and "regression" in table
        brief = compare.render_deltas(deltas, only_interesting=True)
        assert "wall:seconds" not in brief
        assert "1 regression" in compare.summarize(deltas)

    def test_identical_docs_all_ok(self):
        doc = _doc({"virtual:a": 3.5, "wall:seconds": 0.2})
        deltas = compare.compare_docs(doc, doc)
        assert all(d.status == "ok" and d.worsening == 0.0 for d in deltas)


def _multi_doc(case_metrics, tier="quick"):
    return {
        "schema": SCHEMA,
        "label": "T",
        "tier": tier,
        "cost_model": {},
        "cases": {case: {"seed": 1, "repeats": 1, "metrics": dict(m)}
                  for case, m in case_metrics.items()},
    }


class TestWallFloor:
    """A ~0 wall baseline must never explode the gate (inf / div-zero)."""

    def test_zero_wall_baseline_stays_finite(self):
        base = _doc({"wall:seconds": 0.0})
        cur = _doc({"wall:seconds": 0.004})
        d = _one(compare.compare_docs(cur, base), "wall:seconds")
        assert math.isfinite(d.worsening)
        assert d.worsening == pytest.approx(
            0.004 / compare.WALL_FLOOR_SECONDS)

    def test_subresolution_wall_baseline_uses_floor(self):
        base = _doc({"wall:seconds": 1e-9})
        cur = _doc({"wall:seconds": 2e-9})
        d = _one(compare.compare_docs(cur, base), "wall:seconds")
        # raw ratio would be +100%; the floored denominator reads the
        # nanosecond jitter as the noise it is
        assert d.worsening == pytest.approx(1e-9 / compare.WALL_FLOOR_SECONDS)
        assert d.status == "ok"

    def test_virtual_zero_baseline_still_infinite(self):
        # the floor is a wall-class concession; virtual metrics are
        # deterministic, so appearing-from-zero stays an inf-class event
        base = _doc({"virtual:failure_rate_mean": 0.0})
        cur = _doc({"virtual:failure_rate_mean": 0.1})
        d = _one(compare.compare_docs(cur, base), "virtual:failure_rate_mean")
        assert d.worsening == math.inf

    def test_zero_to_zero_wall_is_flat(self):
        base = _doc({"wall:seconds": 0.0})
        d = _one(compare.compare_docs(base, base), "wall:seconds")
        assert d.worsening == 0.0 and d.status == "ok"


class TestDeckRow:
    """The synthetic (deck) row: summed wall across a multi-case deck."""

    def test_deck_row_sums_walls(self):
        base = _multi_doc({"a": {"wall:seconds": 1.0},
                           "b": {"wall:seconds": 3.0}})
        cur = _multi_doc({"a": {"wall:seconds": 0.4},
                          "b": {"wall:seconds": 1.2}})
        (deck,) = [d for d in compare.compare_docs(cur, base)
                   if d.case == compare.DECK_CASE]
        assert deck.baseline == pytest.approx(4.0)
        assert deck.current == pytest.approx(1.6)
        assert deck.worsening == pytest.approx(-0.6)
        assert deck.status == "improved"
        assert not deck.gated

    def test_deck_row_never_gates(self):
        base = _multi_doc({"a": {"wall:seconds": 1.0},
                           "b": {"wall:seconds": 1.0}})
        cur = _multi_doc({"a": {"wall:seconds": 1.2},
                          "b": {"wall:seconds": 1.2}})
        deltas = compare.compare_docs(cur, base)
        (deck,) = [d for d in deltas if d.case == compare.DECK_CASE]
        assert deck.status == "ok"
        assert not compare.has_regressions(deltas)

    def test_no_deck_row_for_single_case(self):
        doc = _doc({"wall:seconds": 1.0})
        assert not [d for d in compare.compare_docs(doc, doc)
                    if d.case == compare.DECK_CASE]

    def test_no_deck_row_for_mismatched_case_sets(self):
        base = _multi_doc({"a": {"wall:seconds": 1.0},
                           "b": {"wall:seconds": 1.0}})
        cur = _multi_doc({"a": {"wall:seconds": 1.0},
                          "c": {"wall:seconds": 1.0}})
        assert not [d for d in compare.compare_docs(cur, base)
                    if d.case == compare.DECK_CASE]


class TestInfinityRows:
    """Appearing-from-zero virtual metrics produce ±inf worsenings; the
    verdict, both renderers and the summary line must all digest them."""

    def _inf_deltas(self):
        base = _doc({"virtual:failure_rate_mean": 0.0})
        cur = _doc({"virtual:failure_rate_mean": 0.1})
        return compare.compare_docs(cur, base)

    def _neg_inf_deltas(self):
        # higher-is-better metric appearing from zero with a positive
        # value: infinitely *better*
        base = _doc({"virtual:ops_per_s": 0.0})
        cur = _doc({"virtual:ops_per_s": 50.0})
        return compare.compare_docs(cur, base)

    def test_inf_worsening_gates_as_regression(self):
        deltas = self._inf_deltas()
        d = _one(deltas, "virtual:failure_rate_mean")
        assert d.worsening == math.inf
        assert d.status == "regression"
        assert compare.has_regressions(deltas)

    def test_neg_inf_worsening_reads_as_improved(self):
        deltas = self._neg_inf_deltas()
        d = _one(deltas, "virtual:ops_per_s")
        assert d.worsening == -math.inf
        assert d.status == "improved"
        assert not compare.has_regressions(deltas)

    def test_render_deltas_survives_inf_rows(self):
        for deltas in (self._inf_deltas(), self._neg_inf_deltas()):
            table = compare.render_deltas(deltas)
            assert "inf%" in table          # the worsening column
            assert "infG" not in table      # si() must not scale inf
            table = compare.render_deltas(deltas, only_interesting=True)
            assert "inf%" in table

    def test_fmt_value_renders_infinities_as_themselves(self):
        assert compare._fmt_value(math.inf) == "inf"
        assert compare._fmt_value(-math.inf) == "-inf"
        assert compare._fmt_value(math.nan) == "-"
        assert compare._fmt_value(1500.0) == "1.50K"

    def test_summarize_counts_inf_rows(self):
        assert "1 regression" in compare.summarize(self._inf_deltas())
        assert "1 improved" in compare.summarize(self._neg_inf_deltas())
