"""The registry rewiring must not move the perf trajectory.

PR6 rewired every bench through :mod:`repro.backends`.  The builders
promise byte-identical construction (same ``host_alloc`` order and
alignment, same config derivation), so every case both artifacts share
must agree on every ``virtual:*`` metric *exactly* — not within
tolerance.  Wall-clock metrics are machine-dependent and exempt.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
BASELINE = ROOT / "BENCH_PR5.json"
CURRENT = ROOT / "BENCH_PR6.json"


def _virtual_metrics(path: Path):
    doc = json.loads(path.read_text())
    return {
        name: {k: v for k, v in case["metrics"].items()
               if k.startswith("virtual:")}
        for name, case in doc["cases"].items()
    }


@pytest.mark.skipif(not (BASELINE.exists() and CURRENT.exists()),
                    reason="committed BENCH artifacts not present")
def test_shared_cases_are_byte_identical():
    base = _virtual_metrics(BASELINE)
    cur = _virtual_metrics(CURRENT)
    shared = sorted(set(base) & set(cur))
    assert shared, "artifacts share no cases — wrong trajectory?"
    for name in shared:
        assert cur[name] == base[name], (
            f"case {name!r}: virtual metrics moved across the registry "
            f"rewiring\nbase: {base[name]}\ncur:  {cur[name]}"
        )


@pytest.mark.skipif(not CURRENT.exists(),
                    reason="committed BENCH_PR6.json not present")
def test_pr6_adds_the_hostbased_case():
    cur = _virtual_metrics(CURRENT)
    assert "backends_hostbased" in cur
    m = cur["backends_hostbased"]
    # the single-server host queue must cap it below the paper allocator
    assert (m["virtual:pairs_per_s_host_based"]
            < m["virtual:pairs_per_s_ours_scalar"])
