"""Trajectory parity: adjacent BENCH artifacts must agree exactly.

PR6 rewired every bench through :mod:`repro.backends`; PR7 added the
workload-zoo cases; PR8 added the allocator-service case (and a
cold-path scheduler extension — per-thread finish times — that must not
move a single pre-existing number).  None of these change how the
pre-existing cases execute, so every case two adjacent artifacts share
must agree on every ``virtual:*`` metric *exactly* — not within
tolerance.  Wall-clock metrics are machine-dependent and exempt.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
PR5 = ROOT / "BENCH_PR5.json"
PR6 = ROOT / "BENCH_PR6.json"
PR7 = ROOT / "BENCH_PR7.json"
PR8 = ROOT / "BENCH_PR8.json"
PR10 = ROOT / "BENCH_PR10.json"

#: adjacent (baseline, current) artifact pairs along the trajectory
PAIRS = [(PR5, PR6), (PR6, PR7), (PR7, PR8), (PR8, PR10)]


def _virtual_metrics(path: Path):
    doc = json.loads(path.read_text())
    return {
        name: {k: v for k, v in case["metrics"].items()
               if k.startswith("virtual:")}
        for name, case in doc["cases"].items()
    }


@pytest.mark.parametrize(
    "baseline, current", PAIRS,
    ids=[f"{b.stem}-vs-{c.stem}" for b, c in PAIRS])
def test_shared_cases_are_byte_identical(baseline, current):
    if not (baseline.exists() and current.exists()):
        pytest.skip("committed BENCH artifacts not present")
    base = _virtual_metrics(baseline)
    cur = _virtual_metrics(current)
    shared = sorted(set(base) & set(cur))
    assert shared, "artifacts share no cases — wrong trajectory?"
    for name in shared:
        assert cur[name] == base[name], (
            f"case {name!r}: virtual metrics moved between "
            f"{baseline.name} and {current.name}\n"
            f"base: {base[name]}\ncur:  {cur[name]}"
        )


@pytest.mark.skipif(not PR6.exists(),
                    reason="committed BENCH_PR6.json not present")
def test_pr6_adds_the_hostbased_case():
    cur = _virtual_metrics(PR6)
    assert "backends_hostbased" in cur
    m = cur["backends_hostbased"]
    # the single-server host queue must cap it below the paper allocator
    assert (m["virtual:pairs_per_s_host_based"]
            < m["virtual:pairs_per_s_ours_scalar"])


@pytest.mark.skipif(not PR7.exists(),
                    reason="committed BENCH_PR7.json not present")
def test_pr7_adds_the_workload_cases():
    cur = _virtual_metrics(PR7)
    for case in ("workload_multitenant", "workload_diurnal",
                 "workload_trace_replay"):
        assert case in cur, f"PR7 artifact is missing {case!r}"
    replayed = cur["workload_trace_replay"]
    # the recorded trace runs on both designs, and the paper allocator
    # must outrun the global-lock baseline on it
    assert (replayed["virtual:ops_per_s_ours"]
            > replayed["virtual:ops_per_s_cuda"])
    mt = cur["workload_multitenant"]
    # Zipfian rate skew shows up as measurably uneven service
    assert mt["virtual:fairness_ours"] < 0.999


@pytest.mark.skipif(not PR8.exists(),
                    reason="committed BENCH_PR8.json not present")
def test_pr8_adds_the_serve_case():
    cur = _virtual_metrics(PR8)
    assert "serve_replay" in cur, "PR8 artifact is missing 'serve_replay'"
    m = cur["serve_replay"]
    # both backends served the trace and reported latency percentiles
    for slug in ("ours", "cuda"):
        assert m[f"virtual:latency_cycles_p99_{slug}"] >= \
            m[f"virtual:latency_cycles_p50_{slug}"] > 0
    # the 16 KiB quota + pressure gate deterministically rejects some of
    # the paper backend's mallocs on the bundled trace
    assert m["virtual:admission_failure_rate_ours"] > 0


@pytest.mark.skipif(not PR10.exists(),
                    reason="committed BENCH_PR10.json not present")
def test_pr10_adds_lockstep_and_honest_engine_walls():
    cur = _virtual_metrics(PR10)
    assert "lockstep" in cur, "PR10 artifact is missing 'lockstep'"
    doc = json.loads(PR10.read_text())
    # every case records which run loop produced it (the event engine:
    # batch is parity-locked, but the trajectory baseline stays on the
    # reference loop)
    assert all(c.get("engine") == "event" for c in doc["cases"].values())
    wall = doc["engine_wall"]
    assert wall["event_seconds"] > wall["batch_seconds"] > 0
    # honest best-of-N interleaved measurement, not a cherry-pick: the
    # recorded speedup must reproduce from the recorded walls
    assert wall["speedup"] == pytest.approx(
        wall["event_seconds"] / wall["batch_seconds"], rel=1e-3)
    assert wall["speedup"] > 1.0
