"""Artifact schema: round-trip, determinism, validation, trajectory order."""

import json

import pytest

from repro.perf import artifact
from repro.perf.compare import compare_docs, has_regressions
from repro.perf.suite import CaseRun, SuiteResult


def _tiny_suite() -> SuiteResult:
    return SuiteResult(tier="quick", cases=[
        CaseRun(case="fake", tier="quick", seed=42, repeats=2,
                wall_seconds=[0.5, 0.4],
                metrics={"virtual:ops_per_s": 123.0, "wall:seconds": 0.45},
                params={"n": 7}),
    ])


class TestRoundTrip:
    def test_write_load_compare_zero_delta(self, tmp_path):
        doc = artifact.suite_to_doc(_tiny_suite(), "PR3")
        path = artifact.write_artifact(tmp_path / "BENCH_PR3.json", doc)
        loaded = artifact.load_artifact(path)
        deltas = compare_docs(loaded, doc)
        assert deltas, "round trip produced no comparable metrics"
        assert all(d.worsening == 0.0 and d.status == "ok" for d in deltas)
        assert not has_regressions(deltas)

    def test_serialization_is_deterministic(self, tmp_path):
        doc = artifact.suite_to_doc(_tiny_suite(), "PR3")
        a = artifact.dumps(doc)
        b = artifact.dumps(json.loads(a))
        assert a == b
        # canonical form: sorted keys, trailing newline, no timestamps
        assert a.endswith("\n")
        keys = list(json.loads(a))
        assert keys == sorted(keys)

    def test_doc_records_seed_and_config(self):
        doc = artifact.suite_to_doc(_tiny_suite(), "PR3")
        assert doc["schema"] == artifact.SCHEMA
        assert doc["cases"]["fake"]["seed"] == 42
        assert doc["cases"]["fake"]["params"] == {"n": 7}
        assert "clock_hz" in doc["cost_model"]

    def test_twins_one_file_per_case(self, tmp_path):
        doc = artifact.suite_to_doc(_tiny_suite(), "PR3")
        twins = artifact.write_twins(doc, tmp_path / "results")
        assert [t.name for t in twins] == ["fake.json"]
        twin = json.loads(twins[0].read_text())
        assert twin["schema"] == artifact.SCHEMA
        assert twin["case"] == "fake"
        assert twin["metrics"] == doc["cases"]["fake"]["metrics"]


class TestValidation:
    def _good(self):
        return artifact.suite_to_doc(_tiny_suite(), "PR3")

    def test_rejects_wrong_schema(self):
        doc = self._good()
        doc["schema"] = "repro.perf/999"
        with pytest.raises(artifact.ArtifactError, match="schema"):
            artifact.validate(doc)

    def test_rejects_missing_keys(self):
        doc = self._good()
        del doc["cases"]
        with pytest.raises(artifact.ArtifactError, match="cases"):
            artifact.validate(doc)

    def test_rejects_non_numeric_metric(self):
        doc = self._good()
        doc["cases"]["fake"]["metrics"]["virtual:ops_per_s"] = "fast"
        with pytest.raises(artifact.ArtifactError, match="not a number"):
            artifact.validate(doc)

    def test_rejects_bool_metric(self):
        doc = self._good()
        doc["cases"]["fake"]["metrics"]["virtual:ok"] = True
        with pytest.raises(artifact.ArtifactError, match="not a number"):
            artifact.validate(doc)

    def test_rejects_bad_tier_and_empty_cases(self):
        doc = self._good()
        doc["tier"] = "warp-speed"
        with pytest.raises(artifact.ArtifactError, match="tier"):
            artifact.validate(doc)
        doc = self._good()
        doc["cases"] = {}
        with pytest.raises(artifact.ArtifactError, match="no cases"):
            artifact.validate(doc)

    def test_load_rejects_garbage_file(self, tmp_path):
        p = tmp_path / "BENCH_PRX.json"
        p.write_text("{not json")
        with pytest.raises(artifact.ArtifactError, match="JSON"):
            artifact.load_artifact(p)


class TestTrajectory:
    def test_pr_numeric_ordering(self, tmp_path):
        for name in ("BENCH_PR10.json", "BENCH_PR3.json", "BENCH_PR4.json",
                     "BENCH_adhoc.json"):
            (tmp_path / name).write_text("{}")
        found = [p.name for p in artifact.find_artifacts(tmp_path)]
        assert found == ["BENCH_PR3.json", "BENCH_PR4.json",
                         "BENCH_PR10.json", "BENCH_adhoc.json"]

    def test_label_of(self):
        assert artifact.label_of("BENCH_PR3.json") == "PR3"
        assert artifact.label_of("/x/y/BENCH_CI.json") == "CI"

    def test_next_label(self, tmp_path):
        assert artifact.next_label(tmp_path) == "PR3"
        (tmp_path / "BENCH_PR3.json").write_text("{}")
        assert artifact.next_label(tmp_path) == "PR4"
        (tmp_path / "BENCH_PR11.json").write_text("{}")
        assert artifact.next_label(tmp_path) == "PR12"
