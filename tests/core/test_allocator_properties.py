"""Property-based and determinism tests for the combined allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AllocatorConfig, ThroughputAllocator
from repro.sim import DeviceMemory, GPUDevice, Scheduler, ops
from repro.sim.hostrun import drive, host_ctx

NULL = DeviceMemory.NULL


def make(pool_order=8, num_sms=2):
    device = GPUDevice(num_sms=num_sms)
    mem = DeviceMemory((4096 << pool_order) * 2 + (8 << 20))
    alloc = ThroughputAllocator(mem, device, AllocatorConfig(pool_order=pool_order))
    return mem, device, alloc


@st.composite
def malloc_free_script(draw):
    n = draw(st.integers(1, 30))
    sizes = st.sampled_from([1, 8, 17, 64, 100, 256, 900, 2048, 4096, 9000])
    script = []
    live = 0
    for _ in range(n):
        if live and draw(st.booleans()):
            script.append(("free", draw(st.integers(0, live - 1))))
            live -= 1
        else:
            script.append(("malloc", draw(sizes)))
            live += 1
    return script


class TestSequentialProperties:
    @given(script=malloc_free_script())
    @settings(max_examples=40, deadline=None)
    def test_any_script_preserves_heap_integrity(self, script):
        mem, device, alloc = make()
        live = []  # (addr, requested_size)
        for op, arg in script:
            if op == "malloc":
                a = drive(mem, alloc.malloc(host_ctx(), arg))
                if a != NULL:
                    live.append((a, arg))
            elif live:
                a, _ = live.pop(arg % len(live))
                drive(mem, alloc.free(host_ctx(), a))
        # live blocks pairwise disjoint for their *requested* sizes
        spans = sorted(live)
        for (a1, s1), (a2, _) in zip(spans, spans[1:]):
            assert a1 + s1 <= a2, "overlapping live allocations"
        # free everything -> full reclamation
        for a, _ in live:
            drive(mem, alloc.free(host_ctx(), a))
        alloc.ualloc.host_gc()
        alloc.host_check()
        assert alloc.tbuddy.host_free_bytes() == alloc.cfg.pool_size

    @given(size=st.integers(1, 16384))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_any_size(self, size):
        mem, device, alloc = make()
        a = drive(mem, alloc.malloc(host_ctx(), size))
        assert a != NULL
        # the paper's routing property
        page_aligned = (a - alloc.pool_base) % alloc.cfg.page_size == 0
        assert page_aligned == (size > alloc.cfg.max_ualloc_size)
        drive(mem, alloc.free(host_ctx(), a))
        alloc.ualloc.host_gc()
        assert alloc.tbuddy.host_free_bytes() == alloc.cfg.pool_size


class TestDeterminism:
    def _trace(self, seed):
        mem, device, alloc = make(pool_order=8)
        got = []

        def kernel(ctx):
            p = yield from alloc.malloc(ctx, 8 << (ctx.tid % 5))
            got.append(p)
            if p != NULL and ctx.tid % 2:
                yield from alloc.free(ctx, p)

        s = Scheduler(mem, device, seed=seed)
        s.launch(kernel, 2, 64)
        rep = s.run(max_events=20_000_000)
        return got, rep.cycles

    def test_same_seed_identical_addresses_and_timing(self):
        assert self._trace(11) == self._trace(11)

    def test_different_seeds_differ(self):
        assert self._trace(11) != self._trace(12)


class TestConcurrentStress:
    @pytest.mark.parametrize("seed", range(4))
    def test_multi_seed_churn_no_leak(self, seed):
        mem, device, alloc = make(pool_order=9, num_sms=4)

        def kernel(ctx):
            for i in range(2):
                size = [8, 100, 2048, 4096, 40000][(ctx.tid + i) % 5]
                p = yield from alloc.malloc(ctx, size)
                if p != NULL:
                    yield ops.sleep(ctx.rng.randrange(300))
                    yield from alloc.free(ctx, p)

        s = Scheduler(mem, device, seed=seed)
        s.launch(kernel, 4, 64)
        s.run(max_events=40_000_000)
        alloc.ualloc.host_gc()
        alloc.host_check()
        assert alloc.tbuddy.host_free_bytes() == alloc.cfg.pool_size
