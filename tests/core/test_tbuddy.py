"""TBuddy: sequential semantics, invariants, merging, concurrency,
OOM behaviour, order recovery, property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tbuddy import (
    ALLOC_BIT,
    AVAILABLE,
    BUSY,
    MAX_ORDER,
    DoubleFree,
    InvalidFree,
    TBuddy,
)
from repro.sim import DeviceMemory, Scheduler, ops
from repro.sim.hostrun import drive, host_ctx

NULL = DeviceMemory.NULL
PAGE = 4096


def make(max_order=6, base=0):
    mem = DeviceMemory((PAGE << max_order) + (4 << 20))
    return mem, TBuddy(mem, base, PAGE, max_order)


class TestSequential:
    def test_alloc_returns_page_aligned_in_pool(self):
        mem, b = make()
        a = drive(mem, b.alloc(host_ctx(), 0))
        assert a % PAGE == 0
        assert 0 <= a < b.pool_size

    def test_alloc_alignment_matches_order(self):
        mem, b = make()
        for order in range(4):
            a = drive(mem, b.alloc(host_ctx(), order))
            assert a % (PAGE << order) == 0

    def test_alloc_free_restores_full_pool(self):
        mem, b = make()
        addrs = [drive(mem, b.alloc(host_ctx(), 1)) for _ in range(4)]
        for a in addrs:
            drive(mem, b.free(host_ctx(), a))
        b.check_invariants(strict_siblings=True)
        assert b.host_free_bytes() == b.pool_size

    def test_allocations_disjoint(self):
        mem, b = make(max_order=5)
        spans = []
        while True:
            a = drive(mem, b.alloc(host_ctx(), 0))
            if a == NULL:
                break
            spans.append(a)
        assert len(spans) == 32
        assert len(set(spans)) == 32

    def test_mixed_orders_disjoint(self):
        mem, b = make(max_order=6)
        spans = []
        for order in (2, 0, 1, 3, 0, 2, 1):
            a = drive(mem, b.alloc(host_ctx(), order))
            if a != NULL:
                spans.append((a, PAGE << order))
        spans.sort()
        for (a1, s1), (a2, _) in zip(spans, spans[1:]):
            assert a1 + s1 <= a2
        b.check_invariants(strict_siblings=True)

    def test_exhaustion_returns_null(self):
        mem, b = make(max_order=4)
        a = drive(mem, b.alloc(host_ctx(), 4))  # whole pool
        assert a != NULL
        assert drive(mem, b.alloc(host_ctx(), 0)) == NULL
        drive(mem, b.free(host_ctx(), a))
        assert drive(mem, b.alloc(host_ctx(), 0)) != NULL

    def test_oversized_order_is_null(self):
        mem, b = make(max_order=4)
        assert drive(mem, b.alloc(host_ctx(), 5)) == NULL

    def test_merge_rebuilds_root(self):
        mem, b = make(max_order=4)
        addrs = [drive(mem, b.alloc(host_ctx(), 0)) for _ in range(16)]
        for a in addrs:
            drive(mem, b.free(host_ctx(), a))
        b.check_invariants(strict_siblings=True)
        assert b.host_state(1) == AVAILABLE  # fully coalesced

    def test_alloc_bytes_rounds_to_pages(self):
        mem, b = make()
        a = drive(mem, b.alloc_bytes(host_ctx(), 5000))  # -> 2 pages
        node, order = drive(mem, b.find_order(host_ctx(), a))
        assert order == 1

    def test_free_recovers_order(self):
        mem, b = make()
        a2 = drive(mem, b.alloc(host_ctx(), 2))
        a0 = drive(mem, b.alloc(host_ctx(), 0))
        drive(mem, b.free(host_ctx(), a2))
        drive(mem, b.free(host_ctx(), a0))
        b.check_invariants(strict_siblings=True)
        assert b.host_free_bytes() == b.pool_size

    def test_double_free_detected(self):
        mem, b = make()
        a = drive(mem, b.alloc(host_ctx(), 0))
        drive(mem, b.free(host_ctx(), a))
        with pytest.raises(DoubleFree):
            drive(mem, b.free(host_ctx(), a))

    def test_free_of_non_base_detected(self):
        mem, b = make()
        a = drive(mem, b.alloc(host_ctx(), 2))  # 4 pages
        with pytest.raises((DoubleFree, InvalidFree)):
            drive(mem, b.free(host_ctx(), a + PAGE))

    def test_free_outside_pool_detected(self):
        mem, b = make(max_order=4)
        with pytest.raises(InvalidFree):
            drive(mem, b.free(host_ctx(), b.pool_size + PAGE))

    def test_free_with_wrong_order_hint(self):
        mem, b = make()
        a = drive(mem, b.alloc(host_ctx(), 1))
        with pytest.raises(InvalidFree):
            drive(mem, b.free(host_ctx(), a, order=2))

    def test_nonzero_base(self):
        mem = DeviceMemory((PAGE << 5) * 4)
        b = TBuddy(mem, base=PAGE << 5, page_size=PAGE, max_order=5)
        a = drive(mem, b.alloc(host_ctx(), 0))
        assert (PAGE << 5) <= a < (PAGE << 5) + b.pool_size
        drive(mem, b.free(host_ctx(), a))
        assert b.host_free_bytes() == b.pool_size

    def test_rejects_bad_construction(self):
        mem = DeviceMemory(1 << 20)
        with pytest.raises(ValueError):
            TBuddy(mem, 17, PAGE, 4)  # misaligned base
        with pytest.raises(ValueError):
            TBuddy(mem, 0, PAGE, 0)
        with pytest.raises(ValueError):
            TBuddy(mem, 0, PAGE, 25)


class TestNodeMath:
    def test_node_addr_and_leaf_roundtrip(self):
        mem, b = make(max_order=6)
        for node in (1, 2, 3, 64, 127):
            addr = b.node_addr(node)
            h = b.node_height(node)
            leaf = b.leaf_of(addr)
            assert leaf >> h == node

    def test_semaphore_initial_counts(self):
        mem, b = make(max_order=6)
        for order, sem in enumerate(b.sems):
            assert sem.value == (1 if order == 6 else 0)


class TestMaxOrderBoundary:
    """The tree height is capped by the bulk semaphore's borrow guard:
    a fully split pool posts ``2**max_order`` credits to the order-0
    semaphore, which must stay strictly below ``C_GUARD``.  Regression
    for the old bound of 21, where that count *equals* the guard value:
    ``pack`` rejects it and the F&A triage misreads a legitimate count
    as a transient borrow."""

    def test_bound_tracks_semaphore_field_width(self):
        from repro.sync.bulk_semaphore import C_GUARD

        assert MAX_ORDER == C_GUARD.bit_length() - 2
        assert MAX_ORDER == 20
        # order-0 credits of a fully split max-height pool stay under
        # the guard
        assert (1 << MAX_ORDER) < C_GUARD

    def test_boundary_order_constructs_and_allocates(self):
        # page_size=8 keeps the 2**20-page pool's address range small;
        # the tree (2 M nodes) is what this actually stresses
        mem = DeviceMemory(64 << 20)
        b = TBuddy(mem, 0, 8, MAX_ORDER)
        a = drive(mem, b.alloc(host_ctx(), MAX_ORDER))  # whole pool
        assert a == 0
        drive(mem, b.free(host_ctx(), a))
        assert b.host_free_bytes() == b.pool_size

    def test_order_past_boundary_rejected(self):
        mem = DeviceMemory(1 << 20)
        with pytest.raises(ValueError, match=r"1\.\.20"):
            TBuddy(mem, 0, 8, MAX_ORDER + 1)


@st.composite
def alloc_free_script(draw):
    """A sequence of allocs (by order) and frees (by index)."""
    n = draw(st.integers(1, 40))
    script = []
    live = 0
    for _ in range(n):
        if live and draw(st.booleans()):
            script.append(("free", draw(st.integers(0, live - 1))))
            live -= 1
        else:
            script.append(("alloc", draw(st.integers(0, 3))))
            live += 1
    return script


class TestProperties:
    @given(script=alloc_free_script())
    @settings(max_examples=60, deadline=None)
    def test_sequential_invariants_hold_under_any_script(self, script):
        mem, b = make(max_order=5)
        live = []
        for op, arg in script:
            if op == "alloc":
                a = drive(mem, b.alloc(host_ctx(), arg))
                if a != NULL:
                    live.append((a, arg))
            else:
                if live:
                    a, order = live.pop(arg % len(live))
                    drive(mem, b.free(host_ctx(), a))
        b.check_invariants(strict_siblings=True)
        # live blocks disjoint
        spans = sorted((a, PAGE << o) for a, o in live)
        for (a1, s1), (a2, _) in zip(spans, spans[1:]):
            assert a1 + s1 <= a2
        # accounting: free + live == pool
        assert b.host_free_bytes() + sum(s for _, s in spans) == b.pool_size
        # free the rest: pool fully recovered and coalesced
        for a, _ in live:
            drive(mem, b.free(host_ctx(), a))
        b.check_invariants(strict_siblings=True)
        assert b.host_state(1) == AVAILABLE


class TestConcurrent:
    @pytest.mark.parametrize("seed", range(6))
    def test_churn_preserves_invariants(self, seed):
        mem, b = make(max_order=8)

        def kernel(ctx, iters):
            for _ in range(iters):
                order = ctx.rng.randrange(0, 4)
                a = yield from b.alloc(ctx, order)
                if a != NULL:
                    yield ops.sleep(ctx.rng.randrange(200))
                    yield from b.free(ctx, a)

        s = Scheduler(mem, seed=seed)
        s.launch(kernel, 4, 64, args=(4,))
        s.run(max_events=30_000_000)
        b.check_invariants()
        assert b.host_free_bytes() == b.pool_size

    def test_concurrent_exhaustion_no_oversell(self):
        mem, b = make(max_order=6)  # 64 pages
        got = []

        def kernel(ctx):
            a = yield from b.alloc(ctx, 0)
            got.append(a)

        s = Scheduler(mem, seed=13)
        s.launch(kernel, 2, 48)  # 96 threads for 64 pages
        s.run(max_events=30_000_000)
        ok = [a for a in got if a != NULL]
        assert len(ok) == 64
        assert len(set(ok)) == 64
        b.check_invariants()

    def test_concurrent_mixed_orders_disjoint(self):
        mem, b = make(max_order=8)
        got = []

        def kernel(ctx):
            order = ctx.tid % 3
            a = yield from b.alloc(ctx, order)
            got.append((a, order))

        s = Scheduler(mem, seed=3)
        s.launch(kernel, 2, 64)
        s.run(max_events=30_000_000)
        spans = sorted((a, PAGE << o) for a, o in got if a != NULL)
        for (a1, s1), (a2, _) in zip(spans, spans[1:]):
            assert a1 + s1 <= a2, "overlapping allocations"
        b.check_invariants()
