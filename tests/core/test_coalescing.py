"""Warp-coalesced allocation (the paper's transparent full-warp path)."""

import pytest

from repro.core import AllocatorConfig, ThroughputAllocator
from repro.sim import DeviceMemory, GPUDevice, Scheduler, ops
from repro.sim.hostrun import drive, host_ctx

NULL = DeviceMemory.NULL


def make(pool_order=9, num_sms=2):
    device = GPUDevice(num_sms=num_sms)
    mem = DeviceMemory((4096 << pool_order) * 2 + (8 << 20))
    alloc = ThroughputAllocator(mem, device, AllocatorConfig(pool_order=pool_order))
    return mem, device, alloc


class TestWarpMatchOp:
    def test_groups_by_key(self):
        mem = DeviceMemory(1 << 12)
        masks = {}

        def kernel(ctx):
            m = yield ops.warp_match(ctx.lane % 2)
            masks[ctx.lane] = m

        s = Scheduler(mem)
        s.launch(kernel, 1, 32)
        s.run()
        assert masks[0] == frozenset(range(0, 32, 2))
        assert masks[1] == frozenset(range(1, 32, 2))

    def test_broadcast_delivers_leader_value(self):
        mem = DeviceMemory(1 << 12)
        got = []

        def kernel(ctx):
            mask = yield ops.warp_converge()
            if ctx.lane == min(mask):
                v = yield ops.warp_broadcast(mask, ("payload", 42))
            else:
                v = yield ops.warp_broadcast(mask)
            got.append(v)

        s = Scheduler(mem)
        s.launch(kernel, 1, 32)
        s.run()
        assert got == [("payload", 42)] * 32


class TestCoalescedMalloc:
    def test_full_warp_same_size(self):
        mem, device, alloc = make()
        got = []

        def kernel(ctx):
            p = yield from alloc.malloc_coalesced(ctx, 64)
            got.append(p)

        s = Scheduler(mem, device, seed=1)
        s.launch(kernel, 2, 64)
        s.run(max_events=20_000_000)
        ok = [p for p in got if p != NULL]
        assert len(ok) == 128
        assert len(set(ok)) == 128
        # all results obey the UAlloc alignment guarantee
        assert all((p - alloc.pool_base) % 4096 != 0 for p in ok)

    def test_mixed_sizes_group_independently(self):
        mem, device, alloc = make()
        got = []

        def kernel(ctx):
            size = 32 if ctx.lane % 2 == 0 else 256
            p = yield from alloc.malloc_coalesced(ctx, size)
            got.append((size, p))

        s = Scheduler(mem, device, seed=2)
        s.launch(kernel, 1, 64)
        s.run(max_events=20_000_000)
        ok = [p for _, p in got if p != NULL]
        assert len(ok) == 64 and len(set(ok)) == 64

    def test_coalesced_blocks_are_freeable(self):
        mem, device, alloc = make()

        def kernel(ctx):
            p = yield from alloc.malloc_coalesced(ctx, 128)
            assert p != NULL
            yield ops.sleep(ctx.rng.randrange(200))
            yield from alloc.free(ctx, p)

        s = Scheduler(mem, device, seed=3)
        s.launch(kernel, 2, 64)
        s.run(max_events=20_000_000)
        alloc.ualloc.host_gc()
        alloc.host_check()
        assert alloc.tbuddy.host_free_bytes() == alloc.cfg.pool_size

    def test_singleton_group_falls_back_to_scalar(self):
        mem, device, alloc = make()
        a = drive(mem, alloc.malloc_coalesced(host_ctx(), 64))
        assert a != NULL
        drive(mem, alloc.free(host_ctx(), a))

    def test_group_larger_than_bin_capacity(self):
        """32 lanes requesting 1 KB (bin capacity 3) spans many bins."""
        mem, device, alloc = make()
        got = []

        def kernel(ctx):
            p = yield from alloc.malloc_coalesced(ctx, 1024)
            got.append(p)

        s = Scheduler(mem, device, seed=4)
        s.launch(kernel, 1, 32)
        s.run(max_events=20_000_000)
        ok = [p for p in got if p != NULL]
        assert len(ok) == 32 and len(set(ok)) == 32

    def test_large_sizes_route_to_tbuddy(self):
        mem, device, alloc = make()
        got = []

        def kernel(ctx):
            p = yield from alloc.malloc_coalesced(ctx, 8192)
            got.append(p)

        s = Scheduler(mem, device, seed=5)
        s.launch(kernel, 1, 32)
        s.run(max_events=20_000_000)
        ok = [p for p in got if p != NULL]
        assert all((p - alloc.pool_base) % 4096 == 0 for p in ok)

    def test_coalescing_reduces_semaphore_traffic(self):
        """One group should cost far fewer hot-word atomics than 32
        scalar allocations: compare simulated completion times."""
        def run(coalesced):
            mem, device, alloc = make()

            def kernel(ctx):
                if coalesced:
                    p = yield from alloc.malloc_coalesced(ctx, 64)
                else:
                    p = yield from alloc.malloc(ctx, 64)
                assert p != NULL

            s = Scheduler(mem, device, seed=6)
            s.launch(kernel, 4, 256)
            rep = s.run(max_events=40_000_000)
            return rep.cycles

        assert run(True) < run(False)
