"""AllocatorConfig derived sizes and validation (+ properties)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import AllocatorConfig, round_up_pow2


class TestRoundUpPow2:
    @pytest.mark.parametrize("n,want", [
        (1, 1), (2, 2), (3, 4), (5, 8), (8, 8), (9, 16), (1000, 1024),
        (4096, 4096), (4097, 8192), (0, 1), (-3, 1),
    ])
    def test_cases(self, n, want):
        assert round_up_pow2(n) == want

    @given(st.integers(1, 1 << 40))
    def test_is_power_of_two_and_bounds(self, n):
        p = round_up_pow2(n)
        assert p >= n
        assert p & (p - 1) == 0
        assert p < 2 * n


class TestDefaults:
    def test_paper_constants(self):
        cfg = AllocatorConfig()
        assert cfg.page_size == 4096
        assert cfg.bin_size == 4096
        assert cfg.bin_header_size == 128
        assert cfg.tail_size == 128
        assert cfg.bins_per_chunk == 64
        assert cfg.chunk_size == 256 * 1024  # self-consistent layout
        assert cfg.chunk_order == 6
        assert cfg.n_regular_bins == 62
        assert cfg.min_alloc == 8
        assert cfg.max_ualloc_size == 2048
        assert cfg.max_bin_blocks == 512

    def test_size_classes(self):
        cfg = AllocatorConfig()
        assert cfg.size_classes == (8, 16, 32, 64, 128, 256, 512, 1024, 2048)

    def test_class_index(self):
        cfg = AllocatorConfig()
        for i, s in enumerate(cfg.size_classes):
            assert cfg.class_index(s) == i

    def test_bin_capacity_paper_values(self):
        cfg = AllocatorConfig()
        # tail-using sizes get the full 4 KB
        assert cfg.bin_capacity(8) == 512
        assert cfg.bin_capacity(16) == 256
        assert cfg.bin_capacity(128) == 32
        # larger sizes lose the 128 B header (paper: 1 KB bins hold 3)
        assert cfg.bin_capacity(256) == 15
        assert cfg.bin_capacity(512) == 7
        assert cfg.bin_capacity(1024) == 3
        assert cfg.bin_capacity(2048) == 1  # the degenerate 2 KB case

    def test_order_of(self):
        cfg = AllocatorConfig()
        assert cfg.order_of(4096) == 0
        assert cfg.order_of(8192) == 1
        assert cfg.order_of(cfg.chunk_size) == cfg.chunk_order

    def test_pool_size(self):
        assert AllocatorConfig(pool_order=10).pool_size == 4 << 20


class TestValidation:
    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            AllocatorConfig(page_size=3000)
        with pytest.raises(ValueError):
            AllocatorConfig(min_alloc=24)

    def test_rejects_bin_size_mismatch(self):
        with pytest.raises(ValueError):
            AllocatorConfig(bin_size=8192)

    def test_rejects_pool_smaller_than_chunk(self):
        with pytest.raises(ValueError):
            AllocatorConfig(pool_order=3)

    def test_rejects_too_many_bins_for_tails(self):
        with pytest.raises(ValueError):
            AllocatorConfig(bins_per_chunk=128)

    def test_small_chunk_variants_allowed(self):
        cfg = AllocatorConfig(bins_per_chunk=8)
        assert cfg.chunk_size == 32 * 1024
        assert cfg.n_regular_bins == 6

    @given(bins=st.sampled_from([4, 8, 16, 32, 64]))
    def test_tail_capacity_always_sufficient(self, bins):
        cfg = AllocatorConfig(bins_per_chunk=bins)
        tails = 2 * (cfg.bin_size - cfg.bin_header_size) // cfg.tail_size
        assert cfg.n_regular_bins <= tails


class TestOrderForPool:
    """The hoisted pool-order helper every bench used to hand-roll."""

    @pytest.mark.parametrize("pool,want", [
        (4096, 0),            # exactly one page
        (8192, 1),
        (4096 << 6, 6),       # one chunk
        (1 << 20, 8),         # the benches' 1 MiB pool
        (4096 << 12, 12),
    ])
    def test_exact_on_page_power_pools(self, pool, want):
        assert AllocatorConfig.order_for_pool(pool) == want

    @pytest.mark.parametrize("pool,want", [
        (1, 0),               # sub-page request still gets a page
        (4095, 0),
        (4097, 1),            # the case the old expression under-covered
        (8193, 2),
        ((4096 << 8) + 1, 9),
    ])
    def test_rounds_up_off_boundary(self, pool, want):
        assert AllocatorConfig.order_for_pool(pool) == want
        # every one of these is a case the legacy hand-rolled expression
        # got wrong (under-covering above a page, over-covering below)
        assert (pool // 4096 - 1).bit_length() != want

    @given(pool=st.integers(1, 1 << 32))
    def test_covers_and_is_tight(self, pool):
        order = AllocatorConfig.order_for_pool(pool)
        assert 4096 << order >= pool
        assert order == 0 or 4096 << (order - 1) < pool

    def test_page_size_parameter(self):
        assert AllocatorConfig.order_for_pool(1 << 20, page_size=1 << 16) == 4

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            AllocatorConfig.order_for_pool(0)
        with pytest.raises(ValueError):
            AllocatorConfig.order_for_pool(-4096)
        with pytest.raises(ValueError):
            AllocatorConfig.order_for_pool(4096, page_size=3000)

    def test_for_pool_builds_covering_config(self):
        cfg = AllocatorConfig.for_pool(1 << 20)
        assert cfg.pool_order == 8
        assert cfg.pool_size == 1 << 20
        with pytest.raises(ValueError):
            AllocatorConfig.for_pool(1 << 20, pool_order=9)
