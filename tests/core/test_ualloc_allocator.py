"""UAlloc + combined ThroughputAllocator integration tests:
routing, alignment guarantees, exhaustion/fragmentation, reclamation,
cross-arena frees, data integrity, error detection."""

import pytest

from repro.core import AllocatorConfig, ThroughputAllocator
from repro.core.bin_ import HeapCorruption
from repro.sim import DeviceMemory, GPUDevice, Scheduler, ops
from repro.sim.hostrun import drive, host_ctx

NULL = DeviceMemory.NULL


def make(pool_order=9, num_sms=4, **cfg_kw):
    device = GPUDevice(num_sms=num_sms)
    mem = DeviceMemory((4096 << pool_order) * 2 + (8 << 20))
    alloc = ThroughputAllocator(
        mem, device, AllocatorConfig(pool_order=pool_order, **cfg_kw)
    )
    return mem, device, alloc


class TestRouting:
    @pytest.mark.parametrize("size", [1, 8, 100, 2048])
    def test_small_sizes_never_page_aligned(self, size):
        mem, device, alloc = make()
        a = drive(mem, alloc.malloc(host_ctx(), size))
        assert a != NULL
        assert (a - alloc.pool_base) % alloc.cfg.page_size != 0

    @pytest.mark.parametrize("size", [2049, 4096, 10000, 65536])
    def test_large_sizes_page_aligned(self, size):
        mem, device, alloc = make()
        a = drive(mem, alloc.malloc(host_ctx(), size))
        assert a != NULL
        assert (a - alloc.pool_base) % alloc.cfg.page_size == 0

    def test_free_routes_by_alignment(self):
        mem, device, alloc = make()
        small = drive(mem, alloc.malloc(host_ctx(), 64))
        big = drive(mem, alloc.malloc(host_ctx(), 8192))
        drive(mem, alloc.free(host_ctx(), small))
        drive(mem, alloc.free(host_ctx(), big))
        alloc.ualloc.host_gc()
        alloc.host_check()
        assert alloc.tbuddy.host_free_bytes() == alloc.cfg.pool_size

    def test_zero_and_negative_size(self):
        mem, device, alloc = make()
        assert drive(mem, alloc.malloc(host_ctx(), 0)) == NULL
        assert drive(mem, alloc.malloc(host_ctx(), -5)) == NULL

    def test_free_null_is_noop(self):
        mem, device, alloc = make()
        drive(mem, alloc.free(host_ctx(), NULL))

    def test_stats_track_calls(self):
        mem, device, alloc = make()
        a = drive(mem, alloc.malloc(host_ctx(), 64))
        drive(mem, alloc.free(host_ctx(), a))
        assert alloc.stats.n_malloc == 1
        assert alloc.stats.n_free == 1
        assert alloc.stats.failure_rate == 0.0


class TestSequentialLifecycle:
    def test_same_class_allocations_distinct(self):
        mem, device, alloc = make()
        got = [drive(mem, alloc.malloc(host_ctx(), 64)) for _ in range(200)]
        assert NULL not in got
        assert len(set(got)) == 200

    def test_free_and_reuse(self):
        mem, device, alloc = make()
        anchor = drive(mem, alloc.malloc(host_ctx(), 64))  # keeps the bin live
        a1 = drive(mem, alloc.malloc(host_ctx(), 64))
        drive(mem, alloc.free(host_ctx(), a1))
        a2 = drive(mem, alloc.malloc(host_ctx(), 64))
        assert a2 == a1  # reuse within the still-live bin
        assert anchor != a1

    def test_all_size_classes_round_trip(self):
        mem, device, alloc = make()
        addrs = {}
        for size in alloc.cfg.size_classes:
            addrs[size] = drive(mem, alloc.malloc(host_ctx(), size))
            assert addrs[size] != NULL
        for size, a in addrs.items():
            drive(mem, alloc.free(host_ctx(), a))
        alloc.ualloc.host_gc()
        alloc.host_check()
        assert alloc.tbuddy.host_free_bytes() == alloc.cfg.pool_size

    def test_double_free_detected(self):
        mem, device, alloc = make()
        anchor = drive(mem, alloc.malloc(host_ctx(), 64))  # keeps the bin live
        a = drive(mem, alloc.malloc(host_ctx(), 64))
        drive(mem, alloc.free(host_ctx(), a))
        from repro.core.bin_ import DoubleFree
        with pytest.raises(DoubleFree):
            drive(mem, alloc.free(host_ctx(), a))

    def test_double_free_of_retired_bin_detected(self):
        """Even after the bin retires, a stale free is caught (the bin's
        count sentinel / chunk magic trips)."""
        mem, device, alloc = make()
        a = drive(mem, alloc.malloc(host_ctx(), 64))
        drive(mem, alloc.free(host_ctx(), a))  # retires bin and chunk
        alloc.ualloc.host_gc()
        from repro.core.bin_ import DoubleFree
        with pytest.raises((DoubleFree, HeapCorruption)):
            drive(mem, alloc.free(host_ctx(), a))

    def test_wild_free_detected(self):
        mem, device, alloc = make()
        drive(mem, alloc.malloc(host_ctx(), 64))  # create a chunk
        with pytest.raises((HeapCorruption, ValueError)):
            # address inside the pool, but not a valid block
            drive(mem, alloc.free(host_ctx(), alloc.pool_base + 4096 + 64 + 1))

    def test_free_outside_pool_detected(self):
        """Regression: an out-of-pool address used to fall through to
        alignment-based routing and corrupt whichever structure the
        address happened to hit."""
        from repro.core.tbuddy import InvalidFree

        mem, device, alloc = make()
        below = alloc.pool_base - alloc.cfg.page_size
        beyond = alloc.pool_base + alloc.cfg.pool_size
        for addr in (below, beyond, beyond + 12345):
            with pytest.raises(InvalidFree, match=f"{addr:#x}"):
                drive(mem, alloc.free(host_ctx(), addr))
        # a failed free is not counted
        assert alloc.stats.n_free == 0

    def test_degenerate_2k_class(self):
        """Paper: a bin cannot hold two 2 KB blocks."""
        mem, device, alloc = make()
        a1 = drive(mem, alloc.malloc(host_ctx(), 2048))
        a2 = drive(mem, alloc.malloc(host_ctx(), 2048))
        assert a1 != NULL and a2 != NULL
        # each lives in its own bin
        assert abs(a1 - a2) >= alloc.cfg.bin_size


class TestConcurrent:
    def test_mixed_churn_no_leak(self):
        mem, device, alloc = make(pool_order=9)
        failures = []

        def kernel(ctx, sizes, iters):
            f = 0
            for i in range(iters):
                size = sizes[(ctx.tid + i) % len(sizes)]
                p = yield from alloc.malloc(ctx, size)
                if p == NULL:
                    f += 1
                    continue
                yield ops.sleep(ctx.rng.randrange(200))
                yield from alloc.free(ctx, p)
            failures.append(f)

        s = Scheduler(mem, device, seed=9)
        s.launch(kernel, 8, 64, args=([8, 64, 200, 1024, 4096, 16384], 3))
        s.run(max_events=40_000_000)
        alloc.ualloc.host_gc()
        alloc.host_check()
        assert alloc.tbuddy.host_free_bytes() == alloc.cfg.pool_size

    def test_concurrent_allocations_disjoint_and_writable(self):
        """Every thread writes its whole block; overlap would corrupt a
        neighbour's pattern."""
        mem, device, alloc = make(pool_order=9)
        results = []

        def kernel(ctx):
            size = (8, 16, 32, 64)[ctx.tid % 4]
            p = yield from alloc.malloc(ctx, size)
            if p == NULL:
                results.append((ctx.tid, None))
                return
            base = (p + 7) & ~7
            for w in range(size // 8):
                yield ops.store(base + 8 * w, (ctx.tid << 16) | w)
            yield ops.sleep(ctx.rng.randrange(400))
            vals = []
            for w in range(size // 8):
                v = yield ops.load(base + 8 * w)
                vals.append(v)
            results.append(
                (ctx.tid, all(v == (ctx.tid << 16) | w
                              for w, v in enumerate(vals)))
            )

        s = Scheduler(mem, device, seed=17)
        s.launch(kernel, 8, 64)
        s.run(max_events=40_000_000)
        bad = [tid for tid, ok in results if ok is False]
        assert bad == [], f"data corrupted for threads {bad}"

    def test_cross_arena_frees(self):
        """Phase 1 allocates; phase 2 frees from different SMs (the
        paper's free-anywhere path through the chunk's arena id)."""
        mem, device, alloc = make(pool_order=9)
        ptrs = []

        def alloc_kernel(ctx):
            p = yield from alloc.malloc(ctx, 64)
            ptrs.append(p)

        s = Scheduler(mem, device, seed=3)
        s.launch(alloc_kernel, 4, 64)
        s.run(max_events=20_000_000)
        assert NULL not in ptrs

        # reverse the list: thread i frees a pointer allocated by the
        # "other end" of the launch (different block/SM)
        rev = ptrs[::-1]

        def free_kernel(ctx):
            yield from alloc.free(ctx, rev[ctx.tid])

        s2 = Scheduler(mem, device, seed=4)
        s2.launch(free_kernel, 4, 64)
        s2.run(max_events=20_000_000)
        alloc.ualloc.host_gc()
        alloc.host_check()
        assert alloc.tbuddy.host_free_bytes() == alloc.cfg.pool_size

    def test_exhaustion_failure_rate_small_sizes(self):
        """Exhausting the pool with 64 B allocations fails only for the
        metadata overhead (paper: 'small number of failures ... due to
        the memory used for the chunks and bins headers')."""
        mem, device, alloc = make(pool_order=7, num_sms=2)  # 512 KB pool
        pool = alloc.cfg.pool_size
        n = pool // 64
        got = []

        def kernel(ctx):
            p = yield from alloc.malloc(ctx, 64)
            got.append(p)

        s = Scheduler(mem, device, seed=5)
        s.launch(kernel, -(-n // 256), 256)
        s.run(max_events=60_000_000)
        failed = sum(1 for p in got if p == NULL)
        rate = failed / len(got)
        assert rate < 0.10, f"failure rate {rate:.1%} too high for 64 B"
        # and no block was handed out twice
        ok = [p for p in got if p != NULL]
        assert len(set(ok)) == len(ok)

    def test_tbuddy_sizes_do_not_fail_on_exact_fit(self):
        mem, device, alloc = make(pool_order=7, num_sms=2)
        n = alloc.cfg.pool_size // 4096
        got = []

        def kernel(ctx):
            p = yield from alloc.malloc(ctx, 4096)
            got.append(p)

        s = Scheduler(mem, device, seed=6)
        s.launch(kernel, -(-n // 64), 64)
        s.run(max_events=40_000_000)
        assert sum(1 for p in got if p == NULL) == 0


class TestReclamation:
    def test_bins_and_chunks_retire(self):
        mem, device, alloc = make(pool_order=9, num_sms=2)
        ptrs = []

        def alloc_kernel(ctx):
            p = yield from alloc.malloc(ctx, 128)
            ptrs.append(p)

        def free_kernel(ctx):
            yield from alloc.free(ctx, ptrs[ctx.tid])

        s = Scheduler(mem, device, seed=7)
        s.launch(alloc_kernel, 4, 64)
        s.run(max_events=20_000_000)
        live_chunks = len(alloc.host_live_chunks())
        assert live_chunks >= 1

        s2 = Scheduler(mem, device, seed=8)
        s2.launch(free_kernel, 4, 64)
        s2.run(max_events=20_000_000)
        alloc.ualloc.host_gc()
        assert alloc.host_live_chunks() == []
        assert alloc.tbuddy.host_free_bytes() == alloc.cfg.pool_size

    def test_host_used_bytes_tracks_live_blocks(self):
        mem, device, alloc = make()
        a = drive(mem, alloc.malloc(host_ctx(), 256))
        b = drive(mem, alloc.malloc(host_ctx(), 8192))
        used = alloc.host_used_bytes()
        assert used == 256 + 8192
        drive(mem, alloc.free(host_ctx(), a))
        drive(mem, alloc.free(host_ctx(), b))
        assert alloc.host_used_bytes() == 0
