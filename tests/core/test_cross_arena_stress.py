"""Cross-arena free-traffic stress.

Producers and consumers land on different SMs, so most frees execute
against a bin owned by another arena — the paper's free-anywhere path
(remote bitmap release, deferred bin relink, RCU reclamation).  Each
seed is a different schedule; every run must end leak-free with all
allocator invariants (tree shape, semaphore ledgers, list symmetry)
intact.
"""

import pytest

from repro.bench import workloads
from repro.core import AllocatorConfig, ThroughputAllocator
from repro.sim import DeviceMemory, GPUDevice, Scheduler


@pytest.mark.parametrize("seed", range(4))
def test_producer_consumer_cross_arena_leak_free(seed):
    device = GPUDevice(num_sms=4, max_resident_blocks=2)
    mem = DeviceMemory(16 << 20)
    alloc = ThroughputAllocator(mem, device, AllocatorConfig(pool_order=8))
    kernel, mailbox = workloads.producer_consumer(
        alloc, size=48, slots=8, mem=mem, iters=4
    )
    sched = Scheduler(mem, device, seed=seed)
    sched.launch(kernel, grid=2, block=32)
    sched.run(max_events=20_000_000)

    # every published token was consumed
    for i in range(8):
        assert mem.load_word(mailbox + 8 * i) == 0

    alloc.ualloc.host_gc()
    alloc.host_check()
    assert alloc.host_used_bytes() == 0
    assert alloc.tbuddy.host_free_bytes() == alloc.cfg.pool_size


@pytest.mark.parametrize("seed", [0, 1])
def test_checkpoint_helper_validates_cross_arena_quiescence(seed):
    """host_checkpoint bundles gc + invariants + leak accounting."""
    device = GPUDevice(num_sms=4, max_resident_blocks=2)
    mem = DeviceMemory(16 << 20)
    alloc = ThroughputAllocator(mem, device, AllocatorConfig(pool_order=8))
    kernel, _ = workloads.producer_consumer(
        alloc, size=256, slots=4, mem=mem, iters=3
    )
    sched = Scheduler(mem, device, seed=seed)
    sched.launch(kernel, grid=2, block=32)
    sched.run(max_events=20_000_000)
    alloc.host_checkpoint(expect_leak_free=True)
