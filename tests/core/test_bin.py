"""BinOps: header init, bitmap claim/release, double-free detection."""

import pytest

from repro.core import AllocatorConfig
from repro.core.bin_ import (
    BIN_MAGIC,
    BITMAP_OFF,
    BinOps,
    CAPACITY_OFF,
    COUNT_OFF,
    DoubleFree,
    HeapCorruption,
    MAGIC_OFF,
    SIZE_OFF,
)
from repro.sim import DeviceMemory
from repro.sim.hostrun import drive, host_ctx

CFG = AllocatorConfig()


def make_bin(size):
    mem = DeviceMemory(1 << 20)
    binops = BinOps(CFG)
    bin_addr = mem.host_alloc(CFG.bin_size, align=CFG.bin_size)
    cap = drive(mem, binops.init_bin(host_ctx(), bin_addr, 0x40000, size))
    return mem, binops, bin_addr, cap


class TestInit:
    @pytest.mark.parametrize("size", CFG.size_classes)
    def test_capacity_matches_config(self, size):
        mem, binops, bin_addr, cap = make_bin(size)
        assert cap == CFG.bin_capacity(size)
        assert mem.load_word(bin_addr + CAPACITY_OFF) == cap
        assert mem.load_word(bin_addr + SIZE_OFF) == size
        assert mem.load_word(bin_addr + MAGIC_OFF) == BIN_MAGIC
        # caller owns block 0
        assert mem.load_word(bin_addr + COUNT_OFF) == cap - 1
        assert mem.load_word(bin_addr + BITMAP_OFF) & 1

    def test_bits_beyond_capacity_preset(self):
        mem, binops, bin_addr, cap = make_bin(1024)  # cap == 3
        word = mem.load_word(bin_addr + BITMAP_OFF)
        for bit in range(3, 64):
            assert word & (1 << bit)

    def test_degenerate_2k_bin(self):
        mem, binops, bin_addr, cap = make_bin(2048)
        assert cap == 1
        assert mem.load_word(bin_addr + COUNT_OFF) == 0


class TestTakeRelease:
    def test_take_all_blocks_distinct(self):
        mem, binops, bin_addr, cap = make_bin(512)  # cap 7, block 0 taken
        got = []
        for _ in range(cap - 1):
            res = drive(mem, binops.try_take(host_ctx(), bin_addr))
            got.append(res[0])
        assert len(set(got)) == cap - 1
        assert 0 not in got
        assert all(0 < k < cap for k in got)

    def test_take_from_empty_returns_none(self):
        mem, binops, bin_addr, cap = make_bin(2048)  # already full
        assert drive(mem, binops.try_take(host_ctx(), bin_addr)) is None

    def test_took_last_flag(self):
        mem, binops, bin_addr, cap = make_bin(1024)  # cap 3, 2 left
        r1 = drive(mem, binops.try_take(host_ctx(), bin_addr))
        r2 = drive(mem, binops.try_take(host_ctx(), bin_addr))
        assert r1[1] is False and r2[1] is True

    def test_release_returns_old_count(self):
        mem, binops, bin_addr, cap = make_bin(256)
        idx, _ = drive(mem, binops.try_take(host_ctx(), bin_addr))
        before = mem.load_word(bin_addr + COUNT_OFF)
        old = drive(mem, binops.release_block(host_ctx(), bin_addr, idx))
        assert old == before
        assert mem.load_word(bin_addr + COUNT_OFF) == before + 1

    def test_double_free_raises(self):
        mem, binops, bin_addr, cap = make_bin(256)
        idx, _ = drive(mem, binops.try_take(host_ctx(), bin_addr))
        drive(mem, binops.release_block(host_ctx(), bin_addr, idx))
        with pytest.raises(DoubleFree):
            drive(mem, binops.release_block(host_ctx(), bin_addr, idx))

    def test_release_beyond_capacity_raises(self):
        mem, binops, bin_addr, cap = make_bin(1024)
        with pytest.raises(HeapCorruption):
            drive(mem, binops.release_block(host_ctx(), bin_addr, cap))

    def test_take_release_cycle_restores_state(self):
        mem, binops, bin_addr, cap = make_bin(64)
        taken = [drive(mem, binops.try_take(host_ctx(), bin_addr))[0]
                 for _ in range(10)]
        for k in taken:
            drive(mem, binops.release_block(host_ctx(), bin_addr, k))
        info = binops.host_summary(mem, bin_addr)
        assert info["count"] == cap - 1
        assert info["used_blocks"] == 1  # just block 0


class TestHostSummary:
    def test_summary_fields(self):
        mem, binops, bin_addr, cap = make_bin(128)
        info = binops.host_summary(mem, bin_addr)
        assert info["size"] == 128
        assert info["capacity"] == cap
        assert info["chunk"] == 0x40000

    def test_bad_magic_detected(self):
        mem = DeviceMemory(1 << 16)
        addr = mem.host_alloc(CFG.bin_size, align=CFG.bin_size)
        with pytest.raises(HeapCorruption):
            BinOps(CFG).host_summary(mem, addr)
