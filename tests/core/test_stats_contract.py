"""AllocStats counting contract and the host pressure gauge (S1).

Historically ``malloc(nbytes <= 0)`` returned NULL without touching the
stats and ``free(NULL)`` skipped ``n_free``, so failure rates and
malloc/free deltas silently skewed on edge-size probes.  The contract
is now explicit (see :class:`repro.core.allocator.AllocStats`); these
tests pin it.
"""

import random

import pytest

from repro.core import AllocatorConfig, ThroughputAllocator
from repro.core.tbuddy import InvalidFree
from repro.sim import DeviceMemory, GPUDevice
from repro.sim.hostrun import drive, host_ctx
from repro.sync.bulk_semaphore import C_GUARD

NULL = DeviceMemory.NULL


def make_alloc(pool_order: int = 6):
    device = GPUDevice(num_sms=1)
    cfg = AllocatorConfig(pool_order=pool_order)
    mem = DeviceMemory((4096 << pool_order) * 2 + (8 << 20))
    return mem, ThroughputAllocator(mem, device, cfg)


class TestInvalidSizeCounting:
    @pytest.mark.parametrize("method", ["malloc", "malloc_coalesced",
                                        "malloc_robust"])
    def test_non_positive_sizes_count_as_invalid(self, method):
        mem, alloc = make_alloc()
        fn = getattr(alloc, method)
        assert drive(mem, fn(host_ctx(), 0)) == NULL
        assert drive(mem, fn(host_ctx(), -8)) == NULL
        s = alloc.stats
        assert s.n_malloc == 2
        assert s.n_malloc_failed == 2
        assert s.n_invalid_size == 2
        assert s.n_exhaustion == 0
        # invalid sizes are permanent failures: robust must not retry
        assert s.n_robust_retries == 0
        assert s.failure_rate == 1.0

    def test_failure_classification_is_a_partition(self):
        mem, alloc = make_alloc()
        drive(mem, alloc.malloc(host_ctx(), 0))           # invalid
        p = drive(mem, alloc.malloc(host_ctx(), 64))      # success
        assert p != NULL
        # valid size, impossible to satisfy -> exhaustion
        assert drive(mem, alloc.malloc(host_ctx(),
                                       alloc.cfg.pool_size)) == NULL
        drive(mem, alloc.free(host_ctx(), p))
        s = alloc.stats
        assert s.n_malloc == 3
        assert s.n_malloc_failed == s.n_invalid_size + s.n_exhaustion == 2
        assert (s.n_invalid_size, s.n_exhaustion) == (1, 1)


class TestFreeCounting:
    def test_free_null_is_a_counted_noop(self):
        mem, alloc = make_alloc()
        drive(mem, alloc.free(host_ctx(), NULL))
        assert alloc.stats.n_free == 1
        assert alloc.stats.n_free_null == 1

    def test_raising_free_is_not_counted(self):
        mem, alloc = make_alloc()
        with pytest.raises(InvalidFree):
            drive(mem, alloc.free(host_ctx(), alloc.pool_base - 4096))
        assert alloc.stats.n_free == 0

    def test_malloc_free_delta_zero_over_an_episode(self):
        """The leak-certifying identity: completed mallocs that returned
        a block == completed frees of a block, NULLs included on both
        sides of the ledger."""
        mem, alloc = make_alloc()
        ptrs = [drive(mem, alloc.malloc(host_ctx(), sz))
                for sz in (8, 64, 2048, 4096)]
        for p in ptrs:
            drive(mem, alloc.free(host_ctx(), p))  # NULLs are no-ops
        drive(mem, alloc.free(host_ctx(), NULL))
        s = alloc.stats
        ok_mallocs = s.n_malloc - s.n_malloc_failed
        ok_frees = s.n_free - s.n_free_null
        assert ok_mallocs == ok_frees == len([p for p in ptrs if p != NULL])
        alloc.ualloc.host_gc()
        alloc.host_checkpoint(expect_leak_free=True)


class _RecordingRng(random.Random):
    """Records every ``randrange`` bound drawn (backoff-cap probing)."""

    def __init__(self, seed=0):
        super().__init__(seed)
        self.bounds = []

    def randrange(self, *args, **kwargs):
        self.bounds.append(args[0])
        return super().randrange(*args, **kwargs)


class TestMallocRobustParams:
    @pytest.mark.parametrize("kwargs, match", [
        ({"max_retries": -1}, "max_retries"),
        ({"backoff_base": 0}, "backoff_base"),
        ({"backoff_base": -16}, "backoff_base"),
        ({"backoff_cap": 0}, "backoff_cap"),
    ])
    def test_bad_params_raise_at_the_call_site(self, kwargs, match):
        # backoff_base=0 used to surface as randrange(0) mid-kernel on
        # the first retry; validation is now eager — before any yield.
        _, alloc = make_alloc()
        with pytest.raises(ValueError, match=match):
            alloc.malloc_robust(host_ctx(), 64, **kwargs)
        assert alloc.stats.n_malloc == 0

    def test_zero_retries_is_plain_malloc(self):
        mem, alloc = make_alloc()
        p = drive(mem, alloc.malloc_robust(host_ctx(), 64, max_retries=0))
        assert p != NULL
        assert alloc.stats.n_robust_retries == 0
        drive(mem, alloc.free(host_ctx(), p))

    @staticmethod
    def _always_null(alloc):
        """Stub out the underlying malloc so the backoff sleeps are the
        only ``rng.randrange`` draws the test observes (a real failing
        malloc also draws for semaphore spin backoff)."""
        def fake_malloc(ctx, nbytes):
            alloc.stats.n_malloc += 1
            alloc.stats.n_malloc_failed += 1
            return NULL
            yield  # pragma: no cover — generator marker

        alloc.malloc = fake_malloc

    def test_backoff_never_exceeds_cap(self):
        mem, alloc = make_alloc()
        self._always_null(alloc)
        ctx = host_ctx()
        ctx.rng = _RecordingRng()
        # base above the cap: the first sleep must already clamp (the
        # old code only capped after doubling, so base > cap slept an
        # uncapped randrange(base) on the first retry)
        p = drive(mem, alloc.malloc_robust(ctx, 4096, max_retries=3,
                                           backoff_base=1 << 20,
                                           backoff_cap=512))
        assert p == NULL
        assert ctx.rng.bounds == [512, 512, 512]
        assert alloc.stats.n_robust_retries == 3

    def test_backoff_doubles_up_to_cap(self):
        mem, alloc = make_alloc()
        self._always_null(alloc)
        ctx = host_ctx()
        ctx.rng = _RecordingRng()
        assert drive(mem, alloc.malloc_robust(ctx, 4096, max_retries=4,
                                              backoff_base=100,
                                              backoff_cap=350)) == NULL
        assert ctx.rng.bounds == [100, 200, 350, 350]


class TestPressureGauge:
    def test_fresh_pool_reads_fully_free(self):
        _, alloc = make_alloc()
        gauge = alloc.host_pressure()
        assert gauge.free_bytes == alloc.cfg.pool_size
        assert gauge.pressure == 0.0
        assert gauge.largest_free_order == alloc.cfg.pool_order

    def test_gauge_tracks_supply_by_order(self):
        mem, alloc = make_alloc()
        before = alloc.host_pressure()
        p = drive(mem, alloc.malloc(host_ctx(), 4096))
        after = alloc.host_pressure()
        assert after.free_bytes == before.free_bytes - 4096
        assert 0.0 < after.pressure < 1.0
        # the split chain left exactly one free block at each order below
        # the top (buddy halves), none at the top
        assert after.free_per_order[alloc.cfg.pool_order] == 0
        assert all(n == 1 for n in
                   after.free_per_order[:alloc.cfg.pool_order])
        drive(mem, alloc.free(host_ctx(), p))

    def test_gauge_agrees_with_tree_at_quiescence(self):
        mem, alloc = make_alloc()
        ptrs = [drive(mem, alloc.malloc(host_ctx(), sz))
                for sz in (4096, 8192, 64)]
        assert alloc.host_pressure().free_bytes == \
            alloc.tbuddy.host_free_bytes()
        for p in ptrs:
            drive(mem, alloc.free(host_ctx(), p))
        alloc.ualloc.host_gc()
        assert alloc.host_pressure().free_bytes == alloc.cfg.pool_size

    def test_in_flight_borrow_clamps_to_zero(self):
        """A claim that overdraws ``C`` momentarily borrows from ``E``,
        leaving ``C >= C_GUARD`` in the raw word.  A gauge snapshot taken
        mid-claim must clamp that order to 0, not report the wrapped
        count as supply.  ``pack()`` refuses to build borrowed states,
        so poke the raw word directly — exactly what a racing claimant's
        fetch-and-add leaves behind."""
        mem, alloc = make_alloc()
        top = alloc.cfg.pool_order
        sem = alloc.tbuddy.sems[top]  # fresh pool: C == 1 here
        assert alloc.host_pressure().free_per_order[top] == 1
        saved = mem.load_word(sem.addr)
        mem.store_word(sem.addr, saved + C_GUARD)  # C-field borrow
        gauge = alloc.host_pressure()
        assert gauge.free_per_order[top] == 0
        assert gauge.free_bytes == 0
        # mid-claim snapshots under-report; they must never over-report
        assert gauge.pressure == 1.0
        mem.store_word(sem.addr, saved)
        assert alloc.host_pressure().free_bytes == alloc.cfg.pool_size

    def test_whole_pool_allocation_maxes_pressure(self):
        mem, alloc = make_alloc()
        p = drive(mem, alloc.malloc(host_ctx(), alloc.cfg.pool_size))
        assert p != NULL
        gauge = alloc.host_pressure()
        assert gauge.free_bytes == 0
        assert gauge.pressure == 1.0
        assert gauge.largest_free_order == -1
        drive(mem, alloc.free(host_ctx(), p))
