"""Intrusive device list: inserts, removal, traversal, host checks."""

import pytest

from repro.core import DList
from repro.sim import DeviceMemory, Scheduler, ops
from repro.sim.hostrun import drive, host_ctx
from repro.sync import SpinLock


def make(mem, n):
    lst = DList(mem)
    nodes = [mem.host_alloc(32) for _ in range(n)]
    ctx = host_ctx()
    for node in nodes:
        drive(mem, lst.insert_head(ctx, node))
    return lst, nodes


class TestSequential:
    def test_empty(self, mem):
        lst = DList(mem)
        assert lst.host_items() == []
        first = drive(mem, lst.first(host_ctx()))
        assert lst.is_end(first)

    def test_insert_head_order(self, mem):
        lst, nodes = make(mem, 3)
        assert lst.host_items() == nodes[::-1]
        lst.host_check()

    def test_insert_tail_order(self, mem):
        lst = DList(mem)
        nodes = [mem.host_alloc(32) for _ in range(3)]
        for n in nodes:
            drive(mem, lst.insert_tail(host_ctx(), n))
        assert lst.host_items() == nodes

    def test_remove_middle(self, mem):
        lst, nodes = make(mem, 3)
        drive(mem, lst.remove(host_ctx(), nodes[1]))
        assert lst.host_items() == [nodes[2], nodes[0]]
        lst.host_check()

    def test_remove_all(self, mem):
        lst, nodes = make(mem, 5)
        for n in nodes:
            drive(mem, lst.remove(host_ctx(), n))
        assert lst.host_items() == []
        lst.host_check()

    def test_removed_node_links_preserved_for_stale_readers(self, mem):
        """RCU requirement: a reader parked on an unlinked node can walk
        off it."""
        lst, nodes = make(mem, 3)
        drive(mem, lst.remove(host_ctx(), nodes[1]))
        nxt = drive(mem, lst.next(host_ctx(), nodes[1]))
        assert nxt == nodes[0]  # still points into the live list

    def test_traversal_device_side(self, mem):
        lst, nodes = make(mem, 4)
        seen = []

        def kernel(ctx):
            node = yield from lst.first(ctx)
            while not lst.is_end(node):
                seen.append(node)
                node = yield from lst.next(ctx, node)

        s = Scheduler(mem)
        s.launch(kernel, 1, 1)
        s.run()
        assert seen == nodes[::-1]


class TestConcurrent:
    def test_locked_inserts_and_removes(self, mem, run_kernel):
        lst = DList(mem)
        lock = SpinLock(mem)
        nodes = [mem.host_alloc(32) for _ in range(128)]

        def kernel(ctx):
            node = nodes[ctx.tid]
            yield from lock.lock(ctx)
            yield from lst.insert_head(ctx, node)
            yield from lock.unlock(ctx)
            yield ops.sleep(ctx.rng.randrange(500))
            if ctx.tid % 2 == 0:
                yield from lock.lock(ctx)
                yield from lst.remove(ctx, node)
                yield from lock.unlock(ctx)

        run_kernel(kernel, grid=2, block=64)
        lst.host_check()
        items = lst.host_items()
        assert len(items) == 64
        assert set(items) == {nodes[i] for i in range(1, 128, 2)}

    def test_concurrent_readers_during_writes(self, mem, run_kernel):
        lst, nodes = make(mem, 16)
        lock = SpinLock(mem)
        traversals = []

        def kernel(ctx):
            if ctx.tid < 8:
                yield ops.sleep(ctx.rng.randrange(300))
                yield from lock.lock(ctx)
                yield from lst.remove(ctx, nodes[ctx.tid])
                yield from lock.unlock(ctx)
            else:
                count = 0
                node = yield from lst.first(ctx)
                while not lst.is_end(node) and count < 64:
                    count += 1
                    node = yield from lst.next(ctx, node)
                traversals.append(count)

        run_kernel(kernel, grid=1, block=64)
        lst.host_check()
        assert len(lst.host_items()) == 8
        assert all(8 <= t <= 16 for t in traversals)
