"""Out-of-memory behaviour and recovery (failure injection)."""

from repro.core import AllocatorConfig, ThroughputAllocator
from repro.sim import DeviceMemory, GPUDevice, Scheduler, ops
from repro.sim.hostrun import drive, host_ctx

NULL = DeviceMemory.NULL


def make_tiny():
    """A pool of exactly one chunk: easy to exhaust."""
    device = GPUDevice(num_sms=1)
    cfg = AllocatorConfig(pool_order=6)  # 256 KB == one chunk
    mem = DeviceMemory((4096 << 6) * 2 + (8 << 20))
    return mem, device, ThroughputAllocator(mem, device, cfg)


def test_sequential_exhaustion_then_recovery():
    mem, device, alloc = make_tiny()
    # 62 regular bins x 1 block for the 2 KB degenerate class
    got = []
    while True:
        p = drive(mem, alloc.malloc(host_ctx(), 2048))
        if p == NULL:
            break
        got.append(p)
    assert len(got) == 62  # every regular bin holds exactly one block
    # further small allocations fail too: no bins left
    assert drive(mem, alloc.malloc(host_ctx(), 8)) == NULL
    # free one -> its bin retires -> memory is allocatable again
    drive(mem, alloc.free(host_ctx(), got.pop()))
    p = drive(mem, alloc.malloc(host_ctx(), 2048))
    assert p != NULL
    got.append(p)
    # full teardown recovers the whole pool
    for p in got:
        drive(mem, alloc.free(host_ctx(), p))
    alloc.ualloc.host_gc()
    alloc.host_check()
    assert alloc.tbuddy.host_free_bytes() == alloc.cfg.pool_size


def test_tbuddy_exhaustion_does_not_break_ualloc():
    """A coarse allocation that consumes the whole pool starves UAlloc
    cleanly; freeing it restores service."""
    mem, device, alloc = make_tiny()
    big = drive(mem, alloc.malloc(host_ctx(), alloc.cfg.pool_size))
    assert big != NULL
    assert drive(mem, alloc.malloc(host_ctx(), 64)) == NULL
    drive(mem, alloc.free(host_ctx(), big))
    assert drive(mem, alloc.malloc(host_ctx(), 64)) != NULL


def test_concurrent_storm_on_tiny_pool_terminates():
    """Way more demand than memory: every thread must terminate with
    either an address or NULL — never deadlock — and no block may be
    handed out twice."""
    mem, device, alloc = make_tiny()
    got = []
    kept = []

    def kernel(ctx):
        p = yield from alloc.malloc(ctx, 512)
        got.append(p)
        if p == NULL:
            return
        # half the winners free again, re-exercising the pool under OOM
        # (their blocks may legitimately be reallocated to later threads)
        if ctx.tid % 2 == 0:
            yield ops.sleep(ctx.rng.randrange(200))
            yield from alloc.free(ctx, p)
        else:
            kept.append(p)

    s = Scheduler(mem, device, seed=3)
    s.launch(kernel, 4, 256)  # 1024 threads vs ~434 possible blocks
    s.run(max_events=60_000_000)
    assert len(got) == 1024
    assert kept  # some service even under pressure
    # never-freed blocks are simultaneously live: must be pairwise
    # distinct and non-overlapping
    assert len(set(kept)) == len(kept)
    spans = sorted(kept)
    for a, b in zip(spans, spans[1:]):
        assert a + 512 <= b


def test_failure_rate_counted_in_stats():
    mem, device, alloc = make_tiny()
    while drive(mem, alloc.malloc(host_ctx(), 2048)) != NULL:
        pass
    assert alloc.stats.n_malloc_failed >= 1
    assert 0 < alloc.stats.failure_rate < 1
