"""Arena construction and size-class wiring."""

import pytest

from repro.core import AllocatorConfig
from repro.core.arena import Arena, SizeClass
from repro.sim import DeviceMemory
from repro.sync.rcu import RCU

CFG = AllocatorConfig()


def test_arena_has_one_class_per_size(mem):
    arena = Arena(mem, CFG, index=3)
    assert arena.index == 3
    assert len(arena.classes) == len(CFG.size_classes)
    for sc, size in zip(arena.classes, CFG.size_classes):
        assert sc.size == size
        assert sc.capacity == CFG.bin_capacity(size)


def test_size_class_lookup(mem):
    arena = Arena(mem, CFG, index=0)
    for size in CFG.size_classes:
        assert arena.size_class(size).size == size


def test_semaphores_start_empty(mem):
    arena = Arena(mem, CFG, index=0)
    for sc in arena.classes:
        assert sc.sem.counters == (0, 0, 0)
    assert arena.bin_sem.counters == (0, 0, 0)


def test_chunk_list_starts_empty(mem):
    arena = Arena(mem, CFG, index=0)
    assert arena.chunks.host_items() == []


def test_shared_rcu_domain(mem):
    rcu = RCU(mem)
    a = Arena(mem, CFG, index=0, rcu=rcu)
    b = Arena(mem, CFG, index=1, rcu=rcu)
    assert a.rcu is rcu and b.rcu is rcu


def test_private_rcu_by_default(mem):
    a = Arena(mem, CFG, index=0)
    b = Arena(mem, CFG, index=1)
    assert a.rcu is not b.rcu


def test_distinct_arenas_distinct_state(mem):
    a = Arena(mem, CFG, index=0)
    b = Arena(mem, CFG, index=1)
    assert a.chunks.head != b.chunks.head
    for sa, sb in zip(a.classes, b.classes):
        assert sa.sem.addr != sb.sem.addr
        assert sa.bins.head != sb.bins.head
