"""BinLayout address arithmetic: forward/reverse mapping, tails,
alignment guarantees (+ hypothesis roundtrips)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AllocatorConfig, BinLayout

CFG = AllocatorConfig()
LAYOUT = BinLayout(CFG)
CHUNK = 0x40000  # any chunk-aligned base


class TestForward:
    def test_bin_base(self):
        assert LAYOUT.bin_base(CHUNK, 0) == CHUNK
        assert LAYOUT.bin_base(CHUNK, 3) == CHUNK + 3 * 4096

    def test_tail_bases_live_in_special_bins(self):
        for b in range(2, CFG.bins_per_chunk):
            t = LAYOUT.tail_base(CHUNK, b)
            off = t - CHUNK
            assert 128 <= off < 2 * CFG.bin_size
            # never inside the 128-byte headers
            assert off % CFG.bin_size >= 128 or off >= CFG.bin_size + 128

    def test_tails_are_disjoint(self):
        tails = [LAYOUT.tail_base(CHUNK, b) for b in range(2, CFG.bins_per_chunk)]
        assert len(set(tails)) == len(tails)
        for a in tails:
            for b in tails:
                if a != b:
                    assert abs(a - b) >= CFG.tail_size

    def test_block_addr_main_region(self):
        # 256-byte blocks start right after the header
        assert LAYOUT.block_addr(CHUNK, 5, 256, 0) == CHUNK + 5 * 4096 + 128
        assert LAYOUT.block_addr(CHUNK, 5, 256, 1) == CHUNK + 5 * 4096 + 384

    def test_block_addr_tail_region(self):
        # 8-byte blocks: block 496 is the first at logical offset 4096
        addr = LAYOUT.block_addr(CHUNK, 2, 8, 496)
        assert addr == LAYOUT.tail_base(CHUNK, 2)


class TestReverse:
    def test_chunk_of(self):
        assert LAYOUT.chunk_of(0, CHUNK + 12345) == CHUNK
        assert LAYOUT.chunk_of(0, CHUNK) == CHUNK

    def test_locate_rejects_headers(self):
        with pytest.raises(ValueError):
            LAYOUT.locate(CHUNK, CHUNK + 64)  # chunk header
        with pytest.raises(ValueError):
            LAYOUT.locate(CHUNK, CHUNK + 5 * 4096 + 8)  # bin header

    def test_locate_rejects_outside(self):
        with pytest.raises(ValueError):
            LAYOUT.locate(CHUNK, CHUNK - 8)
        with pytest.raises(ValueError):
            LAYOUT.locate(CHUNK, CHUNK + CFG.chunk_size)

    def test_block_index_rejects_misaligned(self):
        with pytest.raises(ValueError):
            LAYOUT.block_index(129, 8)


SIZES = st.sampled_from(CFG.size_classes)


class TestRoundTrip:
    @given(size=SIZES, data=st.data())
    @settings(max_examples=300, deadline=None)
    def test_forward_then_reverse(self, size, data):
        cap = CFG.bin_capacity(size)
        bin_index = data.draw(st.integers(2, CFG.bins_per_chunk - 1))
        k = data.draw(st.integers(0, cap - 1))
        addr = LAYOUT.block_addr(CHUNK, bin_index, size, k)
        owner, logical = LAYOUT.locate(CHUNK, addr)
        assert owner == bin_index
        assert LAYOUT.block_index(logical, size) == k

    @given(size=SIZES, data=st.data())
    @settings(max_examples=300, deadline=None)
    def test_never_page_aligned(self, size, data):
        """The routing property malloc/free depend on (paper §4)."""
        cap = CFG.bin_capacity(size)
        bin_index = data.draw(st.integers(2, CFG.bins_per_chunk - 1))
        k = data.draw(st.integers(0, cap - 1))
        addr = LAYOUT.block_addr(CHUNK, bin_index, size, k)
        assert addr % CFG.page_size != 0

    @given(size=SIZES, data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_blocks_disjoint_within_bin(self, size, data):
        cap = CFG.bin_capacity(size)
        bin_index = data.draw(st.integers(2, CFG.bins_per_chunk - 1))
        k1 = data.draw(st.integers(0, cap - 1))
        k2 = data.draw(st.integers(0, cap - 1))
        a1 = LAYOUT.block_addr(CHUNK, bin_index, size, k1)
        a2 = LAYOUT.block_addr(CHUNK, bin_index, size, k2)
        if k1 != k2:
            assert abs(a1 - a2) >= size or abs(a1 - a2) == 0 and False

    def test_all_blocks_of_all_bins_disjoint_exhaustive_small(self):
        """Exhaustive disjointness for one size: every (bin, k) block of
        a chunk occupies a unique byte range, and none overlaps any
        header."""
        size = 128
        cap = CFG.bin_capacity(size)
        claimed = bytearray(CFG.chunk_size)
        # headers
        for h in range(128):
            claimed[h] = 1
            claimed[CFG.bin_size + h] = 1
        for b in range(2, CFG.bins_per_chunk):
            for h in range(128):
                claimed[b * CFG.bin_size + h] = 1
        for b in range(2, CFG.bins_per_chunk):
            for k in range(cap):
                addr = LAYOUT.block_addr(0, b, size, k)
                for byte in range(addr, addr + size):
                    assert claimed[byte] == 0, (b, k, byte)
                    claimed[byte] = 1
