"""RCU: grace-period correctness, delegation, callbacks, host drain."""

from repro.sim import DeviceMemory, Scheduler, ops
from repro.sync import RCU


def test_callback_runs_only_after_readers_exit(mem, run_kernel):
    """The core safety property: a callback enqueued while readers are
    inside their read sections must not run until they all left."""
    rcu = RCU(mem)
    active_readers = mem.host_alloc(8)
    violations = []

    def check_cb(ctx):
        inside = yield ops.load(active_readers)
        if inside:
            violations.append(inside)

    def reader(ctx):
        idx = yield from rcu.read_lock(ctx)
        yield ops.atomic_add(active_readers, 1)
        yield ops.sleep(ctx.rng.randrange(2000))
        yield ops.atomic_sub(active_readers, 1)
        yield from rcu.read_unlock(ctx, idx)

    def writer(ctx):
        yield ops.sleep(ctx.rng.randrange(500))
        yield from rcu.call(ctx, check_cb)
        yield from rcu.synchronize(ctx)

    sched_args = {}
    from repro.sim import Scheduler as S
    # readers and writers interleaved in one launch
    def kernel(ctx):
        if ctx.tid % 8 == 0:
            yield from writer(ctx)
        else:
            yield from reader(ctx)

    run_kernel(kernel, grid=4, block=64)
    assert violations == []
    assert rcu.pending_callbacks == 0


def test_conditional_barrier_delegates(mem, run_kernel):
    rcu = RCU(mem)
    ran = []

    def cb(ctx, tid):
        ran.append(tid)
        yield ops.sleep(1)

    def kernel(ctx):
        yield ops.sleep(ctx.rng.randrange(400))
        yield from rcu.call(ctx, cb, ctx.tid)
        yield from rcu.synchronize_conditional(ctx)

    run_kernel(kernel, grid=2, block=64)
    rcu.drain_host()
    assert sorted(ran) == list(range(128))
    # with 128 near-simultaneous writers, many must have delegated
    assert rcu.barriers_delegated > 0
    assert rcu.barriers_full >= 1


def test_delegated_callbacks_respect_grace_period(mem, run_kernel):
    """Delegation safety: a delegated callback must still wait for the
    readers present at its enqueue."""
    rcu = RCU(mem)
    active = mem.host_alloc(8)
    violations = []

    def cb(ctx):
        inside = yield ops.load(active)
        if inside:
            violations.append(inside)

    def kernel(ctx):
        if ctx.tid % 4 == 0:
            yield ops.sleep(ctx.rng.randrange(600))
            yield from rcu.call(ctx, cb)
            yield from rcu.synchronize_conditional(ctx)
        else:
            idx = yield from rcu.read_lock(ctx)
            yield ops.atomic_add(active, 1)
            yield ops.sleep(ctx.rng.randrange(1500))
            yield ops.atomic_sub(active, 1)
            yield from rcu.read_unlock(ctx, idx)

    run_kernel(kernel, grid=4, block=64)
    rcu.drain_host()
    assert violations == []


def test_synchronize_with_no_callbacks(mem, run_kernel):
    rcu = RCU(mem)

    def kernel(ctx):
        yield from rcu.synchronize(ctx)

    run_kernel(kernel, grid=1, block=8)
    assert rcu.barriers_full == 8


def test_drain_host_runs_pending(mem):
    rcu = RCU(mem)
    ran = []

    def cb(ctx, x):
        ran.append(x)
        yield ops.sleep(1)

    rcu._callbacks.append((cb, (1,)))
    rcu._callbacks.append((cb, (2,)))
    assert rcu.drain_host() == 2
    assert ran == [1, 2]
    assert rcu.pending_callbacks == 0


def test_callbacks_run_in_fifo_order(mem, run_kernel):
    rcu = RCU(mem)
    order = []

    def cb(ctx, k):
        order.append(k)
        yield ops.sleep(1)

    def kernel(ctx):
        # a single thread enqueues in sequence then synchronizes
        for k in range(5):
            yield from rcu.call(ctx, cb, k)
        yield from rcu.synchronize(ctx)

    run_kernel(kernel, grid=1, block=1)
    assert order == [0, 1, 2, 3, 4]
