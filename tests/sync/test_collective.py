"""Collective mutex: warp- and block-collective acquire/release."""

from repro.sim import DeviceMemory, Scheduler, ops
from repro.sync import CollectiveMutex, group_rank


def test_warp_collective_single_acquisition_per_group(mem, run_kernel):
    cm = CollectiveMutex(mem)
    inside = mem.host_alloc(8)
    acquisitions = mem.host_alloc(8)
    violations = []

    def kernel(ctx):
        mask = yield from cm.lock_warp(ctx)
        if ctx.lane == min(mask):
            yield ops.atomic_add(acquisitions, 1)
            old = yield ops.atomic_add(inside, 1)
            if old != 0:
                violations.append(ctx.tid)  # two groups inside at once
        yield ops.sleep(20)
        if ctx.lane == min(mask):
            yield ops.atomic_sub(inside, 1)
        yield from cm.unlock_warp(ctx, mask)

    run_kernel(kernel, grid=2, block=64)  # 4 warps
    assert violations == []
    assert mem.load_word(acquisitions) == 4  # one lock per warp group
    assert not cm.is_locked()


def test_warp_collective_members_cooperate_by_rank(mem, run_kernel):
    cm = CollectiveMutex(mem)
    slots = mem.host_alloc(8 * 64)
    cursor = mem.host_alloc(8)

    def kernel(ctx):
        mask = yield from cm.lock_warp(ctx)
        rank = group_rank(ctx, mask)
        # each member claims slot base+rank with one shared cursor read
        if rank == 0:
            base = yield ops.atomic_add(cursor, len(mask))
            yield ops.store(slots + 8 * 63, base)  # broadcast via memory
        yield ops.warp_sync(mask)
        base = yield ops.load(slots + 8 * 63)
        yield ops.store(slots + 8 * (base + rank), ctx.tid + 1)
        yield from cm.unlock_warp(ctx, mask)

    run_kernel(kernel, grid=1, block=32)
    taken = [mem.load_word(slots + 8 * i) for i in range(32)]
    assert all(taken), "every member claimed a distinct slot"
    assert len(set(taken)) == 32


def test_block_collective(mem, run_kernel):
    cm = CollectiveMutex(mem)
    counter = mem.host_alloc(8)
    acquisitions = mem.host_alloc(8)

    def kernel(ctx):
        yield from cm.lock_block(ctx)
        if ctx.tid_in_block == 0:
            yield ops.atomic_add(acquisitions, 1)
        yield ops.atomic_add(counter, 1)
        yield from cm.unlock_block(ctx)

    run_kernel(kernel, grid=4, block=32)
    assert mem.load_word(counter) == 128
    assert mem.load_word(acquisitions) == 4
    assert not cm.is_locked()


def test_plain_lock_degenerate_path(mem, run_kernel):
    cm = CollectiveMutex(mem)
    shared = mem.host_alloc(8)

    def kernel(ctx):
        yield from cm.lock(ctx)
        v = yield ops.load(shared)
        yield ops.sleep(11)
        yield ops.store(shared, v + 1)
        yield from cm.unlock(ctx)

    run_kernel(kernel, grid=1, block=64)
    assert mem.load_word(shared) == 64


def test_partial_warp_groups(mem, run_kernel):
    """Lanes that skip the collective don't block the participants."""
    cm = CollectiveMutex(mem)
    done = []

    def kernel(ctx):
        if ctx.lane % 2 == 0:
            return  # non-participant
        mask = yield from cm.lock_warp(ctx)
        assert all(l % 2 == 1 for l in mask)
        yield from cm.unlock_warp(ctx, mask)
        done.append(ctx.tid)

    run_kernel(kernel, grid=1, block=32)
    assert len(done) == 16
