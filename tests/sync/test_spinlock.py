"""SpinLock: mutual exclusion, try_lock, host inspection."""

from repro.sim import DeviceMemory, Scheduler, ops
from repro.sync import SpinLock


def test_mutual_exclusion_protects_read_modify_write(mem, run_kernel):
    lock = SpinLock(mem)
    shared = mem.host_alloc(8)

    def kernel(ctx):
        for _ in range(3):
            yield from lock.lock(ctx)
            v = yield ops.load(shared)
            yield ops.sleep(13)  # widen the race window
            yield ops.store(shared, v + 1)
            yield from lock.unlock(ctx)

    run_kernel(kernel, grid=4, block=32)
    assert mem.load_word(shared) == 4 * 32 * 3
    assert not lock.is_locked()


def test_critical_sections_never_overlap(mem, run_kernel):
    lock = SpinLock(mem)
    inside = mem.host_alloc(8)
    violations = []

    def kernel(ctx):
        yield from lock.lock(ctx)
        old = yield ops.atomic_add(inside, 1)
        if old != 0:
            violations.append(ctx.tid)
        yield ops.sleep(29)
        yield ops.atomic_sub(inside, 1)
        yield from lock.unlock(ctx)

    run_kernel(kernel, grid=2, block=64)
    assert violations == []


def test_try_lock_single_winner(mem, run_kernel):
    lock = SpinLock(mem)
    wins = []

    def kernel(ctx):
        got = yield from lock.try_lock(ctx)
        if got:
            wins.append(ctx.tid)

    run_kernel(kernel, grid=1, block=64)
    assert len(wins) == 1
    assert lock.is_locked()


def test_lock_at_explicit_address():
    mem = DeviceMemory(1 << 12)
    addr = mem.host_alloc(8)
    lock = SpinLock(mem, addr=addr)
    assert lock.addr == addr

    def kernel(ctx):
        yield from lock.lock(ctx)
        yield from lock.unlock(ctx)

    s = Scheduler(mem)
    s.launch(kernel, 1, 1)
    s.run()
    assert mem.load_word(addr) == 0
