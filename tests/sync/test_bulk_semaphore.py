"""Bulk semaphore: packing, Algorithm 1/2 semantics, two-stage
conservation, renege recovery, try_wait exactness — including
hypothesis property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import DeviceMemory, Scheduler, ops
from repro.sim.hostrun import drive, host_ctx
from repro.sync import BulkSemaphore, BulkSemaphoreOverflow, pack, unpack
from repro.sync.bulk_semaphore import C_GUARD, E_MAX, R_MAX


class TestPacking:
    @given(
        c=st.integers(0, C_GUARD - 1),
        e=st.integers(0, E_MAX),
        r=st.integers(0, R_MAX),
    )
    def test_roundtrip(self, c, e, r):
        assert unpack(pack(c, e, r)) == (c, e, r)

    def test_out_of_range_raises(self):
        with pytest.raises(BulkSemaphoreOverflow):
            pack(C_GUARD, 0, 0)
        with pytest.raises(BulkSemaphoreOverflow):
            pack(0, E_MAX + 1, 0)
        with pytest.raises(BulkSemaphoreOverflow):
            pack(0, 0, -1)

    @given(st.integers(0, (1 << 64) - 1))
    def test_unpack_total_function(self, word):
        c, e, r = unpack(word)
        assert 0 <= c and 0 <= e <= E_MAX and 0 <= r <= R_MAX


class TestSequentialSemantics:
    """Algorithm 1 & 2 run through the host driver (single thread)."""

    def _sem(self, initial=0):
        mem = DeviceMemory(1 << 12)
        return mem, BulkSemaphore(mem, initial=initial)

    def test_wait_takes_available_units(self):
        mem, sem = self._sem(initial=5)
        assert drive(mem, sem.wait(host_ctx(), 2, 4)) == 0
        assert sem.counters == (3, 0, 0)

    def test_wait_promises_batch_when_empty(self):
        mem, sem = self._sem()
        assert drive(mem, sem.wait(host_ctx(), 1, 4)) == -1
        assert sem.counters == (0, 3, 0)

    def test_fulfill_publishes_promised_units(self):
        mem, sem = self._sem()
        drive(mem, sem.wait(host_ctx(), 1, 4))
        drive(mem, sem.fulfill(host_ctx(), 3))
        assert sem.counters == (3, 0, 0)

    def test_renege_withdraws_promise(self):
        mem, sem = self._sem()
        drive(mem, sem.wait(host_ctx(), 1, 4))
        drive(mem, sem.renege(host_ctx(), 3))
        assert sem.counters == (0, 0, 0)

    def test_post_adds_units(self):
        mem, sem = self._sem()
        drive(mem, sem.post(host_ctx(), 7))
        assert sem.value == 7

    def test_signal_general_form(self):
        mem, sem = self._sem()
        drive(mem, sem.wait(host_ctx(), 1, 3))  # E = 2
        drive(mem, sem.signal(host_ctx(), 5, 2))  # C += 7, E -= 2
        assert sem.counters == (7, 0, 0)

    def test_try_wait(self):
        mem, sem = self._sem(initial=2)
        assert drive(mem, sem.try_wait(host_ctx(), 2)) is True
        assert drive(mem, sem.try_wait(host_ctx(), 1)) is False
        assert sem.counters == (0, 0, 0)

    def test_wait_validates_arguments(self):
        mem, sem = self._sem()
        with pytest.raises(ValueError):
            drive(mem, sem.wait(host_ctx(), 0, 4))
        with pytest.raises(ValueError):
            drive(mem, sem.wait(host_ctx(), 5, 4))

    def test_wait_equal_batch_always_promises_when_empty(self):
        # b == n: every uncovered thread is its own batch allocator
        mem, sem = self._sem()
        assert drive(mem, sem.wait(host_ctx(), 2, 2)) == -1
        assert sem.counters == (0, 0, 0)

    @given(initial=st.integers(1, 100), n=st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_wait_never_overdraws(self, initial, n):
        mem, sem = self._sem(initial=initial)
        r = drive(mem, sem.wait(host_ctx(), n, max(n, 10)))
        c, e, _ = sem.counters
        if r == 0:
            assert c == initial - n
        else:
            assert c == initial  # promised instead


class TestConcurrentConservation:
    @pytest.mark.parametrize("batch,n_threads", [(4, 64), (8, 256), (32, 512)])
    def test_units_conserved(self, batch, n_threads):
        mem = DeviceMemory(1 << 16)
        sem = BulkSemaphore(mem)
        produced = mem.host_alloc(8)

        def kernel(ctx):
            r = yield from sem.wait(ctx, 1, batch)
            if r == -1:
                yield ops.sleep(200)
                yield ops.atomic_add(produced, batch)
                yield from sem.fulfill(ctx, batch - 1)

        s = Scheduler(mem, seed=batch)
        s.launch(kernel, -(-n_threads // 64), 64)
        s.run(max_events=20_000_000)
        c, e, r = sem.counters
        assert e == 0 and r == 0
        assert mem.load_word(produced) - n_threads == c

    def test_exact_batch_admission(self):
        """Exactly ceil(N / (b-1)) batches for N units of cold demand."""
        mem = DeviceMemory(1 << 16)
        sem = BulkSemaphore(mem)
        refills = mem.host_alloc(8)

        def kernel(ctx):
            r = yield from sem.wait(ctx, 1, 128)
            if r == -1:
                yield ops.atomic_add(refills, 1)
                yield from sem.fulfill(ctx, 127)

        s = Scheduler(mem, seed=1)
        s.launch(kernel, 8, 128)  # 1024 threads
        s.run(max_events=20_000_000)
        ideal = -(-1024 // 128)  # one batch serves b demands
        # modest over-provisioning is allowed (depth collisions), gross
        # over-promising is a regression
        assert ideal <= mem.load_word(refills) <= ideal + 4

    def test_renege_recovers_waiters(self):
        """A failed batch allocation must not strand reserved waiters."""
        mem = DeviceMemory(1 << 16)
        sem = BulkSemaphore(mem)
        outcomes = []

        def kernel(ctx):
            r = yield from sem.wait(ctx, 1, 8)
            if r == -1:
                if ctx.tid % 2 == 0:
                    yield ops.sleep(500)
                    yield from sem.renege(ctx, 7)  # allocation "failed"
                    outcomes.append("renege")
                else:
                    yield from sem.fulfill(ctx, 7)
                    outcomes.append("fulfill")
            else:
                outcomes.append("got")

        s = Scheduler(mem, seed=5)
        s.launch(kernel, 2, 64)
        s.run(max_events=20_000_000)  # termination is the assertion
        assert len(outcomes) == 128
        c, e, r = sem.counters
        assert e == 0 and r == 0

    def test_try_wait_concurrent_exactness(self):
        mem = DeviceMemory(1 << 16)
        sem = BulkSemaphore(mem, initial=100)
        wins = mem.host_alloc(8)

        def kernel(ctx):
            got = yield from sem.try_wait(ctx, 1)
            if got:
                yield ops.atomic_add(wins, 1)

        s = Scheduler(mem, seed=2)
        s.launch(kernel, 4, 64)  # 256 threads contend for 100 units
        s.run(max_events=20_000_000)
        assert mem.load_word(wins) == 100
        assert sem.counters == (0, 0, 0)
