"""Bulk semaphore: packing, Algorithm 1/2 semantics, two-stage
conservation, renege recovery, try_wait exactness — including
hypothesis property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import DeviceMemory, Scheduler, ops
from repro.sim.hostrun import drive, host_ctx
from repro.sync import BulkSemaphore, BulkSemaphoreOverflow, pack, unpack
from repro.sync.bulk_semaphore import C_GUARD, E_MAX, R_MAX


class TestPacking:
    @given(
        c=st.integers(0, C_GUARD - 1),
        e=st.integers(0, E_MAX),
        r=st.integers(0, R_MAX),
    )
    def test_roundtrip(self, c, e, r):
        assert unpack(pack(c, e, r)) == (c, e, r)

    def test_out_of_range_raises(self):
        with pytest.raises(BulkSemaphoreOverflow):
            pack(C_GUARD, 0, 0)
        with pytest.raises(BulkSemaphoreOverflow):
            pack(0, E_MAX + 1, 0)
        with pytest.raises(BulkSemaphoreOverflow):
            pack(0, 0, -1)

    @given(st.integers(0, (1 << 64) - 1))
    def test_unpack_total_function(self, word):
        c, e, r = unpack(word)
        assert 0 <= c and 0 <= e <= E_MAX and 0 <= r <= R_MAX


class TestSequentialSemantics:
    """Algorithm 1 & 2 run through the host driver (single thread)."""

    def _sem(self, initial=0):
        mem = DeviceMemory(1 << 12)
        return mem, BulkSemaphore(mem, initial=initial)

    def test_wait_takes_available_units(self):
        mem, sem = self._sem(initial=5)
        assert drive(mem, sem.wait(host_ctx(), 2, 4)) == 0
        assert sem.counters == (3, 0, 0)

    def test_wait_promises_batch_when_empty(self):
        mem, sem = self._sem()
        assert drive(mem, sem.wait(host_ctx(), 1, 4)) == -1
        assert sem.counters == (0, 3, 0)

    def test_fulfill_publishes_promised_units(self):
        mem, sem = self._sem()
        drive(mem, sem.wait(host_ctx(), 1, 4))
        drive(mem, sem.fulfill(host_ctx(), 3))
        assert sem.counters == (3, 0, 0)

    def test_renege_withdraws_promise(self):
        mem, sem = self._sem()
        drive(mem, sem.wait(host_ctx(), 1, 4))
        drive(mem, sem.renege(host_ctx(), 3))
        assert sem.counters == (0, 0, 0)

    def test_post_adds_units(self):
        mem, sem = self._sem()
        drive(mem, sem.post(host_ctx(), 7))
        assert sem.value == 7

    def test_signal_general_form(self):
        mem, sem = self._sem()
        drive(mem, sem.wait(host_ctx(), 1, 3))  # E = 2
        drive(mem, sem.signal(host_ctx(), 5, 2))  # C += 7, E -= 2
        assert sem.counters == (7, 0, 0)

    def test_try_wait(self):
        mem, sem = self._sem(initial=2)
        assert drive(mem, sem.try_wait(host_ctx(), 2)) is True
        assert drive(mem, sem.try_wait(host_ctx(), 1)) is False
        assert sem.counters == (0, 0, 0)

    def test_wait_validates_arguments(self):
        mem, sem = self._sem()
        with pytest.raises(ValueError):
            drive(mem, sem.wait(host_ctx(), 0, 4))
        with pytest.raises(ValueError):
            drive(mem, sem.wait(host_ctx(), 5, 4))

    def test_wait_equal_batch_always_promises_when_empty(self):
        # b == n: every uncovered thread is its own batch allocator
        mem, sem = self._sem()
        assert drive(mem, sem.wait(host_ctx(), 2, 2)) == -1
        assert sem.counters == (0, 0, 0)

    @given(initial=st.integers(1, 100), n=st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_wait_never_overdraws(self, initial, n):
        mem, sem = self._sem(initial=initial)
        r = drive(mem, sem.wait(host_ctx(), n, max(n, 10)))
        c, e, _ = sem.counters
        if r == 0:
            assert c == initial - n
        else:
            assert c == initial  # promised instead


class TestConcurrentConservation:
    @pytest.mark.parametrize("batch,n_threads", [(4, 64), (8, 256), (32, 512)])
    def test_units_conserved(self, batch, n_threads):
        mem = DeviceMemory(1 << 16)
        sem = BulkSemaphore(mem)
        produced = mem.host_alloc(8)

        def kernel(ctx):
            r = yield from sem.wait(ctx, 1, batch)
            if r == -1:
                yield ops.sleep(200)
                yield ops.atomic_add(produced, batch)
                yield from sem.fulfill(ctx, batch - 1)

        s = Scheduler(mem, seed=batch)
        s.launch(kernel, -(-n_threads // 64), 64)
        s.run(max_events=20_000_000)
        c, e, r = sem.counters
        assert e == 0 and r == 0
        assert mem.load_word(produced) - n_threads == c

    def test_exact_batch_admission(self):
        """Exactly ceil(N / (b-1)) batches for N units of cold demand."""
        mem = DeviceMemory(1 << 16)
        sem = BulkSemaphore(mem)
        refills = mem.host_alloc(8)

        def kernel(ctx):
            r = yield from sem.wait(ctx, 1, 128)
            if r == -1:
                yield ops.atomic_add(refills, 1)
                yield from sem.fulfill(ctx, 127)

        s = Scheduler(mem, seed=1)
        s.launch(kernel, 8, 128)  # 1024 threads
        s.run(max_events=20_000_000)
        ideal = -(-1024 // 128)  # one batch serves b demands
        # modest over-provisioning is allowed (depth collisions), gross
        # over-promising is a regression
        assert ideal <= mem.load_word(refills) <= ideal + 4

    def test_renege_recovers_waiters(self):
        """A failed batch allocation must not strand reserved waiters."""
        mem = DeviceMemory(1 << 16)
        sem = BulkSemaphore(mem)
        outcomes = []

        def kernel(ctx):
            r = yield from sem.wait(ctx, 1, 8)
            if r == -1:
                if ctx.tid % 2 == 0:
                    yield ops.sleep(500)
                    yield from sem.renege(ctx, 7)  # allocation "failed"
                    outcomes.append("renege")
                else:
                    yield from sem.fulfill(ctx, 7)
                    outcomes.append("fulfill")
            else:
                outcomes.append("got")

        s = Scheduler(mem, seed=5)
        s.launch(kernel, 2, 64)
        s.run(max_events=20_000_000)  # termination is the assertion
        assert len(outcomes) == 128
        c, e, r = sem.counters
        assert e == 0 and r == 0

    def test_renege_collapse_promotes_new_promiser(self):
        """After ``wait(n, b) == -1`` and ``renege(b - n)``, the reserved
        waiters must observe the expectation collapse, re-triage, and
        exactly one must take over as the new designated batch promiser
        (the collapsed batch's demand is still uncovered)."""
        mem = DeviceMemory(1 << 16)
        sem = BulkSemaphore(mem)
        roles = []

        def kernel(ctx):
            if ctx.tid == 0:
                r = yield from sem.wait(ctx, 1, 8)
                assert r == -1  # first on an empty sem: designated
                yield ops.sleep(5_000)  # let every waiter reserve
                yield from sem.renege(ctx, 7)  # allocation "failed"
                roles.append(("renege", ctx.tid))
                return
            yield ops.sleep(100 + ctx.tid)  # reserve after the promise
            r = yield from sem.wait(ctx, 1, 8)
            if r == -1:
                yield from sem.fulfill(ctx, 7)  # the hand-off succeeds
                roles.append(("promiser", ctx.tid))
            else:
                roles.append(("claimed", ctx.tid))

        s = Scheduler(mem, seed=11)
        s.launch(kernel, 1, 6)  # tid 0 + 5 waiters
        s.run(max_events=5_000_000)
        promisers = [t for role, t in roles if role == "promiser"]
        claimed = [t for role, t in roles if role == "claimed"]
        assert len(promisers) == 1, roles  # one waiter took over the batch
        assert promisers[0] != 0  # ... and it was a re-triaged waiter
        assert len(claimed) == 4  # the rest were covered by its batch
        c, e, r = sem.counters
        assert (c, e, r) == (3, 0, 0)  # 8 per batch - 5 demands, all settled

    def test_backoff_resets_after_collapse_retriage(self):
        """Regression (post-renege recovery latency): ``wait`` never
        reset its backoff after an expectation-collapse re-triage, so a
        waiter that idled behind a long-dead promise carried a saturated
        (``max_backoff``-cycle) sleep into its next covered spin and
        observed fresh supply up to 16k cycles late.

        White-box: drive one covered waiter by hand, saturate its
        backoff against a phantom promise, renege that promise, re-cover
        the waiter with a fresh promise the moment it un-reserves, and
        measure its first post-collapse sleep — which must restart from
        the initial backoff window, not the saturated one.
        """
        from repro.sim.hostrun import _exec
        from repro.sync.bulk_semaphore import R_SHIFT, _MASK64

        mem = DeviceMemory(1 << 12)
        sem = BulkSemaphore(mem)
        # phantom promiser: wait(1, 4) on an empty sem -> -1, E = 3
        assert drive(mem, sem.wait(host_ctx(seed=1), 1, 4)) == -1
        g = sem.wait(host_ctx(seed=3), 1, 4)  # the covered waiter

        unreserve = (-(1 << R_SHIFT)) & _MASK64
        pre_sleeps, post_sleeps = [], []
        collapsed = fulfilled = False
        result = None
        try:
            while True:
                op = g.send(result)
                if op[0] == ops.OP_SLEEP:
                    (post_sleeps if collapsed else pre_sleeps).append(op[1])
                result = _exec(mem, op)
                if not collapsed and len(pre_sleeps) == 15:
                    # backoff is saturated; the phantom's allocation fails
                    drive(mem, sem.renege(host_ctx(seed=1), 3))
                    collapsed = True
                elif collapsed and op[0] == ops.OP_ADD and op[2] == unreserve:
                    # waiter observed the collapse and un-reserved: cover
                    # it again with a fresh phantom promise (no supply
                    # yet, so its next covered spin must sleep)
                    assert drive(mem, sem.wait(host_ctx(seed=2), 1, 4)) == -1
                elif collapsed and len(post_sleeps) == 1 and not fulfilled:
                    # first covered sleep measured: publish the supply so
                    # the waiter's next claim succeeds
                    drive(mem, sem.fulfill(host_ctx(seed=2), 3))
                    fulfilled = True
        except StopIteration as stop:
            assert stop.value == 0  # the waiter claimed a unit
        assert max(pre_sleeps) > 4096, "backoff never saturated pre-collapse"
        # The first covered sleep after the re-triage must come from the
        # initial backoff window (32), not the saturated one (16384).
        assert post_sleeps, "waiter claimed without ever sleeping covered"
        assert post_sleeps[0] < 32, (
            f"first post-collapse sleep was {post_sleeps[0]} cycles: "
            "backoff carried over the collapse re-triage"
        )
        c, e, r = sem.counters
        assert e == 0 and r == 0

    def test_try_wait_concurrent_exactness(self):
        mem = DeviceMemory(1 << 16)
        sem = BulkSemaphore(mem, initial=100)
        wins = mem.host_alloc(8)

        def kernel(ctx):
            got = yield from sem.try_wait(ctx, 1)
            if got:
                yield ops.atomic_add(wins, 1)

        s = Scheduler(mem, seed=2)
        s.launch(kernel, 4, 64)  # 256 threads contend for 100 units
        s.run(max_events=20_000_000)
        assert mem.load_word(wins) == 100
        assert sem.counters == (0, 0, 0)
