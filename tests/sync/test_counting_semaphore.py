"""Counting semaphore (grow/shrink variant, paper §3.2)."""

import pytest

from repro.sim import DeviceMemory, Scheduler, ops
from repro.sim.hostrun import drive, host_ctx
from repro.sync import CountingSemaphore


class TestSequential:
    def _sem(self, initial=0):
        mem = DeviceMemory(1 << 12)
        return mem, CountingSemaphore(mem, initial=initial)

    def test_rejects_negative_initial(self):
        mem = DeviceMemory(1 << 12)
        with pytest.raises(ValueError):
            CountingSemaphore(mem, initial=-1)

    def test_wait_acquires_when_available(self):
        mem, sem = self._sem(initial=3)
        assert drive(mem, sem.wait(host_ctx(), 2)) == 2
        assert sem.value == 1

    def test_wait_partial_returns_remainder_and_flags(self):
        """Paper: if N > S >= 0, S <- -1 and return S."""
        mem, sem = self._sem(initial=1)
        assert drive(mem, sem.wait(host_ctx(), 3)) == 1
        assert sem.value == CountingSemaphore.GROWING

    def test_signal_after_grow_matches_figure_1a(self):
        """signal(B) lands on the -1 flag: value becomes B - 1."""
        mem, sem = self._sem()
        assert drive(mem, sem.wait(host_ctx(), 1)) == 0
        drive(mem, sem.signal(host_ctx(), 4))
        assert sem.value == 3

    def test_try_wait(self):
        mem, sem = self._sem(initial=2)
        assert drive(mem, sem.try_wait(host_ctx(), 2)) is True
        assert drive(mem, sem.try_wait(host_ctx(), 1)) is False


class TestConcurrent:
    def test_two_stage_conservation(self):
        mem = DeviceMemory(1 << 16)
        sem = CountingSemaphore(mem)
        produced = mem.host_alloc(8)
        batch = 16

        def kernel(ctx):
            r = yield from sem.wait(ctx, 1)
            if r < 1:
                yield ops.sleep(300)
                yield ops.atomic_add(produced, batch)
                yield from sem.signal(ctx, batch)

        s = Scheduler(mem, seed=3)
        s.launch(kernel, 4, 64)
        s.run(max_events=20_000_000)
        # every thread consumed one unit; the -1 flag absorbed one per batch
        assert mem.load_word(produced) - 256 == sem.value
        assert sem.value >= 0

    def test_single_batch_allocator_at_a_time(self):
        """The defining serial-refill property: the GROWING flag admits
        exactly one refiller at a time."""
        mem = DeviceMemory(1 << 16)
        sem = CountingSemaphore(mem)
        concurrent = mem.host_alloc(8)
        violations = []

        def kernel(ctx):
            r = yield from sem.wait(ctx, 1)
            if r < 1:
                old = yield ops.atomic_add(concurrent, 1)
                if old != 0:
                    violations.append(ctx.tid)
                yield ops.sleep(200)
                yield ops.atomic_sub(concurrent, 1)
                yield from sem.signal(ctx, 8)

        s = Scheduler(mem, seed=4)
        s.launch(kernel, 4, 64)
        s.run(max_events=20_000_000)
        assert violations == []

    def test_no_unit_lost_under_contention(self):
        mem = DeviceMemory(1 << 16)
        sem = CountingSemaphore(mem, initial=300)
        got = mem.host_alloc(8)

        def kernel(ctx):
            ok = yield from sem.try_wait(ctx, 1)
            if ok:
                yield ops.atomic_add(got, 1)

        s = Scheduler(mem, seed=5)
        s.launch(kernel, 8, 64)  # 512 threads, 300 units
        s.run(max_events=20_000_000)
        assert mem.load_word(got) == 300
        assert sem.value == 0
