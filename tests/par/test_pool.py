"""The sharding engine: order preservation, fallbacks, failure modes."""

from __future__ import annotations

import time

import pytest

from repro.par.pool import map_sharded, preferred_start_method, resolve_workers


def _square(x: int) -> int:
    return x * x


def _sleepy_square(x: int) -> int:
    time.sleep(0.4)
    return x * x


def _explode_on_three(x: int) -> int:
    if x == 3:
        raise ValueError("shard went bad")
    return x


def _boom_or_sleep(x: int) -> int:
    if x == 0:
        raise ValueError("fast shard went bad")
    time.sleep(5.0)
    return x


class TestResolveWorkers:
    def test_auto_is_at_least_one(self):
        assert resolve_workers(0) >= 1

    def test_auto_is_capped(self):
        assert resolve_workers(0) <= 8

    def test_explicit_is_literal(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(5) == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestMapSharded:
    def test_inline_matches_comprehension(self):
        items = list(range(7))
        assert map_sharded(_square, items, workers=1) == [x * x for x in items]

    def test_sharded_matches_inline(self):
        items = list(range(11))
        serial = map_sharded(_square, items, workers=1)
        sharded = map_sharded(_square, items, workers=3)
        assert sharded == serial

    def test_order_is_submission_order(self):
        # Regardless of which worker finishes first, index i holds f(items[i]).
        items = [9, 2, 5, 0, 7]
        assert map_sharded(_square, items, workers=2) == [81, 4, 25, 0, 49]

    def test_empty_items(self):
        assert map_sharded(_square, [], workers=4) == []

    def test_single_item_runs_inline(self):
        assert map_sharded(_square, [6], workers=4) == [36]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="shard went bad"):
            map_sharded(_explode_on_three, [1, 2, 3, 4], workers=2)

    def test_inline_exception_propagates(self):
        with pytest.raises(ValueError, match="shard went bad"):
            map_sharded(_explode_on_three, [3], workers=1)

    def test_failure_does_not_wait_for_slow_shards(self):
        # Regression: a worker exception used to re-raise only after the
        # executor's context exit drained every in-flight shard, so a
        # failing deck with one slow case reported its failure seconds
        # (or, on real decks, minutes) late.  The raise must beat the
        # slow sibling's 5-second runtime by a wide margin.
        t0 = time.monotonic()
        with pytest.raises(ValueError, match="fast shard went bad"):
            map_sharded(_boom_or_sleep, [1, 0], workers=2)
        assert time.monotonic() - t0 < 3.0

    def test_empty_items_still_log_a_deck_line(self):
        # The inline path used to skip logging entirely for an empty
        # deck, so `verify --scenario x --seeds ''`-style runs looked
        # hung rather than trivially complete.
        lines: list = []
        assert map_sharded(_square, [], workers=1, log=lines.append) == []
        assert lines == ["  [0/0] empty deck — nothing to run"]

    def test_log_sees_every_item(self):
        lines: list = []
        map_sharded(_square, [1, 2, 3], workers=2, log=lines.append)
        assert len(lines) == 3
        # progress lines carry completion counters over the full deck size
        assert all("/3]" in line for line in lines)

    def test_preferred_start_method_is_known(self):
        assert preferred_start_method() in ("fork", "spawn")


class TestHeartbeat:
    def test_slow_shards_emit_liveness_lines(self):
        # With a heartbeat shorter than the shard runtime, at least one
        # "still running" line must appear, naming an in-flight shard —
        # long decks must never be indistinguishable from a hang.
        lines: list = []
        out = map_sharded(_sleepy_square, [2, 3], workers=2,
                          log=lines.append, heartbeat_s=0.1)
        assert out == [4, 9]
        beats = [ln for ln in lines if "still running" in ln]
        assert beats, f"no heartbeat line in {lines!r}"
        assert any("2" in b or "3" in b for b in beats)
        # completion lines still arrive, one per shard, after the beats
        assert sum("/2]" in ln and "still running" not in ln
                   for ln in lines) == 2

    def test_heartbeat_counter_reflects_completions(self):
        lines: list = []
        map_sharded(_sleepy_square, [1], workers=1,
                    log=lines.append, heartbeat_s=0.05)
        # inline path (single item): no heartbeats, just the progress line
        assert lines == ["  [1/1] 1"]
