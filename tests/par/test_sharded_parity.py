"""Sharded runs must be indistinguishable from serial runs.

The whole point of :mod:`repro.par` is that ``--workers N`` is a pure
wall-clock knob: the merged results of a sharded deck — order included —
are identical to the serial runner's, for every subsystem that shards.
"""

from __future__ import annotations

from repro.perf.suite import run_suite
from repro.resil.runner import QUICK_DECK, run_deck
from repro.verify.perturbation import SMOKE_DECK, Perturbation
from repro.verify.runner import CaseResult, sweep


def _fake_failing_run_case(spec):
    """Picklable stand-in: fails exactly the seed-1 cases."""
    res = CaseResult(spec)
    if spec.seed == 1:
        res.error = "InjectedFailure: boom"
    return res


class TestVerifyShardedParity:
    def test_sweep_matches_serial(self):
        kwargs = dict(seeds=range(2), deck=SMOKE_DECK[:2],
                      scenarios=["churn"])
        serial = sweep(**kwargs)
        sharded = sweep(workers=2, **kwargs)
        assert [r.describe() for r in sharded] == \
               [r.describe() for r in serial]
        assert [r.spec for r in sharded] == [r.spec for r in serial]

    def test_fail_fast_truncates_at_first_failure(self, monkeypatch):
        from repro.verify import runner

        monkeypatch.setattr(runner, "run_case", _fake_failing_run_case)
        kwargs = dict(seeds=[0, 1, 2], deck=[Perturbation()],
                      scenarios=["churn"], fail_fast=True)
        serial = runner.sweep(**kwargs)
        sharded = runner.sweep(workers=2, **kwargs)
        assert [r.spec for r in serial] == [r.spec for r in sharded]
        assert len(sharded) == 2 and not sharded[-1].ok


class TestResilShardedParity:
    def test_deck_matches_serial(self):
        deck = QUICK_DECK[3:5]  # the two cheap churn cases
        serial = run_deck(deck, replay_check=False)
        sharded = run_deck(deck, replay_check=False, workers=2)
        assert [r.describe() for r in sharded] == \
               [r.describe() for r in serial]
        assert [r.trace for r in sharded] == [r.trace for r in serial]


class TestPerfShardedParity:
    def test_suite_matches_serial(self):
        names = ["fig5", "fig6"]
        serial = run_suite("quick", names=names, repeats=1)
        sharded = run_suite("quick", names=names, repeats=1, workers=2)
        assert [c.case for c in sharded.cases] == names

        def virtuals(suite):
            return [
                {k: v for k, v in c.metrics.items()
                 if k.startswith("virtual:")}
                for c in suite.cases
            ]

        # Byte-identical virtual metrics; wall:seconds is the one field
        # allowed to differ (it measures a time-shared host).
        assert virtuals(sharded) == virtuals(serial)
        assert [(c.seed, c.params, c.repeats) for c in sharded.cases] == \
               [(c.seed, c.params, c.repeats) for c in serial.cases]
