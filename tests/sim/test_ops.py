"""Op constructors: tuple shapes, 64-bit masking, signed helpers."""

import pytest

from repro.sim import ops

M64 = (1 << 64) - 1


class TestConstructors:
    def test_opcodes_distinct(self):
        codes = [
            ops.OP_SLEEP, ops.OP_LOAD, ops.OP_STORE, ops.OP_CAS, ops.OP_ADD,
            ops.OP_EXCH, ops.OP_AND, ops.OP_OR, ops.OP_XOR, ops.OP_MAX,
            ops.OP_MIN, ops.OP_BARRIER, ops.OP_WARP_CONV, ops.OP_YIELD,
            ops.OP_WARP_SYNC, ops.OP_WARP_MATCH, ops.OP_WARP_BCAST,
        ]
        assert len(set(codes)) == len(codes)

    def test_atomics_fall_in_dispatch_range(self):
        # the scheduler dispatches atomics as OP_CAS <= code <= OP_MIN
        for code in (ops.OP_ADD, ops.OP_EXCH, ops.OP_AND, ops.OP_OR,
                     ops.OP_XOR, ops.OP_MAX):
            assert ops.OP_CAS <= code <= ops.OP_MIN

    def test_store_masks(self):
        assert ops.store(8, -1) == (ops.OP_STORE, 8, M64)
        assert ops.store(8, 1 << 64) == (ops.OP_STORE, 8, 0)

    def test_cas_masks_both_values(self):
        op = ops.atomic_cas(0, -1, 1 << 65)
        assert op == (ops.OP_CAS, 0, M64, 0)

    def test_sub_is_wrapping_add(self):
        op = ops.atomic_sub(0, 5)
        assert op[0] == ops.OP_ADD
        assert op[2] == (M64 - 4)

    def test_simple_shapes(self):
        assert ops.sleep(7) == (ops.OP_SLEEP, 7)
        assert ops.cpu_yield() == (ops.OP_YIELD,)
        assert ops.syncthreads() == (ops.OP_BARRIER,)
        assert ops.warp_converge() == (ops.OP_WARP_CONV,)
        assert ops.load(16) == (ops.OP_LOAD, 16)

    def test_warp_ops_carry_args(self):
        m = frozenset({1, 2})
        assert ops.warp_sync(m) == (ops.OP_WARP_SYNC, m)
        assert ops.warp_match("k") == (ops.OP_WARP_MATCH, "k")
        assert ops.warp_broadcast(m, 9) == (ops.OP_WARP_BCAST, m, 9)


class TestSignedHelpers:
    @pytest.mark.parametrize("v", [0, 1, -1, 2**63 - 1, -(2**63), 12345, -999])
    def test_roundtrip(self, v):
        assert ops.to_signed(ops.to_unsigned(v)) == v

    def test_boundaries(self):
        assert ops.to_signed(M64) == -1
        assert ops.to_signed(1 << 63) == -(1 << 63)
        assert ops.to_signed((1 << 63) - 1) == (1 << 63) - 1
        assert ops.to_unsigned(-1) == M64
