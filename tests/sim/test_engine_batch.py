"""Cross-engine parity: the batch-stepped loop against the event loop.

The contract under test (DESIGN.md §15): for any kernel, seed and knob
setting, ``Scheduler(engine="batch")`` produces the *identical virtual
run* as ``engine="event"`` — same cycles, same event count, same op
counts, same memory effects, same per-thread results, same schedule
digests at every probe, and the same errors at the same budgets.  Wall
time is the only permitted difference.  The full-deck version of this
contract is ``python -m repro perf parity``; these are the microkernel
teeth that fail fast and point at the divergent primitive.
"""

from __future__ import annotations

import pytest

from repro.sim import DeviceMemory, Scheduler, ops
from repro.sim.errors import EventBudgetExceeded
from repro.sim.scheduler import (
    ENGINES,
    default_engine,
    set_default_engine,
    use_engine,
)

WORDS = 4  # contended-word count for the atomics microkernels


def _run_pair(build, *, seed=0, probe=False, **sched_kw):
    """Run the same build under both engines; return the two outcomes.

    ``build(scheduler, memory)`` launches kernels and returns a
    function extracting the kernel-visible effects (results, memory
    words) after the run.  The outcome tuple is everything the parity
    contract pins: report fields, effects, and (optionally) the digest
    stream from the schedule probe.
    """
    outcomes = []
    for engine in ENGINES:
        mem = DeviceMemory(1 << 16)
        digests: list = []
        kw = dict(sched_kw)
        if probe:
            kw["schedule_probe"] = digests.append
            kw["probe_every"] = 64
        s = Scheduler(mem, seed=seed, engine=engine, **kw)
        extract = build(s, mem)
        report = s.run()
        outcomes.append((
            report.cycles, report.events, report.n_threads,
            dict(report.op_counts), extract(), tuple(digests),
        ))
    return outcomes


def _assert_parity(build, **kw):
    event, batch = _run_pair(build, **kw)
    assert batch == event


class TestMicrokernelParity:
    def test_contended_atomics(self):
        def build(s, mem):
            base = mem.host_alloc(8 * WORDS)

            def kernel(ctx):
                for i in range(6):
                    yield ops.atomic_add(base + 8 * ((ctx.tid + i) % WORDS), 1)
                v = yield ops.load(base)
                return v

            h = s.launch(kernel, 2, 64)
            return lambda: (h.results,
                            [mem.load_word(base + 8 * i) for i in range(WORDS)])

        _assert_parity(build, probe=True)

    def test_mixed_atomic_flavours(self):
        def build(s, mem):
            word = mem.host_alloc(8)

            def kernel(ctx):
                yield ops.atomic_max(word, ctx.tid)
                yield ops.atomic_xor(word, ctx.tid * 3)
                old = yield ops.atomic_cas(word, ctx.tid, 7)
                return old

            h = s.launch(kernel, 1, 32)
            return lambda: (h.results, mem.load_word(word))

        _assert_parity(build)

    def test_barriers_with_phases(self):
        def build(s, mem):
            cell = mem.host_alloc(8)

            def kernel(ctx):
                yield ops.atomic_add(cell, 1)
                yield ops.syncthreads()
                v = yield ops.load(cell)   # all increments visible
                yield ops.sleep(1 + ctx.tid % 5)
                yield ops.syncthreads()
                return v

            h = s.launch(kernel, 2, 32)
            return lambda: h.results

        _assert_parity(build, probe=True)

    def test_warp_primitives(self):
        def build(s, mem):
            def kernel(ctx):
                yield ops.sleep(ctx.lane % 7)
                yield ops.warp_converge()
                mask = frozenset(range(32))
                got = yield ops.warp_broadcast(mask, ctx.lane
                                               if ctx.lane == 0
                                               else ops.NO_PAYLOAD)
                peers = yield ops.warp_match(ctx.lane % 2)
                yield ops.warp_sync(mask)
                return (got, len(peers))

            h = s.launch(kernel, 1, 64)
            return lambda: h.results

        _assert_parity(build)

    def test_sleep_yield_skew(self):
        def build(s, mem):
            def kernel(ctx):
                total = 0
                for i in range(4):
                    yield ops.sleep((ctx.tid * 13 + i) % 9)
                    yield ops.cpu_yield()
                    total += i
                return total

            h = s.launch(kernel, 3, 32)
            return lambda: h.results

        _assert_parity(build, probe=True)

    def test_dispatch_jitter_and_steer(self):
        def build(s, mem):
            word = mem.host_alloc(8)

            def kernel(ctx):
                yield ops.atomic_add(word, 1)
                yield ops.sleep(2)
                yield ops.atomic_add(word, 1)

            s.launch(kernel, 4, 32)
            return lambda: mem.load_word(word)

        _assert_parity(build, seed=7, dispatch_jitter=16, steer=3)

    def test_multi_launch_reuse(self):
        # A reused scheduler: virtual time keeps advancing and the
        # second run's cohort structure must batch identically.
        def run(engine):
            mem = DeviceMemory(1 << 16)
            word = mem.host_alloc(8)

            def kernel(ctx):
                yield ops.atomic_add(word, 1)
                yield ops.sleep(ctx.tid % 3)

            s = Scheduler(mem, seed=1, engine=engine)
            s.launch(kernel, 1, 32)
            r1 = s.run()
            t_mid = s.now
            s.launch(kernel, 1, 32)
            r2 = s.run()
            return (r1.cycles, r1.events, t_mid, r2.cycles, r2.events,
                    s.now, mem.load_word(word))

        assert run("batch") == run("event")
        assert run("event")[-1] == 64


class TestBudgetParity:
    def _build(self, s, mem):
        word = mem.host_alloc(8)

        def kernel(ctx):
            for _ in range(8):
                yield ops.atomic_add(word, 1)

        s.launch(kernel, 2, 32)
        return word

    def _events_needed(self, engine):
        mem = DeviceMemory(1 << 16)
        s = Scheduler(mem, engine=engine)
        self._build(s, mem)
        return s.run().events

    def test_budget_trips_at_the_same_event_count(self):
        needed = self._events_needed("event")
        assert needed == self._events_needed("batch")
        for engine in ENGINES:
            mem = DeviceMemory(1 << 16)
            s = Scheduler(mem, engine=engine)
            self._build(s, mem)
            with pytest.raises(EventBudgetExceeded):
                s.run(max_events=needed - 1)

    def test_exact_budget_completes_on_both(self):
        needed = self._events_needed("event")
        for engine in ENGINES:
            mem = DeviceMemory(1 << 16)
            s = Scheduler(mem, engine=engine)
            word = self._build(s, mem)
            r = s.run(max_events=needed)
            assert r.events == needed
            assert mem.load_word(word) == 8 * 64

    def test_post_trip_state_matches_across_engines(self):
        # A budget trip abandons the run (EventBudgetExceeded is a
        # DeadlockError: the guard fired, the schedule is suspect) — the
        # contract is not resumability but *sameness*: both engines must
        # leave the identical abstract wreckage behind, so diagnostics
        # built on the tripped scheduler read the same either way.
        wreckage = []
        for engine in ENGINES:
            mem = DeviceMemory(1 << 16)
            s = Scheduler(mem, engine=engine)
            word = self._build(s, mem)
            with pytest.raises(EventBudgetExceeded) as ei:
                s.run(max_events=40)
            wreckage.append((str(ei.value), s.live_threads,
                             mem.load_word(word)))
        assert wreckage[0] == wreckage[1]


class TestEngineSelection:
    def test_unknown_engine_rejected_at_construction(self):
        mem = DeviceMemory(1 << 12)
        with pytest.raises(ValueError, match="unknown engine"):
            Scheduler(mem, engine="vector")

    def test_set_default_engine_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown engine"):
            set_default_engine("vector")
        assert default_engine() == "event"

    def test_use_engine_scopes_and_restores(self):
        assert default_engine() == "event"
        with use_engine("batch"):
            assert default_engine() == "batch"
            mem = DeviceMemory(1 << 12)
            assert Scheduler(mem).engine == "batch"
        assert default_engine() == "event"

    def test_use_engine_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_engine("batch"):
                raise RuntimeError("boom")
        assert default_engine() == "event"

    def test_use_engine_none_inherits(self):
        with use_engine("batch"):
            with use_engine(None):
                assert default_engine() == "batch"
        assert default_engine() == "event"

    def test_explicit_engine_beats_default(self):
        mem = DeviceMemory(1 << 12)
        with use_engine("batch"):
            assert Scheduler(mem, engine="event").engine == "event"
