"""Determinism pins: tracer parity, ranking tie-breaks, RNG ownership.

These are the regression tests for the scheduler fast path and the
replay contract: attaching a tracer must not change what the simulator
computes, derived rankings must not leak dict-insertion order, and
every schedule-relevant random draw must come from the owned,
explicitly seeded per-thread RNG.
"""

from __future__ import annotations

import random

from repro.sim import ops
from repro.sim.device import ThreadCtx, rng_randbelow
from repro.sim.scheduler import Scheduler, SimReport
from repro.sim.trace import Tracer
from repro.sync.spinlock import SpinLock


def _contended_kernel(lock: SpinLock, counter: int, iters: int):
    def kernel(ctx: ThreadCtx):
        for _ in range(iters):
            yield from lock.lock(ctx)
            v = yield ops.load(counter)
            yield ops.store(counter, v + 1)
            yield from lock.unlock(ctx)
            yield ops.sleep(rng_randbelow(ctx.rng)(32))
    return kernel


class TestTracerParity:
    def test_traced_run_matches_fast_path(self, mem, device):
        """The no-tracer fast path and the traced path must produce the
        same virtual outcome — cycles, events, op counts, memory."""
        reports = []
        finals = []
        for tracer in (None, Tracer()):
            m = type(mem)(1 << 20)
            lock = SpinLock(m)
            counter = m.host_alloc(8)
            m.store_word(counter, 0)
            sched = Scheduler(m, device, seed=42, tracer=tracer)
            sched.launch(_contended_kernel(lock, counter, 3), grid=2, block=32)
            reports.append(sched.run(max_events=5_000_000))
            finals.append(m.load_word(counter))
        fast, traced = reports
        assert fast.cycles == traced.cycles
        assert fast.events == traced.events
        assert fast.n_threads == traced.n_threads
        assert fast.op_counts == traced.op_counts
        assert finals[0] == finals[1] == 2 * 32 * 3

    def test_digest_probe_parity_fast_vs_traced(self, mem, device):
        """The schedule digest stream must be byte-identical between the
        fast path and the traced path — the explorer's coverage hashes
        are only meaningful if they name the schedule, not the loop that
        executed it.  (The heap's *internal list order* differs between
        the two loops for the same entry multiset, which is why
        ``state_digest`` folds commutatively.)"""
        streams = []
        for tracer in (None, Tracer()):
            m = type(mem)(1 << 20)
            lock = SpinLock(m)
            counter = m.host_alloc(8)
            m.store_word(counter, 0)
            digests = []
            sched = Scheduler(m, device, seed=42, tracer=tracer,
                              schedule_probe=digests.append,
                              probe_every=64)
            sched.launch(_contended_kernel(lock, counter, 3),
                         grid=2, block=32)
            sched.run(max_events=5_000_000)
            streams.append(digests)
        fast, traced = streams
        assert fast, "probe never fired"
        assert fast == traced

    def test_probe_does_not_change_the_schedule(self, mem, device):
        """Attaching a digest probe is observation only: the virtual
        outcome must match an unprobed run exactly."""
        reports = []
        for probe in (None, lambda d: None):
            m = type(mem)(1 << 20)
            lock = SpinLock(m)
            counter = m.host_alloc(8)
            m.store_word(counter, 0)
            sched = Scheduler(m, device, seed=42, schedule_probe=probe,
                              probe_every=64)
            sched.launch(_contended_kernel(lock, counter, 3),
                         grid=2, block=32)
            reports.append(sched.run(max_events=5_000_000))
        assert reports[0].cycles == reports[1].cycles
        assert reports[0].events == reports[1].events
        assert reports[0].op_counts == reports[1].op_counts

    def test_steer_zero_is_the_historical_schedule(self, mem, device):
        """``steer=0`` (the default) must not change anything: every
        replay string minted before the knob existed still names the
        same schedule."""
        reports = []
        for kwargs in ({}, {"steer": 0}):
            m = type(mem)(1 << 20)
            lock = SpinLock(m)
            counter = m.host_alloc(8)
            m.store_word(counter, 0)
            sched = Scheduler(m, device, seed=42, **kwargs)
            sched.launch(_contended_kernel(lock, counter, 3),
                         grid=2, block=32)
            reports.append(sched.run(max_events=5_000_000))
        assert reports[0].cycles == reports[1].cycles
        assert reports[0].events == reports[1].events

    def test_steer_salts_are_deterministic_and_distinct(self, mem, device):
        """The same salt replays the same schedule; different salts give
        the scheduler different dispatch phasings (that is the whole
        point of minting fresh ones)."""
        def run_with(steer):
            m = type(mem)(1 << 20)
            lock = SpinLock(m)
            counter = m.host_alloc(8)
            m.store_word(counter, 0)
            sched = Scheduler(m, device, seed=42, steer=steer)
            sched.launch(_contended_kernel(lock, counter, 3),
                         grid=2, block=32)
            r = sched.run(max_events=5_000_000)
            return (r.cycles, r.events)
        assert run_with(1) == run_with(1)
        assert run_with(1) != run_with(0)
        assert run_with(1) != run_with(2)

    def test_tracer_actually_recorded(self, mem, device):
        tracer = Tracer()
        lock = SpinLock(mem)
        counter = mem.host_alloc(8)
        mem.store_word(counter, 0)
        sched = Scheduler(mem, device, seed=7, tracer=tracer)
        sched.launch(_contended_kernel(lock, counter, 2), grid=1, block=32)
        report = sched.run(max_events=5_000_000)
        # parity must not come from the tracer silently being a no-op
        assert tracer.events
        assert tracer.named_op_counts == report.named_op_counts


class TestRankingTieBreaks:
    def test_named_op_counts_breaks_ties_on_name(self):
        report = SimReport(
            cycles=0, events=0, n_threads=0,
            # insertion order deliberately scrambled; store/load tie at 5
            op_counts={ops.OP_STORE: 5, ops.OP_ADD: 7, ops.OP_LOAD: 5},
        )
        assert list(report.named_op_counts) == ["atomic_add", "load", "store"]

    def test_hot_words_breaks_ties_on_address(self, mem, device):
        sched = Scheduler(mem, device, seed=0, track_contention=True)
        # first-touch order deliberately descending; 10 and 2 tie at 3 ops
        sched._word_ops = {10: 3, 7: 5, 2: 3}
        assert sched.hot_words() == [(7 << 3, 5), (2 << 3, 3), (10 << 3, 3)]


class TestRngOwnership:
    def test_default_thread_ctx_rng_is_seeded(self):
        """A ThreadCtx built without an explicit rng must draw a
        deterministic stream, not OS entropy (the replay guarantee)."""
        draws = []
        for _ in range(2):
            ctx = ThreadCtx(tid=0, block=0, tid_in_block=0, lane=0,
                            warp=0, sm=0, nthreads=1, block_dim=1)
            draws.append([ctx.rng.randrange(1000) for _ in range(16)])
        assert draws[0] == draws[1]

    def test_rng_randbelow_matches_randrange(self):
        """``rng_randbelow`` must consume the identical draw stream as
        ``randrange`` — it is an inlining, not an algorithm change."""
        a, b = random.Random(1234), random.Random(1234)
        fast = rng_randbelow(a)
        bounds = [1, 2, 3, 7, 64, 1000, 1 << 20]
        assert [fast(n) for n in bounds * 8] == \
               [b.randrange(n) for n in bounds * 8]
        # and both RNGs end in the same state
        assert a.getstate() == b.getstate()
