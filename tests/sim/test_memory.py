"""Unit tests for repro.sim.memory.DeviceMemory."""

import pytest

from repro.sim import DeviceMemory, MisalignedAccess, OutOfBoundsAccess

M64 = (1 << 64) - 1


class TestConstruction:
    def test_size_rounds_up_to_words(self):
        assert DeviceMemory(9).size == 16

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            DeviceMemory(0)
        with pytest.raises(ValueError):
            DeviceMemory(-8)

    def test_starts_zeroed(self):
        mem = DeviceMemory(64)
        assert all(mem.load_word(a) == 0 for a in range(0, 64, 8))

    def test_null_is_not_a_valid_address(self):
        mem = DeviceMemory(1 << 20)
        assert DeviceMemory.NULL > mem.size


class TestWordAccess:
    def test_store_load_roundtrip(self):
        mem = DeviceMemory(64)
        mem.store_word(8, 0xDEADBEEF)
        assert mem.load_word(8) == 0xDEADBEEF

    def test_store_masks_to_64_bits(self):
        mem = DeviceMemory(64)
        mem.store_word(0, (1 << 64) + 5)
        assert mem.load_word(0) == 5

    def test_negative_value_wraps(self):
        mem = DeviceMemory(64)
        mem.store_word(0, -1)
        assert mem.load_word(0) == M64

    @pytest.mark.parametrize("addr", [1, 2, 3, 4, 5, 6, 7, 9])
    def test_misaligned_raises(self, addr):
        mem = DeviceMemory(64)
        with pytest.raises(MisalignedAccess):
            mem.load_word(addr)

    def test_out_of_bounds_raises(self):
        mem = DeviceMemory(64)
        with pytest.raises(OutOfBoundsAccess):
            mem.load_word(64)
        with pytest.raises(OutOfBoundsAccess):
            mem.store_word(-8, 1)


class TestAtomicHelpers:
    def test_cas_success_and_failure(self):
        mem = DeviceMemory(64)
        mem.store_word(0, 7)
        assert mem.cas_word(0, 7, 9) == 7
        assert mem.load_word(0) == 9
        assert mem.cas_word(0, 7, 11) == 9  # fails, returns current
        assert mem.load_word(0) == 9

    def test_add_wraps(self):
        mem = DeviceMemory(64)
        mem.store_word(0, M64)
        assert mem.add_word(0, 2) == M64
        assert mem.load_word(0) == 1

    def test_exch(self):
        mem = DeviceMemory(64)
        mem.store_word(0, 3)
        assert mem.exch_word(0, 8) == 3
        assert mem.load_word(0) == 8

    def test_and_or_xor(self):
        mem = DeviceMemory(64)
        mem.store_word(0, 0b1100)
        assert mem.and_word(0, 0b1010) == 0b1100
        assert mem.load_word(0) == 0b1000
        assert mem.or_word(0, 0b0001) == 0b1000
        assert mem.load_word(0) == 0b1001
        assert mem.xor_word(0, 0b1111) == 0b1001
        assert mem.load_word(0) == 0b0110

    def test_max_min_unsigned(self):
        mem = DeviceMemory(64)
        mem.store_word(0, 10)
        mem.max_word(0, 4)
        assert mem.load_word(0) == 10
        mem.max_word(0, 40)
        assert mem.load_word(0) == 40
        mem.min_word(0, 7)
        assert mem.load_word(0) == 7


class TestHostAlloc:
    def test_grows_downward_aligned(self):
        mem = DeviceMemory(1 << 12)
        a = mem.host_alloc(100, align=64)
        b = mem.host_alloc(8)
        assert a % 64 == 0
        assert b + 8 <= a
        assert mem.meta_base == b

    def test_exhaustion_raises(self):
        mem = DeviceMemory(64)
        with pytest.raises(OutOfBoundsAccess):
            mem.host_alloc(128)

    def test_rejects_bad_align(self):
        mem = DeviceMemory(64)
        with pytest.raises(ValueError):
            mem.host_alloc(8, align=3)
        with pytest.raises(ValueError):
            mem.host_alloc(-1)


class TestByteRanges:
    def test_write_read_roundtrip(self):
        mem = DeviceMemory(64)
        mem.write_bytes(5, b"hello")
        assert mem.read_bytes(5, 5) == b"hello"

    def test_bounds_checked(self):
        mem = DeviceMemory(64)
        with pytest.raises(OutOfBoundsAccess):
            mem.read_bytes(60, 8)
        with pytest.raises(OutOfBoundsAccess):
            mem.write_bytes(62, b"xyz")

    def test_fill_words(self):
        mem = DeviceMemory(64)
        mem.fill_words(8, 3, 0xAB)
        assert [mem.load_word(a) for a in range(0, 40, 8)] == [0, 0xAB, 0xAB, 0xAB, 0]
