"""Scheduler behaviour: ordering, atomics, barriers, warps, residency,
determinism, error paths."""

import pytest

from repro.sim import (
    DeadlockError,
    DeviceMemory,
    GPUDevice,
    InvalidOp,
    LaunchError,
    Scheduler,
    ops,
)
from repro.sim.cost_model import CostModel


def fresh(size=1 << 16, **dev):
    mem = DeviceMemory(size)
    return mem, GPUDevice(**dev) if dev else (mem, GPUDevice())


class TestBasics:
    def test_atomic_add_counts_every_thread(self):
        mem = DeviceMemory(1 << 12)
        counter = mem.host_alloc(8)

        def kernel(ctx):
            yield ops.atomic_add(counter, 1)

        s = Scheduler(mem)
        s.launch(kernel, 4, 64)
        s.run()
        assert mem.load_word(counter) == 256

    def test_kernel_return_values(self):
        mem = DeviceMemory(1 << 12)

        def kernel(ctx):
            yield ops.sleep(1)
            return ctx.tid * 2

        s = Scheduler(mem)
        h = s.launch(kernel, 1, 8)
        s.run()
        assert h.results == [0, 2, 4, 6, 8, 10, 12, 14]

    def test_plain_function_kernel_completes_instantly(self):
        mem = DeviceMemory(1 << 12)
        s = Scheduler(mem)
        h = s.launch(lambda ctx: ctx.tid + 100, 1, 4)
        s.run()
        assert h.results == [100, 101, 102, 103]

    def test_load_store(self):
        mem = DeviceMemory(1 << 12)
        cell = mem.host_alloc(8)
        mem.store_word(cell, 41)

        def kernel(ctx):
            v = yield ops.load(cell)
            yield ops.store(cell, v + 1)

        s = Scheduler(mem)
        s.launch(kernel, 1, 1)
        s.run()
        assert mem.load_word(cell) == 42

    def test_multiple_launches_share_device(self):
        mem = DeviceMemory(1 << 12)
        counter = mem.host_alloc(8)

        def kernel(ctx):
            yield ops.atomic_add(counter, 1)

        s = Scheduler(mem)
        s.launch(kernel, 1, 32)
        s.launch(kernel, 1, 32)
        s.run()
        assert mem.load_word(counter) == 64

    def test_sequential_runs_advance_time(self):
        mem = DeviceMemory(1 << 12)

        def kernel(ctx):
            yield ops.sleep(100)

        s = Scheduler(mem)
        s.launch(kernel, 1, 1)
        r1 = s.run()
        s.launch(kernel, 1, 1)
        r2 = s.run()
        assert r2.cycles > r1.cycles


class TestAtomicSerialization:
    def test_same_word_atomics_serialize(self):
        cm = CostModel()
        mem = DeviceMemory(1 << 12)
        counter = mem.host_alloc(8)

        def kernel(ctx):
            yield ops.atomic_add(counter, 1)

        s = Scheduler(mem, cost_model=cm)
        n = 512
        s.launch(kernel, 2, 256)
        rep = s.run()
        # n atomics on one word cannot finish faster than the service rate
        assert rep.cycles >= n * cm.atomic_service

    def test_different_words_do_not_serialize(self):
        cm = CostModel()
        mem = DeviceMemory(1 << 16)
        base = mem.host_alloc(8 * 512)

        def kernel(ctx):
            yield ops.atomic_add(base + 8 * ctx.tid, 1)

        s = Scheduler(mem, cost_model=cm)
        s.launch(kernel, 2, 256)
        rep = s.run()
        assert rep.cycles < 512 * cm.atomic_service


class TestDeterminism:
    def _trace(self, seed):
        mem = DeviceMemory(1 << 12)
        cell = mem.host_alloc(8)
        order = []

        def kernel(ctx):
            yield ops.sleep(ctx.rng.randrange(100))
            old = yield ops.atomic_add(cell, 1)
            order.append((old, ctx.tid))

        s = Scheduler(mem, seed=seed)
        s.launch(kernel, 2, 64)
        rep = s.run()
        return order, rep.cycles

    def test_same_seed_same_trace(self):
        assert self._trace(7) == self._trace(7)

    def test_different_seed_different_interleaving(self):
        # not guaranteed in principle, but overwhelmingly likely
        assert self._trace(7)[0] != self._trace(8)[0]


class TestBarriers:
    def test_syncthreads_joins_block(self):
        mem = DeviceMemory(1 << 12)
        flag = mem.host_alloc(8)
        seen = []

        def kernel(ctx):
            if ctx.tid_in_block == 0:
                yield ops.sleep(5000)
                yield ops.store(flag, 1)
            yield ops.syncthreads()
            v = yield ops.load(flag)
            seen.append(v)

        s = Scheduler(mem)
        s.launch(kernel, 1, 64)
        s.run()
        assert seen == [1] * 64

    def test_barrier_per_block_not_global(self):
        mem = DeviceMemory(1 << 12)
        done = []

        def kernel(ctx):
            if ctx.block == 0:
                yield ops.sleep(100000)
            yield ops.syncthreads()
            done.append(ctx.block)

        s = Scheduler(mem)
        s.launch(kernel, 2, 32)
        s.run()
        # block 1 must have finished before block 0's sleepers
        assert done[:32] == [1] * 32

    def test_exited_threads_release_barrier(self):
        mem = DeviceMemory(1 << 12)

        def kernel(ctx):
            if ctx.tid_in_block < 16:
                return  # exit without reaching the barrier
            yield ops.syncthreads()

        s = Scheduler(mem)
        s.launch(kernel, 1, 32)
        s.run(max_events=10_000)  # must not deadlock


class TestWarpOps:
    def test_warp_converge_full_warp(self):
        mem = DeviceMemory(1 << 12)
        masks = []

        def kernel(ctx):
            m = yield ops.warp_converge()
            masks.append(m)

        s = Scheduler(mem)
        s.launch(kernel, 1, 64)
        s.run()
        assert all(len(m) == 32 for m in masks)

    def test_warp_converge_partial_when_lanes_exit(self):
        mem = DeviceMemory(1 << 12)
        masks = []

        def kernel(ctx):
            if ctx.lane >= 8:
                return
            m = yield ops.warp_converge()
            masks.append(m)

        s = Scheduler(mem)
        s.launch(kernel, 1, 32)
        s.run()
        assert masks and all(m == frozenset(range(8)) for m in masks)

    def test_warp_converge_window_releases_early_arrivals(self):
        mem = DeviceMemory(1 << 12)
        masks = []

        def kernel(ctx):
            if ctx.lane == 0:
                yield ops.sleep(100_000)  # way past the window
            m = yield ops.warp_converge()
            masks.append(m)

        s = Scheduler(mem)
        s.launch(kernel, 1, 32)
        s.run()
        # lanes 1..31 converged without lane 0; lane 0 converged alone
        sizes = sorted(len(m) for m in masks)
        assert sizes[0] == 1 and sizes[-1] == 31

    def test_warp_sync_mask(self):
        mem = DeviceMemory(1 << 12)
        out = []

        def kernel(ctx):
            if ctx.lane >= 4:
                return
            mask = frozenset(range(4))
            yield ops.sleep(ctx.lane * 100)
            got = yield ops.warp_sync(mask)
            out.append(got)

        s = Scheduler(mem)
        s.launch(kernel, 1, 32)
        s.run()
        assert out == [frozenset(range(4))] * 4

    def test_warp_sync_rejects_foreign_lane(self):
        mem = DeviceMemory(1 << 12)

        def kernel(ctx):
            yield ops.warp_sync(frozenset({5}))  # lane 0 not in mask

        s = Scheduler(mem)
        s.launch(kernel, 1, 1)
        with pytest.raises(InvalidOp):
            s.run()


class TestWarpBroadcast:
    @pytest.mark.parametrize("payload", [0, None, False, "", 42])
    def test_single_source_payload_delivered_even_when_falsy(self, payload):
        # Regression: None/falsy payloads used to be indistinguishable
        # from "no payload", so a broadcast of 0 delivered the mask.
        mem = DeviceMemory(1 << 12)
        out = []

        def kernel(ctx):
            mask = frozenset(range(4))
            if ctx.lane == 2:
                got = yield ops.warp_broadcast(mask, payload)
            else:
                got = yield ops.warp_broadcast(mask)
            out.append(got)

        s = Scheduler(mem)
        s.launch(kernel, 1, 4)
        s.run()
        assert out == [payload] * 4

    def test_no_contributor_degrades_to_warp_sync(self):
        mem = DeviceMemory(1 << 12)
        out = []

        def kernel(ctx):
            mask = frozenset(range(4))
            got = yield ops.warp_broadcast(mask)
            out.append(got)

        s = Scheduler(mem)
        s.launch(kernel, 1, 4)
        s.run()
        assert out == [frozenset(range(4))] * 4

    def test_multiple_contributors_raise(self):
        # Regression: with two contributors the winner used to depend on
        # arrival order; now it is a detected program error.
        mem = DeviceMemory(1 << 12)

        def kernel(ctx):
            mask = frozenset(range(4))
            if ctx.lane < 2:
                yield ops.warp_broadcast(mask, ctx.lane)
            else:
                yield ops.warp_broadcast(mask)

        s = Scheduler(mem)
        s.launch(kernel, 1, 4)
        with pytest.raises(InvalidOp, match="exactly one source lane"):
            s.run()


class TestResidency:
    def test_blocks_queue_beyond_residency(self):
        device = GPUDevice(num_sms=1, max_resident_blocks=1)
        mem = DeviceMemory(1 << 12)
        spans = []

        def kernel(ctx):
            start = None
            yield ops.sleep(1000)
            spans.append(ctx.block)

        s = Scheduler(mem, device)
        s.launch(kernel, 4, 8)
        rep = s.run()
        # 4 blocks serialized on 1 SM slot: at least 4 x 1000 cycles
        assert rep.cycles >= 4000

    def test_resident_blocks_overlap(self):
        device = GPUDevice(num_sms=1, max_resident_blocks=4)
        mem = DeviceMemory(1 << 12)

        def kernel(ctx):
            yield ops.sleep(1000)

        s = Scheduler(mem, device)
        s.launch(kernel, 4, 8)
        rep = s.run()
        assert rep.cycles < 3000

    def test_dispatch_cost_charged_at_time_zero(self):
        # Regression: blocks dispatched at t=0 used to start for free.
        mem = DeviceMemory(1 << 12)
        s = Scheduler(mem)

        def kernel(ctx):
            yield ops.sleep(1)

        s.launch(kernel, 1, 1)
        rep = s.run()
        assert rep.cycles >= s.cost_model.block_dispatch + 1

    def test_dispatch_cost_uniform_across_launch_and_requeue(self):
        # Every block pays the same dispatch latency whether it starts at
        # launch or from the SM queue after a retirement (the old code
        # waived it at t=0 and double-charged it on the requeue path).
        device = GPUDevice(num_sms=1, max_resident_blocks=1)
        mem = DeviceMemory(1 << 12)

        def kernel(ctx):
            yield ops.sleep(1000)

        s = Scheduler(mem, device)
        s.launch(kernel, 3, 1)
        rep = s.run()
        d = s.cost_model.block_dispatch
        # 3 serialized blocks, each: dispatch + ~1000 cycles of work
        assert rep.cycles >= 3 * (d + 1000)

    def test_retire_refills_every_free_slot(self):
        # Regression (white-box): _retire_block used to dispatch at most
        # one queued block per retirement, stranding free residency slots
        # if the invariant ever broke.  Force the broken state and check
        # the refill loop recovers all slots.
        device = GPUDevice(num_sms=1, max_resident_blocks=4)
        mem = DeviceMemory(1 << 12)

        def kernel(ctx):
            yield ops.sleep(10)

        s = Scheduler(mem, device)
        s.launch(kernel, 7, 8)  # 4 dispatched, 3 queued
        assert s._sm_resident[0] == 4
        assert len(s._sm_queues[0]) == 3
        retired = next(b for b in s._blocks if b.dispatched)
        s._sm_resident[0] = 2  # simulate two slots freed without refill
        s._retire_block(retired, t=100)
        assert len(s._sm_queues[0]) == 0  # ALL queued blocks dispatched
        assert s._sm_resident[0] == 4
        assert all(b.dispatched for b in s._blocks)

    def test_sm_queue_is_deque(self):
        from collections import deque

        mem = DeviceMemory(1 << 12)
        s = Scheduler(mem)
        assert all(isinstance(q, deque) for q in s._sm_queues)


class TestErrors:
    def test_bad_launch_config(self):
        mem = DeviceMemory(1 << 12)
        s = Scheduler(mem)
        with pytest.raises(LaunchError):
            s.launch(lambda ctx: None, 0, 32)
        with pytest.raises(LaunchError):
            s.launch(lambda ctx: None, 1, 4096)

    def test_invalid_yield_detected(self):
        mem = DeviceMemory(1 << 12)

        def kernel(ctx):
            yield "not an op"

        s = Scheduler(mem)
        s.launch(kernel, 1, 1)
        with pytest.raises(InvalidOp):
            s.run()

    def test_event_budget_guards_livelock(self):
        mem = DeviceMemory(1 << 12)

        def kernel(ctx):
            while True:
                yield ops.cpu_yield()

        s = Scheduler(mem)
        s.launch(kernel, 1, 1)
        with pytest.raises(DeadlockError):
            s.run(max_events=1000)

    def test_device_exception_carries_thread_info(self):
        mem = DeviceMemory(1 << 12)

        def kernel(ctx):
            yield ops.sleep(1)
            raise RuntimeError("boom")

        s = Scheduler(mem)
        s.launch(kernel, 1, 1)
        with pytest.raises(RuntimeError, match="boom") as ei:
            s.run()
        assert any("device thread" in n for n in ei.value.__notes__)

    def test_report_throughput(self):
        mem = DeviceMemory(1 << 12)

        def kernel(ctx):
            yield ops.sleep(100)

        s = Scheduler(mem)
        s.launch(kernel, 1, 8)
        rep = s.run()
        assert rep.throughput(8) > 0
        assert rep.seconds == pytest.approx(rep.cycles / rep.cost_model.clock_hz)

    def test_report_named_op_counts(self):
        mem = DeviceMemory(1 << 12)
        cell = mem.host_alloc(8)

        def kernel(ctx):
            yield ops.atomic_add(cell, 1)
            yield ops.load(cell)
            yield ops.sleep(1)

        s = Scheduler(mem)
        s.launch(kernel, 1, 4)
        rep = s.run()
        named = rep.named_op_counts
        assert named["atomic_add"] == 4
        assert named["load"] == 4
        assert all(isinstance(k, str) for k in named)
        # sorted by count descending
        assert list(named.values()) == sorted(named.values(), reverse=True)
