"""Host-side op driver, cost model, and contention telemetry."""

import pytest

from repro.sim import DeviceMemory, InvalidOp, Scheduler, ops
from repro.sim.cost_model import DEFAULT_COST_MODEL, CostModel
from repro.sim.hostrun import drive, host_ctx


class TestHostRun:
    def test_drives_word_ops(self, mem):
        a = mem.host_alloc(8)

        def gen():
            yield ops.store(a, 5)
            v = yield ops.load(a)
            old = yield ops.atomic_add(a, 2)
            return (v, old)

        assert drive(mem, gen()) == (5, 5)
        assert mem.load_word(a) == 7

    def test_all_atomics(self, mem):
        a = mem.host_alloc(8)

        def gen():
            yield ops.store(a, 0b1100)
            r = []
            r.append((yield ops.atomic_and(a, 0b1010)))
            r.append((yield ops.atomic_or(a, 1)))
            r.append((yield ops.atomic_xor(a, 0b11)))
            r.append((yield ops.atomic_exch(a, 50)))
            r.append((yield ops.atomic_max(a, 60)))
            r.append((yield ops.atomic_min(a, 10)))
            r.append((yield ops.atomic_cas(a, 10, 11)))
            return r

        assert drive(mem, gen()) == [0b1100, 0b1000, 0b1001, 0b1010, 50, 60, 10]

    def test_sleep_and_yield_are_noops(self, mem):
        def gen():
            yield ops.sleep(100)
            yield ops.cpu_yield()
            return "done"

        assert drive(mem, gen()) == "done"

    def test_single_thread_cooperative_semantics(self, mem):
        def gen():
            m = yield ops.warp_converge()
            m2 = yield ops.warp_match("k")
            s = yield ops.warp_sync(frozenset({0}))
            b = yield ops.warp_broadcast(frozenset({0}), "val")
            yield ops.syncthreads()
            return (m, m2, s, b)

        assert drive(mem, gen()) == (
            frozenset({0}), frozenset({0}), frozenset({0}), "val"
        )

    def test_host_ctx_shape(self):
        ctx = host_ctx(seed=3, sm=2)
        assert ctx.sm == 2 and ctx.lane == 0
        assert ctx.rng.randrange(10) == host_ctx(seed=3).rng.randrange(10)


class TestCostModel:
    def test_defaults_sane(self):
        cm = DEFAULT_COST_MODEL
        assert cm.atomic_service < cm.atomic_latency
        assert cm.clock_hz > 0

    def test_seconds_and_throughput(self):
        cm = CostModel(clock_hz=1e9)
        assert cm.seconds(1_000_000) == pytest.approx(1e-3)
        assert cm.throughput(1000, 1_000_000) == pytest.approx(1e6)
        assert cm.throughput(1000, 0) == 0.0

    def test_zero_cycle_run_never_divides_by_zero(self):
        """A trivially-short launch (kernel yields no ops) must report
        0.0 throughput / 0.0 seconds, not raise."""
        cm = DEFAULT_COST_MODEL
        assert cm.seconds(0) == 0.0
        assert cm.seconds(-5) == 0.0
        assert cm.throughput(100, 0) == 0.0
        assert cm.throughput(0, 0) == 0.0

    def test_empty_kernel_report_is_safe(self):
        mem = DeviceMemory(1 << 12)

        def kernel(ctx):
            return
            yield  # pragma: no cover - makes the function a generator

        s = Scheduler(mem)
        s.launch(kernel, 1, 1)
        report = s.run()
        # whatever the dispatch cost charges, the report's derived
        # quantities must be finite and non-raising
        assert report.seconds >= 0.0
        assert report.throughput(1) >= 0.0
        assert report.throughput(0) >= 0.0

    def test_invalid_models_rejected(self):
        with pytest.raises(ValueError):
            CostModel(clock_hz=0)
        with pytest.raises(ValueError):
            CostModel(clock_hz=-1.0)
        with pytest.raises(ValueError):
            CostModel(atomic_latency=-1)

    def test_custom_model_changes_timing(self):
        mem = DeviceMemory(1 << 12)
        counter = mem.host_alloc(8)

        def kernel(ctx):
            yield ops.atomic_add(counter, 1)

        def cycles(service):
            m = DeviceMemory(1 << 12)
            c = m.host_alloc(8)

            def k(ctx):
                yield ops.atomic_add(c, 1)

            s = Scheduler(m, cost_model=CostModel(atomic_service=service))
            s.launch(k, 2, 256)
            return s.run().cycles

        assert cycles(32) > cycles(2)


class TestContentionTelemetry:
    def test_hot_words_ranking(self):
        mem = DeviceMemory(1 << 12)
        hot = mem.host_alloc(8)
        cold = mem.host_alloc(8)

        def kernel(ctx):
            yield ops.atomic_add(hot, 1)
            if ctx.tid == 0:
                yield ops.atomic_add(cold, 1)

        s = Scheduler(mem, track_contention=True)
        s.launch(kernel, 1, 64)
        s.run()
        ranking = s.hot_words(2)
        assert ranking[0] == (hot, 64)
        assert ranking[1] == (cold, 1)

    def test_requires_flag(self):
        mem = DeviceMemory(1 << 12)
        s = Scheduler(mem)
        with pytest.raises(ValueError):
            s.hot_words()

    def test_identifies_allocator_hotspots(self):
        """Telemetry points at the semaphore/RCU words, as designed."""
        from repro.core import AllocatorConfig, ThroughputAllocator
        from repro.sim import GPUDevice

        device = GPUDevice(num_sms=1)
        mem = DeviceMemory(16 << 20)
        alloc = ThroughputAllocator(mem, device, AllocatorConfig(pool_order=8))

        def kernel(ctx):
            p = yield from alloc.malloc(ctx, 64)
            assert p != mem.NULL

        s = Scheduler(mem, device, seed=1, track_contention=True)
        s.launch(kernel, 2, 256)
        s.run(max_events=20_000_000)
        top_addr, top_count = s.hot_words(1)[0]
        # the hottest word must be allocator metadata (above the pool),
        # touched by a significant share of the 512 allocations
        assert top_addr >= alloc.pool_base or top_count >= 512
        assert top_count >= 512
