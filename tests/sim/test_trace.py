"""Structured tracing / telemetry: timeline events, aggregates, export."""

import json

import pytest

from repro.sim import DeviceMemory, GPUDevice, Scheduler, Tracer, ops
from repro.sim.trace import Histogram
from repro.sync import RCU, BulkSemaphore, CollectiveMutex, SpinLock


class TestHistogram:
    def test_power_of_two_buckets(self):
        h = Histogram()
        for v in (0, 1, 2, 3, 4, 7, 8, 1000):
            h.add(v)
        assert h.n == 8
        assert h.total == 1025
        assert h.max == 1000
        labels = [label for label, _ in h.rows()]
        assert labels == ["0", "1", "2-3", "4-7", "8-15", "512-1023"]
        counts = dict(h.rows())
        assert counts["2-3"] == 2 and counts["4-7"] == 2

    def test_mean_empty(self):
        assert Histogram().mean == 0.0


def _hot_word_kernel_factory(counter):
    def kernel(ctx):
        yield ops.atomic_add(counter, 1)
    return kernel


class TestSchedulerTracing:
    def test_op_timeline_and_counts(self):
        mem = DeviceMemory(1 << 12)
        counter = mem.host_alloc(8)
        tracer = Tracer()
        s = Scheduler(mem, tracer=tracer)
        s.launch(_hot_word_kernel_factory(counter), 2, 32)
        s.run()
        assert tracer.op_counts[ops.OP_ADD] == 64
        assert tracer.named_op_counts == {"atomic_add": 64}
        adds = [e for e in tracer.events
                if e.get("cat") == "op" and e["name"] == "atomic_add"]
        assert len(adds) == 64
        assert all(e["ph"] == "X" and e["dur"] > 0 for e in adds)

    def test_atomic_stall_aggregation_identifies_hot_word(self):
        mem = DeviceMemory(1 << 12)
        counter = mem.host_alloc(8)
        tracer = Tracer()
        s = Scheduler(mem, tracer=tracer)
        s.launch(_hot_word_kernel_factory(counter), 2, 256)
        s.run()
        (addr, n, stall), = tracer.top_stall_words(1)
        assert addr == counter
        assert n == 512
        # 512 atomics on one word must queue: total stall is large
        assert stall > 512

    def test_barrier_park_unpark_events_balance(self):
        mem = DeviceMemory(1 << 12)
        tracer = Tracer()

        def kernel(ctx):
            yield ops.sleep(ctx.tid_in_block)
            yield ops.syncthreads()

        s = Scheduler(mem, tracer=tracer)
        s.launch(kernel, 1, 64)
        s.run()
        parks = [e for e in tracer.events
                 if e["name"] == "barrier" and e["ph"] == "B"]
        unparks = [e for e in tracer.events
                   if e["name"] == "barrier" and e["ph"] == "E"]
        assert len(parks) == len(unparks) == 64
        # every E lands at or after its thread's B
        by_tid = {}
        for e in tracer.events:
            if e["name"] == "barrier":
                by_tid.setdefault(e["tid"], []).append(e)
        for tid, evs in by_tid.items():
            assert [e["ph"] for e in evs] == ["B", "E"]
            assert evs[0]["ts"] <= evs[1]["ts"]

    def test_sm_occupancy_bounded_and_drains(self, device):
        mem = DeviceMemory(1 << 12)
        tracer = Tracer()

        def kernel(ctx):
            yield ops.sleep(500)

        s = Scheduler(mem, device, tracer=tracer)
        s.launch(kernel, 32, 32)
        s.run()
        assert tracer.sm_occupancy
        for (_, sm), samples in tracer.sm_occupancy.items():
            assert all(0 <= r <= device.max_resident_blocks
                       for _, r in samples)
            assert samples[-1][1] == 0  # all blocks retired
        stats = tracer.occupancy_stats()
        assert stats and all(peak >= 1 for _, _, peak, _, _ in stats)

    def test_multiple_runs_share_monotonic_timeline(self):
        tracer = Tracer()
        for label in ("first", "second"):
            mem = DeviceMemory(1 << 12)
            counter = mem.host_alloc(8)
            tracer.begin_run(label)
            s = Scheduler(mem, tracer=tracer)
            s.launch(_hot_word_kernel_factory(counter), 1, 32)
            s.run()
        assert [r["label"] for r in tracer.runs] == ["first", "second"]
        t0_second = tracer.runs[1]["t0"]
        assert t0_second > 0
        first_op_events = [e["ts"] for e in tracer.events
                           if e.get("cat") == "op" and e["ts"] >= t0_second]
        assert first_op_events  # second run's events live past the offset
        assert tracer.runs[0]["t1"] <= t0_second

    def test_timeline_cap_drops_events_not_aggregates(self):
        mem = DeviceMemory(1 << 12)
        counter = mem.host_alloc(8)
        tracer = Tracer(max_timeline_events=10)
        s = Scheduler(mem, tracer=tracer)
        s.launch(_hot_word_kernel_factory(counter), 2, 64)
        s.run()
        assert len(tracer.events) == 10
        assert tracer.dropped_events > 0
        assert tracer.op_counts[ops.OP_ADD] == 128  # aggregates unaffected

    def test_timeline_disabled_keeps_aggregates(self):
        mem = DeviceMemory(1 << 12)
        counter = mem.host_alloc(8)
        tracer = Tracer(timeline=False)
        s = Scheduler(mem, tracer=tracer)
        s.launch(_hot_word_kernel_factory(counter), 1, 64)
        s.run()
        assert tracer.events == []
        assert tracer.op_counts[ops.OP_ADD] == 64
        assert tracer.top_stall_words(1)

    def test_run_finished_counts_are_deltas_not_cumulative(self):
        mem = DeviceMemory(1 << 12)
        counter = mem.host_alloc(8)
        tracer = Tracer()
        s = Scheduler(mem, tracer=tracer)
        s.launch(_hot_word_kernel_factory(counter), 1, 32)
        s.run()
        s.launch(_hot_word_kernel_factory(counter), 1, 32)
        s.run()  # scheduler op_counts are cumulative; tracer must not double
        assert tracer.op_counts[ops.OP_ADD] == 64


class TestPrimitiveTelemetry:
    def test_spinlock_wait_and_hold_histograms(self, device):
        mem = DeviceMemory(1 << 16)
        lock = SpinLock(mem)
        out = mem.host_alloc(8)
        tracer = Tracer()

        def kernel(ctx):
            yield from lock.lock(ctx)
            yield ops.atomic_add(out, 1)
            yield from lock.unlock(ctx)

        s = Scheduler(mem, device, seed=2, tracer=tracer)
        s.launch(kernel, 1, 64)
        s.run()
        assert tracer.lock_wait.n == 64
        assert tracer.lock_hold.n == 64
        assert tracer.lock_hold.mean > 0
        held = [e for e in tracer.events if e.get("cat") == "lock"]
        assert len(held) == 64

    def test_bulk_semaphore_wait_histogram_and_outcomes(self, device):
        mem = DeviceMemory(1 << 16)
        sem = BulkSemaphore(mem)
        tracer = Tracer()

        def kernel(ctx):
            r = yield from sem.wait(ctx, 1, 16)
            if r == -1:
                yield from sem.fulfill(ctx, 15)

        s = Scheduler(mem, device, seed=3, tracer=tracer)
        s.launch(kernel, 2, 64)
        s.run()
        assert tracer.sem_wait.n == 128
        assert tracer.sem_outcomes.get("batch", 0) >= 1
        assert tracer.sem_outcomes.get("acquired", 0) >= 1
        assert sum(tracer.sem_outcomes.values()) == 128

    def test_rcu_grace_period_latency_and_delegation(self, device):
        mem = DeviceMemory(1 << 16)
        rcu = RCU(mem)
        tracer = Tracer()

        def kernel(ctx):
            idx = yield from rcu.read_lock(ctx)
            yield ops.sleep(50)
            yield from rcu.read_unlock(ctx, idx)
            if ctx.tid_in_block % 8 == 0:
                yield from rcu.synchronize_conditional(ctx)

        s = Scheduler(mem, device, seed=4, tracer=tracer)
        s.launch(kernel, 2, 64)
        s.run()
        assert tracer.rcu_full == rcu.barriers_full
        assert tracer.rcu_delegated == rcu.barriers_delegated
        assert len(tracer.rcu_grace) == tracer.rcu_full
        assert all(g >= 0 for g in tracer.rcu_grace)

    def test_collective_group_width_sampled(self, device):
        mem = DeviceMemory(1 << 16)
        cm = CollectiveMutex(mem)
        tracer = Tracer()

        def kernel(ctx):
            mask = yield from cm.lock_warp(ctx)
            yield ops.sleep(10)
            yield from cm.unlock_warp(ctx, mask)

        s = Scheduler(mem, device, seed=5, tracer=tracer)
        s.launch(kernel, 1, 64)
        s.run()
        assert tracer.collective_width.n >= 2   # one sample per group
        assert tracer.collective_width.max <= 32

    def test_untraced_runs_have_no_ctx_trace(self):
        mem = DeviceMemory(1 << 12)
        seen = []

        def kernel(ctx):
            seen.append(ctx.trace)
            yield ops.sleep(1)

        s = Scheduler(mem)
        s.launch(kernel, 1, 8)
        s.run()
        assert seen == [None] * 8


class TestExport:
    def _traced_run(self):
        mem = DeviceMemory(1 << 16)
        lock = SpinLock(mem)
        counter = mem.host_alloc(8)
        tracer = Tracer()

        def kernel(ctx):
            yield from lock.lock(ctx)
            yield ops.atomic_add(counter, 1)
            yield from lock.unlock(ctx)
            yield ops.syncthreads()

        tracer.begin_run("export-test")
        s = Scheduler(mem, GPUDevice(num_sms=2), seed=6, tracer=tracer)
        s.launch(kernel, 2, 32)
        s.run()
        return tracer

    def test_chrome_trace_shape(self):
        tracer = self._traced_run()
        doc = tracer.chrome_trace()
        assert isinstance(doc["traceEvents"], list)
        payload = json.loads(json.dumps(doc))  # JSON-serializable
        for ev in payload["traceEvents"]:
            assert "ph" in ev and "pid" in ev
            if ev["ph"] != "M":
                assert isinstance(ev["ts"], int) and ev["ts"] >= 0
        assert payload["otherData"]["runs"][0]["label"] == "export-test"
        assert payload["otherData"]["cost_model"]["atomic_service"] > 0
        names = {e["args"]["name"] for e in payload["traceEvents"]
                 if e["ph"] == "M"}
        assert "SM 0" in names

    def test_write_chrome_trace(self, tmp_path):
        tracer = self._traced_run()
        path = tmp_path / "trace.json"
        assert tracer.write_chrome_trace(str(path)) == str(path)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_summary_sections(self):
        tracer = self._traced_run()
        text = tracer.summary()
        assert "== trace summary ==" in text
        assert "op counts" in text
        assert "atomic serialization stall words" in text
        assert "lock wait times" in text
        assert "lock hold times" in text
        assert "per-SM occupancy" in text
        assert "export-test" in text

    def test_summary_omits_unused_sections(self):
        mem = DeviceMemory(1 << 12)
        tracer = Tracer()

        def kernel(ctx):
            yield ops.sleep(1)

        s = Scheduler(mem, tracer=tracer)
        s.launch(kernel, 1, 8)
        s.run()
        text = tracer.summary()
        assert "RCU" not in text
        assert "semaphore" not in text
        assert "lock wait" not in text
        assert "lock hold" not in text


class TestBenchIntegration:
    def test_fig5_run_one_traced(self):
        from repro.bench import fig5

        tracer = Tracer()
        tp = fig5.run_one("bulk", 128, 32, block=64, tracer=tracer)
        assert tp > 0
        assert tracer.sem_wait.n > 0
        assert tracer.runs[0]["label"].startswith("fig5:bulk")

    def test_fig6_run_one_traced(self):
        from repro.bench import fig6

        tracer = Tracer()
        cycles, share, ok = fig6.run_one(4, 8, True, block=32, tracer=tracer)
        assert ok
        assert tracer.rcu_full + tracer.rcu_delegated > 0

    def test_fig7_run_size_traced(self):
        from repro.bench import fig7

        tracer = Tracer()
        p = fig7.run_size(64, "ours", max_threads=256, max_pool=1 << 19,
                          tracer=tracer)
        assert p.throughput > 0
        assert tracer.op_counts  # allocator activity observed
        assert tracer.top_stall_words(1)

    def test_cli_trace_flag_writes_json(self, tmp_path, monkeypatch, capsys):
        import repro.__main__ as cli
        from repro.bench import fig5

        def tiny_fig5(tracer=None):
            return fig5.run(thread_counts=(64,), batch=16, block=32,
                            tracer=tracer)

        monkeypatch.setitem(cli._TARGETS, "fig5", tiny_fig5)
        out = tmp_path / "t.json"
        assert cli.main(["fig5", "--trace", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        captured = capsys.readouterr().out
        assert "== trace summary ==" in captured

    def test_cli_trace_flag_rejects_untraceable_target(self, tmp_path):
        import repro.__main__ as cli

        with pytest.raises(SystemExit):
            cli.main(["shootout", "--trace", str(tmp_path / "t.json")])

    def test_cli_trace_flag_rejects_unwritable_path_before_running(self, tmp_path):
        # An invalid path must fail at argument time, not after minutes
        # of simulation.
        import repro.__main__ as cli

        with pytest.raises(SystemExit):
            cli.main(["fig5", "--trace", str(tmp_path / "no-dir" / "t.json")])
