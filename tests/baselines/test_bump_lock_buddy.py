"""Bump-pointer and lock-buddy baselines."""

import pytest

from repro.baselines import BumpAllocator, LockBuddy, LockBuddyError
from repro.sim import DeviceMemory, Scheduler, ops
from repro.sim.hostrun import drive, host_ctx

NULL = DeviceMemory.NULL
PAGE = 4096


class TestBump:
    def test_sequential_addresses(self):
        mem = DeviceMemory(1 << 16)
        b = BumpAllocator(mem, 0, 1 << 12)
        p1 = drive(mem, b.malloc(host_ctx(), 10))
        p2 = drive(mem, b.malloc(host_ctx(), 10))
        assert p2 == p1 + 16  # aligned stride

    def test_exhaustion(self):
        mem = DeviceMemory(1 << 16)
        b = BumpAllocator(mem, 0, 64)
        assert drive(mem, b.malloc(host_ctx(), 48)) != NULL
        assert drive(mem, b.malloc(host_ctx(), 48)) == NULL

    def test_free_is_noop_fragmentation(self):
        """The design's defining weakness: frees recover nothing."""
        mem = DeviceMemory(1 << 16)
        b = BumpAllocator(mem, 0, 64)
        p = drive(mem, b.malloc(host_ctx(), 48))
        drive(mem, b.free(host_ctx(), p))
        assert drive(mem, b.malloc(host_ctx(), 48)) == NULL
        b.reset()
        assert drive(mem, b.malloc(host_ctx(), 48)) != NULL

    def test_concurrent_distinct(self):
        mem = DeviceMemory(1 << 20)
        b = BumpAllocator(mem, 0, 1 << 16)
        got = []

        def kernel(ctx):
            p = yield from b.malloc(ctx, 64)
            got.append(p)

        s = Scheduler(mem, seed=2)
        s.launch(kernel, 4, 64)
        s.run()
        ok = [p for p in got if p != NULL]
        assert len(ok) == 256 and len(set(ok)) == 256
        assert b.used_bytes == 256 * 64

    def test_rejects_bad_align(self):
        mem = DeviceMemory(1 << 12)
        with pytest.raises(ValueError):
            BumpAllocator(mem, 0, 1024, align=3)


class TestLockBuddy:
    def make(self, max_order=6):
        mem = DeviceMemory((PAGE << max_order) + (8 << 20))
        return mem, LockBuddy(mem, 0, PAGE, max_order)

    def test_alloc_free_full_recovery(self):
        mem, b = self.make()
        addrs = [drive(mem, b.alloc(host_ctx(), 0)) for _ in range(8)]
        for a in addrs:
            drive(mem, b.free(host_ctx(), a))
        assert b.host_free_bytes() == b.pool_size

    def test_alignment_matches_order(self):
        mem, b = self.make()
        for order in range(4):
            a = drive(mem, b.alloc(host_ctx(), order))
            assert a % (PAGE << order) == 0

    def test_coalesces_back_to_root(self):
        mem, b = self.make(max_order=4)
        addrs = [drive(mem, b.alloc(host_ctx(), 0)) for _ in range(16)]
        for a in addrs:
            drive(mem, b.free(host_ctx(), a))
        assert len(b.freelists[4].host_items()) == 1

    def test_exhaustion(self):
        mem, b = self.make(max_order=3)
        got = [drive(mem, b.alloc(host_ctx(), 0)) for _ in range(9)]
        assert got[:8].count(NULL) == 0 and got[8] == NULL

    def test_invalid_free(self):
        mem, b = self.make()
        with pytest.raises(LockBuddyError):
            drive(mem, b.free(host_ctx(), 0))  # never allocated
        with pytest.raises(LockBuddyError):
            drive(mem, b.free(host_ctx(), 123))  # not a page

    def test_alloc_bytes(self):
        mem, b = self.make()
        a = drive(mem, b.alloc_bytes(host_ctx(), PAGE * 3))
        drive(mem, b.free(host_ctx(), a))
        assert b.host_free_bytes() == b.pool_size

    def test_concurrent_no_oversell(self):
        mem, b = self.make(max_order=5)  # 32 pages
        got = []

        def kernel(ctx):
            a = yield from b.alloc(ctx, 0)
            got.append(a)

        s = Scheduler(mem, seed=3)
        s.launch(kernel, 1, 48)
        s.run(max_events=30_000_000)
        ok = [a for a in got if a != NULL]
        assert len(ok) == 32 and len(set(ok)) == 32

    def test_concurrent_churn(self):
        mem, b = self.make(max_order=7)

        def kernel(ctx):
            for _ in range(3):
                a = yield from b.alloc(ctx, ctx.rng.randrange(3))
                if a != NULL:
                    yield ops.sleep(ctx.rng.randrange(100))
                    yield from b.free(ctx, a)

        s = Scheduler(mem, seed=4)
        s.launch(kernel, 2, 64)
        s.run(max_events=40_000_000)
        assert b.host_free_bytes() == b.pool_size
