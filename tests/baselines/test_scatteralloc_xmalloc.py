"""ScatterAlloc- and XMalloc-style baselines (paper §2.2 comparators)."""

import pytest

from repro.baselines import ScatterAlloc, ScatterAllocError, XMalloc, XMallocError
from repro.sim import DeviceMemory, Scheduler, ops
from repro.sim.hostrun import drive, host_ctx

NULL = DeviceMemory.NULL


class TestScatterAllocSequential:
    def make(self, pool=1 << 20):
        mem = DeviceMemory(pool * 4)
        return mem, ScatterAlloc(mem, 0, pool)

    def test_round_trip(self):
        mem, sa = self.make()
        p = drive(mem, sa.malloc(host_ctx(), 100))  # -> 128 class
        assert p != NULL
        drive(mem, sa.free(host_ctx(), p))
        assert sa.host_used_blocks() == 0

    def test_distinct_blocks(self):
        mem, sa = self.make()
        got = [drive(mem, sa.malloc(host_ctx(), 64)) for _ in range(100)]
        assert NULL not in got and len(set(got)) == 100

    def test_page_binding_is_sticky(self):
        mem, sa = self.make()
        p = drive(mem, sa.malloc(host_ctx(), 64))
        assert sa.host_bound_pages() == 1
        drive(mem, sa.free(host_ctx(), p))
        # pages stay bound to their class (cross-class fragmentation is
        # this design's documented cost)
        assert sa.host_bound_pages() == 1
        q = drive(mem, sa.malloc(host_ctx(), 64))
        assert q != NULL  # class reuses its page

    def test_oversized_rejected(self):
        mem, sa = self.make()
        assert drive(mem, sa.malloc(host_ctx(), 8192)) == NULL
        assert drive(mem, sa.malloc(host_ctx(), 0)) == NULL

    def test_double_free_detected(self):
        mem, sa = self.make()
        anchor = drive(mem, sa.malloc(host_ctx(), 64))  # keeps page bound
        p = drive(mem, sa.malloc(host_ctx(), 64))
        drive(mem, sa.free(host_ctx(), p))
        with pytest.raises(ScatterAllocError):
            drive(mem, sa.free(host_ctx(), p))

    def test_wild_free_detected(self):
        mem, sa = self.make()
        with pytest.raises(ScatterAllocError):
            drive(mem, sa.free(host_ctx(), 12345))

    def test_rejects_misaligned_pool(self):
        mem = DeviceMemory(1 << 16)
        with pytest.raises(ValueError):
            ScatterAlloc(mem, 100, 1 << 12)


class TestScatterAllocConcurrent:
    def test_churn(self):
        mem = DeviceMemory(8 << 20)
        sa = ScatterAlloc(mem, 0, 1 << 20)
        fails = []

        def kernel(ctx):
            for _ in range(3):
                p = yield from sa.malloc(ctx, 64)
                if p == NULL:
                    fails.append(ctx.tid)
                    continue
                yield ops.sleep(ctx.rng.randrange(200))
                yield from sa.free(ctx, p)

        s = Scheduler(mem, seed=5)
        s.launch(kernel, 4, 64)
        s.run(max_events=40_000_000)
        assert not fails
        assert sa.host_used_blocks() == 0

    def test_concurrent_distinct(self):
        mem = DeviceMemory(8 << 20)
        sa = ScatterAlloc(mem, 0, 1 << 20)
        got = []

        def kernel(ctx):
            p = yield from sa.malloc(ctx, 32)
            got.append(p)

        s = Scheduler(mem, seed=6)
        s.launch(kernel, 4, 64)
        s.run(max_events=40_000_000)
        ok = [p for p in got if p != NULL]
        assert len(set(ok)) == len(ok)
        assert len(ok) >= 250  # scatter probing may rarely miss


class TestXMallocSequential:
    def make(self, pool=1 << 20):
        mem = DeviceMemory(pool * 4)
        return mem, XMalloc(mem, 0, pool)

    def test_round_trip_and_reuse(self):
        mem, xm = self.make()
        p = drive(mem, xm.malloc(host_ctx(), 60))
        drive(mem, xm.free(host_ctx(), p))
        q = drive(mem, xm.malloc(host_ctx(), 60))
        assert q == p  # LIFO stack reuse

    def test_distinct_blocks(self):
        mem, xm = self.make()
        got = [drive(mem, xm.malloc(host_ctx(), 200)) for _ in range(50)]
        assert NULL not in got and len(set(got)) == 50

    def test_size_limits(self):
        mem, xm = self.make()
        assert drive(mem, xm.malloc(host_ctx(), 0)) == NULL
        assert drive(mem, xm.malloc(host_ctx(), 8192)) == NULL

    def test_exhaustion(self):
        mem = DeviceMemory(1 << 20)
        xm = XMalloc(mem, 0, 1 << 16, superblock=1 << 14)
        got = []
        while True:
            p = drive(mem, xm.malloc(host_ctx(), 4096))
            if p == NULL:
                break
            got.append(p)
        assert got  # some succeeded, then clean OOM

    def test_wild_free_detected(self):
        mem, xm = self.make()
        drive(mem, xm.malloc(host_ctx(), 64))
        with pytest.raises(XMallocError):
            drive(mem, xm.free(host_ctx(), xm.size + 4096))

    def test_stack_depth_accounting(self):
        mem, xm = self.make()
        p = drive(mem, xm.malloc(host_ctx(), 64))
        before = xm.host_stack_depth(64)
        drive(mem, xm.free(host_ctx(), p))
        assert xm.host_stack_depth(64) == before + 1


class TestXMallocConcurrent:
    def test_churn_no_duplicates(self):
        """The ABA-tagged stack must never hand one block to two
        threads."""
        mem = DeviceMemory(8 << 20)
        xm = XMalloc(mem, 0, 1 << 20)
        live = []
        dups = []

        def kernel(ctx):
            for _ in range(3):
                p = yield from xm.malloc(ctx, 48)
                if p == NULL:
                    continue
                if p in live:
                    dups.append(p)
                live.append(p)
                yield ops.sleep(ctx.rng.randrange(200))
                live.remove(p)
                yield from xm.free(ctx, p)

        s = Scheduler(mem, seed=7)
        s.launch(kernel, 4, 64)
        s.run(max_events=60_000_000)
        assert dups == [], f"double allocation: {dups}"
