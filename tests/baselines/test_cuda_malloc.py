"""CUDA-like baseline: first-fit correctness, coalescing, exhaustion."""

import pytest

from repro.baselines import BaselineHeapError, CudaLikeAllocator
from repro.sim import DeviceMemory, Scheduler, ops
from repro.sim.hostrun import drive, host_ctx

NULL = DeviceMemory.NULL


def make(heap=1 << 20):
    mem = DeviceMemory(heap * 2)
    base = mem.host_alloc(heap, align=16)
    return mem, CudaLikeAllocator(mem, base, heap)


class TestSequential:
    def test_initial_heap_is_one_free_block(self):
        mem, a = make()
        blocks = a.host_walk()
        assert len(blocks) == 1 and not blocks[0][2]
        assert a.host_free_bytes() == a.size

    def test_malloc_free_roundtrip(self):
        mem, a = make()
        p = drive(mem, a.malloc(host_ctx(), 100))
        assert p != NULL
        drive(mem, a.free(host_ctx(), p))
        assert len(a.host_walk()) == 1  # fully coalesced

    def test_distinct_allocations(self):
        mem, a = make()
        ps = [drive(mem, a.malloc(host_ctx(), 64)) for _ in range(50)]
        assert NULL not in ps and len(set(ps)) == 50
        spans = sorted(ps)
        for p1, p2 in zip(spans, spans[1:]):
            assert p2 - p1 >= 64

    def test_coalescing_both_directions(self):
        mem, a = make()
        ps = [drive(mem, a.malloc(host_ctx(), 200)) for _ in range(3)]
        # free middle, then left, then right: must merge back to one block
        drive(mem, a.free(host_ctx(), ps[1]))
        drive(mem, a.free(host_ctx(), ps[0]))
        drive(mem, a.free(host_ctx(), ps[2]))
        assert len(a.host_walk()) == 1

    def test_exhaustion_and_recovery(self):
        mem, a = make(heap=4096)
        ps = []
        while True:
            p = drive(mem, a.malloc(host_ctx(), 256))
            if p == NULL:
                break
            ps.append(p)
        assert ps
        drive(mem, a.free(host_ctx(), ps[0]))
        assert drive(mem, a.malloc(host_ctx(), 256)) == ps[0]

    def test_double_free_detected(self):
        mem, a = make()
        p = drive(mem, a.malloc(host_ctx(), 64))
        drive(mem, a.free(host_ctx(), p))
        with pytest.raises(BaselineHeapError):
            drive(mem, a.free(host_ctx(), p))

    def test_zero_size_returns_null(self):
        mem, a = make()
        assert drive(mem, a.malloc(host_ctx(), 0)) == NULL

    def test_rejects_bad_construction(self):
        mem = DeviceMemory(1 << 16)
        with pytest.raises(ValueError):
            CudaLikeAllocator(mem, 8, 1024)
        with pytest.raises(ValueError):
            CudaLikeAllocator(mem, 0, 17)


class TestConcurrent:
    def test_churn_no_corruption(self):
        mem, a = make()
        fails = []

        def kernel(ctx):
            for _ in range(2):
                p = yield from a.malloc(ctx, 64 + 16 * (ctx.tid % 8))
                if p == NULL:
                    fails.append(ctx.tid)
                    continue
                yield ops.sleep(ctx.rng.randrange(300))
                yield from a.free(ctx, p)

        s = Scheduler(mem, seed=21)
        s.launch(kernel, 2, 64)
        s.run(max_events=40_000_000)
        assert fails == []
        a.host_walk()  # validates headers/footers
        assert a.host_free_bytes() == a.size

    def test_serialization_throughput_profile(self):
        """The baseline's defining property: throughput does not scale
        with thread count (global lock)."""
        def rate(n):
            mem, a = make()

            def kernel(ctx):
                p = yield from a.malloc(ctx, 64)
                assert p != NULL

            s = Scheduler(mem, seed=1)
            s.launch(kernel, -(-n // 64), 64)
            rep = s.run(max_events=40_000_000)
            return n / rep.cycles

        r64, r512 = rate(64), rate(512)
        # 8x the threads must not yield anywhere near 8x the rate
        assert r512 < 3 * r64
