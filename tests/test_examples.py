"""The examples are part of the public deliverable: run each as a
subprocess and require a clean exit (their internal asserts double as
integration checks)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed:\n{proc.stdout}\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{script.name} produced no output"
