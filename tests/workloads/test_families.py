"""Workload families: registry surface, determinism, balance, shape."""

import pytest

from repro.workloads import families
from repro.workloads.families import WorkloadFamily, generate, get, register
from repro.workloads.trace import dumps, validate


class TestRegistry:
    def test_both_families_registered(self):
        assert set(families.names()) >= {"multi_tenant_zipf", "diurnal_burst"}

    def test_unknown_family_lists_registered(self):
        with pytest.raises(KeyError, match="multi_tenant_zipf"):
            get("warp_storm")

    def test_unknown_param_rejected_with_surface(self):
        with pytest.raises(ValueError, match="accepted:"):
            generate("multi_tenant_zipf", 0, warp_size=32)

    def test_duplicate_registration_rejected(self):
        fam = families.FAMILIES["diurnal_burst"]
        with pytest.raises(ValueError, match="already registered"):
            register(WorkloadFamily(fam.name, "dup", fam.defaults,
                                    fam.generator))


@pytest.mark.parametrize("family", ["multi_tenant_zipf", "diurnal_burst"])
class TestEveryFamily:
    def test_deterministic_given_seed(self, family):
        a = generate(family, 5, events=80)
        b = generate(family, 5, events=80)
        assert dumps(a) == dumps(b)
        assert dumps(a) != dumps(generate(family, 6, events=80))

    def test_balanced_and_valid(self, family):
        s = validate(generate(family, 3, events=120))
        assert s["live_at_end"] == 0
        assert s["mallocs"] == s["frees"]

    def test_params_recorded_in_header(self, family):
        t = generate(family, 1, events=50)
        assert t.params["events"] == 50
        assert t.seed == 1
        assert t.family == family

    def test_sizes_come_from_the_class_list(self, family):
        t = generate(family, 2, events=100, size_classes=(64, 4096))
        sizes = {e.size for e in t.events if e.op == "malloc"}
        assert sizes <= {64, 4096}

    def test_zero_events_still_valid(self, family):
        s = validate(generate(family, 0, events=0))
        assert s["events"] == 0


class TestMultiTenantZipf:
    def test_rate_skew_concentrates_requests(self):
        t = generate("multi_tenant_zipf", 11, events=600, rate_skew=2.0)
        per = validate(t)["mallocs_per_tenant"]
        assert per[0] > max(per[1:])

    def test_max_live_bounds_outstanding(self):
        t = generate("multi_tenant_zipf", 7, events=400, max_live=3)
        live = {}
        for e in t.events:
            if e.op == "malloc":
                live.setdefault(e.tenant, set()).add(e.id)
            else:
                live[e.tenant].discard(e.id)
            assert len(live[e.tenant]) <= 3

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="tenants"):
            generate("multi_tenant_zipf", 0, tenants=0)
        with pytest.raises(ValueError, match="events"):
            generate("multi_tenant_zipf", 0, events=-1)


class TestDiurnalBurst:
    def test_rate_profile_is_a_triangle(self):
        rate = families._diurnal_rate
        assert rate(0, 100, 4.0) == 1.0
        assert rate(50, 100, 4.0) == 4.0
        assert rate(100, 100, 4.0) == 1.0
        assert 1.0 < rate(25, 100, 4.0) < 4.0
        # symmetric around the peak
        assert rate(30, 100, 4.0) == rate(70, 100, 4.0)

    def test_burst_phases_pack_events_denser(self):
        t = generate("diurnal_burst", 13, events=500,
                     period=10000, burst=8.0, base_gap=200)
        # mean gap at peak approaches base_gap/burst; a trough event is
        # ~base_gap apart.  Compare arrival density in the first half of
        # a period (rising toward peak) against a flat profile.
        times = [e.time for e in t.events]
        assert times == sorted(times)
        by_phase = {"peak": 0, "trough": 0}
        for x in times:
            phase = x % 10000
            mid = min(phase, 10000 - phase)  # distance from trough
            by_phase["peak" if mid > 2500 else "trough"] += 1
        assert by_phase["peak"] > by_phase["trough"]

    def test_rejects_bad_profile(self):
        with pytest.raises(ValueError, match="period"):
            generate("diurnal_burst", 0, period=1)
        with pytest.raises(ValueError, match="burst"):
            generate("diurnal_burst", 0, burst=0.5)
