"""Trace format: recorder contract, validation, serialization round-trip."""

import json

import pytest

from repro.workloads.trace import (
    SCHEMA,
    Trace,
    TraceError,
    TraceEvent,
    TraceRecorder,
    bundled_path,
    dump,
    dumps,
    load,
    load_bundled,
    loads,
    validate,
)


def small_trace() -> Trace:
    rec = TraceRecorder("test", 1, tenants=2)
    a = rec.malloc(0, 64, time=10)
    b = rec.malloc(1, 256, time=20)
    rec.free(a, time=30)
    rec.free(b, time=40)
    return rec.trace()


class TestRecorder:
    def test_contract_enforced_at_record_time(self):
        rec = TraceRecorder("t", 0, tenants=2)
        eid = rec.malloc(0, 64, time=100)
        with pytest.raises(TraceError, match="non-decreasing"):
            rec.malloc(0, 64, time=50)
        with pytest.raises(TraceError, match="out of range"):
            rec.malloc(2, 64, time=200)
        with pytest.raises(TraceError, match="size must be >= 1"):
            rec.malloc(0, 0, time=200)
        rec.free(eid, time=200)
        with pytest.raises(TraceError, match="already freed"):
            rec.free(eid, time=300)
        with pytest.raises(TraceError, match="never allocated"):
            rec.free(999, time=300)

    def test_rejects_zero_tenants(self):
        with pytest.raises(TraceError, match="tenants"):
            TraceRecorder("t", 0, tenants=0)

    def test_live_ids_track_outstanding(self):
        rec = TraceRecorder("t", 0, tenants=1)
        a = rec.malloc(0, 8, time=1)
        b = rec.malloc(0, 8, time=2)
        assert rec.live_ids == [a, b]
        rec.free(a, time=3)
        assert rec.live_ids == [b]


class TestValidate:
    def test_summary_of_balanced_trace(self):
        s = validate(small_trace())
        assert s["events"] == 4
        assert s["mallocs"] == s["frees"] == 2
        assert s["live_at_end"] == 0
        assert s["duration"] == 40
        assert s["mallocs_per_tenant"] == [1, 1]

    def test_detects_double_free(self):
        t = small_trace()
        t.events.append(TraceEvent("free", 0, 0, 50))
        with pytest.raises(TraceError, match="double free"):
            validate(t)

    def test_detects_cross_tenant_free(self):
        t = small_trace()
        t.events = [
            TraceEvent("malloc", 0, 0, 1, 64),
            TraceEvent("free", 0, 1, 2),
        ]
        with pytest.raises(TraceError, match="tenant 0 allocated it"):
            validate(t)

    def test_detects_time_regression(self):
        t = small_trace()
        t.events[1] = TraceEvent("malloc", 9, 1, 5, 256)
        with pytest.raises(TraceError, match="non-decreasing"):
            validate(t)

    def test_detects_unknown_op(self):
        t = small_trace()
        t.events.append(TraceEvent("realloc", 7, 0, 99))
        with pytest.raises(TraceError, match="unknown op"):
            validate(t)


class TestSerialization:
    def test_round_trip_is_byte_identical(self, tmp_path):
        t = small_trace()
        path = dump(t, tmp_path / "t.jsonl")
        again = load(path)
        assert dumps(again) == dumps(t)
        assert again.events == t.events
        assert again.header() == t.header()

    def test_header_is_first_line_with_schema(self):
        first = json.loads(dumps(small_trace()).splitlines()[0])
        assert first["schema"] == SCHEMA

    def test_rejects_wrong_schema(self):
        text = dumps(small_trace()).replace(SCHEMA, "repro.workloads/99")
        with pytest.raises(TraceError, match="unsupported trace schema"):
            loads(text)

    def test_rejects_missing_header_key(self):
        header = small_trace().header()
        del header["tenants"]
        with pytest.raises(TraceError, match="missing key 'tenants'"):
            loads(json.dumps(header) + "\n")

    def test_rejects_empty_and_malformed(self, tmp_path):
        with pytest.raises(TraceError, match="empty trace file"):
            loads("")
        with pytest.raises(TraceError, match="not valid JSON"):
            loads("{nope\n")
        text = dumps(small_trace()) + '{"op": "malloc"}\n'
        with pytest.raises(TraceError, match="malformed event"):
            loads(text)
        with pytest.raises(TraceError, match="cannot read"):
            load(tmp_path / "missing.jsonl")

    def test_load_reports_path_and_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(dumps(small_trace()) + "[]\n")
        with pytest.raises(TraceError, match=r"bad\.jsonl:6"):
            load(path)


class TestBundled:
    def test_bundled_trace_is_valid_and_balanced(self):
        t = load_bundled("mt_small")
        s = validate(t)
        assert s["live_at_end"] == 0
        assert s["mallocs"] > 50
        assert t.tenants == 4
        assert bundled_path("mt_small").exists()

    def test_bundled_file_is_canonical(self):
        # The committed fixture must be exactly what dumps() would
        # write, so regeneration never produces a spurious diff.
        assert bundled_path("mt_small").read_text() == \
            dumps(load_bundled("mt_small"))
