"""Zipfian sampling: distribution shape and the determinism discipline."""

import math
import random

import pytest

from repro.workloads.zipf import ZipfSampler, _rank_pow, pick, zipf_shares


class TestRankPow:
    @pytest.mark.parametrize("rank", [1, 2, 3, 7, 100])
    @pytest.mark.parametrize("skew", [0.0, 0.5, 1.0, 1.5, 2.0, 3.5])
    def test_matches_pow_semantics(self, rank, skew):
        # The decomposition must agree with rank**skew to full precision
        # on this platform; cross-platform it is additionally *stable*,
        # which bare pow is not.
        assert _rank_pow(rank, skew) == pytest.approx(rank ** skew, rel=1e-12)

    def test_half_power_uses_sqrt(self):
        assert _rank_pow(2, 0.5) == math.sqrt(2)
        assert _rank_pow(4, 1.5) == 4.0 * math.sqrt(4)


class TestZipfSampler:
    def test_rejects_bad_support(self):
        with pytest.raises(ValueError, match="support size"):
            ZipfSampler(0)

    @pytest.mark.parametrize("skew", [-0.5, 0.3, 1.25, 0.9999])
    def test_rejects_non_half_multiples(self, skew):
        with pytest.raises(ValueError, match="multiple of 0.5"):
            ZipfSampler(4, skew)

    def test_weights_sum_to_one_and_decrease(self):
        w = ZipfSampler(8, 1.0).weights()
        assert sum(w) == pytest.approx(1.0)
        assert all(a > b for a, b in zip(w, w[1:]))

    def test_zero_skew_is_uniform(self):
        w = ZipfSampler(5, 0.0).weights()
        assert all(x == pytest.approx(0.2) for x in w)

    def test_sample_consumes_exactly_one_draw(self):
        # The generators rely on one-draw-per-sample to keep RNG streams
        # alignment-stable across malloc/free decisions.
        class CountingRng:
            def __init__(self):
                self.calls = 0

            def random(self):
                self.calls += 1
                return 0.5

        rng = CountingRng()
        s = ZipfSampler(6, 1.0)
        s.sample(rng)
        assert rng.calls == 1

    def test_samples_in_range_and_skewed(self):
        rng = random.Random(7)
        s = ZipfSampler(4, 2.0)
        counts = [0] * 4
        for _ in range(2000):
            counts[s.sample(rng)] += 1
        assert sum(counts) == 2000
        # strong skew: rank 1 dominates every other rank
        assert counts[0] > max(counts[1:])

    def test_deterministic_given_seed(self):
        a = [ZipfSampler(10, 1.5).sample(random.Random(3)) for _ in range(20)]
        b = [ZipfSampler(10, 1.5).sample(random.Random(3)) for _ in range(20)]
        assert a == b


class TestHelpers:
    def test_zipf_shares_matches_sampler(self):
        assert zipf_shares(6, 1.0) == ZipfSampler(6, 1.0).weights()

    def test_pick_returns_element(self):
        seq = ("a", "b", "c")
        assert pick(seq, random.Random(1)) in seq
