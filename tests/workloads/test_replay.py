"""Trace replay: lane partitioning, determinism, accounting, QoS."""

import pytest

from repro.workloads.families import generate
from repro.workloads.replay import (
    TenantStats,
    build_lanes,
    launch_geometry,
    replay,
)
from repro.workloads.trace import load_bundled, validate


def small_trace(seed=3, events=120, **kw):
    return generate("multi_tenant_zipf", seed, events=events,
                    mean_gap=40, **kw)


class TestBuildLanes:
    def test_round_robin_within_tenant(self):
        t = small_trace()
        lanes, stats = build_lanes(t, lanes_per_tenant=2)
        assert len(lanes) == t.tenants * 2
        assert set(stats) == set(range(t.tenants))
        # every event lands in one of its tenant's lanes, stream order kept
        for tenant, evs in t.events_by_tenant().items():
            a, b = lanes[tenant * 2], lanes[tenant * 2 + 1]
            assert sorted((e.id, e.time) for e in a + b) == \
                sorted((e.id, e.time) for e in evs)
            for lane in (a, b):
                assert [e.time for e in lane] == sorted(e.time for e in lane)

    def test_rejects_zero_lanes(self):
        with pytest.raises(ValueError, match="lanes_per_tenant"):
            build_lanes(small_trace(), lanes_per_tenant=0)


class TestLaunchGeometry:
    def test_covers_lanes(self):
        for n in (1, 3, 32, 33, 100):
            grid, block = launch_geometry(n)
            assert grid * block >= n
            assert block <= 32

    def test_small_counts_get_small_blocks(self):
        assert launch_geometry(3) == (1, 3)


class TestReplayDeterminism:
    def test_replay_twice_is_byte_identical(self):
        """Acceptance gate: same trace + backend + seed => identical
        virtual metrics and per-tenant stats, run to run."""
        t = load_bundled("mt_small")
        a = replay(t, backend="ours", seed=5, lanes_per_tenant=2)
        b = replay(t, backend="ours", seed=5, lanes_per_tenant=2)
        assert a.cycles == b.cycles
        assert a.events == b.events
        assert a.ops_per_s == b.ops_per_s
        assert a.tenants == b.tenants

    def test_seed_changes_schedule_not_accounting(self):
        t = small_trace()
        a = replay(t, seed=1)
        b = replay(t, seed=2)
        # the request stream is data: accounting totals agree even when
        # the fuzzed schedule (and hence cycle count) differs
        assert a.totals == b.totals


@pytest.mark.parametrize("backend", ["ours", "cuda", "hostbased"])
class TestAccountingAcrossBackends:
    def test_totals_reconcile_with_the_trace(self, backend):
        t = small_trace()
        s = validate(t)
        rep = replay(t, backend=backend, seed=0, lanes_per_tenant=2)
        totals = rep.totals
        assert totals.n_malloc == s["mallocs"]
        assert totals.n_free + totals.n_free_skipped == s["frees"]
        assert totals.n_free_skipped == totals.n_malloc_failed
        for tenant, st in rep.tenants.items():
            assert st.n_malloc == s["mallocs_per_tenant"][tenant]


class TestPressureAndQoS:
    def test_undersized_pool_counts_failures_per_tenant(self):
        # 256 KiB pool vs up to ~48 live 8 KiB blocks (~384 KiB): some
        # tenants must see NULL, and each skipped free pairs with a
        # failed malloc.
        t = small_trace(events=300, size_classes=(8192,),
                        free_fraction=0.05)
        rep = replay(t, backend="ours", seed=0, pool=1 << 18)
        totals = rep.totals
        assert totals.n_malloc_failed > 0
        assert totals.n_free_skipped == totals.n_malloc_failed
        assert 0.0 < totals.failure_rate < 1.0
        assert max(st.failure_rate for st in rep.tenants.values()) > 0

    def test_fairness_index_bounds(self):
        rep = replay(small_trace(), seed=0)
        assert 1.0 / len(rep.tenants) <= rep.fairness() <= 1.0

    def test_qos_table_has_one_row_per_tenant(self):
        rep = replay(small_trace(), seed=0)
        table = rep.table()
        for t in rep.tenants:
            assert f"t{t}" in table

    def test_tenant_stats_add(self):
        a = TenantStats(n_malloc=2, bytes_requested=64, bytes_served=64)
        b = TenantStats(n_malloc=1, n_malloc_failed=1, bytes_requested=32)
        a.add(b)
        assert a.n_malloc == 3
        assert a.n_malloc_failed == 1
        assert a.bytes_requested == 96
        assert a.bytes_served == 64
        assert a.ops_completed == 2
