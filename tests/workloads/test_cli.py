"""The ``python -m repro workloads`` surface."""

import pytest

import repro.__main__ as repro_main
from repro.workloads import cli
from repro.workloads.trace import load


class TestList:
    def test_lists_families_and_params(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "multi_tenant_zipf" in out
        assert "diurnal_burst" in out
        assert "--param tenants=" in out


class TestGen:
    def test_writes_a_valid_trace(self, tmp_path, capsys):
        out_path = tmp_path / "t.jsonl"
        rc = cli.main(["gen", "--family", "multi_tenant_zipf", "--seed", "3",
                       "--out", str(out_path), "--param", "events=60"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "events" in out and str(out_path) in out
        t = load(out_path)
        assert t.seed == 3
        assert t.params["events"] == 60

    def test_param_type_coercion(self, tmp_path):
        out_path = tmp_path / "t.jsonl"
        rc = cli.main(["gen", "--family", "diurnal_burst", "--seed", "1",
                       "--out", str(out_path),
                       "--param", "events=40",
                       "--param", "burst=2.5",
                       "--param", "size_classes=64,256"])
        assert rc == 0
        t = load(out_path)
        assert t.params["burst"] == 2.5
        assert t.params["size_classes"] == [64, 256]

    def test_unknown_family_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            cli.main(["gen", "--family", "nope", "--out",
                      str(tmp_path / "t.jsonl")])
        assert exc.value.code == 2

    def test_bad_param_reports_not_crashes(self, tmp_path, capsys):
        rc = cli.main(["gen", "--family", "multi_tenant_zipf",
                       "--out", str(tmp_path / "t.jsonl"),
                       "--param", "warp_size=32"])
        assert rc == 2
        assert "warp_size" in capsys.readouterr().err

    def test_malformed_param_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            cli.main(["gen", "--family", "multi_tenant_zipf",
                      "--out", str(tmp_path / "t.jsonl"),
                      "--param", "events"])
        assert exc.value.code == 2


class TestReplay:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        path = tmp_path / "t.jsonl"
        assert cli.main(["gen", "--family", "multi_tenant_zipf",
                         "--seed", "2", "--out", str(path),
                         "--param", "events=60",
                         "--param", "mean_gap=40"]) == 0
        return path

    def test_replay_prints_qos_table(self, trace_path, capsys):
        assert cli.main(["replay", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "== ours" in out
        assert "tenant" in out and "share" in out

    def test_replay_multiple_backends_sharded(self, trace_path, capsys):
        rc = cli.main(["replay", str(trace_path), "--backend", "ours",
                       "--backend", "cuda", "--workers", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== ours ==" in out and "== cuda ==" in out

    def test_missing_trace_reports_not_crashes(self, tmp_path, capsys):
        rc = cli.main(["replay", str(tmp_path / "missing.jsonl")])
        assert rc == 2
        assert "cannot read" in capsys.readouterr().err


class TestMainDispatch:
    def test_main_module_dispatches_workloads(self, capsys):
        assert repro_main.main(["workloads", "list"]) == 0
        assert "multi_tenant_zipf" in capsys.readouterr().out
