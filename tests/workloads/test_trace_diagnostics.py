"""Malformed trace input must fail with located, actionable diagnostics.

Traces are hand-editable JSONL; when one is broken, the error message is
the debugging interface.  Every parse failure must carry the ``where``
context (file/source label, line number where applicable) and say what
was expected — these tests pin the exact diagnostics so they cannot
silently regress into bare ``KeyError``\\ s.
"""

from __future__ import annotations

import json
import re

import pytest

from repro.workloads.trace import SCHEMA, TraceError, load, loads


def _header(**over):
    h = {"schema": SCHEMA, "family": "f", "seed": 0, "tenants": 2,
         "params": {}}
    h.update(over)
    return json.dumps(h)


def _doc(*event_lines, header=None):
    return "\n".join([header or _header(), *event_lines]) + "\n"


class TestHeaderDiagnostics:
    def test_empty_input(self):
        with pytest.raises(TraceError, match=r"<string>: empty trace file"):
            loads("")

    def test_header_not_json(self):
        with pytest.raises(TraceError,
                           match=r"<string>: header is not valid JSON"):
            loads("{oops\n")

    def test_header_not_an_object(self):
        with pytest.raises(TraceError, match=r"header line is not a JSON"):
            loads("[1, 2]\n")

    def test_wrong_schema_version_names_both_schemas(self):
        doc = _doc(header=_header(schema="repro.workloads/99"))
        with pytest.raises(
                TraceError,
                match=r"unsupported trace schema 'repro\.workloads/99', "
                      + re.escape(f"expected '{SCHEMA}'")):
            loads(doc)

    def test_missing_header_key_is_named(self):
        h = {"schema": SCHEMA, "family": "f", "seed": 0}  # no tenants
        with pytest.raises(TraceError, match=r"header missing key 'tenants'"):
            loads(json.dumps(h) + "\n")


class TestEventDiagnostics:
    def test_bad_json_event_carries_line_number(self):
        doc = _doc('{"op": "malloc", "id": 0, "tenant": 0, "time": 0, '
                   '"size": 8}',
                   "{broken json")
        with pytest.raises(TraceError,
                           match=r"<string>:3: event is not valid JSON"):
            loads(doc)

    def test_non_object_event_carries_line_number(self):
        with pytest.raises(TraceError,
                           match=r"<string>:2: event is not a JSON object"):
            loads(_doc("[1]"))

    def test_missing_field_reports_the_offending_line(self):
        doc = _doc('{"op": "malloc", "tenant": 0, "time": 0, "size": 8}')
        with pytest.raises(TraceError,
                           match=r"<string>:2: malformed event .*'id'"):
            loads(doc)

    def test_out_of_order_arrivals_name_event_and_times(self):
        doc = _doc(
            '{"op": "malloc", "id": 0, "tenant": 0, "time": 9, "size": 8}',
            '{"op": "malloc", "id": 1, "tenant": 0, "time": 3, "size": 8}',
        )
        with pytest.raises(
                TraceError,
                match=r"event 1 \(time 3\): arrival times must be "
                      r"non-decreasing integers \(previous was 9\)"):
            loads(doc)

    def test_double_free_located(self):
        doc = _doc(
            '{"op": "malloc", "id": 0, "tenant": 0, "time": 0, "size": 8}',
            '{"op": "free", "id": 0, "tenant": 0, "time": 1}',
            '{"op": "free", "id": 0, "tenant": 0, "time": 2}',
        )
        with pytest.raises(TraceError,
                           match=r"event 2 \(time 2\): double free 0"):
            loads(doc)

    def test_foreign_free_names_both_tenants(self):
        doc = _doc(
            '{"op": "malloc", "id": 0, "tenant": 0, "time": 0, "size": 8}',
            '{"op": "free", "id": 0, "tenant": 1, "time": 1}',
        )
        with pytest.raises(
                TraceError,
                match=r"free of id 0 by tenant 1, but tenant 0 allocated"):
            loads(doc)


class TestWherePropagation:
    def test_loads_uses_the_caller_supplied_label(self):
        with pytest.raises(TraceError, match=r"^stdin: empty trace file"):
            loads("", where="stdin")

    def test_load_uses_the_file_path(self, tmp_path):
        p = tmp_path / "broken.jsonl"
        p.write_text(_doc("{nope"))
        with pytest.raises(TraceError,
                           match=rf"{p}:2: event is not valid JSON"):
            load(p)

    def test_load_reports_unreadable_path(self, tmp_path):
        missing = tmp_path / "absent.jsonl"
        with pytest.raises(TraceError,
                           match=r"cannot read trace .*absent\.jsonl"):
            load(missing)
