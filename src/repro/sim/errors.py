"""Exception hierarchy for the SIMT simulator.

Every error raised by :mod:`repro.sim` derives from :class:`SimError` so
callers can catch simulator faults separately from ordinary Python errors
raised by device code under test.
"""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulator errors."""


class MisalignedAccess(SimError):
    """A word-sized memory operation used an address that is not 8-byte
    aligned."""

    def __init__(self, addr: int) -> None:
        super().__init__(f"misaligned 8-byte access at address {addr:#x}")
        self.addr = addr


class OutOfBoundsAccess(SimError):
    """A memory operation touched an address outside device memory."""

    def __init__(self, addr: int, size: int) -> None:
        super().__init__(
            f"out-of-bounds access at address {addr:#x} (memory size {size:#x})"
        )
        self.addr = addr
        self.size = size


class InvalidOp(SimError):
    """A device thread yielded something that is not a simulator op."""


class DeadlockError(SimError):
    """The event queue drained while threads were still parked, or the
    event budget was exhausted without progress."""


class EventBudgetExceeded(DeadlockError):
    """``run(max_events=N)`` tripped its event budget.

    Distinct from a structural deadlock (queue drained with parked
    threads): threads were still making events when the guard fired, so
    the run is a *livelock/budget* artifact.  Harnesses that sweep many
    schedules (``repro.verify``) classify this outcome separately from
    genuine protocol failures — a too-small budget must not read as a
    protocol violation."""


class LaunchError(SimError):
    """A kernel launch was malformed (bad grid/block dimensions, etc.)."""
