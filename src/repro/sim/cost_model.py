"""Cycle-cost model for the SIMT simulator.

The simulator measures *virtual cycles*.  Each op a device thread yields
advances that thread's clock by a cost taken from this model; atomics to
the same 8-byte word additionally serialize on the word (see
:class:`repro.sim.scheduler.Scheduler`).

Absolute values are loosely modeled on an NVIDIA Volta-class part (the
paper's Titan V): global memory latency in the hundreds of cycles, atomics
that are fire-and-forget at the L2 with a same-address service interval of
a handful of cycles, and a ~1.2 GHz clock used to convert cycles into
seconds for throughput reporting.  The reproduction only relies on the
*relative* shape of these costs, not their absolute accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class CostModel:
    """Cycle costs for each class of simulated operation.

    Attributes
    ----------
    load_latency:
        Cycles for a global-memory load.  Loads do not serialize on an
        address; the memory system is modeled as having abundant read
        bandwidth.
    store_latency:
        Cycles for a global-memory store (write-back, fire-and-forget).
    atomic_latency:
        Cycles from issuing an atomic until the issuing thread can use
        its result.
    atomic_service:
        Minimum spacing, in cycles, between two atomics that target the
        *same* 8-byte word.  This is the contention mechanism: a hot
        semaphore or lock word becomes a serialization point at
        ``1 / atomic_service`` ops per cycle.
    step_cost:
        Baseline cycles charged per resume of a device generator; stands
        in for the ALU work between memory operations.
    yield_cost:
        Cycles charged for a polite scheduling yield (spin-loop backoff
        quantum).
    barrier_cost:
        Cycles to release a block-wide barrier once the last thread
        arrives.
    warp_conv_cost:
        Cycles to form a converged warp (activemask rendezvous).
    block_dispatch:
        Cycles between a block retiring from an SM and the next queued
        block's threads starting.
    clock_hz:
        Virtual clock frequency used to convert cycles to seconds.
    """

    load_latency: int = 120
    store_latency: int = 40
    atomic_latency: int = 160
    atomic_service: int = 4
    step_cost: int = 4
    yield_cost: int = 24
    barrier_cost: int = 48
    warp_conv_cost: int = 16
    block_dispatch: int = 200
    clock_hz: float = 1.2e9

    def __post_init__(self):
        # A zero/negative clock would turn every seconds()/throughput()
        # call into a silent divide-by-zero; perturbation decks build
        # CostModels from user-ish input, so validate at construction.
        if self.clock_hz <= 0:
            raise ValueError(f"clock_hz must be positive (got {self.clock_hz})")
        for f in fields(self):
            if f.name != "clock_hz" and getattr(self, f.name) < 0:
                raise ValueError(
                    f"{f.name} must be non-negative (got {getattr(self, f.name)})"
                )

    def as_dict(self) -> dict:
        """The model's parameters as a plain dict (trace-file metadata)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def seconds(self, cycles: int) -> float:
        """Convert a cycle count to virtual seconds (0.0 for <= 0 cycles,
        so a trivially-short launch never produces a negative time)."""
        if cycles <= 0:
            return 0.0
        return cycles / self.clock_hz

    def throughput(self, n_ops: int, cycles: int) -> float:
        """Operations per virtual second over a run of ``cycles`` cycles.

        A zero-cycle run (nothing simulated — e.g. an empty launch or a
        kernel that returns before yielding an op) reports 0.0 rather
        than dividing by zero; callers render that as a failed/idle
        point instead of crashing mid-sweep.
        """
        if cycles <= 0:
            return 0.0
        return n_ops / self.seconds(cycles)


DEFAULT_COST_MODEL = CostModel()
