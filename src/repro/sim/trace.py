"""Structured tracing and synchronization telemetry for the simulator.

The paper's contributions are *contention* phenomena — hot semaphore
words, threads parked on barriers while holding SM residency, delegated
RCU barriers — and a single throughput number hides all of them.  This
module provides an opt-in :class:`Tracer` that the scheduler and every
sync primitive report into:

* **Timeline** — per-thread Chrome ``trace_event`` records (memory-op
  complete events, park/unpark spans on barriers and warp rendezvous,
  lock-held spans, RCU grace periods, per-SM residency counters) that
  load directly in ``chrome://tracing`` / Perfetto.
* **Telemetry** — aggregate statistics that survive even when the
  timeline is capped: per-word atomic serialization stalls, semaphore
  wait-time and lock wait/hold-time histograms, RCU grace-period
  latencies, collective group widths, per-SM occupancy-over-time.

Usage::

    from repro.sim import DeviceMemory, Scheduler, Tracer

    tracer = Tracer()
    sched = Scheduler(mem, tracer=tracer)
    sched.launch(kernel, grid, block)
    sched.run()
    tracer.write_chrome_trace("out.json")   # open in chrome://tracing
    print(tracer.summary())                 # plain-text telemetry tables

One tracer may observe several consecutive schedulers (as the benches
do when sweeping configurations); each run is shifted onto a common
timeline, and :meth:`Tracer.begin_run` labels the next run.

Overhead: when no tracer is attached, the scheduler's hot loop pays one
``is not None`` test per event and device-side primitives one attribute
test per call — measured under 1% on the Figure 5 bench.  All
collection costs are incurred only when a tracer is attached.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from . import ops as _ops

__all__ = ["Histogram", "Tracer"]


class Histogram:
    """Power-of-two-bucketed histogram of non-negative integer samples.

    Bucket ``b`` holds values whose bit length is ``b`` (``0``, ``1``,
    ``2-3``, ``4-7``, ...), which gives compact log-scale tables for
    quantities spanning many orders of magnitude (spin waits of 0 to
    millions of cycles).
    """

    __slots__ = ("buckets", "n", "total", "max")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.n = 0
        self.total = 0
        self.max = 0

    def add(self, value: int) -> None:
        b = int(value).bit_length()
        self.buckets[b] = self.buckets.get(b, 0) + 1
        self.n += 1
        self.total += value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def rows(self) -> List[Tuple[str, int]]:
        """``(range_label, count)`` rows for non-empty buckets, ascending."""
        out = []
        for b in sorted(self.buckets):
            if b <= 1:
                label = str(b)
            else:
                label = f"{1 << (b - 1)}-{(1 << b) - 1}"
            out.append((label, self.buckets[b]))
        return out


class Tracer:
    """Opt-in structured tracing + telemetry sink for scheduler runs.

    Parameters
    ----------
    timeline:
        Record per-event Chrome trace records.  Aggregate telemetry is
        collected regardless.
    max_timeline_events:
        Cap on stored timeline events (memory bound for long benches).
        Once hit, further events only increment :attr:`dropped_events`;
        aggregates are unaffected.
    """

    #: Per-memory-op verification hook.  ``None`` on the base tracer so
    #: the scheduler's hot loop skips the call entirely; subclasses that
    #: need word-level visibility (``repro.verify.RaceChecker``) override
    #: it with a method ``mem_op(th, op, t, result)`` receiving the full
    #: op tuple (opcode, byte address, operands) and the op's result.
    mem_op = None

    def __init__(self, timeline: bool = True,
                 max_timeline_events: int = 500_000) -> None:
        self.timeline = timeline
        self.max_timeline_events = max_timeline_events
        self.events: List[dict] = []
        self.dropped_events = 0
        # -- aggregate telemetry ---------------------------------------
        self.op_counts: Dict[int, int] = {}
        #: word index -> [atomic op count, total serialization stall cycles]
        self.word_stats: Dict[int, List[int]] = {}
        self.sem_wait = Histogram()
        self.sem_outcomes: Dict[str, int] = {}
        self.lock_wait = Histogram()
        self.lock_hold = Histogram()
        self.collective_width = Histogram()
        self.rcu_grace: List[int] = []
        self.rcu_full = 0
        self.rcu_delegated = 0
        #: (run index, sm) -> [(ts, resident block count)]
        self.sm_occupancy: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        self.runs: List[dict] = []
        # -- live state ------------------------------------------------
        self._sched: Any = None
        self._run = -1
        self._next_label: Optional[str] = None
        self._offset = 0     # shifts the current run onto the global timeline
        self._hi = 0         # latest timestamp observed (global timeline)
        self._sms: set = set()
        self._cost_model: Optional[dict] = None
        self._counts_seen: Dict[int, int] = {}
        self._held: Dict[Tuple[int, int], int] = {}   # (tid, addr) -> acquire ts

    # ------------------------------------------------------------------
    # Run lifecycle (scheduler-driven)
    # ------------------------------------------------------------------
    def begin_run(self, label: str) -> None:
        """Label the next scheduler attached to this tracer."""
        self._next_label = label

    def _attach(self, scheduler) -> None:
        """Bind to a scheduler (called by ``Scheduler.__init__``)."""
        self._sched = scheduler
        self._run += 1
        self._offset = self._hi
        self._counts_seen = {}
        self._sms.update(range(scheduler.device.num_sms))
        self._cost_model = scheduler.cost_model.as_dict()
        label = self._next_label or f"run{self._run}"
        self._next_label = None
        self.runs.append({"label": label, "t0": self._offset, "t1": None})
        if self.timeline:
            self._emit({"name": "run", "ph": "i", "cat": "run", "s": "g",
                        "ts": self._offset, "pid": 0, "tid": 0,
                        "args": {"label": label}})

    def run_finished(self, report) -> None:
        """Fold a completed run's op counts into the telemetry."""
        for code, n in report.op_counts.items():
            delta = n - self._counts_seen.get(code, 0)
            if delta:
                self.op_counts[code] = self.op_counts.get(code, 0) + delta
        self._counts_seen = dict(report.op_counts)
        if self.runs:
            self.runs[-1]["t1"] = self._hi

    # ------------------------------------------------------------------
    # Scheduler hooks (hot path — called only when a tracer is attached)
    # ------------------------------------------------------------------
    def _note(self, ts: int) -> None:
        if ts > self._hi:
            self._hi = ts

    def _emit(self, ev: dict) -> None:
        self._note(ev["ts"] + ev.get("dur", 0))
        if len(self.events) < self.max_timeline_events:
            self.events.append(ev)
        else:
            self.dropped_events += 1

    def op_executed(self, th, code: int, t: int, dur: int) -> None:
        """A memory op executed at ``t``, its result ready after ``dur``."""
        ts = t + self._offset
        self._note(ts + dur)
        if self.timeline:
            self._emit({"name": _ops.OP_NAMES.get(code, f"op{code}"),
                        "ph": "X", "cat": "op", "ts": ts, "dur": dur,
                        "pid": th.ctx.sm, "tid": th.tid})

    def atomic_issued(self, waddr: int, stall: int) -> None:
        """An atomic reserved its word's service slot, ``stall`` cycles late."""
        st = self.word_stats.get(waddr)
        if st is None:
            self.word_stats[waddr] = [1, stall]
        else:
            st[0] += 1
            st[1] += stall

    def parked(self, th, kind: str, t: int) -> None:
        ts = t + self._offset
        self._note(ts)
        if self.timeline:
            self._emit({"name": kind, "ph": "B", "cat": "sync", "ts": ts,
                        "pid": th.ctx.sm, "tid": th.tid})

    def unparked(self, th, kind: str, t: int) -> None:
        ts = t + self._offset
        self._note(ts)
        if self.timeline:
            self._emit({"name": kind, "ph": "E", "cat": "sync", "ts": ts,
                        "pid": th.ctx.sm, "tid": th.tid})

    def block_dispatched(self, blk, t: int, resident: int) -> None:
        self._occupancy(blk.sm, t, resident)

    def block_retired(self, blk, t: int, resident: int) -> None:
        self._occupancy(blk.sm, t, resident)

    def _occupancy(self, sm: int, t: int, resident: int) -> None:
        ts = t + self._offset
        self._note(ts)
        self.sm_occupancy.setdefault((self._run, sm), []).append((ts, resident))
        if self.timeline:
            self._emit({"name": "resident_blocks", "ph": "C", "cat": "sm",
                        "ts": ts, "pid": sm,
                        "args": {"blocks": resident}})

    # ------------------------------------------------------------------
    # Device-side hooks (called by sync primitives through ``ctx.trace``)
    # ------------------------------------------------------------------
    def now(self, ctx) -> int:
        """Current virtual time of the calling device thread."""
        return self._sched._threads[ctx.tid].clock

    def lock_acquired(self, ctx, addr: int, t0: int) -> None:
        """A lock at ``addr`` was acquired; the attempt started at ``t0``."""
        t1 = self.now(ctx)
        self.lock_wait.add(t1 - t0)
        self._held[(ctx.tid, addr)] = t1

    def lock_released(self, ctx, addr: int) -> None:
        t1 = self.now(ctx)
        t0 = self._held.pop((ctx.tid, addr), None)
        if t0 is None:
            return  # acquired before the tracer attached; no span to close
        self.lock_hold.add(t1 - t0)
        if self.timeline:
            self._emit({"name": f"lock@{addr:#x}", "ph": "X", "cat": "lock",
                        "ts": t0 + self._offset, "dur": t1 - t0,
                        "pid": ctx.sm, "tid": ctx.tid})

    def sem_waited(self, ctx, addr: int, t0: int, outcome: str) -> None:
        """A semaphore ``wait`` finished; it started at ``t0``.

        ``outcome`` tags the triage result (``acquired``, ``batch`` for a
        bulk-semaphore batch promise, ``grower`` for a counting-semaphore
        batch allocator).
        """
        t1 = self.now(ctx)
        wait = t1 - t0
        self.sem_wait.add(wait)
        self.sem_outcomes[outcome] = self.sem_outcomes.get(outcome, 0) + 1
        if self.timeline and wait > 0:
            self._emit({"name": f"sem_wait@{addr:#x}", "ph": "X",
                        "cat": "sem", "ts": t0 + self._offset, "dur": wait,
                        "pid": ctx.sm, "tid": ctx.tid,
                        "args": {"outcome": outcome}})

    def collective_joined(self, ctx, width: int) -> None:
        """A collective acquire converged with ``width`` participants."""
        self.collective_width.add(width)

    def rcu_grace_period(self, ctx, t_flip: int, t_drained: int,
                         domain=None) -> None:
        """A full RCU barrier's grace period: epoch flip to reader drain.

        ``domain`` identifies the :class:`~repro.sync.rcu.RCU` instance;
        verification subclasses use it to scope deferred-reclamation
        quarantines per domain."""
        self.rcu_full += 1
        self.rcu_grace.append(t_drained - t_flip)
        if self.timeline:
            self._emit({"name": "rcu_grace", "ph": "X", "cat": "rcu",
                        "ts": t_flip + self._offset,
                        "dur": t_drained - t_flip,
                        "pid": ctx.sm, "tid": ctx.tid})

    # ------------------------------------------------------------------
    # List / reclamation attach points (no-ops here; RaceChecker uses
    # them to track RCU quarantines)
    # ------------------------------------------------------------------
    def list_removed(self, ctx, dlist, node: int) -> None:
        """``node`` is about to be unlinked from ``dlist`` (writer lock
        held by the caller)."""

    def list_inserted(self, ctx, dlist, node: int) -> None:
        """``node`` is about to be (re-)linked into ``dlist``."""

    def rcu_delegation(self, ctx) -> None:
        """A conditional RCU barrier returned immediately (delegated)."""
        self.rcu_delegated += 1
        if self.timeline:
            self._emit({"name": "rcu_delegated", "ph": "i", "cat": "rcu",
                        "s": "t", "ts": self.now(ctx) + self._offset,
                        "pid": ctx.sm, "tid": ctx.tid})

    # ------------------------------------------------------------------
    # Derived telemetry
    # ------------------------------------------------------------------
    @property
    def named_op_counts(self) -> Dict[str, int]:
        """Op counts keyed by opcode name, descending by count (equal
        counts tie-break on the name, deterministically)."""
        named = [(_ops.OP_NAMES.get(k, f"op{k}"), v)
                 for k, v in self.op_counts.items()]
        return dict(sorted(named, key=lambda kv: (-kv[1], kv[0])))

    def top_stall_words(self, n: int = 10) -> List[Tuple[int, int, int]]:
        """Top-``n`` atomic targets by total serialization stall.

        Returns ``(byte_address, atomic_ops, total_stall_cycles)`` rows —
        the simulator-wide ranking of contention points.  Equal stall
        totals tie-break on the address, deterministically.
        """
        top = sorted(self.word_stats.items(),
                     key=lambda kv: (-kv[1][1], kv[0]))[:n]
        return [(waddr << 3, ops_n, stall) for waddr, (ops_n, stall) in top]

    def occupancy_stats(self) -> List[Tuple[str, int, int, float, int]]:
        """Per-(run, SM) residency: ``(run_label, sm, peak, mean, span)``.

        ``mean`` is the time-weighted mean resident-block count over the
        SM's active span (first to last residency change).
        """
        out = []
        for (run, sm), samples in sorted(self.sm_occupancy.items()):
            label = self.runs[run]["label"] if run < len(self.runs) else str(run)
            peak = max(r for _, r in samples)
            span = samples[-1][0] - samples[0][0]
            if span > 0:
                area = sum(
                    samples[i][1] * (samples[i + 1][0] - samples[i][0])
                    for i in range(len(samples) - 1)
                )
                mean = area / span
            else:
                mean = float(samples[-1][1])
            out.append((label, sm, peak, mean, span))
        return out

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def chrome_trace(self) -> dict:
        """The run as a Chrome ``trace_event`` JSON object.

        Timestamps are virtual GPU *cycles* (the viewer will display
        them as microseconds; only relative spans are meaningful).
        """
        meta = [
            {"name": "process_name", "ph": "M", "pid": sm,
             "args": {"name": f"SM {sm}"}}
            for sm in sorted(self._sms)
        ]
        return {
            "traceEvents": meta + self.events,
            "displayTimeUnit": "ms",
            "otherData": {
                "time_unit": "virtual GPU cycles",
                "cost_model": self._cost_model,
                "runs": self.runs,
                "dropped_events": self.dropped_events,
            },
        }

    def write_chrome_trace(self, path: str) -> str:
        """Write :meth:`chrome_trace` JSON to ``path``; returns ``path``."""
        with open(path, "w") as f:
            json.dump(self.chrome_trace(), f)
        return path

    def summary(self, top: int = 10) -> str:
        """Plain-text telemetry tables (see ``bench.reporting``)."""
        from ..bench.reporting import trace_summary

        return trace_summary(self, top=top)
