"""Event-driven SIMT scheduler.

Threads are Python generators; every op they yield is executed atomically
at the thread's virtual time, and ops execute in global virtual-time
order, so interleavings are realistic *and* reproducible given a seed.

Three hardware behaviours the reproduction depends on are modeled here:

1. **Same-word atomic serialization.**  Each 8-byte word has an
   availability time; an atomic that finds its word busy is rescheduled
   to the word's availability time.  A hot semaphore/lock word therefore
   caps throughput at ``1 / atomic_service`` ops per cycle — the
   contention wall the paper designs around.

2. **Block residency.**  Each SM runs at most ``max_resident_blocks``
   blocks; queued blocks start only when a resident block's threads have
   *all* finished.  Threads blocked on barriers or spinning on RCU
   barriers therefore hold SM resources and delay queued blocks — the
   effect RCU delegation (paper §4.2.1, Fig. 6) exists to mitigate.

3. **Warp convergence.**  ``ops.warp_converge()`` parks a lane until
   either every live lane of its warp is parked/done, or a small
   convergence window expires; the lanes parked on the op then resume
   together with the converged mask — the simulator's ``__activemask()``.
"""

from __future__ import annotations

import random
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from heapq import heappop, heappush, heappushpop
from types import GeneratorType as Generator
from typing import (Any, Callable, Deque, Dict, Iterable, List, Optional,
                    Sequence, Tuple)

from . import ops as _ops
from .cost_model import DEFAULT_COST_MODEL, CostModel
from .device import DEFAULT_DEVICE, GPUDevice, ThreadCtx
from .errors import DeadlockError, EventBudgetExceeded, InvalidOp, LaunchError
from .memory import DeviceMemory
from .trace import Tracer

# Thread states
_ST_READY = 0
_ST_BARRIER = 1
_ST_CONV = 2
_ST_DONE = 3

_TIMER = -1  # sentinel tid for timer events

#: sentinel tid for bucketed heap entries produced by the batch engine:
#: ``(t, first_seq, _BATCH, [first_seq, item, ...])`` carries every
#: event the batch engine queued for time ``t`` in one heap entry (an
#: item is an int tid or a timer callable; see repro.sim.engine_batch)
_BATCH = -2

#: the selectable run-loop implementations (``Scheduler(engine=...)``)
ENGINES = ("event", "batch")

#: process-wide default for ``Scheduler(engine=None)`` — see
#: :func:`set_default_engine` / :func:`use_engine`
_DEFAULT_ENGINE = "event"


def default_engine() -> str:
    """The engine a ``Scheduler(engine=None)`` will resolve to."""
    return _DEFAULT_ENGINE


def set_default_engine(name: str) -> None:
    """Set the process-wide default engine (validated against
    :data:`ENGINES`).  Harnesses that construct schedulers deep inside
    bench runners use this — via :func:`use_engine` — to thread an
    ``--engine`` flag without changing every runner signature."""
    global _DEFAULT_ENGINE
    if name not in ENGINES:
        raise ValueError(
            f"unknown engine {name!r}; choose from {', '.join(ENGINES)}"
        )
    _DEFAULT_ENGINE = name


@contextmanager
def use_engine(name: Optional[str]):
    """Scoped :func:`set_default_engine`; ``None`` is a no-op (inherit).

    Schedulers constructed inside the ``with`` body with
    ``engine=None`` resolve to ``name``; the previous default is
    restored on exit even when the body raises.
    """
    prev = _DEFAULT_ENGINE
    if name is not None:
        set_default_engine(name)
    try:
        yield
    finally:
        set_default_engine(prev)

#: effective event budget when ``run(max_events=None)`` — one compare
#: per event against a huge int beats a per-event ``is not None`` test
_NO_BUDGET = 1 << 62

#: Convergence window (cycles): lanes of a warp that request convergence
#: within this window of the first requester converge together even if
#: other lanes of the warp are still running.
WARP_CONV_WINDOW = 96

#: Default event interval between ``schedule_probe`` firings.
PROBE_EVERY = 512

#: Cycle window of the deterministic per-thread ``steer`` dispatch
#: offset (prime, so thread phases do not alias the warp stagger).
STEER_WINDOW = 61

# FNV-1a constants for the schedule digest
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


class _Thread:
    __slots__ = (
        "tid", "gen", "send", "ctx", "state", "clock", "pending", "inbox",
        "block", "warp", "retval", "park_time", "finish_time",
    )

    def __init__(self, tid: int, gen, ctx: ThreadCtx, block: "_Block", warp: "_Warp"):
        self.tid = tid
        self.gen = gen
        # bound ``gen.send`` — the run loops call it once per event, and
        # reading one slot beats an attribute lookup plus a method bind
        self.send = gen.send
        self.ctx = ctx
        self.state = _ST_READY
        self.clock = 0
        self.pending = None   # op to execute at next pop
        self.inbox = None     # value to send at next resume when no pending op
        self.block = block
        self.warp = warp
        self.retval = None
        self.park_time = 0
        self.finish_time = -1  # virtual completion time; -1 while live


class _Block:
    __slots__ = ("bid", "sm", "tids", "n_live", "barrier_waiters", "dispatched")

    def __init__(self, bid: int, sm: int):
        self.bid = bid
        self.sm = sm
        self.tids: List[int] = []
        self.n_live = 0
        self.barrier_waiters: List[int] = []
        self.dispatched = False


class _Warp:
    __slots__ = ("lanes", "n_unparked", "conv_waiters", "conv_keys",
                 "conv_gen", "conv_timer_gen", "sync_waiters", "bcast_values")

    def __init__(self):
        self.lanes: List[int] = []
        # Lanes neither parked (barrier/convergence) nor finished — the
        # lanes that block a pending warp_converge.  Maintained at every
        # state transition so the convergence check is O(1), not an
        # O(warp_size) state scan per park.
        self.n_unparked = 0
        self.conv_waiters: List[int] = []
        # tid -> match key for lanes that parked via ops.warp_match
        self.conv_keys: Dict[int, object] = {}
        # Generation counter: a convergence-window timer only fires for
        # the convergence round it was armed for.
        self.conv_gen = 0
        self.conv_timer_gen = -1
        # mask -> list of parked tids (for ops.warp_sync / warp_broadcast)
        self.sync_waiters: Dict[frozenset, List[int]] = {}
        # mask -> broadcast payloads contributed so far
        self.bcast_values: Dict[frozenset, list] = {}


def _instant_thread(retval):
    """Wrap a non-generator kernel result as an instantly-finishing thread."""
    return retval
    yield  # pragma: no cover - makes this function a generator


@dataclass
class SimReport:
    """Result of a completed simulation run."""

    cycles: int
    events: int
    n_threads: int
    op_counts: Dict[int, int] = field(default_factory=dict)
    cost_model: CostModel = DEFAULT_COST_MODEL

    @property
    def named_op_counts(self) -> Dict[str, int]:
        """Op counts keyed by opcode *name* (``atomic_add``, ``load``,
        ...), descending by count — the human-readable view of
        :attr:`op_counts`.  Equal counts tie-break on the name so the
        ordering is deterministic, not dict-insertion-order."""
        named = [(_ops.OP_NAMES.get(k, f"op{k}"), v)
                 for k, v in self.op_counts.items()]
        return dict(sorted(named, key=lambda kv: (-kv[1], kv[0])))

    @property
    def seconds(self) -> float:
        """Virtual wall time of the run."""
        return self.cost_model.seconds(self.cycles)

    def throughput(self, n_ops: int) -> float:
        """Ops per virtual second, for ``n_ops`` completed during the run."""
        return self.cost_model.throughput(n_ops, self.cycles)


class LaunchHandle:
    """Handle to one kernel launch; exposes per-thread return values."""

    def __init__(self, scheduler: "Scheduler", tids: List[int]):
        self._scheduler = scheduler
        self._tids = tids

    @property
    def n_threads(self) -> int:
        return len(self._tids)

    @property
    def tids(self) -> List[int]:
        """Scheduler-global thread ids of this launch, in lane order.

        Thread ids are global and monotonic across launches on a reused
        scheduler, so kernels that index per-launch state by lane must
        subtract ``tids[0]`` from ``ctx.tid`` rather than use it raw.
        """
        return list(self._tids)

    @property
    def results(self) -> List[Any]:
        """Per-thread kernel return values (valid after ``run()``)."""
        return [self._scheduler._threads[t].retval for t in self._tids]

    @property
    def finish_times(self) -> List[int]:
        """Per-thread virtual completion times (valid after ``run()``;
        ``-1`` for threads still live).  Service-style harnesses derive
        per-request latency from these: ``finish - launch_now``."""
        return [self._scheduler._threads[t].finish_time for t in self._tids]


class Scheduler:
    """Deterministic discrete-event scheduler over a :class:`DeviceMemory`.

    Typical use::

        mem = DeviceMemory(1 << 20)
        sched = Scheduler(mem, seed=42)
        h = sched.launch(kernel, grid=4, block=128, args=(arg0, arg1))
        report = sched.run()
        print(report.cycles, h.results[:4])

    Multiple launches may be queued before ``run()``; they share the
    device and execute concurrently (as separate grids on one GPU).  For
    dependent phases, call ``run()`` between launches — the scheduler can
    be reused and virtual time keeps advancing monotonically.
    """

    def __init__(
        self,
        memory: DeviceMemory,
        device: GPUDevice = DEFAULT_DEVICE,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        seed: int = 0,
        track_contention: bool = False,
        tracer: Optional[Tracer] = None,
        dispatch_jitter: int = 0,
        fault_injector: object = None,
        steer: int = 0,
        schedule_probe: Optional[Callable[[tuple], None]] = None,
        probe_every: int = PROBE_EVERY,
        engine: Optional[str] = None,
    ) -> None:
        # Hostile knobs fail here, at construction, with pointed errors.
        # Accepting them used to defer the failure into the run loop
        # (negative dispatch_jitter asks randrange for an empty range on
        # the first dispatched block) or, worse, silently change
        # behavior (probe_every < 1 degrades to probing every event;
        # negative steer feeds undocumented phase math).
        if dispatch_jitter < 0:
            raise ValueError(
                f"dispatch_jitter must be >= 0 (got {dispatch_jitter}): a "
                "negative jitter window would ask randrange for an empty "
                "range at block dispatch"
            )
        if steer < 0:
            raise ValueError(
                f"steer must be >= 0 (got {steer}): steering salts are "
                "non-negative integers (0 = the historical schedule)"
            )
        if schedule_probe is not None and probe_every < 1:
            raise ValueError(
                f"probe_every must be >= 1 when a schedule_probe is "
                f"attached (got {probe_every}): anything smaller silently "
                "degrades to probing every event"
            )
        if engine is None:
            engine = _DEFAULT_ENGINE
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {', '.join(ENGINES)}"
            )
        self.engine = engine
        self.memory = memory
        self.device = device
        self.cost_model = cost_model
        self.seed = seed
        # Extra per-thread start-time jitter (cycles).  Schedule fuzzing
        # (repro.verify) sweeps this to perturb which interleavings a
        # given seed explores; 0 keeps the historical dispatch pattern.
        self.dispatch_jitter = dispatch_jitter
        # Steering salt: a deterministic per-(steer, tid) dispatch-phase
        # offset in [0, STEER_WINDOW).  Unlike ``dispatch_jitter`` it
        # consumes no RNG draws, so two runs differing only in ``steer``
        # execute identical per-thread instruction streams under shifted
        # start phases — the schedule-exploration engine's cheapest
        # independent scheduling axis.  0 (the default) is a no-op and
        # preserves every historical schedule byte-for-byte.
        self.steer = steer
        # Schedule observation hook: when set, ``probe(state_digest())``
        # fires every ``probe_every`` events on *both* run loops.  The
        # probe only observes — it must not touch scheduler or memory
        # state — so attaching one never changes virtual metrics.
        self.schedule_probe = schedule_probe
        self.probe_every = probe_every
        self._rng = random.Random(seed)
        self._threads: List[_Thread] = []
        self._blocks: List[_Block] = []
        self._warps: List[_Warp] = []
        self._heap: list = []
        self._seq = 0
        self._word_avail: Dict[int, int] = {}
        self._sm_queues: List[Deque[_Block]] = [
            deque() for _ in range(device.num_sms)
        ]
        self._sm_resident: List[int] = [0] * device.num_sms
        self._now = 0
        self._events = 0
        # Per-opcode event counts, indexed by opcode.  A flat list is
        # measurably cheaper than a dict in the hot loop; zero entries
        # are dropped when the counts are exposed as a dict.
        self._op_counts: List[int] = [0] * _ops.N_OPCODES
        self._live_threads = 0
        self._next_block_sm = 0
        # Precompiled dispatch tables (the hot loop indexes these by
        # opcode instead of walking if/elif chains).
        # 1) binary atomics: opcode -> bound DeviceMemory method taking
        #    (addr, operand); CAS/load/store have distinct arities or
        #    latencies and keep dedicated branches.
        tab: List[Any] = [None] * _ops.N_OPCODES
        tab[_ops.OP_ADD] = memory.add_word
        tab[_ops.OP_EXCH] = memory.exch_word
        tab[_ops.OP_AND] = memory.and_word
        tab[_ops.OP_OR] = memory.or_word
        tab[_ops.OP_XOR] = memory.xor_word
        tab[_ops.OP_MAX] = memory.max_word
        tab[_ops.OP_MIN] = memory.min_word
        self._atomic_exec = tab
        # 2) parking/control ops: opcode -> handler(th, op_tuple, t).
        self._park_dispatch: Dict[int, Callable] = {
            _ops.OP_BARRIER: self._op_barrier,
            _ops.OP_WARP_CONV: self._op_warp_conv,
            _ops.OP_WARP_SYNC: self._op_warp_sync,
            _ops.OP_WARP_MATCH: self._op_warp_match,
            _ops.OP_WARP_BCAST: self._op_warp_bcast,
            _ops.OP_FAULT: self._op_fault,
        }
        # contention telemetry: word index -> atomic op count
        self.track_contention = track_contention
        self._word_ops: Dict[int, int] = {}
        # structured tracing/telemetry (opt-in; None costs one test per event)
        self.tracer = tracer
        if tracer is not None:
            tracer._attach(self)
        # deterministic fault injection (opt-in; see repro.resil).  The
        # injector is handed to every ThreadCtx so device code can gate
        # its fault_point probes on `ctx.fault is not None`.
        self.fault_injector = fault_injector

    # ------------------------------------------------------------------
    # Launch
    # ------------------------------------------------------------------
    def launch(
        self,
        kernel: Callable[..., Any],
        grid: int,
        block: int,
        args: tuple = (),
    ) -> LaunchHandle:
        """Queue a 1-D kernel launch of ``grid`` blocks x ``block`` threads.

        ``kernel(ctx, *args)`` is called once per thread; it may be a
        generator function (the normal case) or a plain function (the
        thread then completes instantly with the function's return
        value).
        """
        if grid <= 0 or block <= 0:
            raise LaunchError(f"bad launch configuration grid={grid} block={block}")
        if block > self.device.max_threads_per_block:
            raise LaunchError(
                f"block of {block} threads exceeds device limit "
                f"{self.device.max_threads_per_block}"
            )
        warp_size = self.device.warp_size
        nthreads = grid * block
        tids: List[int] = []
        for b in range(grid):
            sm = self._next_block_sm
            self._next_block_sm = (self._next_block_sm + 1) % self.device.num_sms
            blk = _Block(len(self._blocks), sm)
            self._blocks.append(blk)
            warp: Optional[_Warp] = None
            for t in range(block):
                tid = len(self._threads)
                if t % warp_size == 0:
                    warp = _Warp()
                    self._warps.append(warp)
                assert warp is not None
                ctx = ThreadCtx(
                    tid=tid,
                    block=blk.bid,
                    tid_in_block=t,
                    lane=t % warp_size,
                    warp=len(self._warps) - 1,
                    sm=sm,
                    nthreads=nthreads,
                    block_dim=block,
                    rng=random.Random((self.seed << 20) ^ (tid * 0x9E3779B9)),
                    trace=self.tracer,
                    fault=self.fault_injector,
                )
                gen = kernel(ctx, *args)
                if not isinstance(gen, Generator):
                    gen = _instant_thread(gen)
                th = _Thread(tid, gen, ctx, blk, warp)
                self._threads.append(th)
                blk.tids.append(tid)
                warp.lanes.append(tid)
                warp.n_unparked += 1
                tids.append(tid)
            blk.n_live = block
            self._sm_queues[sm].append(blk)
            self._live_threads += block
        self._dispatch_ready_blocks(self._now)
        return LaunchHandle(self, tids)

    def _dispatch_ready_blocks(self, t: int) -> None:
        for sm in range(self.device.num_sms):
            q = self._sm_queues[sm]
            while q and self._sm_resident[sm] < self.device.max_resident_blocks:
                blk = q.popleft()
                self._sm_resident[sm] += 1
                self._dispatch_block(blk, t)

    def _dispatch_block(self, blk: _Block, t: int) -> None:
        blk.dispatched = True
        warp_size = self.device.warp_size
        # Dispatch cost is charged uniformly — including for blocks
        # dispatched at virtual time 0, which used to start for free and
        # skewed small-grid timings.
        start = t + self.cost_model.block_dispatch
        if self.tracer is not None:
            self.tracer.block_dispatched(blk, start, self._sm_resident[blk.sm])
        extra = self.dispatch_jitter
        steer = self.steer
        for tid in blk.tids:
            th = self._threads[tid]
            # Stagger warps slightly so launches do not start in perfect
            # lockstep; deterministic given the seed.
            jitter = (th.ctx.tid_in_block // warp_size) * 2 + self._rng.randrange(4)
            if extra:
                jitter += self._rng.randrange(extra)
            if steer:
                # Arithmetic (not RNG) so the draw streams above stay
                # untouched: mix (steer, tid) and fold into the window.
                x = ((tid + 1) * 0x9E3779B97F4A7C15) ^ (steer * 0xC2B2AE3D27D4EB4F)
                jitter += ((x ^ (x >> 29)) & _MASK64) % STEER_WINDOW
            th.clock = start + jitter
            self._push(th.clock, tid)

    # ------------------------------------------------------------------
    # Heap helpers
    # ------------------------------------------------------------------
    def _push(self, t: int, tid: int) -> None:
        self._seq += 1
        heappush(self._heap, (t, self._seq, tid))

    def _push_timer(self, t: int, fn: Callable[[int], None]) -> None:
        self._seq += 1
        heappush(self._heap, (t, self._seq, _TIMER, fn))

    def _push_group(self, t: int, tids: Sequence[int]) -> None:
        """Reschedule a released cohort — every tid at the same ``t``.

        The barrier / warp-sync / convergence handlers release whole
        groups at one timestamp; routing those through a single call
        (instead of per-tid :meth:`_push`) lets the batch engine absorb
        the entire cohort with one bucket extend.  Entries keep push
        order, so the schedule is identical to per-tid pushes.
        """
        heap = self._heap
        seq = self._seq
        for tid in tids:
            seq += 1
            heappush(heap, (t, seq, tid))
        self._seq = seq

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, max_events: Optional[int] = None) -> SimReport:
        """Run until all launched threads finish; returns a report.

        ``max_events`` bounds the number of scheduler events (a livelock
        guard for tests); exceeding it raises :class:`DeadlockError`.

        Two loop implementations execute the identical event protocol:
        the *fast path* (no tracer attached) carries zero telemetry
        tests or construction in its inner loop, while the *traced
        path* reports every event into the tracer.  Virtual results —
        cycles, events, op counts, memory effects, thread return values
        — are bit-identical between the two (pinned by the tracer-parity
        tests); only host wall time differs.

        ``engine="batch"`` swaps both loops for the batch-stepped
        implementations in :mod:`repro.sim.engine_batch`, which drain
        whole same-timestamp cohorts per heap pop.  The virtual-parity
        contract extends across engines: the same run at the same seed
        is byte-identical in every virtual metric and schedule digest
        no matter which engine executed it (pinned by the cross-engine
        parity deck, ``python -m repro perf parity``).
        """
        if self.engine == "batch":
            from .engine_batch import run_batch

            return run_batch(self, max_events)
        if self.tracer is None:
            return self._run_fast(max_events)
        return self._run_traced(max_events)

    def _run_fast(self, max_events: Optional[int]) -> SimReport:
        """Hot loop with no tracer attached.

        Beyond skipping telemetry entirely, this loop inlines the event
        push as a *deferred entry* resolved by ``heappushpop`` at the
        top of the next iteration (one sift instead of two, and O(1)
        when the deferred event is next anyway), indexes precompiled
        dispatch tables instead of if/elif chains, and keeps the event
        sequence number and clock in locals — synchronizing them back
        to the instance only around the rare park/finish/timer paths
        that reenter scheduler helpers.
        """
        cm = self.cost_model
        mem = self.memory
        heap = self._heap
        threads = self._threads
        word_avail = self._word_avail
        word_avail_get = word_avail.get
        counts = self._op_counts
        atomic_service = cm.atomic_service
        atomic_latency = cm.atomic_latency
        load_latency = cm.load_latency
        store_latency = cm.store_latency
        step_cost = cm.step_cost
        yield_cost = cm.yield_cost
        load_word = mem.load_word
        store_word = mem.store_word
        cas_word = mem.cas_word
        atomic_exec = self._atomic_exec
        park_get = self._park_dispatch.get
        track = self.track_contention
        word_ops = self._word_ops
        _pop = heappop
        _pushpop = heappushpop
        budget = max_events if max_events is not None else _NO_BUDGET
        probe = self.schedule_probe
        probe_every = self.probe_every

        OP_SLEEP = _ops.OP_SLEEP
        OP_LOAD = _ops.OP_LOAD
        OP_CAS = _ops.OP_CAS
        OP_MIN = _ops.OP_MIN
        OP_YIELD = _ops.OP_YIELD

        events = self._events
        seq = self._seq
        now = self._now
        next_probe = events + probe_every if probe is not None else _NO_BUDGET
        deferred = None  # single pending push, resolved by heappushpop
        try:
            while True:
                if deferred is not None:
                    entry = _pushpop(heap, deferred) if heap else deferred
                    deferred = None
                elif heap:
                    entry = _pop(heap)
                else:
                    break
                t = entry[0]
                tid = entry[2]
                now = t
                events += 1
                if events > budget:
                    raise EventBudgetExceeded(
                        f"exceeded event budget {max_events} "
                        f"({self._live_threads} threads still live)"
                    )
                if events >= next_probe:
                    next_probe = events + probe_every
                    # Observation only: sync virtual time for the digest;
                    # the probe may not mutate scheduler or memory state.
                    self._now = now
                    probe(self.state_digest())
                if tid == _TIMER:
                    self._seq, self._now = seq, now
                    entry[3](t)
                    seq = self._seq
                    continue
                th = threads[tid]
                op = th.pending
                resume_at = t
                if op is not None:
                    code = op[0]
                    counts[code] += 1
                    if code >= OP_CAS:      # an atomic (OP_CAS..OP_MIN)
                        if code != OP_CAS:
                            result = atomic_exec[code](op[1], op[2])
                        else:
                            result = cas_word(op[1], op[2], op[3])
                        resume_at = t + atomic_latency
                    elif code == OP_LOAD:
                        result = load_word(op[1])
                        resume_at = t + load_latency
                    else:                   # OP_STORE (the only other pending op)
                        store_word(op[1], op[2])
                        resume_at = t + store_latency
                        result = None
                    th.pending = None
                else:
                    result = th.inbox
                    th.inbox = None

                # Resume the generator and classify its next op.  (No
                # ``th.clock`` update here: with no tracer attached,
                # nothing reads per-thread clocks during the run.)
                try:
                    nxt = th.send(result)
                except StopIteration as stop:
                    th.retval = stop.value
                    self._seq, self._now = seq, now
                    self._finish_thread(th, resume_at)
                    seq = self._seq
                    continue
                except Exception as exc:
                    exc.add_note(
                        f"raised in device thread tid={th.tid} "
                        f"block={th.ctx.block} lane={th.ctx.lane} "
                        f"at cycle {resume_at}"
                    )
                    raise
                if type(nxt) is not tuple or not nxt:
                    raise InvalidOp(
                        f"device thread {th.tid} yielded {nxt!r}; expected an "
                        "op tuple from repro.sim.ops"
                    )
                code = nxt[0]
                if OP_LOAD <= code <= OP_MIN:
                    # Memory op: execute at its own heap event.  Atomics
                    # reserve the target word's next free service slot at
                    # issue time (FIFO memory-controller queue), so
                    # same-word contention serializes in O(1) events/op.
                    th.pending = nxt
                    exec_at = resume_at + step_cost
                    if code >= OP_CAS:
                        waddr = nxt[1] >> 3
                        avail = word_avail_get(waddr, 0)
                        if avail > exec_at:
                            exec_at = avail
                        word_avail[waddr] = exec_at + atomic_service
                        if track:
                            word_ops[waddr] = word_ops.get(waddr, 0) + 1
                    seq += 1
                    deferred = (exec_at, seq, tid)
                    continue
                if code == OP_SLEEP:
                    counts[OP_SLEEP] += 1
                    seq += 1
                    deferred = (resume_at + step_cost + nxt[1], seq, tid)
                    continue
                if code == OP_YIELD:
                    counts[OP_YIELD] += 1
                    seq += 1
                    deferred = (resume_at + yield_cost, seq, tid)
                    continue
                handler = park_get(code)
                if handler is None:
                    raise InvalidOp(
                        f"device thread {th.tid} yielded unknown op {nxt!r}"
                    )
                counts[code] += 1
                self._seq, self._now = seq, now
                handler(th, nxt, resume_at)
                seq = self._seq
        finally:
            # Keep instance state coherent even when an exception unwinds
            # mid-loop (helpers may have advanced _seq past our local).
            if deferred is not None:
                heappush(heap, deferred)
            if seq > self._seq:
                self._seq = seq
            self._events = events
            self._now = now
        return self._finish_report()

    def _run_traced(self, max_events: Optional[int]) -> SimReport:
        """Instrumented loop: identical event protocol to
        :meth:`_run_fast`, plus tracer reporting per event."""
        cm = self.cost_model
        mem = self.memory
        heap = self._heap
        threads = self._threads
        word_avail = self._word_avail
        counts = self._op_counts
        tracer = self.tracer
        # Optional per-memory-op verification hook (None on the plain
        # Tracer; RaceChecker and friends override it with a method).
        mem_hook = tracer.mem_op
        atomic_service = cm.atomic_service
        atomic_latency = cm.atomic_latency
        load_latency = cm.load_latency
        store_latency = cm.store_latency
        step_cost = cm.step_cost
        cas_word = mem.cas_word
        load_word = mem.load_word
        store_word = mem.store_word
        atomic_exec = self._atomic_exec
        park_get = self._park_dispatch.get
        budget = max_events if max_events is not None else _NO_BUDGET
        probe = self.schedule_probe
        probe_every = self.probe_every

        OP_SLEEP = _ops.OP_SLEEP
        OP_LOAD = _ops.OP_LOAD
        OP_CAS = _ops.OP_CAS
        OP_MIN = _ops.OP_MIN
        OP_YIELD = _ops.OP_YIELD

        events = self._events
        next_probe = events + probe_every if probe is not None else _NO_BUDGET
        while heap:
            entry = heappop(heap)
            t = entry[0]
            tid = entry[2]
            self._now = t
            events += 1
            if events > budget:
                self._events = events
                raise EventBudgetExceeded(
                    f"exceeded event budget {max_events} "
                    f"({self._live_threads} threads still live)"
                )
            if events >= next_probe:
                next_probe = events + probe_every
                probe(self.state_digest())
            if tid == _TIMER:
                entry[3](t)
                continue
            th = threads[tid]
            op = th.pending
            resume_at = t
            result: Any = None
            if op is not None:
                code = op[0]
                counts[code] += 1
                if code >= OP_CAS:
                    if code != OP_CAS:
                        result = atomic_exec[code](op[1], op[2])
                    else:
                        result = cas_word(op[1], op[2], op[3])
                    resume_at = t + atomic_latency
                elif code == OP_LOAD:
                    result = load_word(op[1])
                    resume_at = t + load_latency
                else:
                    store_word(op[1], op[2])
                    resume_at = t + store_latency
                th.pending = None
                tracer.op_executed(th, code, t, resume_at - t)
                if mem_hook is not None:
                    mem_hook(th, op, t, result)
            else:
                result = th.inbox
                th.inbox = None

            # Resume the generator and classify its next op.
            th.clock = resume_at
            try:
                nxt = th.send(result)
            except StopIteration as stop:
                th.retval = stop.value
                self._events = events
                self._finish_thread(th, resume_at)
                continue
            except Exception as exc:
                exc.add_note(
                    f"raised in device thread tid={th.tid} "
                    f"block={th.ctx.block} lane={th.ctx.lane} "
                    f"at cycle {resume_at}"
                )
                raise
            if type(nxt) is not tuple or not nxt:
                raise InvalidOp(
                    f"device thread {th.tid} yielded {nxt!r}; expected an "
                    "op tuple from repro.sim.ops"
                )
            code = nxt[0]
            if OP_LOAD <= code <= OP_MIN:
                th.pending = nxt
                exec_at = resume_at + step_cost
                if code >= OP_CAS:
                    waddr = nxt[1] >> 3
                    avail = word_avail.get(waddr, 0)
                    if avail > exec_at:
                        exec_at = avail
                    word_avail[waddr] = exec_at + atomic_service
                    if self.track_contention:
                        self._word_ops[waddr] = self._word_ops.get(waddr, 0) + 1
                    # serialization stall: how long the word's FIFO
                    # queue pushed this atomic past its issue slot
                    tracer.atomic_issued(waddr, exec_at - resume_at - step_cost)
                self._push(exec_at, tid)
                continue
            if code == OP_SLEEP:
                counts[OP_SLEEP] += 1
                self._push(resume_at + step_cost + nxt[1], tid)
                continue
            if code == OP_YIELD:
                counts[OP_YIELD] += 1
                self._push(resume_at + cm.yield_cost, tid)
                continue
            handler = park_get(code)
            if handler is None:
                raise InvalidOp(
                    f"device thread {th.tid} yielded unknown op {nxt!r}"
                )
            counts[code] += 1
            handler(th, nxt, resume_at)

        self._events = events
        return self._finish_report()

    def _finish_report(self) -> SimReport:
        """Common run epilogue: drain check, report, tracer fold-in."""
        if self._live_threads:
            parked = sum(
                1 for th in self._threads
                if th.state in (_ST_BARRIER, _ST_CONV)
            )
            raise DeadlockError(
                f"event queue drained with {self._live_threads} live threads "
                f"({parked} parked on barriers/convergence)"
            )
        report = SimReport(
            cycles=self._now,
            events=self._events,
            n_threads=len(self._threads),
            op_counts={c: n for c, n in enumerate(self._op_counts) if n},
            cost_model=self.cost_model,
        )
        if self.tracer is not None:
            self.tracer.run_finished(report)
        return report

    # ------------------------------------------------------------------
    # Park/control op handlers (dispatch-table targets)
    # ------------------------------------------------------------------
    def _op_barrier(self, th: _Thread, nxt: tuple, t: int) -> None:
        self._park_barrier(th, t)

    def _op_warp_conv(self, th: _Thread, nxt: tuple, t: int) -> None:
        self._park_conv(th, t)

    def _op_warp_sync(self, th: _Thread, nxt: tuple, t: int) -> None:
        self._park_warp_sync(th, nxt[1], t)

    def _op_warp_match(self, th: _Thread, nxt: tuple, t: int) -> None:
        th.warp.conv_keys[th.tid] = nxt[1]
        self._park_conv(th, t)

    def _op_warp_bcast(self, th: _Thread, nxt: tuple, t: int) -> None:
        self._park_warp_sync(th, nxt[1], t, payload=nxt[2])

    def _op_fault(self, th: _Thread, nxt: tuple, t: int) -> None:
        # Fault-injection probe: ask the attached injector whether this
        # (site, occurrence) fires.  Fail-type faults resume with "fail"
        # so the site takes its failure arm; stall-type faults charge
        # the injected delay to the thread's clock and resume with None.
        inj = self.fault_injector
        outcome, delay = (
            inj.decide(th.tid, nxt[1], nxt[2], t)
            if inj is not None else (None, 0)
        )
        th.inbox = outcome
        self._push(t + self.cost_model.step_cost + delay, th.tid)

    # ------------------------------------------------------------------
    # Thread completion, barriers, convergence
    # ------------------------------------------------------------------
    def _finish_thread(self, th: _Thread, t: int) -> None:
        th.state = _ST_DONE
        th.finish_time = t
        self._live_threads -= 1
        blk = th.block
        blk.n_live -= 1
        warp = th.warp
        warp.n_unparked -= 1
        self._maybe_release_barrier(blk, t)
        self._maybe_release_conv(warp, t)
        if blk.n_live == 0:
            self._retire_block(blk, t)

    def _retire_block(self, blk: _Block, t: int) -> None:
        self._sm_resident[blk.sm] -= 1
        if self.tracer is not None:
            self.tracer.block_retired(blk, t, self._sm_resident[blk.sm])
        # Fill *every* freed residency slot, not just one — the SM may
        # have more than one slot open by the time a block retires.
        # (_dispatch_block charges the dispatch latency itself.)
        q = self._sm_queues[blk.sm]
        while q and self._sm_resident[blk.sm] < self.device.max_resident_blocks:
            nxt = q.popleft()
            self._sm_resident[blk.sm] += 1
            self._dispatch_block(nxt, t)

    def _park_barrier(self, th: _Thread, t: int) -> None:
        th.state = _ST_BARRIER
        th.park_time = t
        th.warp.n_unparked -= 1
        blk = th.block
        blk.barrier_waiters.append(th.tid)
        if self.tracer is not None:
            self.tracer.parked(th, "barrier", t)
        self._maybe_release_barrier(blk, t)
        self._maybe_release_conv(th.warp, t)

    def _maybe_release_barrier(self, blk: _Block, t: int) -> None:
        if not blk.barrier_waiters or len(blk.barrier_waiters) < blk.n_live:
            return
        release = (
            max(self._threads[tid].park_time for tid in blk.barrier_waiters)
            + self.cost_model.barrier_cost
        )
        tracer = self.tracer
        for tid in blk.barrier_waiters:
            w = self._threads[tid]
            w.state = _ST_READY
            w.inbox = None
            w.warp.n_unparked += 1
            if tracer is not None:
                tracer.unparked(w, "barrier", release)
        self._push_group(release, blk.barrier_waiters)
        blk.barrier_waiters.clear()

    def _park_conv(self, th: _Thread, t: int) -> None:
        th.state = _ST_CONV
        th.park_time = t
        warp = th.warp
        warp.n_unparked -= 1
        warp.conv_waiters.append(th.tid)
        if self.tracer is not None:
            self.tracer.parked(th, "warp_converge", t)
        if warp.conv_timer_gen != warp.conv_gen:
            warp.conv_timer_gen = warp.conv_gen
            gen = warp.conv_gen
            self._push_timer(
                t + WARP_CONV_WINDOW,
                lambda now, w=warp, g=gen: self._conv_window_expired(w, g, now),
            )
        self._maybe_release_conv(warp, t)

    def _conv_window_expired(self, warp: _Warp, gen: int, t: int) -> None:
        if warp.conv_gen != gen:
            return  # this convergence round already released
        if warp.conv_waiters:
            self._release_conv(warp, t)

    def _park_warp_sync(self, th: _Thread, mask: frozenset, t: int,
                        payload=_ops.NO_PAYLOAD) -> None:
        warp = th.warp
        if th.ctx.lane not in mask:
            raise InvalidOp(
                f"thread {th.tid} (lane {th.ctx.lane}) called warp_sync with a "
                f"mask {sorted(mask)} that does not include its own lane"
            )
        th.state = _ST_CONV
        th.park_time = t
        warp.n_unparked -= 1
        waiters = warp.sync_waiters.setdefault(mask, [])
        waiters.append(th.tid)
        if self.tracer is not None:
            self.tracer.parked(th, "warp_sync", t)
        if payload is not _ops.NO_PAYLOAD:
            warp.bcast_values.setdefault(mask, []).append((th.ctx.lane, payload))
        if len(waiters) == len(mask):
            threads = self._threads
            payloads = warp.bcast_values.pop(mask, None)
            # warp_sync resumes with the mask; warp_broadcast resumes
            # with the single source lane's payload (falsy values and
            # None included — absence is the NO_PAYLOAD sentinel, not
            # None, so they are distinguishable).
            if payloads is None:
                result = mask
            elif len(payloads) > 1:
                lanes = sorted(lane for lane, _ in payloads)
                raise InvalidOp(
                    f"warp_broadcast on mask {sorted(mask)} received payloads "
                    f"from lanes {lanes}; exactly one source lane may "
                    "contribute a value"
                )
            else:
                result = payloads[0][1]
            release = (
                max(threads[tid].park_time for tid in waiters)
                + self.cost_model.warp_conv_cost
            )
            tracer = self.tracer
            for tid in waiters:
                w = threads[tid]
                w.state = _ST_READY
                w.inbox = result
                if tracer is not None:
                    tracer.unparked(w, "warp_sync", release)
            warp.n_unparked += len(waiters)
            self._push_group(release, waiters)
            del warp.sync_waiters[mask]
        else:
            # A lane waiting on an explicit mask is parked; it may unblock
            # a pending warp_converge of the remaining lanes.
            self._maybe_release_conv(warp, t)

    def _maybe_release_conv(self, warp: _Warp, t: int) -> None:
        if warp.conv_waiters and not warp.n_unparked:
            # no lane still running; the converged set is complete
            self._release_conv(warp, t)

    def _release_conv(self, warp: _Warp, t: int) -> None:
        threads = self._threads
        mask = frozenset(threads[tid].ctx.lane for tid in warp.conv_waiters)
        release = (
            max(threads[tid].park_time for tid in warp.conv_waiters)
            + self.cost_model.warp_conv_cost
        )
        release = max(release, t)
        keys = warp.conv_keys
        tracer = self.tracer
        _MISSING = object()
        for tid in warp.conv_waiters:
            w = threads[tid]
            w.state = _ST_READY
            key = keys.get(tid, _MISSING)
            if key is _MISSING:
                # plain warp_converge: the full converged mask
                w.inbox = mask
            else:
                # warp_match: only the converged lanes with an equal key
                w.inbox = frozenset(
                    threads[o].ctx.lane
                    for o in warp.conv_waiters
                    if keys.get(o, _MISSING) == key
                )
            if tracer is not None:
                tracer.unparked(w, "warp_converge", release)
        warp.n_unparked += len(warp.conv_waiters)
        self._push_group(release, warp.conv_waiters)
        warp.conv_waiters.clear()
        warp.conv_keys.clear()
        warp.conv_gen += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _heap_pending(self) -> Iterable[Tuple[int, int]]:
        """The pending-event multiset as ``(time, tid)`` pairs.

        Expands the batch engine's bucketed heap entries (every bucket
        item is one pending event; timer items fold as :data:`_TIMER`,
        exactly like the event engine's timer entries), so the digest
        sees the same abstract multiset regardless of how the live
        engine physically queues it.
        """
        for entry in self._heap:
            tid = entry[2]
            if tid == _BATCH:
                t = entry[0]
                items = entry[3]
                for j in range(1, len(items)):
                    item = items[j]
                    yield (t, item) if type(item) is int else (t, _TIMER)
            else:
                yield entry[0], tid

    def state_digest(
        self, pending: Optional[Iterable[Tuple[int, int]]] = None
    ) -> tuple:
        """Cheap deterministic digest of the instantaneous scheduler
        state: ``(digest, contended)``.

        ``pending`` overrides the pending-event multiset — an iterable
        of ``(time, tid)`` pairs.  The batch engine passes its
        composite view (remaining batch items, same-cycle buckets,
        heap) mid-run; the default reads the heap, expanding any
        bucketed entries.

        ``digest`` is a 64-bit FNV-style fold over the *abstract*
        schedule state — live-thread count, the pending-event multiset
        as ``(time - now, tid)`` pairs, the parked-thread set (barrier /
        convergence waiters), and the contended sync words (words whose
        atomic-service slot lies in the future) together with their
        current memory values.  ``contended`` is the number of such
        words — a same-word convoy-depth proxy the exploration engine
        uses as its "interesting state" signal (bulk-semaphore renege
        storms, TBuddy lock convoys and RCU grace windows all manifest
        as hot contended words).

        Multiset folds are commutative sums, *not* ordered folds: the
        fast loop's deferred ``heappushpop`` and the traced loop's
        push-then-pop leave the same entries in different internal heap
        order, and the digest must be identical on both paths (the
        virtual-parity contract).  Everything folded is an int, so the
        digest is stable across processes and platforms — no reliance
        on ``hash()``.
        """
        now = self._now
        h = _FNV_OFFSET
        h = ((h ^ (self._live_threads & _MASK64)) * _FNV_PRIME) & _MASK64
        # pending-event multiset (commutative sum over entries)
        if pending is None:
            pending = self._heap_pending()
        acc = 0
        for t, tid in pending:
            e = _FNV_OFFSET
            e = ((e ^ ((t - now) & _MASK64)) * _FNV_PRIME) & _MASK64
            e = ((e ^ (tid & _MASK64)) * _FNV_PRIME) & _MASK64
            acc = (acc + e) & _MASK64
        h = ((h ^ acc) * _FNV_PRIME) & _MASK64
        # parked threads (barrier / convergence waiters)
        acc = 0
        for th in self._threads:
            st = th.state
            if st == _ST_BARRIER or st == _ST_CONV:
                e = _FNV_OFFSET
                e = ((e ^ th.tid) * _FNV_PRIME) & _MASK64
                e = ((e ^ st) * _FNV_PRIME) & _MASK64
                acc = (acc + e) & _MASK64
        h = ((h ^ acc) * _FNV_PRIME) & _MASK64
        # contended sync words + their values
        load_word = self.memory.load_word
        acc = 0
        contended = 0
        for waddr, avail in self._word_avail.items():
            if avail > now:
                contended += 1
                e = _FNV_OFFSET
                e = ((e ^ waddr) * _FNV_PRIME) & _MASK64
                e = ((e ^ ((avail - now) & _MASK64)) * _FNV_PRIME) & _MASK64
                e = ((e ^ (load_word(waddr << 3) & _MASK64)) * _FNV_PRIME) & _MASK64
                acc = (acc + e) & _MASK64
        h = ((h ^ acc) * _FNV_PRIME) & _MASK64
        h = ((h ^ contended) * _FNV_PRIME) & _MASK64
        return (h, contended)

    @property
    def now(self) -> int:
        """Current virtual time (cycles)."""
        return self._now

    @property
    def live_threads(self) -> int:
        return self._live_threads

    def hot_words(self, n: int = 10) -> List[tuple]:
        """Top-``n`` atomic targets as ``(byte_address, op_count)``.

        Requires ``track_contention=True``; the ranking identifies the
        serialization points of whatever ran (semaphore words, lock
        words, popular bin counters...).
        """
        if not self.track_contention:
            raise ValueError("construct the Scheduler with track_contention=True")
        # Tie-break equal counts on the address: the ranking must be
        # deterministic, not leak dict-insertion (first-touch) order.
        top = sorted(self._word_ops.items(), key=lambda kv: (-kv[1], kv[0]))[:n]
        return [(waddr << 3, count) for waddr, count in top]
