"""Host-side driver for device generators.

Runs a device generator to completion against a :class:`DeviceMemory`
*without* the scheduler — no timing, no concurrency.  Valid only at
quiescence (no kernel running), e.g. for deferred-reclamation drains,
host-side garbage collection sweeps, and unit tests that exercise
device logic sequentially.

Blocking ops (barriers, warp convergence) are meaningless host-side and
raise :class:`~repro.sim.errors.InvalidOp`.
"""

from __future__ import annotations

import random
from typing import Any, Generator

from . import ops
from .device import ThreadCtx
from .errors import InvalidOp
from .memory import DeviceMemory


def host_ctx(seed: int = 0, sm: int = 0) -> ThreadCtx:
    """A placeholder thread context for host-driven device code."""
    return ThreadCtx(
        tid=-1, block=-1, tid_in_block=0, lane=0, warp=0, sm=sm,
        nthreads=0, block_dim=1, rng=random.Random(seed),
    )


def drive(mem: DeviceMemory, gen: Generator) -> Any:
    """Execute ``gen``'s ops against ``mem``; returns the generator's
    return value."""
    try:
        op = gen.send(None)
        while True:
            op = gen.send(_exec(mem, op))
    except StopIteration as stop:
        return stop.value


def _exec(mem: DeviceMemory, op: tuple) -> Any:
    code = op[0]
    if code == ops.OP_LOAD:
        return mem.load_word(op[1])
    if code == ops.OP_STORE:
        mem.store_word(op[1], op[2])
        return None
    if code == ops.OP_CAS:
        return mem.cas_word(op[1], op[2], op[3])
    if code == ops.OP_ADD:
        return mem.add_word(op[1], op[2])
    if code == ops.OP_EXCH:
        return mem.exch_word(op[1], op[2])
    if code == ops.OP_AND:
        return mem.and_word(op[1], op[2])
    if code == ops.OP_OR:
        return mem.or_word(op[1], op[2])
    if code == ops.OP_XOR:
        return mem.xor_word(op[1], op[2])
    if code == ops.OP_MAX:
        return mem.max_word(op[1], op[2])
    if code == ops.OP_MIN:
        return mem.min_word(op[1], op[2])
    if code in (ops.OP_SLEEP, ops.OP_YIELD):
        return None
    if code == ops.OP_FAULT:
        # no injector host-side: fault probes never fire
        return None
    # Single-thread semantics for the cooperative ops: a lone host
    # driver converges with itself and passes barriers trivially.
    if code == ops.OP_WARP_CONV:
        return frozenset({0})
    if code == ops.OP_WARP_MATCH:
        return frozenset({0})
    if code == ops.OP_WARP_SYNC:
        return op[1]
    if code == ops.OP_WARP_BCAST:
        # a lone host driver is its own source; no payload resumes with
        # the mask, matching the scheduler's degenerate warp_sync case
        return op[1] if op[2] is ops.NO_PAYLOAD else op[2]
    if code == ops.OP_BARRIER:
        return None
    raise InvalidOp(f"op {op!r} cannot run host-side (no scheduler)")
