"""Flat simulated device memory.

Device memory is a byte-addressed flat space backed by an ``array('Q')``
of 64-bit words.  Device code accesses it through op tuples
(:mod:`repro.sim.ops`) executed by the scheduler; the host may read and
write it directly (analogous to ``cudaMemcpy`` while no kernel is
running).

A small *metadata* region can be carved from the top of memory with
:meth:`DeviceMemory.host_alloc` during host-side setup — the analogue of
``cudaMalloc``-ing control blocks for semaphores, tree nodes and list
heads before launching kernels.  The remaining bottom region is what an
allocator under test manages.
"""

from __future__ import annotations

from array import array

from .errors import MisalignedAccess, OutOfBoundsAccess

_MASK64 = (1 << 64) - 1


class DeviceMemory:
    """A flat, byte-addressed simulated memory of ``size`` bytes.

    ``size`` is rounded up to a multiple of 8.  Word accesses must be
    8-byte aligned.  Addresses are plain ints starting at 0; address 0 is
    valid storage, so code that wants a null sentinel should use
    :data:`NULL` (all-ones), which this class never hands out.
    """

    #: Null pointer sentinel: never a valid address.
    NULL = _MASK64

    __slots__ = ("size", "words", "_meta_brk")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("memory size must be positive")
        size = (size + 7) & ~7
        self.size = size
        self.words = array("Q", bytes(size))
        # Host metadata allocations grow downward from the top.
        self._meta_brk = size

    # ------------------------------------------------------------------
    # Host-side setup
    # ------------------------------------------------------------------
    def host_alloc(self, nbytes: int, align: int = 8) -> int:
        """Carve ``nbytes`` (aligned to ``align``) off the top of memory.

        Used during host-side setup to place control structures.  Returns
        the base address.  Raises :class:`OutOfBoundsAccess` when memory
        is exhausted.
        """
        if nbytes < 0:
            raise ValueError("negative allocation")
        if align <= 0 or (align & (align - 1)):
            raise ValueError("alignment must be a positive power of two")
        base = (self._meta_brk - nbytes) & ~(align - 1)
        if base < 0:
            raise OutOfBoundsAccess(base, self.size)
        self._meta_brk = base
        return base

    @property
    def meta_base(self) -> int:
        """Lowest address currently used by host metadata allocations."""
        return self._meta_brk

    # ------------------------------------------------------------------
    # Word accessors (used by the scheduler and by host-side code)
    # ------------------------------------------------------------------
    # The word accessors below inline the alignment/bounds check rather
    # than calling ``_windex``: the scheduler dispatches into them once
    # per memory event, and the extra Python-level call was measurable
    # on the figure benches.  ``_windex`` remains for colder callers.
    def _windex(self, addr: int) -> int:
        if addr & 7:
            raise MisalignedAccess(addr)
        if addr < 0 or addr + 8 > self.size:
            raise OutOfBoundsAccess(addr, self.size)
        return addr >> 3

    def load_word(self, addr: int) -> int:
        """Read the unsigned 64-bit word at ``addr``."""
        if addr & 7 or addr < 0 or addr + 8 > self.size:
            self._windex(addr)
        return self.words[addr >> 3]

    def store_word(self, addr: int, value: int) -> None:
        """Write the unsigned 64-bit word at ``addr``."""
        if addr & 7 or addr < 0 or addr + 8 > self.size:
            self._windex(addr)
        self.words[addr >> 3] = value & _MASK64

    def cas_word(self, addr: int, expected: int, new: int) -> int:
        """Compare-and-swap on the word at ``addr``; returns the old value."""
        if addr & 7 or addr < 0 or addr + 8 > self.size:
            self._windex(addr)
        i = addr >> 3
        words = self.words
        old = words[i]
        if old == (expected & _MASK64):
            words[i] = new & _MASK64
        return old

    def add_word(self, addr: int, value: int) -> int:
        """Wrapping atomic add; returns the old value."""
        if addr & 7 or addr < 0 or addr + 8 > self.size:
            self._windex(addr)
        i = addr >> 3
        words = self.words
        old = words[i]
        words[i] = (old + value) & _MASK64
        return old

    def exch_word(self, addr: int, value: int) -> int:
        if addr & 7 or addr < 0 or addr + 8 > self.size:
            self._windex(addr)
        i = addr >> 3
        words = self.words
        old = words[i]
        words[i] = value & _MASK64
        return old

    def and_word(self, addr: int, value: int) -> int:
        if addr & 7 or addr < 0 or addr + 8 > self.size:
            self._windex(addr)
        i = addr >> 3
        words = self.words
        old = words[i]
        words[i] = old & value & _MASK64
        return old

    def or_word(self, addr: int, value: int) -> int:
        if addr & 7 or addr < 0 or addr + 8 > self.size:
            self._windex(addr)
        i = addr >> 3
        words = self.words
        old = words[i]
        words[i] = (old | value) & _MASK64
        return old

    def xor_word(self, addr: int, value: int) -> int:
        if addr & 7 or addr < 0 or addr + 8 > self.size:
            self._windex(addr)
        i = addr >> 3
        words = self.words
        old = words[i]
        words[i] = (old ^ value) & _MASK64
        return old

    def max_word(self, addr: int, value: int) -> int:
        if addr & 7 or addr < 0 or addr + 8 > self.size:
            self._windex(addr)
        old = self.words[addr >> 3]
        value &= _MASK64
        if value > old:
            self.words[addr >> 3] = value
        return old

    def min_word(self, addr: int, value: int) -> int:
        if addr & 7 or addr < 0 or addr + 8 > self.size:
            self._windex(addr)
        old = self.words[addr >> 3]
        value &= _MASK64
        if value < old:
            self.words[addr >> 3] = value
        return old

    # ------------------------------------------------------------------
    # Host-side byte-range helpers (cudaMemcpy analogue)
    # ------------------------------------------------------------------
    def read_bytes(self, addr: int, nbytes: int) -> bytes:
        """Copy ``nbytes`` starting at ``addr`` out of device memory."""
        if addr < 0 or addr + nbytes > self.size:
            raise OutOfBoundsAccess(addr, self.size)
        view = memoryview(self.words).cast("B")
        return bytes(view[addr : addr + nbytes])

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Copy ``data`` into device memory starting at ``addr``."""
        if addr < 0 or addr + len(data) > self.size:
            raise OutOfBoundsAccess(addr, self.size)
        view = memoryview(self.words).cast("B")
        view[addr : addr + len(data)] = data

    def fill_words(self, addr: int, nwords: int, value: int) -> None:
        """Host-side fill of ``nwords`` consecutive words with ``value``."""
        i = self._windex(addr)
        if addr + 8 * nwords > self.size:
            raise OutOfBoundsAccess(addr + 8 * nwords - 8, self.size)
        value &= _MASK64
        for k in range(i, i + nwords):
            self.words[k] = value
