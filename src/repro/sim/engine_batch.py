"""Batch-stepped scheduler engine (``Scheduler(engine="batch")``).

The event engine in :mod:`repro.sim.scheduler` pays the priority queue
for every event: one ``heappop`` (or ``heappushpop``) per generator
resume, one tuple allocation per reschedule.  But SIMT workloads are
cohort-shaped — warps start in near-lockstep, barriers and convergence
windows release whole groups at the same cycle — so a large fraction
of events share their timestamp with others (54% of the shootout's
events sit in cohorts of two or more).

The fast loop replaces the per-event heap with a **timing wheel**: a
:data:`_RING`-slot ring covering the horizon ``[now, now + _RING)``,
one live timestamp per slot (within one horizon window two distinct
live times can never collide — the ring is as long as the window).  A
slot holds ``None`` (dead), a bare item (one event), or a list of
items in seq order.  The payoffs:

* **Reschedules are list appends.**  A push inside the horizon indexes
  ``ring[t & _RMASK]`` and appends — no tuple allocation, no sift.
  Same-cycle continuations land in the slot currently being walked and
  run in the same drain.

* **Heaps operate per distinct timestamp, not per event.**  An
  int-heap of live slot times advances ``now``; a far heap carries the
  rare push beyond the horizon (randomized backoff sleeps,
  perturbation-scaled latencies) and migrates into the wheel at every
  advancement, before anything at the new ``now`` runs.

* **Cohorts drain whole.**  A list slot is walked with the budget and
  probe compares hoisted out of the checkless stretch between
  accounting boundaries; a bare-item slot runs the event engine's own
  tight body with none of the batch bookkeeping.

* **A lone continuation skips the wheel entirely.**  When a singleton
  event pushes one continuation into an empty slot, it is *deferred*
  in a register pair and, unless another slot runs first, executes
  next with zero heap and zero ring traffic — the event engine's
  deferred-``heappushpop`` trick lifted onto slot times.

The traced loop (tracer attached — telemetry dominates there) keeps
the canonical heap and drains ties into flat batches, with same-cycle
continuations accumulated in a plain list and every future push going
straight to the heap with a real seq, exactly like the event engine.

Handler-side reschedules are captured by shadowing the scheduler's
``_push`` / ``_push_timer`` / ``_push_group`` *instance* attributes
with engine closures for the duration of the run (deleted in
``finally``, restoring the class methods) — park handlers,
``_finish_thread``'s block dispatches, and convergence-window timers
all route through those methods, so no handler needs to know which
engine is live.  An item is an ``int`` tid or a timer callable;
``type(item) is int`` discriminates.

**Parity contract.**  Events execute in exactly the event engine's
order: wheel appends happen in push (= seq) order and slots are walked
oldest-first, far-heap entries carry materialized seqs, and migration
at each advancement precedes every newer push, so the global
``(t, seq)`` order is reproduced without materializing seqs for wheel
residents.  Budget accounting, probe cadence, and the digest's
pending-event multiset (current slot remainder + live ring slots +
far heap) are checked at the same per-event points as the event
loops, so ``virtual:*`` metrics and ``state_digest`` traces are
byte-identical across engines — pinned by the cross-engine parity
deck (``python -m repro perf parity``).
"""

from __future__ import annotations

from heapq import heappop, heappush, heappushpop
from typing import Optional

from . import ops as _ops
from .errors import EventBudgetExceeded, InvalidOp
from .scheduler import _BATCH, _NO_BUDGET, _TIMER, Scheduler, SimReport


def run_batch(sched: Scheduler, max_events: Optional[int] = None) -> SimReport:
    """Run ``sched`` to completion with the batch-stepped engine.

    Entry point used by :meth:`Scheduler.run` when ``engine="batch"``;
    dispatches to the fast or traced variant exactly like the event
    engine does.
    """
    if sched.tracer is None:
        return _run_fast_batch(sched, max_events)
    return _run_traced_batch(sched, max_events)


def _traced_pending(sched, t, items, idx, cur):
    """The pending-event multiset mid-batch, as ``(time, tid)`` pairs.

    The event engine's probe sees the heap with the current entry
    popped; the equivalent view here is the remaining items of the
    current batch (current item excluded — ``idx`` has already
    advanced past it), the same-cycle continuations accumulated so
    far, and the heap.  Timer items fold as :data:`_TIMER`, matching
    the event engine's timer entries.
    """
    for j in range(idx, len(items)):
        item = items[j]
        yield (t, item) if type(item) is int else (t, _TIMER)
    for item in cur:
        yield (t, item) if type(item) is int else (t, _TIMER)
    yield from sched._heap_pending()


#: timing-wheel horizon (slots) for the fast loop.  Power of two so the
#: slot index is one AND.  Covers every fixed cost-model latency
#: (dispatch 200 + jitter is the largest); only long randomized backoff
#: sleeps and perturbation-scaled latencies overflow to the far heap.
_RING = 1024
_RMASK = _RING - 1

#: recycled all-``None`` wheels — allocating a fresh 1024-slot list per
#: ``run()`` would dominate the many-short-runs workloads (serve
#: sessions, trace replay); clean exits hand their wheel back
_WHEEL_POOL: list = []


def _ring_pending(t, items, idx, now, ring, over):
    """The pending-event multiset mid-run, as ``(time, tid)`` pairs.

    Mirrors :func:`_composite_pending` for the timing-wheel layout: the
    rest of the current slot (``items[idx:]``), every other live ring
    slot (its time reconstructed from the offset to ``now``), and the
    far-future heap.  Timer items fold as :data:`_TIMER`.
    """
    for j in range(idx, len(items)):
        item = items[j]
        yield (t, item) if type(item) is int else (t, _TIMER)
    for off in range(_RING):
        st = now + off
        lst = ring[st & _RMASK]
        if lst is None or lst is items:
            continue
        if type(lst) is list:
            for item in lst:
                yield (st, item) if type(item) is int else (st, _TIMER)
        elif type(lst) is int:
            yield (st, lst)
        else:
            yield (st, _TIMER)
    for e in over:
        tid = e[2]
        if tid >= 0:
            yield (e[0], tid)
        elif tid == _TIMER:
            yield (e[0], _TIMER)
        else:  # _BATCH leftover carried over from an interrupted run
            et = e[0]
            b = e[3]
            for j in range(1, len(b)):
                item = b[j]
                yield (et, item) if type(item) is int else (et, _TIMER)


def _run_fast_batch(sched: Scheduler, max_events: Optional[int]) -> SimReport:
    """Batch-stepped hot loop, no tracer attached: a timing wheel.

    Executes the identical per-event protocol as
    ``Scheduler._run_fast`` — same latencies, same op-count placements,
    same budget/probe arithmetic — but replaces the per-event priority
    queue with a :data:`_RING`-slot timing wheel.  Every pending event
    inside the horizon ``[now, now + _RING)`` lives in the flat list at
    ``ring[t & _RMASK]`` (one live time per slot, items in seq order);
    reschedules are plain list appends, same-cycle continuations land
    in the slot currently being walked, and the only heaps left are two
    small ones that operate per *distinct timestamp*, not per event: an
    int-heap of live slot times (advancing ``now``) and a far heap for
    the rare reschedule beyond the horizon (randomized backoff sleeps,
    perturbation-scaled latencies).  Far entries migrate into the wheel
    at every advancement of ``now``, before any event at the new time
    runs, which keeps slot append order equal to global seq order.
    """
    cm = sched.cost_model
    mem = sched.memory
    heap = sched._heap
    threads = sched._threads
    word_avail = sched._word_avail
    word_avail_get = word_avail.get
    counts = sched._op_counts
    atomic_service = cm.atomic_service
    atomic_latency = cm.atomic_latency
    load_latency = cm.load_latency
    store_latency = cm.store_latency
    step_cost = cm.step_cost
    yield_cost = cm.yield_cost
    load_word = mem.load_word
    store_word = mem.store_word
    cas_word = mem.cas_word
    atomic_exec = sched._atomic_exec
    park_get = sched._park_dispatch.get
    track = sched.track_contention
    word_ops = sched._word_ops
    _pop = heappop
    _push = heappush
    _pushpop = heappushpop
    budget = max_events if max_events is not None else _NO_BUDGET
    probe = sched.schedule_probe
    probe_every = sched.probe_every

    OP_SLEEP = _ops.OP_SLEEP
    OP_LOAD = _ops.OP_LOAD
    OP_CAS = _ops.OP_CAS
    OP_MIN = _ops.OP_MIN
    OP_YIELD = _ops.OP_YIELD

    events = sched._events
    seq = sched._seq
    now = sched._now
    next_probe = events + probe_every if probe is not None else _NO_BUDGET

    # ---- load the wheel: drain the canonical heap into ring + far heap
    # A slot holds None (dead), a bare item (one event — the common
    # case for scattered continuations), or a list of items in seq
    # order.  An item is an int tid or a timer callable.
    ring = _WHEEL_POOL.pop() if _WHEEL_POOL else [None] * _RING
    slot_times: list = []   # int-heap of live slot times, one per slot
    over: list = []         # far-future entries, original heap tuples
    horizon = now + _RING
    while heap:
        e = _pop(heap)
        et = e[0]
        if et >= horizon:
            over.append(e)  # popped in heap order — a sorted list is
            continue        # already a valid heap
        k = e[2]
        if k == _BATCH:     # leftover from an unwound run
            s2 = et & _RMASK
            lst = ring[s2]
            b = e[3]
            if lst is None:
                ring[s2] = b[1:]
                _push(slot_times, et)
            elif type(lst) is list:
                lst.extend(b[1:])
            else:
                ring[s2] = [lst, *b[1:]]
            continue
        item = k if k >= 0 else e[3]
        s2 = et & _RMASK
        lst = ring[s2]
        if lst is None:
            ring[s2] = item
            _push(slot_times, et)
        elif type(lst) is list:
            lst.append(item)
        else:
            ring[s2] = [lst, item]

    def ring_push(bt, item):
        # Replaces both Scheduler._push (item: int tid) and
        # Scheduler._push_timer (item: callable) for the run's duration.
        # Only park handlers / timers / dispatches reach this closure
        # (the loop's continuation fast paths push inline); wheel
        # appends consume no seqs — slot append order *is* seq order —
        # and the instance seq the far heap uses is synced around every
        # handler call.
        if bt < horizon:
            s2 = bt & _RMASK
            lst = ring[s2]
            if lst is None:
                ring[s2] = item
                _push(slot_times, bt)
            elif type(lst) is list:
                lst.append(item)
            else:
                ring[s2] = [lst, item]
        elif type(item) is int:
            sched._seq = fs = sched._seq + 1
            _push(over, (bt, fs, item))
        else:
            sched._seq = fs = sched._seq + 1
            _push(over, (bt, fs, _TIMER, item))

    def ring_push_group(bt, tids):
        # Replaces Scheduler._push_group: a whole released cohort lands
        # in its timestamp's slot with one extend.
        if bt < horizon:
            s2 = bt & _RMASK
            lst = ring[s2]
            if lst is None:
                ring[s2] = [*tids]
                _push(slot_times, bt)
            elif type(lst) is list:
                lst.extend(tids)
            else:
                ring[s2] = [lst, *tids]
        else:
            fs = sched._seq
            for tid2 in tids:
                fs += 1
                _push(over, (bt, fs, tid2))
            sched._seq = fs

    items = None
    idx = 0
    t = now
    dnext = -1      # deferred singleton continuation: its exec time …
    ditem = None    # … and its item, held out of both ring and heap
    sched._push = ring_push
    sched._push_timer = ring_push
    sched._push_group = ring_push_group
    try:
        while True:
            # ---- advance: deferred continuation, else nearest live
            # slot, else the far heap -------------------------------
            # A singleton event's lone continuation into an empty slot
            # is *deferred*: held in (dnext, ditem) instead of entering
            # the wheel.  If no other slot runs first it executes here
            # with zero heap and zero ring traffic — the event engine's
            # deferred-``heappushpop`` trick lifted onto slot times.
            # Equality with ``slot_times[0]`` cannot happen: a live
            # slot time's slot is non-``None``, and the deferral site
            # saw it empty.
            dw = False
            if dnext >= 0:
                if slot_times and slot_times[0] < dnext:
                    ring[dnext & _RMASK] = ditem
                    now = _pushpop(slot_times, dnext)
                else:
                    now = dnext
                    dw = True
                dnext = -1
            elif slot_times:
                now = _pop(slot_times)
            elif over:
                now = over[0][0]
            else:
                break
            horizon = now + _RING
            while over and over[0][0] < horizon:
                # Far entries the advanced horizon now covers must enter
                # the wheel before anything at `now` runs: their seqs
                # predate every push from here on, so migrating first
                # keeps slot append order equal to global seq order.
                e = _pop(over)
                et = e[0]
                k = e[2]
                s2 = et & _RMASK
                lst = ring[s2]
                if k == _BATCH:
                    b = e[3]
                    if lst is None:
                        ring[s2] = b[1:]
                        if et != now:
                            _push(slot_times, et)
                    elif type(lst) is list:
                        lst.extend(b[1:])
                    else:
                        ring[s2] = [lst, *b[1:]]
                    continue
                item = k if k >= 0 else e[3]
                if lst is None:
                    ring[s2] = item
                    # A far-heap jump's top entry lands at `now`'s own
                    # slot, which this advancement is about to walk —
                    # a slot time for it would make the wheel visit it
                    # twice.  (In the slot-time path every migrated
                    # time is strictly beyond `now`.)
                    if et != now:
                        _push(slot_times, et)
                elif type(lst) is list:
                    lst.append(item)
                else:
                    ring[s2] = [lst, item]
            if dw:
                # The deferred item never entered the wheel; its slot is
                # still ``None`` (migration cannot land at ``now``'s
                # slot: distinct live times inside one horizon window
                # never share a slot).
                items = ditem
            else:
                s = now & _RMASK
                items = ring[s]

            # ---- singleton slot: the event engine's own tight body ----
            # Most slots hold exactly one event (scattered continuations
            # land alone), stored bare — those skip all batch
            # bookkeeping.  The slot is cleared *before* the item runs
            # so a same-cycle reschedule recreates it (and its slot
            # time) for the next advancement.
            if type(items) is not list:
                if not dw:
                    ring[s] = None
                events += 1
                if events > budget:
                    raise EventBudgetExceeded(
                        f"exceeded event budget {max_events} "
                        f"({sched._live_threads} threads still live)"
                    )
                if events >= next_probe:
                    next_probe = events + probe_every
                    # Observation only: sync virtual time for the digest;
                    # the probe may not mutate scheduler or memory state.
                    sched._now = now
                    probe(sched.state_digest(
                        _ring_pending(now, (), 0, now, ring, over)
                    ))
                if type(items) is not int:
                    sched._seq, sched._now = seq, now
                    items(now)
                    seq = sched._seq
                    continue
                tid = items
                th = threads[tid]
                op = th.pending
                resume_at = now
                if op is not None:
                    code = op[0]
                    counts[code] += 1
                    if code >= OP_CAS:      # an atomic (OP_CAS..OP_MIN)
                        if code != OP_CAS:
                            result = atomic_exec[code](op[1], op[2])
                        else:
                            result = cas_word(op[1], op[2], op[3])
                        resume_at = now + atomic_latency
                    elif code == OP_LOAD:
                        result = load_word(op[1])
                        resume_at = now + load_latency
                    else:       # OP_STORE (the only other pending op)
                        store_word(op[1], op[2])
                        resume_at = now + store_latency
                        result = None
                    th.pending = None
                else:
                    result = th.inbox
                    th.inbox = None
                try:
                    nxt = th.send(result)
                except StopIteration as stop:
                    th.retval = stop.value
                    sched._seq, sched._now = seq, now
                    sched._finish_thread(th, resume_at)
                    seq = sched._seq
                    continue
                except Exception as exc:
                    exc.add_note(
                        f"raised in device thread tid={th.tid} "
                        f"block={th.ctx.block} lane={th.ctx.lane} "
                        f"at cycle {resume_at}"
                    )
                    raise
                if type(nxt) is not tuple or not nxt:
                    raise InvalidOp(
                        f"device thread {th.tid} yielded {nxt!r}; expected an "
                        "op tuple from repro.sim.ops"
                    )
                code = nxt[0]
                if OP_LOAD <= code <= OP_MIN:
                    th.pending = nxt
                    exec_at = resume_at + step_cost
                    if code >= OP_CAS:
                        waddr = nxt[1] >> 3
                        avail = word_avail_get(waddr, 0)
                        if avail > exec_at:
                            exec_at = avail
                        word_avail[waddr] = exec_at + atomic_service
                        if track:
                            word_ops[waddr] = word_ops.get(waddr, 0) + 1
                    if exec_at < horizon:
                        s2 = exec_at & _RMASK
                        lst = ring[s2]
                        if lst is None:
                            dnext = exec_at
                            ditem = tid
                        elif type(lst) is list:
                            lst.append(tid)
                        else:
                            ring[s2] = [lst, tid]
                    else:
                        seq += 1
                        _push(over, (exec_at, seq, tid))
                    continue
                if code == OP_SLEEP:
                    counts[OP_SLEEP] += 1
                    bt = resume_at + step_cost + nxt[1]
                elif code == OP_YIELD:
                    counts[OP_YIELD] += 1
                    bt = resume_at + yield_cost
                else:
                    handler = park_get(code)
                    if handler is None:
                        raise InvalidOp(
                            f"device thread {th.tid} yielded unknown "
                            f"op {nxt!r}"
                        )
                    counts[code] += 1
                    sched._seq, sched._now = seq, now
                    handler(th, nxt, resume_at)
                    seq = sched._seq
                    continue
                if bt < horizon:
                    s2 = bt & _RMASK
                    lst = ring[s2]
                    if lst is None:
                        dnext = bt
                        ditem = tid
                    elif type(lst) is list:
                        lst.append(tid)
                    else:
                        ring[s2] = [lst, tid]
                else:
                    seq += 1
                    _push(over, (bt, seq, tid))
                continue

            # ---- walk the slot ----------------------------------------
            # Same-cycle continuations append to `items` in place while
            # it is being walked; the outer loop re-reads the length
            # until the cycle runs dry.
            t = now
            idx = 0
            while True:
                n = len(items)
                if idx >= n:
                    break
                while idx < n:
                    # Budget/probe boundaries are computed per stretch,
                    # not per item: `room` items can run with no checks
                    # before the next accounting boundary.
                    room = n - idx
                    r = budget - events
                    if r < room:
                        room = r
                    r = next_probe - events - 1
                    if r < room:
                        room = r
                    if room < 1:
                        # Boundary item: full budget/probe checks, then
                        # reenter the stretch computation.
                        item = items[idx]
                        idx += 1
                        events += 1
                        if events > budget:
                            raise EventBudgetExceeded(
                                f"exceeded event budget {max_events} "
                                f"({sched._live_threads} threads still live)"
                            )
                        if events >= next_probe:
                            next_probe = events + probe_every
                            sched._now = now
                            probe(sched.state_digest(
                                _ring_pending(t, items, idx, now, ring, over)
                            ))
                        if type(item) is not int:
                            sched._seq, sched._now = seq, now
                            item(t)
                            seq = sched._seq
                            continue
                        th = threads[item]
                        op = th.pending
                        resume_at = t
                        if op is not None:
                            code = op[0]
                            counts[code] += 1
                            if code >= OP_CAS:
                                if code != OP_CAS:
                                    result = atomic_exec[code](op[1], op[2])
                                else:
                                    result = cas_word(op[1], op[2], op[3])
                                resume_at = t + atomic_latency
                            elif code == OP_LOAD:
                                result = load_word(op[1])
                                resume_at = t + load_latency
                            else:
                                store_word(op[1], op[2])
                                resume_at = t + store_latency
                                result = None
                            th.pending = None
                        else:
                            result = th.inbox
                            th.inbox = None
                        try:
                            nxt = th.send(result)
                        except StopIteration as stop:
                            th.retval = stop.value
                            sched._seq, sched._now = seq, now
                            sched._finish_thread(th, resume_at)
                            seq = sched._seq
                            continue
                        except Exception as exc:
                            exc.add_note(
                                f"raised in device thread tid={th.tid} "
                                f"block={th.ctx.block} lane={th.ctx.lane} "
                                f"at cycle {resume_at}"
                            )
                            raise
                        if type(nxt) is not tuple or not nxt:
                            raise InvalidOp(
                                f"device thread {th.tid} yielded {nxt!r}; "
                                "expected an op tuple from repro.sim.ops"
                            )
                        code = nxt[0]
                        if OP_LOAD <= code <= OP_MIN:
                            th.pending = nxt
                            exec_at = resume_at + step_cost
                            if code >= OP_CAS:
                                waddr = nxt[1] >> 3
                                avail = word_avail_get(waddr, 0)
                                if avail > exec_at:
                                    exec_at = avail
                                word_avail[waddr] = exec_at + atomic_service
                                if track:
                                    word_ops[waddr] = word_ops.get(waddr, 0) + 1
                            if exec_at < horizon:
                                s2 = exec_at & _RMASK
                                lst = ring[s2]
                                if lst is None:
                                    ring[s2] = item
                                    _push(slot_times, exec_at)
                                elif type(lst) is list:
                                    lst.append(item)
                                else:
                                    ring[s2] = [lst, item]
                            else:
                                seq += 1
                                _push(over, (exec_at, seq, item))
                            continue
                        if code == OP_SLEEP:
                            counts[OP_SLEEP] += 1
                            bt = resume_at + step_cost + nxt[1]
                            if bt < horizon:
                                s2 = bt & _RMASK
                                lst = ring[s2]
                                if lst is None:
                                    ring[s2] = item
                                    _push(slot_times, bt)
                                elif type(lst) is list:
                                    lst.append(item)
                                else:
                                    ring[s2] = [lst, item]
                            else:
                                seq += 1
                                _push(over, (bt, seq, item))
                            continue
                        if code == OP_YIELD:
                            counts[OP_YIELD] += 1
                            bt = resume_at + yield_cost
                            if bt < horizon:
                                s2 = bt & _RMASK
                                lst = ring[s2]
                                if lst is None:
                                    ring[s2] = item
                                    _push(slot_times, bt)
                                elif type(lst) is list:
                                    lst.append(item)
                                else:
                                    ring[s2] = [lst, item]
                            else:
                                seq += 1
                                _push(over, (bt, seq, item))
                            continue
                        handler = park_get(code)
                        if handler is None:
                            raise InvalidOp(
                                f"device thread {th.tid} yielded unknown "
                                f"op {nxt!r}"
                            )
                        counts[code] += 1
                        sched._seq, sched._now = seq, now
                        handler(th, nxt, resume_at)
                        seq = sched._seq
                        continue

                    # Checkless stretch: `room` items with no boundary in
                    # range (events still ticks per item so an unwind
                    # mid-stretch stays coherent).
                    end = idx + room
                    while idx < end:
                        item = items[idx]
                        idx += 1
                        events += 1
                        if type(item) is not int:
                            sched._seq, sched._now = seq, now
                            item(t)
                            seq = sched._seq
                            continue
                        th = threads[item]
                        op = th.pending
                        resume_at = t
                        if op is not None:
                            code = op[0]
                            counts[code] += 1
                            if code >= OP_CAS:
                                if code != OP_CAS:
                                    result = atomic_exec[code](op[1], op[2])
                                else:
                                    result = cas_word(op[1], op[2], op[3])
                                resume_at = t + atomic_latency
                            elif code == OP_LOAD:
                                result = load_word(op[1])
                                resume_at = t + load_latency
                            else:
                                store_word(op[1], op[2])
                                resume_at = t + store_latency
                                result = None
                            th.pending = None
                        else:
                            result = th.inbox
                            th.inbox = None
                        try:
                            nxt = th.send(result)
                        except StopIteration as stop:
                            th.retval = stop.value
                            sched._seq, sched._now = seq, now
                            sched._finish_thread(th, resume_at)
                            seq = sched._seq
                            continue
                        except Exception as exc:
                            exc.add_note(
                                f"raised in device thread tid={th.tid} "
                                f"block={th.ctx.block} lane={th.ctx.lane} "
                                f"at cycle {resume_at}"
                            )
                            raise
                        if type(nxt) is not tuple or not nxt:
                            raise InvalidOp(
                                f"device thread {th.tid} yielded {nxt!r}; "
                                "expected an op tuple from repro.sim.ops"
                            )
                        code = nxt[0]
                        if OP_LOAD <= code <= OP_MIN:
                            th.pending = nxt
                            exec_at = resume_at + step_cost
                            if code >= OP_CAS:
                                waddr = nxt[1] >> 3
                                avail = word_avail_get(waddr, 0)
                                if avail > exec_at:
                                    exec_at = avail
                                word_avail[waddr] = exec_at + atomic_service
                                if track:
                                    word_ops[waddr] = word_ops.get(waddr, 0) + 1
                            if exec_at < horizon:
                                s2 = exec_at & _RMASK
                                lst = ring[s2]
                                if lst is None:
                                    ring[s2] = item
                                    _push(slot_times, exec_at)
                                elif type(lst) is list:
                                    lst.append(item)
                                else:
                                    ring[s2] = [lst, item]
                            else:
                                seq += 1
                                _push(over, (exec_at, seq, item))
                            continue
                        if code == OP_SLEEP:
                            counts[OP_SLEEP] += 1
                            bt = resume_at + step_cost + nxt[1]
                            if bt < horizon:
                                s2 = bt & _RMASK
                                lst = ring[s2]
                                if lst is None:
                                    ring[s2] = item
                                    _push(slot_times, bt)
                                elif type(lst) is list:
                                    lst.append(item)
                                else:
                                    ring[s2] = [lst, item]
                            else:
                                seq += 1
                                _push(over, (bt, seq, item))
                            continue
                        if code == OP_YIELD:
                            counts[OP_YIELD] += 1
                            bt = resume_at + yield_cost
                            if bt < horizon:
                                s2 = bt & _RMASK
                                lst = ring[s2]
                                if lst is None:
                                    ring[s2] = item
                                    _push(slot_times, bt)
                                elif type(lst) is list:
                                    lst.append(item)
                                else:
                                    ring[s2] = [lst, item]
                            else:
                                seq += 1
                                _push(over, (bt, seq, item))
                            continue
                        handler = park_get(code)
                        if handler is None:
                            raise InvalidOp(
                                f"device thread {th.tid} yielded unknown "
                                f"op {nxt!r}"
                            )
                        counts[code] += 1
                        sched._seq, sched._now = seq, now
                        handler(th, nxt, resume_at)
                        seq = sched._seq

            # Slot exhausted: release it so the wheel position can be
            # reused a full horizon later.
            ring[s] = None
            items = None
    finally:
        # Restore the class-level push methods and keep instance state
        # coherent even when an exception unwinds mid-walk: the rest of
        # the current slot, every live wheel slot, and the far heap go
        # back onto the canonical heap (the current item is dropped,
        # matching the event engine's popped entry).  Wheel times all
        # sit below far times, so handing wheel slots fresh monotone
        # seqs cannot reorder them relative to the far entries' old
        # seqs.
        del sched._push, sched._push_timer, sched._push_group
        if seq > sched._seq:
            sched._seq = seq
        if dnext >= 0:
            # A deferral is consumed at the next loop-top before any
            # raise-capable op can run, so this is defensive only:
            # materialize it so the wheel scan below sees it.
            ring[dnext & _RMASK] = ditem
            heappush(slot_times, dnext)
        if type(items) is list and idx < len(items):
            sched._seq = fs = sched._seq + 1
            heappush(heap, (t, fs, _BATCH, [fs] + items[idx:]))
        if slot_times:
            # Exceptional unwind with live wheel slots (every live slot
            # other than the current one has a slot-time entry): rebuild
            # canonical heap entries in time order.
            for off in range(_RING):
                st = now + off
                lst = ring[st & _RMASK]
                if lst is None or lst is items:
                    continue
                sched._seq = fs = sched._seq + 1
                if type(lst) is not list:
                    if type(lst) is int:
                        heappush(heap, (st, fs, lst))
                    else:
                        heappush(heap, (st, fs, _TIMER, lst))
                elif len(lst) == 1:
                    item = lst[0]
                    if type(item) is int:
                        heappush(heap, (st, fs, item))
                    else:
                        heappush(heap, (st, fs, _TIMER, item))
                else:
                    heappush(heap, (st, fs, _BATCH, [fs] + lst))
        elif type(items) is not list and len(_WHEEL_POOL) < 4:
            # No live slots and no half-walked list left in the current
            # slot: the wheel is known all-None — recycle it.
            _WHEEL_POOL.append(ring)
        for e in over:
            heappush(heap, e)
        sched._events = events
        sched._now = now
    return sched._finish_report()


def _run_traced_batch(sched: Scheduler, max_events: Optional[int]) -> SimReport:
    """Batch-stepped instrumented loop: identical event protocol to
    ``Scheduler._run_traced``, plus tracer reporting per event.

    Telemetry dominates traced runs, so this variant skips the
    singleton/stretch specializations and runs one uniformly-checked
    item loop over each cohort.
    """
    cm = sched.cost_model
    mem = sched.memory
    heap = sched._heap
    threads = sched._threads
    word_avail = sched._word_avail
    counts = sched._op_counts
    tracer = sched.tracer
    mem_hook = tracer.mem_op
    atomic_service = cm.atomic_service
    atomic_latency = cm.atomic_latency
    load_latency = cm.load_latency
    store_latency = cm.store_latency
    step_cost = cm.step_cost
    cas_word = mem.cas_word
    load_word = mem.load_word
    store_word = mem.store_word
    atomic_exec = sched._atomic_exec
    park_get = sched._park_dispatch.get
    _pop = heappop
    budget = max_events if max_events is not None else _NO_BUDGET
    probe = sched.schedule_probe
    probe_every = sched.probe_every

    OP_SLEEP = _ops.OP_SLEEP
    OP_LOAD = _ops.OP_LOAD
    OP_CAS = _ops.OP_CAS
    OP_MIN = _ops.OP_MIN
    OP_YIELD = _ops.OP_YIELD

    events = sched._events
    next_probe = events + probe_every if probe is not None else _NO_BUDGET

    _push = heappush
    cur: list = []  # same-cycle continuations, in push (= seq) order

    def trace_push(bt, item):
        # Same-cycle continuations join the running batch in place —
        # the walk drains ``cur`` without heap traffic; everything else
        # goes straight to the heap with a real seq, exactly like the
        # event engine's ``_push``/``_push_timer``.
        if bt == sched._now:
            cur.append(item)
        elif type(item) is int:
            sched._seq = fs = sched._seq + 1
            _push(heap, (bt, fs, item))
        else:
            sched._seq = fs = sched._seq + 1
            _push(heap, (bt, fs, _TIMER, item))

    def trace_push_group(bt, tids):
        if bt == sched._now:
            cur.extend(tids)
        else:
            fs = sched._seq
            for tid2 in tids:
                fs += 1
                _push(heap, (bt, fs, tid2))
            sched._seq = fs

    items: list = []
    idx = 0
    t = sched._now
    sched._push = trace_push
    sched._push_timer = trace_push
    sched._push_group = trace_push_group
    try:
        while heap:
            entry = _pop(heap)
            t = entry[0]
            tid = entry[2]
            sched._now = t
            if tid >= 0:
                items = [tid]
                idx = 0
            elif tid == _BATCH:
                items = entry[3]
                idx = 1
            else:  # _TIMER
                items = [entry[3]]
                idx = 0
            while heap and heap[0][0] == t:
                e2 = _pop(heap)
                s2 = e2[2]
                if s2 >= 0:
                    items.append(s2)
                elif s2 == _BATCH:
                    b2 = e2[3]
                    for j in range(1, len(b2)):
                        items.append(b2[j])
                else:
                    items.append(e2[3])

            while True:
                n = len(items)
                while idx < n:
                    item = items[idx]
                    idx += 1
                    events += 1
                    if events > budget:
                        sched._events = events
                        raise EventBudgetExceeded(
                            f"exceeded event budget {max_events} "
                            f"({sched._live_threads} threads still live)"
                        )
                    if events >= next_probe:
                        next_probe = events + probe_every
                        probe(sched.state_digest(
                            _traced_pending(sched, t, items, idx, cur)
                        ))
                    if type(item) is not int:
                        item(t)
                        continue
                    th = threads[item]
                    op = th.pending
                    resume_at = t
                    result = None
                    if op is not None:
                        code = op[0]
                        counts[code] += 1
                        if code >= OP_CAS:
                            if code != OP_CAS:
                                result = atomic_exec[code](op[1], op[2])
                            else:
                                result = cas_word(op[1], op[2], op[3])
                            resume_at = t + atomic_latency
                        elif code == OP_LOAD:
                            result = load_word(op[1])
                            resume_at = t + load_latency
                        else:
                            store_word(op[1], op[2])
                            resume_at = t + store_latency
                        th.pending = None
                        tracer.op_executed(th, code, t, resume_at - t)
                        if mem_hook is not None:
                            mem_hook(th, op, t, result)
                    else:
                        result = th.inbox
                        th.inbox = None

                    th.clock = resume_at
                    try:
                        nxt = th.send(result)
                    except StopIteration as stop:
                        th.retval = stop.value
                        sched._events = events
                        sched._finish_thread(th, resume_at)
                        continue
                    except Exception as exc:
                        exc.add_note(
                            f"raised in device thread tid={th.tid} "
                            f"block={th.ctx.block} lane={th.ctx.lane} "
                            f"at cycle {resume_at}"
                        )
                        raise
                    if type(nxt) is not tuple or not nxt:
                        raise InvalidOp(
                            f"device thread {th.tid} yielded {nxt!r}; "
                            "expected an op tuple from repro.sim.ops"
                        )
                    code = nxt[0]
                    if OP_LOAD <= code <= OP_MIN:
                        th.pending = nxt
                        exec_at = resume_at + step_cost
                        if code >= OP_CAS:
                            waddr = nxt[1] >> 3
                            avail = word_avail.get(waddr, 0)
                            if avail > exec_at:
                                exec_at = avail
                            word_avail[waddr] = exec_at + atomic_service
                            if sched.track_contention:
                                sched._word_ops[waddr] = (
                                    sched._word_ops.get(waddr, 0) + 1
                                )
                            tracer.atomic_issued(
                                waddr, exec_at - resume_at - step_cost
                            )
                        # a pending-op continuation always lands strictly
                        # after t (step_cost > 0): straight to the heap
                        sched._seq = fs = sched._seq + 1
                        _push(heap, (exec_at, fs, item))
                        continue
                    if code == OP_SLEEP:
                        counts[OP_SLEEP] += 1
                        sched._seq = fs = sched._seq + 1
                        _push(heap, (resume_at + step_cost + nxt[1], fs, item))
                        continue
                    if code == OP_YIELD:
                        counts[OP_YIELD] += 1
                        sched._seq = fs = sched._seq + 1
                        _push(heap, (resume_at + cm.yield_cost, fs, item))
                        continue
                    handler = park_get(code)
                    if handler is None:
                        raise InvalidOp(
                            f"device thread {th.tid} yielded unknown op {nxt!r}"
                        )
                    counts[code] += 1
                    handler(th, nxt, resume_at)
                if not cur:
                    break
                items, cur, idx = cur, [], 0
    finally:
        del sched._push, sched._push_timer, sched._push_group
        if idx < len(items):
            sched._seq = fs = sched._seq + 1
            heappush(heap, (t, fs, _BATCH, [fs] + items[idx:]))
        if cur:
            sched._seq = fs = sched._seq + 1
            heappush(heap, (t, fs, _BATCH, [fs] + cur))
        sched._events = events
    return sched._finish_report()
