"""Device-side operation descriptors.

Device code in this package is written as Python *generator functions*.
Every interaction with shared state — loads, stores, atomics, barriers —
is expressed by ``yield``-ing a small tuple built by one of the
constructors below; the scheduler executes the tuple's effect atomically
at the thread's virtual time and ``send``-s the result back, so::

    old = yield ops.atomic_cas(addr, expected, new)
    val = yield ops.load(addr)
    yield ops.store(addr, val + 1)          # plain (racy) store
    yield ops.sleep(100)                    # burn 100 cycles
    mask = yield ops.warp_converge()        # __activemask()-style rendezvous
    yield ops.syncthreads()                 # block barrier

Composite device functions compose with ``yield from`` and may ``return``
values, exactly like CUDA ``__device__`` functions.

All word operations are on unsigned 64-bit values at 8-byte-aligned byte
addresses.  Signed quantities are stored in two's complement; see
:func:`to_signed` / :func:`to_unsigned`.
"""

from __future__ import annotations

from typing import Tuple

# Opcodes.  These are plain ints and the tuples plain tuples for speed:
# the scheduler dispatches on op[0] millions of times per benchmark.
OP_SLEEP = 0
OP_LOAD = 1
OP_STORE = 2
OP_CAS = 3
OP_ADD = 4
OP_EXCH = 5
OP_AND = 6
OP_OR = 7
OP_XOR = 8
OP_MAX = 9
OP_MIN = 10
OP_BARRIER = 11
OP_WARP_CONV = 12
OP_YIELD = 13
OP_WARP_SYNC = 14
OP_WARP_MATCH = 15
OP_WARP_BCAST = 16
OP_FAULT = 17

#: one past the highest opcode — sizes the scheduler's per-op dispatch
#: and count tables (which index by opcode instead of hashing dict keys
#: in the hot loop)
N_OPCODES = OP_FAULT + 1

#: opcode -> human-readable name (trace labels, ``SimReport.named_op_counts``)
OP_NAMES = {
    OP_SLEEP: "sleep",
    OP_LOAD: "load",
    OP_STORE: "store",
    OP_CAS: "atomic_cas",
    OP_ADD: "atomic_add",
    OP_EXCH: "atomic_exch",
    OP_AND: "atomic_and",
    OP_OR: "atomic_or",
    OP_XOR: "atomic_xor",
    OP_MAX: "atomic_max",
    OP_MIN: "atomic_min",
    OP_BARRIER: "syncthreads",
    OP_WARP_CONV: "warp_converge",
    OP_YIELD: "cpu_yield",
    OP_WARP_SYNC: "warp_sync",
    OP_WARP_MATCH: "warp_match",
    OP_WARP_BCAST: "warp_broadcast",
    OP_FAULT: "fault_point",
}

_MASK64 = (1 << 64) - 1


class _NoPayload:
    """Sentinel: this lane contributes no broadcast payload."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<no payload>"


#: Default ``value`` for :func:`warp_broadcast` — distinct from ``None``
#: so that any real Python object, falsy values included, can be
#: broadcast.
NO_PAYLOAD = _NoPayload()

Op = Tuple  # an op is a tuple whose first element is an opcode

# Zero-argument ops are immutable and carry no per-call state, so the
# constructors hand out module-level singletons instead of building a
# fresh tuple per yield (spin loops yield these millions of times).
_YIELD_OP = (OP_YIELD,)
_BARRIER_OP = (OP_BARRIER,)
_WARP_CONV_OP = (OP_WARP_CONV,)


def sleep(cycles: int) -> Op:
    """Advance this thread's clock by ``cycles`` without touching memory."""
    return (OP_SLEEP, cycles)


def cpu_yield() -> Op:
    """Politely yield the (virtual) core for one backoff quantum.

    Used in spin loops, mirroring ``nanosleep``/``__nanosleep`` backoff in
    the paper's CUDA implementation.
    """
    return _YIELD_OP


def load(addr: int) -> Op:
    """Load the unsigned 64-bit word at 8-byte-aligned ``addr``."""
    return (OP_LOAD, addr)


def store(addr: int, value: int) -> Op:
    """Store unsigned 64-bit ``value`` at 8-byte-aligned ``addr``.

    Plain stores are *not* serialized against atomics; racing plain
    accesses with atomics on the same word is a bug in device code, just
    as on real hardware.
    """
    return (OP_STORE, addr, value & _MASK64)


def atomic_cas(addr: int, expected: int, new: int) -> Op:
    """Atomic compare-and-swap; returns the *old* word value."""
    return (OP_CAS, addr, expected & _MASK64, new & _MASK64)


def atomic_add(addr: int, value: int) -> Op:
    """Atomic 64-bit wrapping add; returns the old value.

    Subtraction is ``atomic_add(addr, -v)`` — the value is reduced mod
    2**64, matching CUDA's unsigned wrap-around semantics.
    """
    return (OP_ADD, addr, value & _MASK64)


def atomic_sub(addr: int, value: int) -> Op:
    """Atomic 64-bit wrapping subtract; returns the old value."""
    return (OP_ADD, addr, (-value) & _MASK64)


def atomic_exch(addr: int, value: int) -> Op:
    """Atomic exchange; returns the old value."""
    return (OP_EXCH, addr, value & _MASK64)


def atomic_and(addr: int, value: int) -> Op:
    """Atomic bitwise AND; returns the old value."""
    return (OP_AND, addr, value & _MASK64)


def atomic_or(addr: int, value: int) -> Op:
    """Atomic bitwise OR; returns the old value."""
    return (OP_OR, addr, value & _MASK64)


def atomic_xor(addr: int, value: int) -> Op:
    """Atomic bitwise XOR; returns the old value."""
    return (OP_XOR, addr, value & _MASK64)


def atomic_max(addr: int, value: int) -> Op:
    """Atomic unsigned max; returns the old value."""
    return (OP_MAX, addr, value & _MASK64)


def atomic_min(addr: int, value: int) -> Op:
    """Atomic unsigned min; returns the old value."""
    return (OP_MIN, addr, value & _MASK64)


def syncthreads() -> Op:
    """Block-wide barrier.  All *live* threads of the block must arrive."""
    return _BARRIER_OP


def warp_converge() -> Op:
    """Warp-convergence rendezvous (the simulator's ``__activemask()``).

    The yielding lane parks until every live lane of its warp is either
    parked (on anything) or finished; the set of lanes parked on this op
    then resumes together.  The result sent back is a ``frozenset`` of
    the converged lane indices (0..warp_size-1), identical for every
    converged lane, from which a leader can be elected deterministically
    (``min(mask)``).
    """
    return _WARP_CONV_OP


def warp_sync(mask: frozenset) -> Op:
    """Barrier across the lanes named in ``mask`` (``__syncwarp(mask)``).

    Every lane in ``mask`` must eventually yield ``warp_sync`` with the
    *same* mask; they resume together.  A lane in the mask that exits
    without arriving deadlocks the others, as on real hardware.
    """
    return (OP_WARP_SYNC, mask)


def warp_match(key) -> Op:
    """Convergence rendezvous that groups lanes by ``key`` — the
    simulator's ``__match_any_sync()``.

    Lanes converge exactly like :func:`warp_converge`, but the mask each
    lane receives contains only the converged lanes that supplied an
    equal ``key`` (sizes, addresses, ...).  Used by the allocator's
    transparent request-coalescing path.
    """
    return (OP_WARP_MATCH, key)


def warp_broadcast(mask: frozenset, value=NO_PAYLOAD) -> Op:
    """Synchronize the lanes in ``mask`` and broadcast one lane's value
    — the simulator's ``__shfl_sync()`` (leader-to-all form).

    Every lane in ``mask`` must call this with the same mask; exactly
    one lane — the source, typically the elected leader — passes a
    ``value`` (any object, falsy values and ``None`` included).  All
    lanes receive the source's value.  More than one contributing lane
    raises :class:`~repro.sim.errors.InvalidOp`: the broadcast would
    otherwise be arrival-order dependent.  If no lane contributes, the
    call degrades to :func:`warp_sync` and resumes with the mask.
    """
    return (OP_WARP_BCAST, mask, value)


def fault_point(site: str, detail: int = 0) -> Op:
    """Fault-injection probe (see :mod:`repro.resil`).

    Device code yields this at a designated failure site — always
    guarded by ``ctx.fault is not None``, so unfaulted runs never emit
    the op.  The scheduler consults its attached fault injector and the
    op resumes with either ``None`` (no fault: proceed normally) or the
    string ``"fail"`` (take the site's failure arm).  Stall-type faults
    resume with ``None`` after the injected delay has been charged to
    the thread's virtual clock, so the site's code needs no stall
    handling of its own.

    ``detail`` is a site-specific integer (TBuddy order, node index,
    arena index ...) that fault rules may filter on — this is how a
    plan targets, e.g., NULL returns at one controlled split depth.
    """
    return (OP_FAULT, site, detail)


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned word as a two's-complement integer."""
    value &= _MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


def to_unsigned(value: int) -> int:
    """Mask an integer into a 64-bit unsigned word."""
    return value & _MASK64
