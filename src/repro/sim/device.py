"""Device configuration and per-thread execution context.

:class:`GPUDevice` captures the machine shape: number of SMs, warp size,
and how many thread blocks may be resident on an SM at once.  Block
residency is what lets the simulator reproduce the paper's Figure 6
mechanism — a thread block occupies SM resources until *all* of its
threads finish, so threads stuck waiting on an RCU barrier delay every
queued block behind them.

:class:`ThreadCtx` is the device-code view of "who am I": global thread
id, block id, lane, warp, SM, plus a deterministic per-thread RNG used
for scattered (hashed) data-structure traversals as in ScatterAlloc.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class GPUDevice:
    """Shape of the simulated throughput-oriented processor.

    Defaults are a scaled-down Volta: real Titan V has 80 SMs x 2048
    resident threads; simulating that many Python generators is feasible
    but slow, so benchmarks default to a smaller part and scale thread
    counts accordingly (see DESIGN.md, substitutions).
    """

    num_sms: int = 8
    warp_size: int = 32
    max_resident_blocks: int = 4
    max_threads_per_block: int = 1024

    @property
    def max_resident_threads(self) -> int:
        """Upper bound on simultaneously executing threads."""
        return self.num_sms * self.max_resident_blocks * self.max_threads_per_block


#: A modest default device used throughout tests.
DEFAULT_DEVICE = GPUDevice()


@dataclass
class ThreadCtx:
    """Identity of one simulated GPU thread, passed to kernels.

    Attributes
    ----------
    tid: global thread index across the whole launch (0-based).
    block: block index within the grid.
    tid_in_block: thread index within the block.
    lane: index within the warp (0..warp_size-1).
    warp: global warp index across the launch.
    sm: SM the owning block is placed on.
    nthreads: total threads in the launch.
    block_dim: threads per block for this launch.
    rng: deterministic per-thread RNG (seeded from the scheduler seed and
        ``tid``); use for hashed traversal start points.
    trace: the scheduler's :class:`~repro.sim.trace.Tracer`, or ``None``
        when tracing is off.  Device-side primitives report telemetry
        through it, guarded by ``if ctx.trace is not None``.
    fault: the scheduler's :class:`~repro.resil.FaultInjector`, or
        ``None`` when fault injection is off.  Device-side failure
        sites yield :func:`~repro.sim.ops.fault_point` probes only when
        this is set, so unfaulted runs pay nothing.
    """

    tid: int
    block: int
    tid_in_block: int
    lane: int
    warp: int
    sm: int
    nthreads: int
    block_dim: int
    # RNG-ownership contract (the replay guarantee): every draw on a
    # core path — allocator backoff, scattered traversals, robust-malloc
    # retries — goes through this per-thread RNG, which the scheduler
    # seeds from (scenario seed, tid).  Nothing in device code may touch
    # module-level ``random``.  The default factory is *seeded* so a
    # ThreadCtx constructed without an explicit rng (host tests, ad-hoc
    # harnesses) is still deterministic instead of silently drawing
    # OS entropy and breaking byte-for-byte replay.
    rng: random.Random = field(repr=False,
                               default_factory=lambda: random.Random(0))
    trace: object = field(repr=False, default=None, compare=False)
    fault: object = field(repr=False, default=None, compare=False)

    def is_warp_leader_of(self, mask: frozenset) -> bool:
        """True if this thread is the elected leader of converged ``mask``."""
        return self.lane == min(mask)


def rng_randbelow(rng: random.Random):
    """Return the cheapest exact equivalent of ``rng.randrange`` for a
    positive integer bound.

    CPython's ``Random.randrange(stop)`` validates its arguments and then
    delegates straight to ``Random._randbelow(stop)``, so for the hot
    backoff loops (one draw per spin iteration) binding the inner method
    skips one wrapper frame per draw while producing the *identical*
    random stream — replay and byte-for-byte report parity are
    unaffected.  Falls back to ``randrange`` on implementations without
    the private helper.  Callers must only pass bounds >= 1, which is
    what ``randrange`` would require anyway.
    """
    return getattr(rng, "_randbelow", rng.randrange)
