"""Deterministic SIMT simulator substrate.

This package stands in for the paper's CUDA/Titan V execution
environment: device memory, serialized same-word atomics, thread blocks
with barriers, warps with convergence, SM block residency, and a
virtual-cycle cost model.  See DESIGN.md for the substitution rationale.

Quick tour::

    from repro.sim import DeviceMemory, Scheduler, ops

    mem = DeviceMemory(64 * 1024)
    counter = mem.host_alloc(8)

    def kernel(ctx):
        yield ops.atomic_add(counter, 1)

    sched = Scheduler(mem, seed=1)
    sched.launch(kernel, grid=4, block=64)
    report = sched.run()
    assert mem.load_word(counter) == 256
"""

from . import ops
from .cost_model import DEFAULT_COST_MODEL, CostModel
from .device import DEFAULT_DEVICE, GPUDevice, ThreadCtx
from .errors import (
    DeadlockError,
    InvalidOp,
    LaunchError,
    MisalignedAccess,
    OutOfBoundsAccess,
    SimError,
)
from .memory import DeviceMemory
from .scheduler import LaunchHandle, Scheduler, SimReport
from .trace import Histogram, Tracer

__all__ = [
    "ops",
    "Tracer",
    "Histogram",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "GPUDevice",
    "DEFAULT_DEVICE",
    "ThreadCtx",
    "DeviceMemory",
    "Scheduler",
    "SimReport",
    "LaunchHandle",
    "SimError",
    "MisalignedAccess",
    "OutOfBoundsAccess",
    "InvalidOp",
    "DeadlockError",
    "LaunchError",
]
