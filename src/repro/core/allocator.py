"""The combined throughput-oriented allocator (paper §4).

``malloc`` rounds the request up to a power of two and routes it: sizes
up to half a bin go to :class:`~repro.core.ualloc.UAlloc`, larger sizes
to :class:`~repro.core.tbuddy.TBuddy`.  ``free`` routes purely by
address alignment — TBuddy results are always page aligned, UAlloc
results never are — so no shared ownership structure exists to contend
on (the paper's "key property").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import ops
from ..sim.device import GPUDevice, ThreadCtx
from ..sim.memory import DeviceMemory
from .config import DEFAULT_CONFIG, AllocatorConfig, round_up_pow2
from .tbuddy import InvalidFree, TBuddy
from .ualloc import UAlloc

_NULL = DeviceMemory.NULL


@dataclass
class AllocStats:
    """Host-side counters accumulated across kernel runs.

    Counting contract
    -----------------
    * ``n_malloc`` counts **every** ``malloc``/``malloc_coalesced``
      call, including invalid-size calls — historically ``nbytes <= 0``
      returned NULL without touching the stats, which silently skewed
      ``failure_rate`` against runs that probe edge sizes.
    * ``n_malloc_failed`` counts every NULL return and always equals
      ``n_invalid_size + n_exhaustion`` (failures are classified by
      cause, never double-counted).
    * ``n_free`` counts every completed ``free`` call, including the
      ``free(NULL)`` no-op (tracked separately in ``n_free_null``).
      Frees that *raise* (``InvalidFree``/``DoubleFree``) are not
      counted: the call did not release anything, and a malloc/free
      delta of zero must continue to certify a leak-free episode.
    * ``n_robust_retries``/``n_transient`` are only touched by
      :meth:`ThroughputAllocator.malloc_robust`: retries it issued, and
      failed attempts that a later retry of the same call recovered.
    """

    n_malloc: int = 0
    n_malloc_failed: int = 0
    n_free: int = 0
    #: malloc calls rejected for a non-positive size (subset of failed)
    n_invalid_size: int = 0
    #: malloc calls that returned NULL on a valid size (subset of failed)
    n_exhaustion: int = 0
    #: free(NULL) no-op calls (subset of n_free)
    n_free_null: int = 0
    #: retries issued by malloc_robust after a NULL attempt
    n_robust_retries: int = 0
    #: failed attempts recovered by a later malloc_robust retry
    n_transient: int = 0

    @property
    def failure_rate(self) -> float:
        """Fraction of malloc calls that returned NULL."""
        return self.n_malloc_failed / self.n_malloc if self.n_malloc else 0.0


@dataclass(frozen=True)
class PressureGauge:
    """Host-readable snapshot of remaining pool supply.

    Built from the TBuddy per-order bulk-semaphore ledgers, so reading
    it costs one word per order and no tree walk.  Exact at quiescence;
    during a run it is a best-effort gauge (transient claim borrows are
    clamped to zero rather than reported as garbage counts).
    """

    #: free blocks per TBuddy order, index = order
    free_per_order: tuple

    #: bytes of one order-0 block
    page_size: int

    #: total pool bytes
    pool_bytes: int

    @property
    def free_bytes(self) -> int:
        """Bytes of free supply across all orders."""
        return sum(
            n * (self.page_size << order)
            for order, n in enumerate(self.free_per_order)
        )

    @property
    def pressure(self) -> float:
        """Fraction of the pool currently *not* free: 0.0 = everything
        free, 1.0 = fully committed (allocations or metadata)."""
        if not self.pool_bytes:
            return 0.0
        return 1.0 - min(1.0, self.free_bytes / self.pool_bytes)

    @property
    def largest_free_order(self) -> int:
        """Largest order with free supply, or -1 when none is free."""
        for order in range(len(self.free_per_order) - 1, -1, -1):
            if self.free_per_order[order]:
                return order
        return -1


class ThroughputAllocator:
    """Device-side ``malloc``/``free`` over a simulated memory pool.

    Typical setup::

        mem = DeviceMemory(64 << 20)
        alloc = ThroughputAllocator(mem, device)

        def kernel(ctx):
            p = yield from alloc.malloc(ctx, 48)
            ...
            yield from alloc.free(ctx, p)

    Parameters
    ----------
    checked:
        Verify bulk-semaphore transitions and header magics (slower,
        default on; benchmarks turn it off).
    collective_chunks:
        Use the collective chunk-list mutex (ablation knob, §4.2.2).
    """

    def __init__(
        self,
        mem: DeviceMemory,
        device: GPUDevice,
        cfg: AllocatorConfig = DEFAULT_CONFIG,
        checked: bool = True,
        collective_chunks: bool = True,
    ):
        self.mem = mem
        self.cfg = cfg
        # Chunk-aligned base makes chunk_of() pure masking and guarantees
        # the page-alignment routing property.
        self.pool_base = mem.host_alloc(cfg.pool_size, align=cfg.chunk_size)
        self.tbuddy = TBuddy(
            mem, self.pool_base, cfg.page_size, cfg.pool_order,
            checked_sems=checked,
        )
        self.ualloc = UAlloc(
            mem, cfg, self.tbuddy, self.pool_base, device.num_sms,
            checked_sems=checked, collective_chunks=collective_chunks,
        )
        self.stats = AllocStats()

    # ------------------------------------------------------------------
    # device-side interface
    # ------------------------------------------------------------------
    def malloc(self, ctx: ThreadCtx, nbytes: int):
        """Allocate at least ``nbytes``; returns the address or NULL.

        Every call is counted in :class:`AllocStats`, invalid sizes
        included (see the counting contract there)."""
        if nbytes <= 0:
            self._count_invalid_size()
            return _NULL
        size = round_up_pow2(max(nbytes, self.cfg.min_alloc))
        if size <= self.cfg.max_ualloc_size:
            addr = yield from self.ualloc.malloc(ctx, size)
        else:
            addr = yield from self.tbuddy.alloc_bytes(ctx, size)
        self.stats.n_malloc += 1
        if addr == _NULL:
            self.stats.n_malloc_failed += 1
            self.stats.n_exhaustion += 1
        return addr

    def malloc_coalesced(self, ctx: ThreadCtx, nbytes: int):
        """Warp-coalescing ``malloc``: converging lanes that request the
        same size class are served by one leader operation (the paper's
        transparent full-warp specialized path).

        Semantically identical to :meth:`malloc`; profitable when whole
        warps allocate together (the common data-parallel pattern), at
        the cost of a convergence rendezvous when they do not.
        """
        if nbytes <= 0:
            self._count_invalid_size()
            return _NULL
        size = round_up_pow2(max(nbytes, self.cfg.min_alloc))
        if size <= self.cfg.max_ualloc_size:
            addr = yield from self.ualloc.malloc_coalesced(ctx, size)
        else:
            addr = yield from self.tbuddy.alloc_bytes(ctx, size)
        self.stats.n_malloc += 1
        if addr == _NULL:
            self.stats.n_malloc_failed += 1
            self.stats.n_exhaustion += 1
        return addr

    def _count_invalid_size(self) -> None:
        self.stats.n_malloc += 1
        self.stats.n_malloc_failed += 1
        self.stats.n_invalid_size += 1

    def malloc_robust(self, ctx: ThreadCtx, nbytes: int, max_retries: int = 4,
                      backoff_base: int = 256, backoff_cap: int = 16384):
        """Bounded-retry ``malloc`` with randomized exponential backoff.

        The graceful-degradation wrapper for callers that prefer a
        slower allocation over a NULL under transient pressure (a storm
        of reneges, supply still in flight up the split chain).  Retries
        at most ``max_retries`` times, sleeping a randomized
        exponentially-growing interval between attempts; gives up — and
        lets the caller see NULL — when the failure persists, so a truly
        exhausted pool still fails fast enough to act on.

        Invalid sizes are not retried: the failure is permanent by
        construction.  Each attempt is counted normally in
        :class:`AllocStats`; additionally ``n_robust_retries`` counts
        retries issued, and attempts that a later retry of this call
        recovered are recorded in ``n_transient`` (so
        ``n_exhaustion - n_transient`` estimates *hard* exhaustion).

        Parameters are validated *eagerly* (this is a plain function
        returning the retry generator), so a bad ``backoff_base=0`` or
        negative ``max_retries`` raises ``ValueError`` at the call site
        instead of surfacing as an opaque ``randrange(0)`` crash
        mid-kernel.  The sleep interval is always drawn from
        ``min(backoff, backoff_cap)``: a ``backoff_base`` above the cap
        (or a doubling that overshoots it) sleeps at the cap, never past
        it.
        """
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0 (got {max_retries})")
        if backoff_base <= 0:
            raise ValueError(f"backoff_base must be > 0 (got {backoff_base})")
        if backoff_cap <= 0:
            raise ValueError(f"backoff_cap must be > 0 (got {backoff_cap})")
        return self._malloc_robust(ctx, nbytes, max_retries,
                                   backoff_base, backoff_cap)

    def _malloc_robust(self, ctx: ThreadCtx, nbytes: int, max_retries: int,
                       backoff_base: int, backoff_cap: int):
        if nbytes <= 0:
            self._count_invalid_size()
            return _NULL
        failures = 0
        backoff = backoff_base
        while True:
            addr = yield from self.malloc(ctx, nbytes)
            if addr != _NULL:
                self.stats.n_transient += failures
                return addr
            failures += 1
            if failures > max_retries:
                return _NULL
            self.stats.n_robust_retries += 1
            yield ops.sleep(ctx.rng.randrange(min(backoff, backoff_cap)))
            if backoff < backoff_cap:
                backoff <<= 1

    def free(self, ctx: ThreadCtx, addr: int):
        """Release a block returned by :meth:`malloc` (NULL is a no-op).

        Raises :class:`~repro.core.tbuddy.InvalidFree` for addresses
        outside the pool: alignment routing would otherwise hand the
        address to UAlloc, whose chunk-of masking computes a garbage
        chunk base and reports an opaque ``HeapCorruption``.

        ``free(NULL)`` counts in ``n_free``/``n_free_null`` — it is a
        completed call per the :class:`AllocStats` contract (frees that
        raise are the ones left uncounted).
        """
        if addr == _NULL:
            self.stats.n_free += 1
            self.stats.n_free_null += 1
            return
        if not (0 <= addr - self.pool_base < self.cfg.pool_size):
            raise InvalidFree(
                f"free({addr:#x}): address outside the pool "
                f"[{self.pool_base:#x}, {self.pool_base + self.cfg.pool_size:#x})"
            )
        self.stats.n_free += 1
        if (addr - self.pool_base) % self.cfg.page_size == 0:
            yield from self.tbuddy.free(ctx, addr)
        else:
            yield from self.ualloc.free(ctx, addr)

    # ------------------------------------------------------------------
    # host-side introspection
    # ------------------------------------------------------------------
    def host_pressure(self) -> PressureGauge:
        """Snapshot remaining pool supply from the TBuddy semaphore
        ledgers (one word read per order — no tree walk, so it is safe
        to poll while a kernel runs).

        Free supply at each order is the order semaphore's ``C``;
        an in-flight claim borrow (``C >= C_GUARD``) clamps to 0 for
        that order rather than reporting a wrapped count.  Exact at
        quiescence.
        """
        from ..sync.bulk_semaphore import C_GUARD

        free = tuple(
            (0 if c >= C_GUARD else c)
            for c in (sem.value for sem in self.tbuddy.sems)
        )
        return PressureGauge(
            free_per_order=free,
            page_size=self.cfg.page_size,
            pool_bytes=self.cfg.pool_size,
        )

    def host_drain_reclamation(self) -> int:
        """Finish all deferred reclamation host-side (quiescent only)."""
        return self.ualloc.host_drain_reclamation()

    def host_live_chunks(self) -> list[int]:
        """Chunk base addresses currently allocated from TBuddy
        (quiescent only; distinguishes chunks from direct coarse
        allocations via the chunk magic)."""
        from .bin_ import CH_MAGIC_OFF, CHUNK_MAGIC

        out = []
        for addr, order in self.tbuddy.host_allocated_blocks():
            if (
                order == self.cfg.chunk_order
                and self.mem.load_word(addr + CH_MAGIC_OFF) == CHUNK_MAGIC
            ):
                out.append(addr)
        return out

    def host_used_bytes(self) -> int:
        """Bytes currently handed out to the application (quiescent
        only): UAlloc blocks in use plus direct TBuddy allocations —
        allocator metadata (headers, empty bins, retiring chunks)
        excluded."""
        from .bin_ import CH_BITMAP_OFF, RETIRED

        all_ones = (1 << 64) - 1
        chunks = set(self.host_live_chunks())
        used = 0
        for addr, order in self.tbuddy.host_allocated_blocks():
            if addr in chunks:
                bitmap = self.mem.load_word(addr + CH_BITMAP_OFF)
                if bitmap == all_ones and order == self.cfg.chunk_order:
                    continue  # retiring: reclamation pending, nothing live
                for b in range(2, self.cfg.bins_per_chunk):
                    if not bitmap & (1 << b):
                        continue
                    info = self.ualloc.binops.host_summary(
                        self.mem, addr + b * self.cfg.bin_size
                    )
                    if info["count"] < RETIRED:
                        used += info["used_blocks"] * info["size"]
            else:
                used += self.cfg.page_size << order
        return used

    def host_check(self, strict_siblings: bool = False) -> None:
        """Quiescent-state consistency check of the whole allocator."""
        self.tbuddy.check_invariants(strict_siblings=strict_siblings)
        for arena in self.ualloc.arenas:
            arena.chunks.host_check()
            for sc in arena.classes:
                sc.bins.host_check()
        self.ualloc.host_check()

    def host_checkpoint(self, expect_leak_free: bool = False,
                        strict_siblings: bool = False) -> None:
        """Full quiescent checkpoint for verification sweeps: finish
        opportunistic reclamation, validate every structural and
        accounting invariant, and optionally assert that no bytes remain
        handed out (leak accounting after a full-free phase)."""
        self.ualloc.host_gc()
        self.host_check(strict_siblings=strict_siblings)
        if expect_leak_free:
            used = self.host_used_bytes()
            assert used == 0, (
                f"leak: {used} bytes still handed out at a full-free checkpoint"
            )
