"""Allocator configuration (paper §4 constants, parameterized).

The paper's published constants: 4 KB pages/bins, 128 B bin headers,
128 B tails, 512-bit bin bitmaps (minimum allocation 8 B), 64 bins per
chunk, one arena per SM.  §4.2's "512 KB chunks" is inconsistent with
the 64-bin chunk bitmap and the 62x128 B tail layout, which only add up
for 64 x 4 KB = 256 KB chunks; we default to the self-consistent layout
(see DESIGN.md §2) and keep every constant configurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


def round_up_pow2(n: int) -> int:
    """Smallest power of two >= n (n >= 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


@dataclass(frozen=True)
class AllocatorConfig:
    """Sizing knobs for the combined allocator.

    Attributes
    ----------
    page_size:
        TBuddy granularity; also the alignment that routes ``free`` calls
        (page-aligned => TBuddy, otherwise UAlloc).
    bin_size:
        Bytes per UAlloc bin (== page_size in the paper).
    bins_per_chunk:
        Bins per chunk, including the two special header bins.
    bin_header_size:
        Bytes reserved at the start of every bin for its header.
    tail_size:
        Bytes of tail space logically appended to each regular bin.
    min_alloc:
        Smallest serviced allocation (8 B in the paper; one bitmap bit).
    pool_order:
        TBuddy tree height: the managed pool spans ``2**pool_order``
        pages.
    """

    page_size: int = 4096
    bin_size: int = 4096
    bins_per_chunk: int = 64
    bin_header_size: int = 128
    tail_size: int = 128
    min_alloc: int = 8
    pool_order: int = 10  # 2**10 pages * 4 KB = 4 MB pool by default

    def __post_init__(self) -> None:
        for name in ("page_size", "bin_size", "bins_per_chunk",
                     "bin_header_size", "tail_size", "min_alloc"):
            if not _is_pow2(getattr(self, name)):
                raise ValueError(f"{name} must be a power of two")
        if self.bin_size != self.page_size:
            raise ValueError("bin_size must equal page_size (paper layout)")
        if self.bins_per_chunk < 4:
            raise ValueError("need at least 4 bins per chunk")
        if self.pool_order < self.chunk_order:
            raise ValueError(
                f"pool_order={self.pool_order} smaller than a single chunk "
                f"(chunk_order={self.chunk_order})"
            )
        # The two special bins must hold one tail per regular bin.
        tails_capacity = 2 * (self.bin_size - self.bin_header_size) // self.tail_size
        if self.n_regular_bins > tails_capacity:
            raise ValueError(
                f"{self.n_regular_bins} regular bins need tails but the two "
                f"special bins only hold {tails_capacity}"
            )
        if self.max_bin_blocks > 512:
            raise ValueError("bin bitmaps hold at most 512 blocks")

    # -- derived sizes -------------------------------------------------
    @property
    def chunk_size(self) -> int:
        """Bytes per chunk."""
        return self.bin_size * self.bins_per_chunk

    @property
    def chunk_order(self) -> int:
        """TBuddy order of a chunk allocation."""
        return (self.chunk_size // self.page_size - 1).bit_length()

    @property
    def pool_size(self) -> int:
        """Bytes managed by TBuddy."""
        return self.page_size << self.pool_order

    @property
    def n_regular_bins(self) -> int:
        """Allocatable bins per chunk (excludes the two special bins)."""
        return self.bins_per_chunk - 2

    @property
    def max_ualloc_size(self) -> int:
        """Largest (power-of-two) size served by UAlloc."""
        return self.bin_size // 2

    @property
    def max_bin_blocks(self) -> int:
        """Blocks in the densest bin (min_alloc-sized)."""
        return (self.bin_size - self.bin_header_size + self.tail_size) // self.min_alloc

    @property
    def size_classes(self) -> Tuple[int, ...]:
        """UAlloc size classes: min_alloc .. bin_size/2, powers of two."""
        sizes = []
        s = self.min_alloc
        while s <= self.max_ualloc_size:
            sizes.append(s)
            s <<= 1
        return tuple(sizes)

    def class_index(self, size: int) -> int:
        """Index of the size class for a rounded power-of-two ``size``."""
        return (size // self.min_alloc - 1).bit_length()

    def bin_capacity(self, size: int) -> int:
        """Blocks a bin of the given (power-of-two) size class holds.

        Sizes up to ``tail_size`` use the tail, so the full ``bin_size``
        is allocatable; larger sizes only use the space after the header
        (paper §4.2 — hence "from a 4 KB bin devoted to 1 KB allocations,
        only 3 KB are available").
        """
        if size <= self.tail_size:
            return self.bin_size // size
        return (self.bin_size - self.bin_header_size) // size

    def order_of(self, size: int) -> int:
        """TBuddy order for a (power-of-two) coarse ``size``."""
        return (size // self.page_size - 1).bit_length()

    @staticmethod
    def order_for_pool(pool_bytes: int, page_size: int = 4096) -> int:
        """The ``pool_order`` whose pool *covers* ``pool_bytes``.

        ``ceil(log2(ceil(pool_bytes / page_size)))`` — exact for pools
        that are a power-of-two number of pages, rounded **up**
        otherwise, so ``page_size << order >= pool_bytes`` always holds.
        Every bench used to hand-roll this as
        ``(pool // 4096 - 1).bit_length()``, which silently
        *under*-covers non-page-multiple pools (e.g. 4097 B mapped to a
        one-page pool); use this helper instead.
        """
        if pool_bytes <= 0:
            raise ValueError(f"pool_bytes must be positive (got {pool_bytes})")
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError("page_size must be a power of two")
        pages = -(-pool_bytes // page_size)
        return (pages - 1).bit_length()

    @classmethod
    def for_pool(cls, pool_bytes: int, **overrides) -> "AllocatorConfig":
        """A config sized so the TBuddy pool covers ``pool_bytes``."""
        if "pool_order" in overrides:
            raise ValueError("pool_order is derived from pool_bytes here")
        page_size = overrides.get("page_size", cls.page_size)
        return cls(pool_order=cls.order_for_pool(pool_bytes, page_size),
                   **overrides)


DEFAULT_CONFIG = AllocatorConfig()
