"""The paper's primary contribution: the throughput-oriented allocator.

Public surface:

* :class:`ThroughputAllocator` — device-side ``malloc``/``free``.
* :class:`TBuddy` — the coarse tree buddy allocator (§4.1).
* :class:`UAlloc` — the fine-grained unaligned allocator (§4.2).
* :class:`AllocatorConfig` — sizing knobs.
"""

from .allocator import AllocStats, ThroughputAllocator
from .arena import Arena, SizeClass
from .bin_ import BinOps, DoubleFree, HeapCorruption
from .config import DEFAULT_CONFIG, AllocatorConfig, round_up_pow2
from .dlist import DList
from .layout import BinLayout
from .tbuddy import TBuddy
from .ualloc import UAlloc

__all__ = [
    "ThroughputAllocator",
    "AllocStats",
    "TBuddy",
    "UAlloc",
    "Arena",
    "SizeClass",
    "BinOps",
    "DList",
    "BinLayout",
    "AllocatorConfig",
    "DEFAULT_CONFIG",
    "round_up_pow2",
    "DoubleFree",
    "HeapCorruption",
]
