"""Per-SM arenas (paper §4.2, Figure 3).

Each SM gets one arena so that up to a block-resident's worth of threads
share allocator state with good L1 locality (the paper's stated reason
for the arena-per-SM association).  An arena owns:

* one bin free-list + writer lock + bulk semaphore per size class
  (readers traverse the lists under the arena's RCU domain);
* the chunk list of chunks with available bins, protected by a
  *collective* mutex (paper §4.2.2) and a bulk semaphore counting free
  bins, batch size = regular bins per chunk.
"""

from __future__ import annotations

from typing import List

from ..sim.memory import DeviceMemory
from ..sync.bulk_semaphore import BulkSemaphore
from ..sync.collective import CollectiveMutex
from ..sync.rcu import RCU
from ..sync.spinlock import SpinLock
from .config import AllocatorConfig
from .dlist import DList


class SizeClass:
    """Free-list state for one allocation size within an arena."""

    __slots__ = ("size", "capacity", "bins", "lock", "sem")

    def __init__(self, mem: DeviceMemory, cfg: AllocatorConfig, size: int,
                 checked_sems: bool = True):
        self.size = size
        self.capacity = cfg.bin_capacity(size)
        self.bins = DList(mem)          # bins with available blocks
        self.lock = SpinLock(mem)       # list writer lock
        self.sem = BulkSemaphore(mem, initial=0, checked=checked_sems)


class Arena:
    """All allocator state private to one SM."""

    __slots__ = ("index", "cfg", "classes", "chunks", "chunk_mutex",
                 "bin_sem", "rcu")

    def __init__(self, mem: DeviceMemory, cfg: AllocatorConfig, index: int,
                 rcu: RCU | None = None, checked_sems: bool = True):
        self.index = index
        self.cfg = cfg
        self.classes: List[SizeClass] = [
            SizeClass(mem, cfg, size, checked_sems) for size in cfg.size_classes
        ]
        self.chunks = DList(mem)        # chunks with available bins
        self.chunk_mutex = CollectiveMutex(mem)
        self.bin_sem = BulkSemaphore(mem, initial=0, checked=checked_sems)
        self.rcu = rcu if rcu is not None else RCU(mem)

    def size_class(self, size: int) -> SizeClass:
        """The :class:`SizeClass` serving (power-of-two) ``size``."""
        return self.classes[self.cfg.class_index(size)]
