"""UAlloc — the fine-grained unaligned allocator (paper §4.2).

Serves power-of-two sizes up to half a bin from per-SM arenas.  Every
component uses two-stage resource management:

* **blocks** within a size class: a bulk semaphore counts free blocks
  (batch = blocks per fresh bin); the tracking stage walks the class's
  bin free-list under RCU and claims a block via the bin's count +
  bitmap.
* **bins** within an arena: a bulk semaphore counts free bins (batch =
  regular bins per chunk); the tracking stage walks the chunk list and
  claims a bin via the chunk-header bitmap.
* **chunks** come from TBuddy; freshly created chunks are inserted into
  the arena's chunk list under a *collective* mutex, so converging
  threads pay for one lock acquisition (paper §4.2.2).

Reclamation is deferred: retiring bins and chunks are unlinked first and
physically released by RCU callbacks after a grace period, issued
through *conditional* barriers so writers rarely wait (paper §4.2.1).

Every block address is misaligned with respect to the page size by
construction (see :mod:`repro.core.layout`), which lets the combined
allocator route ``free`` calls without shared ownership metadata.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import ops
from ..sim.device import ThreadCtx, rng_randbelow
from ..sim.memory import DeviceMemory
from .arena import Arena, SizeClass
from .bin_ import (
    BIN_MAGIC,
    BinOps,
    CH_ARENA_OFF,
    CH_BITMAP_OFF,
    CH_MAGIC_OFF,
    CHUNK_MAGIC,
    CHUNK_OFF,
    COUNT_OFF,
    FLAGS_OFF,
    HeapCorruption,
    LINKED,
    MAGIC_OFF,
    RETIRED,
    SIZE_OFF,
    UNLINKED,
)
from .config import AllocatorConfig
from .layout import BinLayout
from .tbuddy import TBuddy

_NULL = DeviceMemory.NULL
_ALL_ONES = (1 << 64) - 1


class UAlloc:
    """Fine-grained allocator over a TBuddy-backed pool.

    ``collective_chunks=False`` replaces the collective chunk-list mutex
    with per-thread locking (the ablation baseline for the §4.2.2
    primitive).
    """

    def __init__(
        self,
        mem: DeviceMemory,
        cfg: AllocatorConfig,
        tbuddy: TBuddy,
        pool_base: int,
        num_arenas: int,
        checked_sems: bool = True,
        collective_chunks: bool = True,
    ):
        self.mem = mem
        self.cfg = cfg
        self.tbuddy = tbuddy
        self.pool_base = pool_base
        self.binops = BinOps(cfg)
        self.layout = BinLayout(cfg)
        self.collective_chunks = collective_chunks
        self.arenas: List[Arena] = [
            Arena(mem, cfg, i, checked_sems=checked_sems) for i in range(num_arenas)
        ]
        # initial bin-bitmap word: the two special bins pre-claimed
        self._fresh_bitmap = 0b11
        if cfg.bins_per_chunk < 64:
            # mark non-existent bins as used
            self._fresh_bitmap |= (_ALL_ONES << cfg.bins_per_chunk) & _ALL_ONES

    # ------------------------------------------------------------------
    # malloc
    # ------------------------------------------------------------------
    def arena_of(self, ctx: ThreadCtx) -> Arena:
        """The arena serving this thread (one per SM)."""
        return self.arenas[ctx.sm % len(self.arenas)]

    def malloc(self, ctx: ThreadCtx, size: int):
        """Allocate one ``size``-byte block (``size`` must be a
        power-of-two size class).  Returns the address or NULL."""
        arena = self.arena_of(ctx)
        sc = arena.size_class(size)
        r = yield from sc.sem.wait(ctx, 1, sc.capacity)
        if r == 0:
            addr = yield from self._take_from_lists(ctx, arena, sc)
        else:
            addr = yield from self._new_bin_take(ctx, arena, sc)
        return addr

    def malloc_coalesced(self, ctx: ThreadCtx, size: int):
        """Warp-coalesced allocation (paper §2.2 / §4: "we transparently
        coalesce requests within the allocator ... using specialized
        paths for single-threaded and full-warp operations").

        Lanes of a warp that request the same size class at the same
        time are grouped with a ``__match_any_sync``-style rendezvous;
        the group leader acquires all the group's blocks — one semaphore
        operation, one list traversal — and broadcasts the addresses.
        Falls back to the scalar path for singleton groups.
        """
        cls = self.cfg.class_index(size)
        mask = yield ops.warp_match(("ualloc", id(self), cls))
        n = len(mask)
        if n == 1:
            addr = yield from self.malloc(ctx, size)
            return addr
        rank = sorted(mask).index(ctx.lane)
        if rank == 0:
            arena = self.arena_of(ctx)
            sc = arena.size_class(size)
            addrs = yield from self._take_n(ctx, arena, sc, n)
            got = yield ops.warp_broadcast(mask, tuple(addrs))
        else:
            got = yield ops.warp_broadcast(mask)
        return got[rank] if rank < len(got) else _NULL

    def _take_n(self, ctx: ThreadCtx, arena: Arena, sc: SizeClass, n: int):
        """Leader path: acquire up to ``n`` blocks of one class.

        Accounts for all ``n`` with a single bulk-semaphore ``wait``
        (plus a remainder wait when the class's batch is smaller than
        the group), then claims blocks from as few bins as possible.
        Returns the list of acquired addresses (may be shorter than
        ``n`` on pool exhaustion).
        """
        addrs = []
        remaining = n
        while remaining > 0:
            # want <= capacity, so the batch parameter is the capacity
            want = min(remaining, sc.capacity)
            r = yield from sc.sem.wait(ctx, want, sc.capacity)
            if r == -1:
                # batch stage: a fresh bin covers `want` of our blocks
                res = yield from self._claim_bin(ctx, arena)
                if res is None:
                    yield from sc.sem.renege(ctx, sc.capacity - want)
                    break
                chunk, bin_index = res
                bin_addr = chunk + bin_index * self.cfg.bin_size
                # pre-claim the whole group's blocks at init: zero extra
                # atomics for the entire coalesced batch
                cap = yield from self.binops.init_bin(
                    ctx, bin_addr, chunk, sc.size, preclaim=want
                )
                for kk in range(want):
                    addrs.append(self.layout.block_addr(
                        chunk, bin_index, sc.size, kk))
                leftover = cap - want
                if leftover > 0:
                    yield from sc.lock.lock(ctx)
                    yield from sc.bins.insert_head(ctx, bin_addr)
                    yield ops.store(bin_addr + FLAGS_OFF, LINKED)
                    yield from sc.lock.unlock(ctx)
                    yield from sc.sem.fulfill(ctx, leftover)
                remaining -= want
                continue
            # tracking stage: `want` blocks exist across the listed
            # bins; claim them in bulk, bin by bin
            taken = 0
            backoff = 32
            while taken < want:
                idx = yield from arena.rcu.read_lock(ctx)
                node = yield from sc.bins.first(ctx)
                exhausted = []
                while not sc.bins.is_end(node) and taken < want:
                    got, took_last = yield from self.binops.try_take_k(
                        ctx, node, want - taken
                    )
                    if got:
                        chunk = yield ops.load(node + CHUNK_OFF)
                        bin_index = (node - chunk) // self.cfg.bin_size
                        for kk in got:
                            addrs.append(self.layout.block_addr(
                                chunk, bin_index, sc.size, kk))
                        taken += len(got)
                        if took_last:
                            exhausted.append(node)
                    node = yield from sc.bins.next(ctx, node)
                yield from arena.rcu.read_unlock(ctx, idx)
                for node in exhausted:
                    yield from self._unlink_if_empty(ctx, sc, node)
                if taken < want:
                    yield ops.sleep(ctx.rng.randrange(backoff))
                    if backoff < 4096:
                        backoff <<= 1
            remaining -= want
        return addrs

    def _take_from_lists(self, ctx: ThreadCtx, arena: Arena, sc: SizeClass):
        """Tracking stage: claim one block from some listed bin.  The
        semaphore stage guaranteed a free block exists (or is about to be
        published), so this loops until it finds one."""
        backoff = 32
        # Hot path: inline the DList hops (one load each) and bind the
        # per-iteration callables out of the loop.  The op sequence is
        # identical to the method-based traversal.
        bins = sc.bins
        head = bins.head
        next_off = bins.next_off
        _load = ops.OP_LOAD
        try_take = self.binops.try_take
        randbelow = rng_randbelow(ctx.rng)
        read_lock = arena.rcu.read_lock
        read_unlock = arena.rcu.read_unlock
        while True:
            idx = yield from read_lock(ctx)
            node = yield (_load, head + next_off)
            got = None
            while node != head:
                res = yield from try_take(ctx, node)
                if res is not None:
                    got = (node, res[0], res[1])
                    break
                node = yield (_load, node + next_off)
            yield from read_unlock(ctx, idx)
            if got is not None:
                bin_addr, index, took_last = got
                if took_last:
                    yield from self._unlink_if_empty(ctx, sc, bin_addr)
                chunk = yield ops.load(bin_addr + CHUNK_OFF)
                bin_index = (bin_addr - chunk) // self.cfg.bin_size
                return self.layout.block_addr(chunk, bin_index, sc.size, index)
            yield (ops.OP_SLEEP, randbelow(backoff))
            if backoff < 4096:
                backoff <<= 1

    def _new_bin_take(self, ctx: ThreadCtx, arena: Arena, sc: SizeClass):
        """Batch stage: claim a fresh bin, keep block 0, publish the rest."""
        res = yield from self._claim_bin(ctx, arena)
        if res is None:
            yield from sc.sem.renege(ctx, sc.capacity - 1)
            return _NULL
        chunk, bin_index = res
        bin_addr = chunk + bin_index * self.cfg.bin_size
        cap = yield from self.binops.init_bin(ctx, bin_addr, chunk, sc.size)
        if cap > 1:
            yield from sc.lock.lock(ctx)
            yield from sc.bins.insert_head(ctx, bin_addr)
            yield ops.store(bin_addr + FLAGS_OFF, LINKED)
            yield from sc.lock.unlock(ctx)
            yield from sc.sem.fulfill(ctx, cap - 1)
        return self.layout.block_addr(chunk, bin_index, sc.size, 0)

    # ------------------------------------------------------------------
    # bins and chunks
    # ------------------------------------------------------------------
    def _claim_bin(self, ctx: ThreadCtx, arena: Arena):
        """Two-stage bin allocation; returns (chunk_base, bin_index) or
        None when the pool is exhausted."""
        r = yield from arena.bin_sem.wait(ctx, 1, self.cfg.n_regular_bins)
        if r == 0:
            claimed = yield from self._claim_bin_from_chunks(ctx, arena)
            return claimed
        return (yield from self._new_chunk(ctx, arena))

    def _claim_bin_from_chunks(self, ctx: ThreadCtx, arena: Arena):
        backoff = 32
        # Inlined chunk-list hops; op sequence identical to the
        # method-based walk (see _take_from_lists).
        chunks = arena.chunks
        head = chunks.head
        next_off = chunks.next_off
        _load = ops.OP_LOAD
        randbelow = rng_randbelow(ctx.rng)
        while True:
            idx = yield from arena.rcu.read_lock(ctx)
            node = yield (_load, head + next_off)
            claimed = None
            while node != head:
                while True:
                    word = yield (_load, node + CH_BITMAP_OFF)
                    if word == _ALL_ONES:
                        break
                    free = (~word) & _ALL_ONES
                    bit = free & (-free)
                    old = yield ops.atomic_or(node + CH_BITMAP_OFF, bit)
                    if not (old & bit):
                        claimed = (node, bit.bit_length() - 1)
                        break
                if claimed is not None:
                    break
                node = yield (_load, node + next_off)
            yield from arena.rcu.read_unlock(ctx, idx)
            if claimed is not None:
                return claimed
            yield (ops.OP_SLEEP, randbelow(backoff))
            if backoff < 4096:
                backoff <<= 1

    def _new_chunk(self, ctx: ThreadCtx, arena: Arena):
        """Allocate a chunk from TBuddy, claim bin 2, and insert the
        chunk into the arena list under the collective mutex."""
        if ctx.fault is not None:
            # renege site: the chunk allocation fails after the bin-sem
            # batch promise — the failure arm below must renege it.
            act = yield ops.fault_point("ualloc.new_chunk", arena.index)
            chunk = _NULL if act is not None else (
                yield from self.tbuddy.alloc(ctx, self.cfg.chunk_order)
            )
        else:
            chunk = yield from self.tbuddy.alloc(ctx, self.cfg.chunk_order)
        if chunk == _NULL:
            yield from arena.bin_sem.renege(ctx, self.cfg.n_regular_bins - 1)
            return None
        yield ops.store(chunk + CH_ARENA_OFF, arena.index)
        yield ops.store(chunk + CH_MAGIC_OFF, CHUNK_MAGIC)
        yield ops.store(chunk + CH_BITMAP_OFF, self._fresh_bitmap | 0b100)
        if self.collective_chunks:
            # Converging threads acquire the list mutex once and insert
            # their chunks serially inside the shared critical section.
            mask = yield from arena.chunk_mutex.lock_warp(ctx)
            for lane in sorted(mask):
                if lane == ctx.lane:
                    yield from arena.chunks.insert_head(ctx, chunk)
                yield ops.warp_sync(mask)
            yield from arena.chunk_mutex.unlock_warp(ctx, mask)
        else:
            yield from arena.chunk_mutex.lock(ctx)
            yield from arena.chunks.insert_head(ctx, chunk)
            yield from arena.chunk_mutex.unlock(ctx)
        yield from arena.bin_sem.fulfill(ctx, self.cfg.n_regular_bins - 1)
        return (chunk, 2)

    def _unlink_if_empty(self, ctx: ThreadCtx, sc: SizeClass, bin_addr: int):
        """Remove an exhausted bin from its free-list (revalidated under
        the list lock: a racing free may have already replenished it)."""
        yield from sc.lock.lock(ctx)
        flags = yield ops.load(bin_addr + FLAGS_OFF)
        count = yield ops.load(bin_addr + COUNT_OFF)
        if flags == LINKED and count == 0:
            yield from sc.bins.remove(ctx, bin_addr)
            yield ops.store(bin_addr + FLAGS_OFF, UNLINKED)
        yield from sc.lock.unlock(ctx)

    def _link_if_needed(self, ctx: ThreadCtx, sc: SizeClass, bin_addr: int):
        """Re-insert a previously exhausted bin that has free blocks again."""
        yield from sc.lock.lock(ctx)
        flags = yield ops.load(bin_addr + FLAGS_OFF)
        count = yield ops.load(bin_addr + COUNT_OFF)
        if flags == UNLINKED and 0 < count < RETIRED:
            yield from sc.bins.insert_head(ctx, bin_addr)
            yield ops.store(bin_addr + FLAGS_OFF, LINKED)
        yield from sc.lock.unlock(ctx)

    # ------------------------------------------------------------------
    # free
    # ------------------------------------------------------------------
    def free(self, ctx: ThreadCtx, addr: int):
        """Release a block.  The owning arena is read from the chunk
        header — frees may come from any SM."""
        chunk = self.layout.chunk_of(self.pool_base, addr)
        magic = yield ops.load(chunk + CH_MAGIC_OFF)
        if magic != CHUNK_MAGIC:
            raise HeapCorruption(
                f"free({addr:#x}): containing chunk {chunk:#x} has bad magic"
            )
        bin_index, logical = self.layout.locate(chunk, addr)
        bin_addr = chunk + bin_index * self.cfg.bin_size
        bmagic = yield ops.load(bin_addr + MAGIC_OFF)
        if bmagic != BIN_MAGIC:
            raise HeapCorruption(
                f"free({addr:#x}): owning bin {bin_addr:#x} has bad magic"
            )
        size = yield ops.load(bin_addr + SIZE_OFF)
        index = self.layout.block_index(logical, size)
        oldc = yield from self.binops.release_block(ctx, bin_addr, index)
        arena_idx = yield ops.load(chunk + CH_ARENA_OFF)
        arena = self.arenas[arena_idx]
        sc = arena.size_class(size)
        if oldc == 0:
            yield from self._link_if_needed(ctx, sc, bin_addr)
        yield from sc.sem.post(ctx, 1)
        if oldc + 1 == sc.capacity:
            yield from self._try_retire_bin(ctx, arena, sc, bin_addr, chunk, bin_index)

    # ------------------------------------------------------------------
    # retirement (deferred reclamation)
    # ------------------------------------------------------------------
    def _try_retire_bin(self, ctx: ThreadCtx, arena: Arena, sc: SizeClass,
                        bin_addr: int, chunk: int, bin_index: int):
        """Opportunistically give a fully-free bin back to its chunk.

        Claims all of the bin's blocks from the class semaphore, marks
        the count RETIRED (making the blocks unclaimable), unlinks it,
        and defers the physical release past an RCU grace period so
        stale readers can still walk off the bin's list links.
        """
        got = yield from sc.sem.try_wait(ctx, sc.capacity)
        if not got:
            return
        old = yield ops.atomic_cas(bin_addr + COUNT_OFF, sc.capacity, RETIRED)
        if old != sc.capacity:
            yield from sc.sem.post(ctx, sc.capacity)
            return
        yield from sc.lock.lock(ctx)
        flags = yield ops.load(bin_addr + FLAGS_OFF)
        if flags == LINKED:
            yield from sc.bins.remove(ctx, bin_addr)
            yield ops.store(bin_addr + FLAGS_OFF, UNLINKED)
        yield from sc.lock.unlock(ctx)
        yield from arena.rcu.call(ctx, self._release_bin_cb, arena.index,
                                  chunk, bin_index)
        yield from arena.rcu.synchronize_conditional(ctx)

    def _release_bin_cb(self, ctx: ThreadCtx, arena_idx: int, chunk: int,
                        bin_index: int):
        """[RCU callback] Return a retired bin to its chunk's bitmap and,
        if the chunk is now empty, try to retire the chunk too."""
        arena = self.arenas[arena_idx]
        yield ops.atomic_and(chunk + CH_BITMAP_OFF, ~(1 << bin_index))
        yield from arena.bin_sem.post(ctx, 1)
        word = yield ops.load(chunk + CH_BITMAP_OFF)
        if word == self._fresh_bitmap:
            yield from self._try_retire_chunk(ctx, arena, chunk)

    def _try_retire_chunk(self, ctx: ThreadCtx, arena: Arena, chunk: int):
        """Opportunistically return an empty chunk to TBuddy (claims all
        of its bins, unlinks it, defers the TBuddy free past a grace
        period)."""
        got = yield from arena.bin_sem.try_wait(ctx, self.cfg.n_regular_bins)
        if not got:
            return
        old = yield ops.atomic_cas(
            chunk + CH_BITMAP_OFF, self._fresh_bitmap, _ALL_ONES
        )
        if old != self._fresh_bitmap:
            yield from arena.bin_sem.post(ctx, self.cfg.n_regular_bins)
            return
        # single-thread lock here: retirement may run inside an RCU
        # callback, where collective convergence would be inappropriate
        yield from arena.chunk_mutex.lock(ctx)
        yield from arena.chunks.remove(ctx, chunk)
        yield from arena.chunk_mutex.unlock(ctx)
        yield from arena.rcu.call(ctx, self._free_chunk_cb, chunk)

    def _free_chunk_cb(self, ctx: ThreadCtx, chunk: int):
        """[RCU callback] Physically return a retired chunk to TBuddy.

        The magic is cleared only here: until the grace period elapses
        the block is still a (retiring) chunk to host-side walkers."""
        yield ops.store(chunk + CH_MAGIC_OFF, 0)
        yield from self.tbuddy.free(ctx, chunk)

    # ------------------------------------------------------------------
    # host-side introspection
    # ------------------------------------------------------------------
    def host_check(self) -> None:
        """Quiescent semaphore-accounting invariants (§3.3 applied to
        §4.2's two-stage hierarchy); raises AssertionError on violation.

        * every bulk semaphore has ``E == R == 0`` — each batch promise
          was fulfilled or reneged — and ``C`` below the borrow guard;
        * per size class, ``C`` equals the total free-block count over
          the class's live (non-retired) bins;
        * per arena, the bin semaphore's ``C`` equals the number of free
          bin slots across the arena's listed chunks.

        Tolerates pending deferred reclamation: retired bins and
        unlinked retiring chunks are excluded from both sides of each
        ledger by construction.
        """
        from ..sync.bulk_semaphore import C_GUARD

        for arena in self.arenas:
            free_blocks = [0] * len(arena.classes)
            free_slots = 0
            for chunk in arena.chunks.host_items():
                magic = self.mem.load_word(chunk + CH_MAGIC_OFF)
                assert magic == CHUNK_MAGIC, (
                    f"arena {arena.index}: listed chunk {chunk:#x} has bad "
                    f"magic {magic:#x}"
                )
                bitmap = self.mem.load_word(chunk + CH_BITMAP_OFF)
                for b in range(2, self.cfg.bins_per_chunk):
                    if not bitmap & (1 << b):
                        free_slots += 1
                        continue
                    info = self.binops.host_summary(
                        self.mem, chunk + b * self.cfg.bin_size
                    )
                    if info["count"] >= RETIRED:
                        continue  # capacity already claimed by retirement
                    free_blocks[self.cfg.class_index(info["size"])] += info["count"]
            c, e, r = arena.bin_sem.counters
            assert e == 0 and r == 0, (
                f"arena {arena.index} bin_sem: E={e} R={r} at quiescence "
                "(a batch promise was neither fulfilled nor reneged)"
            )
            assert c < C_GUARD, f"arena {arena.index} bin_sem: C={c} borrowed"
            assert c == free_slots, (
                f"arena {arena.index} bin_sem: C={c} but {free_slots} free "
                "bin slots in listed chunks"
            )
            for sc, expect in zip(arena.classes, free_blocks):
                c, e, r = sc.sem.counters
                assert e == 0 and r == 0, (
                    f"arena {arena.index} class {sc.size}: E={e} R={r} at "
                    "quiescence (a batch promise was neither fulfilled nor "
                    "reneged)"
                )
                assert c < C_GUARD, (
                    f"arena {arena.index} class {sc.size}: C={c} borrowed"
                )
                assert c == expect, (
                    f"arena {arena.index} class {sc.size}: sem C={c} but "
                    f"{expect} free blocks in live bins"
                )

    def host_drain_reclamation(self) -> int:
        """Run all pending RCU callbacks host-side (quiescent only)."""
        n = 0
        for arena in self.arenas:
            # drain repeatedly: chunk retirement enqueues more callbacks
            while arena.rcu.pending_callbacks:
                n += arena.rcu.drain_host()
        return n

    def host_gc(self) -> int:
        """Complete all *opportunistic* reclamation host-side.

        Device-side bin/chunk retirement is best-effort: a retirement
        races with concurrent allocations and simply gives up when it
        loses, leaving fully-free bins linked and empty chunks live.
        At quiescence this sweep finishes the job deterministically by
        replaying the same retirement paths through the host driver.
        Returns the number of chunks returned to TBuddy.
        """
        from ..sim.hostrun import drive, host_ctx

        self.host_drain_reclamation()
        before = sum(len(a.chunks.host_items()) for a in self.arenas)
        ctx = host_ctx()
        for arena in self.arenas:
            for chunk in list(arena.chunks.host_items()):
                bitmap = self.mem.load_word(chunk + CH_BITMAP_OFF)
                for bin_index in range(2, self.cfg.bins_per_chunk):
                    if not bitmap & (1 << bin_index):
                        continue
                    bin_addr = chunk + bin_index * self.cfg.bin_size
                    info = self.binops.host_summary(self.mem, bin_addr)
                    if info["count"] == info["capacity"] and info["capacity"] > 0:
                        arena_obj = self.arenas[
                            self.mem.load_word(chunk + CH_ARENA_OFF)
                        ]
                        sc = arena_obj.size_class(info["size"])
                        drive(self.mem, self._try_retire_bin(
                            ctx, arena_obj, sc, bin_addr, chunk, bin_index
                        ))
                self.host_drain_reclamation()
            self.host_drain_reclamation()
        # chunk retirement may have been enqueued by the drains above
        for arena in self.arenas:
            while arena.rcu.pending_callbacks:
                arena.rcu.drain_host()
        after = sum(len(a.chunks.host_items()) for a in self.arenas)
        return before - after
