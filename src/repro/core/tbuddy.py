"""TBuddy — the coarse-grained tree buddy allocator (paper §4.1).

Free memory is tracked at page granularity by a static binary tree: the
node of height ``h`` over a ``2**h``-page block is AVAILABLE (the block
can be allocated), BUSY (neither it nor anything below can), or PARTIAL
(the block itself cannot, but its subtree holds at least one available
block).  Two-stage resource management supplies the accounting: one
bulk semaphore per order, batch size 2 (splitting a block of order
``n+1`` yields a batch of two order-``n`` blocks).

Allocation of order ``n``:

* ``wait(1, 2)`` on the order-``n`` semaphore returns 0 → an available
  node of height ``n`` exists; a scattered (per-thread-hashed) DFS from
  the root locates one and flips it AVAILABLE→BUSY.
* it returns -1 → the caller allocates order ``n+1`` (recursively),
  splits it (parent → PARTIAL, one child → AVAILABLE, the other kept),
  and fulfills the promised unit.

Free of order ``n`` first tries to merge: only a successful
``try_wait`` on the order-``n`` semaphore, followed by a successful
AVAILABLE→BUSY CAS on the buddy, allows the merge (paper: only the
failure to decrement the semaphore *guarantees* the merge cannot
proceed); then the freed block moves up one order.  Otherwise the node
is marked AVAILABLE and the semaphore signalled.

State transitions lock the node and its parent (hand-over-hand upward,
deeper node first — deadlock-free because acquisition order strictly
decreases in depth), so at most two nodes are ever locked per update.

Every allocation is aligned to its own size relative to the pool base —
with a chunk-aligned pool base this is what guarantees TBuddy results
are page aligned (and lets ``free`` route by alignment).
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import ops
from ..sim.device import ThreadCtx, rng_randbelow
from ..sim.errors import SimError
from ..sim.memory import DeviceMemory
from ..sync.bulk_semaphore import C_GUARD, BulkSemaphore

# node word layout
STATE_MASK = 0b011
LOCK_BIT = 0b100
ALLOC_BIT = 0b1000

#: Largest supported tree height.  A fully-split pool puts all
#: ``2**max_order`` order-0 blocks into one bulk semaphore, and the F&A
#: borrow-detection needs legitimate supply to stay strictly below
#: ``C_GUARD`` — at ``C == C_GUARD`` a real count is indistinguishable
#: from a transient claim borrow (and ``pack`` rejects the state).
MAX_ORDER = C_GUARD.bit_length() - 2  # 20 with the default C:22 field

BUSY = 0
AVAILABLE = 1
PARTIAL = 2

_NULL = DeviceMemory.NULL


class DoubleFree(SimError):
    """free() was called on an address not currently allocated."""


class InvalidFree(SimError):
    """free() was called on an address that is not a block base."""


class TBuddy:
    """Tree buddy allocator over ``2**max_order`` pages at ``base``.

    ``base`` must be aligned to ``page_size`` (callers that rely on the
    paper's alignment routing align it to the chunk size or better).
    """

    def __init__(
        self,
        mem: DeviceMemory,
        base: int,
        page_size: int,
        max_order: int,
        checked_sems: bool = True,
    ):
        if base % page_size:
            raise ValueError("pool base must be page aligned")
        if not (1 <= max_order <= MAX_ORDER):
            # At max_order 21 a fully-split pool holds C_GUARD order-0
            # blocks: pack() rejects C == C_GUARD and the F&A borrow
            # detection misreads the legitimate count as a borrow.
            raise ValueError(
                f"max_order must be in 1..{MAX_ORDER} "
                "(2**max_order must stay below the semaphore borrow guard)"
            )
        self.mem = mem
        self.base = base
        self.page_size = page_size
        self.max_order = max_order
        self.n_pages = 1 << max_order
        self.pool_size = self.n_pages * page_size
        # Node i for i in 1..2**(max_order+1)-1; index 0 unused.
        self.n_nodes = 1 << (max_order + 1)
        self.tree_addr = mem.host_alloc(8 * self.n_nodes)
        mem.fill_words(self.tree_addr, self.n_nodes, BUSY)
        mem.store_word(self._naddr(1), AVAILABLE)
        # The whole pool starts as one available block of the max order.
        self.sems: List[BulkSemaphore] = [
            BulkSemaphore(
                mem, initial=(1 if order == max_order else 0), checked=checked_sems
            )
            for order in range(max_order + 1)
        ]

    # ------------------------------------------------------------------
    # node arithmetic
    # ------------------------------------------------------------------
    def _naddr(self, node: int) -> int:
        return self.tree_addr + 8 * node

    def node_height(self, node: int) -> int:
        """Height (== block order) of a tree node."""
        return self.max_order - (node.bit_length() - 1)

    def node_addr(self, node: int) -> int:
        """Device address of the block a node covers."""
        depth = node.bit_length() - 1
        index_in_level = node - (1 << depth)
        pages = 1 << (self.max_order - depth)
        return self.base + index_in_level * pages * self.page_size

    def leaf_of(self, addr: int) -> int:
        """Leaf node covering a page-aligned address."""
        off = addr - self.base
        if off % self.page_size or not (0 <= off < self.pool_size):
            raise InvalidFree(f"address {addr:#x} is not a page in the pool")
        return (1 << self.max_order) + off // self.page_size

    # ------------------------------------------------------------------
    # node locking
    # ------------------------------------------------------------------
    def _lock(self, ctx: ThreadCtx, node: int):
        addr = self._naddr(node)
        backoff = 16
        load_op = (ops.OP_LOAD, addr)
        OP_CAS = ops.OP_CAS
        randbelow = rng_randbelow(ctx.rng)
        while True:
            word = yield load_op
            if not (word & LOCK_BIT):
                old = yield (OP_CAS, addr, word, word | LOCK_BIT)
                if old == word:
                    if ctx.fault is not None:
                        # stall site: hold the node lock for extra cycles
                        yield ops.fault_point("tbuddy.lock", node)
                    return old  # pre-lock word value
            yield (ops.OP_SLEEP, randbelow(backoff))
            if backoff < 1024:
                backoff <<= 1

    def _unlock(self, ctx: ThreadCtx, node: int):
        yield ops.atomic_and(self._naddr(node), ~LOCK_BIT)

    # ------------------------------------------------------------------
    # locked state transition with upward propagation
    # ------------------------------------------------------------------
    def _transition(self, ctx: ThreadCtx, node: int, new_word: int,
                    expect_state: Optional[int] = None):
        """Set ``node``'s word (state+flags) and repair ancestor states.

        Locks the node and its parent; propagates hand-over-hand upward
        while the parent's recomputed state changes.  Returns False
        (without changing anything) if ``expect_state`` is given and the
        node's state no longer matches.
        """
        pre = yield from self._lock(ctx, node)
        if expect_state is not None and (pre & STATE_MASK) != expect_state:
            yield from self._unlock(ctx, node)
            return False
        if node == 1:
            yield ops.store(self._naddr(node), new_word)  # store releases the lock
            return True
        parent = node >> 1
        yield from self._lock(ctx, parent)
        # Keep the node's lock bit set through the store: releasing it
        # early would let another thread lock the node and our later
        # unlock would clobber *their* lock.
        yield ops.store(self._naddr(node), new_word | LOCK_BIT)
        # Invariant while holding the parent lock: the sibling's state is
        # stable, because any sibling transition must also lock this
        # parent.
        cur = node
        while True:
            sib = cur ^ 1
            cw = yield ops.load(self._naddr(cur))
            sw = yield ops.load(self._naddr(sib))
            pw = yield ops.load(self._naddr(parent))
            both_busy = (cw & STATE_MASK) == BUSY and (sw & STATE_MASK) == BUSY
            desired = BUSY if both_busy else PARTIAL
            pstate = pw & STATE_MASK
            if pstate == AVAILABLE or pstate == desired:
                # An AVAILABLE parent is never repaired from below — it
                # is a free block whose subtree is all ours to describe.
                yield from self._unlock(ctx, cur)
                yield from self._unlock(ctx, parent)
                return True
            yield ops.store(
                self._naddr(parent), (pw & ~STATE_MASK & ~LOCK_BIT) | desired | LOCK_BIT
            )
            yield from self._unlock(ctx, cur)
            cur = parent
            if cur == 1:
                yield from self._unlock(ctx, cur)
                return True
            parent = cur >> 1
            yield from self._lock(ctx, parent)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc(self, ctx: ThreadCtx, order: int, retries: int = 3):
        """Allocate a block of ``order`` (``page_size * 2**order`` bytes).

        Returns the block's device address, or ``DeviceMemory.NULL`` when
        the pool cannot satisfy the request.

        ``retries`` re-runs the two-stage triage after a failed ascent:
        under a cold-start storm many threads race up the split chain
        and lose transiently while other threads' splits are still
        publishing supply at this order.  Recursive (ascent) calls use
        ``retries=0`` so the retry cost stays linear in tree height.
        """
        if order > self.max_order or order < 0:
            return _NULL
        attempt = 0
        while True:
            addr = yield from self._alloc_once(ctx, order)
            if addr != _NULL or attempt >= retries:
                return addr
            attempt += 1
            yield ops.sleep(ctx.rng.randrange(256 << attempt))

    def _alloc_once(self, ctx: ThreadCtx, order: int):
        if ctx.fault is not None:
            # null-alloc site: fail the allocation before triage touches
            # the semaphore, as if the pool could not satisfy the order.
            act = yield ops.fault_point("tbuddy.alloc", order)
            if act is not None:
                return _NULL
        r = yield from self.sems[order].wait(ctx, 1, 2)
        if r == 0:
            node = yield from self._take_available(ctx, order)
            return self.node_addr(node)
        # r == -1: we promised one order-`order` unit; split a bigger block.
        if ctx.fault is not None:
            # renege site: the ascent fails after the batch promise — the
            # failure arm below must renege the promised unit.
            act = yield ops.fault_point("tbuddy.split", order)
            if act is not None:
                yield from self.sems[order].renege(ctx, 1)
                return _NULL
        parent_addr = yield from self.alloc(ctx, order + 1, retries=0)
        if parent_addr == _NULL:
            yield from self.sems[order].renege(ctx, 1)
            return _NULL
        parent = self.leaf_of(parent_addr) >> (order + 1)
        keep = parent * 2 + (ctx.rng.random() < 0.5)
        give = keep ^ 1
        # The subtree is exclusively ours (just allocated): mark the kept
        # child as the allocation, demote the parent to PARTIAL, publish
        # the other child, then fulfil the semaphore promise.  The flag
        # must be OR'd in, not stored: a DFS that read the child's word
        # before our ancestor became BUSY may transiently hold its lock
        # bit (``_lock`` re-loads and CASes whatever word it finds), and
        # a plain store would clobber that lock.
        yield ops.atomic_or(self._naddr(keep), ALLOC_BIT)
        yield from self._transition(ctx, parent, PARTIAL)
        yield from self._transition(ctx, give, AVAILABLE)
        yield from self.sems[order].fulfill(ctx, 1)
        return self.node_addr(keep)

    def _take_available(self, ctx: ThreadCtx, order: int):
        """Locate and claim an AVAILABLE node of height ``order``.

        The semaphore accounting guarantees one exists (or will, once
        in-flight publishes land); the DFS scatters its child order by
        the per-thread RNG, ScatterAlloc-style, to avoid collisions.
        """
        target_depth = self.max_order - order
        backoff = 32
        while True:
            stack = [(1, 0)]
            while stack:
                node, depth = stack.pop()
                word = yield ops.load(self._naddr(node))
                state = word & STATE_MASK
                if depth == target_depth:
                    if state == AVAILABLE:
                        ok = yield from self._transition(
                            ctx, node, BUSY | ALLOC_BIT, expect_state=AVAILABLE
                        )
                        if ok:
                            return node
                    continue
                if state == PARTIAL:
                    l, r = (node * 2, depth + 1), (node * 2 + 1, depth + 1)
                    if ctx.rng.random() < 0.5:
                        stack.append(l)
                        stack.append(r)
                    else:
                        stack.append(r)
                        stack.append(l)
            yield ops.sleep(ctx.rng.randrange(backoff))
            if backoff < 2048:
                backoff <<= 1

    def alloc_bytes(self, ctx: ThreadCtx, nbytes: int):
        """Allocate the smallest power-of-two block of at least
        ``nbytes`` (minimum one page)."""
        pages = max(1, -(-nbytes // self.page_size))
        order = (pages - 1).bit_length()
        addr = yield from self.alloc(ctx, order)
        return addr

    # ------------------------------------------------------------------
    # free
    # ------------------------------------------------------------------
    def find_order(self, ctx: ThreadCtx, addr: int):
        """Recover the order of an allocated block from its address by
        walking up from the leaf to the node carrying the ALLOC flag."""
        node = self.leaf_of(addr)
        order = 0
        while True:
            word = yield ops.load(self._naddr(node))
            if (word & STATE_MASK) == BUSY and (word & ALLOC_BIT):
                return node, order
            if node <= 1 or (node & 1):
                raise DoubleFree(
                    f"address {addr:#x} is not the base of a live allocation"
                )
            node >>= 1
            order += 1

    def free(self, ctx: ThreadCtx, addr: int, order: Optional[int] = None):
        """Release a block previously returned by :meth:`alloc`.

        ``order`` is optional (the standard ``free`` interface does not
        supply it); when omitted it is recovered from the tree.
        """
        node, found = yield from self.find_order(ctx, addr)
        if order is not None and order != found:
            raise InvalidFree(
                f"free of {addr:#x} with order {order}, allocated order {found}"
            )
        order = found
        # Drop the ALLOC flag; the block is now a plain busy node we own.
        # AND, not store: a stale DFS may transiently hold the node's
        # lock bit, which a plain store would wipe.
        yield ops.atomic_and(self._naddr(node), ~ALLOC_BIT)
        while True:
            if order < self.max_order:
                got = yield from self.sems[order].try_wait(ctx, 1)
                if got:
                    buddy = node ^ 1
                    old = yield ops.atomic_cas(
                        self._naddr(buddy), AVAILABLE, BUSY
                    )
                    if old == AVAILABLE:
                        # Merged: both children are now plain BUSY; claim
                        # the parent as the block being freed.  A locked
                        # transition is required — the thread that made
                        # the buddy AVAILABLE may still hold the parent's
                        # lock mid-propagation, and a plain store would
                        # race its recompute.
                        node >>= 1
                        order += 1
                        yield from self._transition(ctx, node, BUSY)
                        continue
                    yield from self.sems[order].post(ctx, 1)
            yield from self._transition(ctx, node, AVAILABLE)
            yield from self.sems[order].post(ctx, 1)
            # Opportunistic merge sweep: two concurrent sibling frees can
            # both fail their primary merge (each ran try_wait before the
            # other's post landed), stranding an available pair.  If the
            # buddy looks available now, try to claim both units and merge.
            if order < self.max_order:
                bw = yield ops.load(self._naddr(node ^ 1))
                if (bw & (STATE_MASK | LOCK_BIT)) == AVAILABLE:
                    merged = yield from self._sweep_merge(ctx, node, order)
                    if merged:
                        node >>= 1
                        order += 1
                        yield from self._transition(ctx, node, BUSY)
                        continue
            return

    def _sweep_merge(self, ctx: ThreadCtx, node: int, order: int):
        """Try to merge the (available) pair ``node``/``node^1``.

        Claims two semaphore units, then both blocks; unwinds cleanly on
        any failure.  Returns True when the pair was merged (the caller
        then owns the parent as a block to free)."""
        got = yield from self.sems[order].try_wait(ctx, 2)
        if not got:
            return False
        old = yield ops.atomic_cas(self._naddr(node), AVAILABLE, BUSY)
        if old != AVAILABLE:
            # someone already took our block; give both units back
            yield from self.sems[order].post(ctx, 2)
            return False
        old = yield ops.atomic_cas(self._naddr(node ^ 1), AVAILABLE, BUSY)
        if old != AVAILABLE:
            yield from self._transition(ctx, node, AVAILABLE)
            yield from self.sems[order].post(ctx, 2)
            return False
        return True

    # ------------------------------------------------------------------
    # host-side introspection / invariants
    # ------------------------------------------------------------------
    def host_state(self, node: int) -> int:
        return self.mem.load_word(self._naddr(node)) & STATE_MASK

    def host_word(self, node: int) -> int:
        return self.mem.load_word(self._naddr(node))

    def host_free_bytes(self) -> int:
        """Total bytes in AVAILABLE blocks (quiescent only)."""
        total = 0
        for node in range(1, self.n_nodes):
            if self.host_state(node) == AVAILABLE:
                total += self.page_size << self.node_height(node)
        return total

    def host_allocated_blocks(self) -> list[tuple[int, int]]:
        """(address, order) of every live allocation (quiescent only)."""
        out = []
        for node in range(1, self.n_nodes):
            w = self.host_word(node)
            if (w & STATE_MASK) == BUSY and (w & ALLOC_BIT):
                out.append((self.node_addr(node), self.node_height(node)))
        return out

    def check_invariants(self, strict_siblings: bool = False) -> None:
        """Validate the quiescent tree; raises AssertionError on violation.

        * no node is locked;
        * the subtree under an AVAILABLE node is entirely BUSY without
          ALLOC flags;
        * a PARTIAL node has at least one available descendant;
        * per order, the semaphore's C equals the number of AVAILABLE
          nodes and E == R == 0.

        ``strict_siblings`` additionally asserts that siblings are never
        both AVAILABLE.  That property always holds for sequential
        histories; under concurrency the paper's opportunistic merge
        protocol can miss a merge (both sibling frees ran ``try_wait``
        before either ``post`` landed), so concurrent stress tests check
        the relaxed form.
        """
        avail_per_order = [0] * (self.max_order + 1)
        for node in range(1, self.n_nodes):
            w = self.host_word(node)
            assert not (w & LOCK_BIT), f"node {node} left locked"
            state = w & STATE_MASK
            h = self.node_height(node)
            if state == AVAILABLE:
                assert not (w & ALLOC_BIT), f"available node {node} has ALLOC"
                avail_per_order[h] += 1
                if strict_siblings and node > 1:
                    sw = self.host_word(node ^ 1) & STATE_MASK
                    assert sw != AVAILABLE, f"siblings {node},{node^1} both available"
                # subtree must be all plain BUSY
                frontier = [node * 2, node * 2 + 1] if h else []
                while frontier:
                    d = frontier.pop()
                    if d >= self.n_nodes:
                        continue
                    dw = self.host_word(d)
                    assert dw & STATE_MASK == BUSY and not (dw & ALLOC_BIT), (
                        f"descendant {d} of available {node} is {dw:#x}"
                    )
                    frontier.extend((d * 2, d * 2 + 1))
            elif state == PARTIAL:
                assert h > 0, f"leaf {node} marked PARTIAL"
                assert self._subtree_has_available(node), (
                    f"PARTIAL node {node} has no available descendant"
                )
        for order, sem in enumerate(self.sems):
            c, e, r = sem.counters
            assert e == 0 and r == 0, f"order {order}: E={e} R={r} at quiescence"
            assert c == avail_per_order[order], (
                f"order {order}: sem C={c} but {avail_per_order[order]} "
                "available nodes"
            )

    def _subtree_has_available(self, node: int) -> bool:
        frontier = [node * 2, node * 2 + 1]
        while frontier:
            d = frontier.pop()
            if d >= self.n_nodes:
                continue
            s = self.host_state(d)
            if s == AVAILABLE:
                return True
            if s == PARTIAL:
                frontier.extend((d * 2, d * 2 + 1))
        return False
