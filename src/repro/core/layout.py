"""Chunk/bin/tail address arithmetic (paper §4.2, Figure 3).

A chunk is ``bins_per_chunk`` bins.  Bin 0 starts with the 128-byte
chunk header; bin 1 starts with 128 reserved bytes.  The remaining
bodies of bins 0 and 1 are carved into 128-byte *tails*, one per regular
bin (bins 2..).  Tail ``t`` is logically appended to bin ``t + 2`` at
logical offset ``bin_size``, so a bin of blocks no larger than
``tail_size`` can allocate the full ``bin_size`` bytes despite losing
``bin_header_size`` to its header.

Because every physical block address is ``bin_header_size``-odd within
some 4 KB bin (main region starts at offset 128; tails live at offsets
128..4096-128 of the special bins), **no UAlloc block is ever page
aligned**, which is what lets ``free()`` route by alignment alone.

All functions here are pure address arithmetic — no device memory access
— and are exercised directly by property tests.
"""

from __future__ import annotations

from .config import AllocatorConfig


class BinLayout:
    """Precomputed layout helper bound to one :class:`AllocatorConfig`."""

    __slots__ = ("cfg", "tails_per_special", "_chunk_mask", "_bin_mask")

    def __init__(self, cfg: AllocatorConfig):
        self.cfg = cfg
        self.tails_per_special = (cfg.bin_size - cfg.bin_header_size) // cfg.tail_size
        self._chunk_mask = cfg.chunk_size - 1
        self._bin_mask = cfg.bin_size - 1

    # -- forward mapping -------------------------------------------------
    def bin_base(self, chunk_base: int, bin_index: int) -> int:
        """Physical address of bin ``bin_index`` within the chunk."""
        return chunk_base + bin_index * self.cfg.bin_size

    def tail_base(self, chunk_base: int, bin_index: int) -> int:
        """Physical address of the tail belonging to regular bin
        ``bin_index`` (>= 2)."""
        t = bin_index - 2
        cfg = self.cfg
        if t < self.tails_per_special:
            return chunk_base + cfg.bin_header_size + t * cfg.tail_size
        t -= self.tails_per_special
        return chunk_base + cfg.bin_size + cfg.bin_header_size + t * cfg.tail_size

    def block_addr(self, chunk_base: int, bin_index: int, size: int, k: int) -> int:
        """Physical address of block ``k`` of a bin holding ``size``-byte
        blocks.  Blocks whose logical offset reaches ``bin_size`` live in
        the bin's tail."""
        cfg = self.cfg
        logical = cfg.bin_header_size + k * size
        if logical + size <= cfg.bin_size:
            return self.bin_base(chunk_base, bin_index) + logical
        # tail block (only possible for size <= tail_size)
        return self.tail_base(chunk_base, bin_index) + (logical - cfg.bin_size)

    # -- reverse mapping ---------------------------------------------------
    def chunk_of(self, pool_base: int, addr: int) -> int:
        """Chunk base address containing ``addr`` (pool_base must be
        chunk-aligned, which the combined allocator guarantees)."""
        return pool_base + ((addr - pool_base) & ~self._chunk_mask)

    def locate(self, chunk_base: int, addr: int) -> tuple[int, int]:
        """Map a block address to ``(bin_index, logical_offset)``.

        ``logical_offset`` is the offset within the owning bin's logical
        space (``bin_header_size .. bin_size + tail_size``); combined
        with the bin's block size it yields the block index.
        Raises ValueError for addresses inside headers or reserved areas.
        """
        cfg = self.cfg
        off = addr - chunk_base
        if off < 0 or off >= cfg.chunk_size:
            raise ValueError(f"address {addr:#x} outside chunk {chunk_base:#x}")
        bin_index = off // cfg.bin_size
        local = off & self._bin_mask
        if bin_index >= 2:
            if local < cfg.bin_header_size:
                raise ValueError(f"address {addr:#x} points into a bin header")
            return bin_index, local
        # Inside a special bin: a tail block.
        if local < cfg.bin_header_size:
            raise ValueError(f"address {addr:#x} points into a chunk header")
        t = (local - cfg.bin_header_size) // cfg.tail_size
        if bin_index == 1:
            t += self.tails_per_special
        owner = t + 2
        if owner >= cfg.bins_per_chunk:
            raise ValueError(f"address {addr:#x} in unused tail space")
        offset_in_tail = (local - cfg.bin_header_size) % cfg.tail_size
        return owner, cfg.bin_size + offset_in_tail

    def block_index(self, logical_offset: int, size: int) -> int:
        """Block index from a logical offset (inverse of block_addr)."""
        k, rem = divmod(logical_offset - self.cfg.bin_header_size, size)
        if rem:
            raise ValueError(
                f"logical offset {logical_offset} not a {size}-byte block base"
            )
        return k
