"""Bin headers and their device-side operations (paper §4.2, Figure 3).

Every UAlloc bin starts with a 128-byte header:

====  ======  =====================================================
word  offset  contents
====  ======  =====================================================
0     0       block size (bytes) of this bin's size class
1     8       free block count (``RETIRED`` sentinel while retiring)
2     16      free-list ``next`` link (shared layout with DList)
3     24      free-list ``prev`` link
4     32      link flags: UNLINKED / LINKED (mutated under list lock)
5-12  40-96   occupancy bitmap, 512 bits (bit set = block unavailable)
13    104     capacity (blocks this bin actually holds)
14    112     owning chunk base address
15    120     magic (corruption tripwire)
====  ======  =====================================================

Bits at and beyond ``capacity`` are pre-set at init time so the bitmap
"allows allocating only the number of available blocks" (paper §4.2).

The chunk header occupies the same 128 bytes at the start of bin 0:

====  ======  =====================================================
0     0       bin-occupancy bitmap (bit set = bin in use; bits 0-1
              pre-set; all-ones = chunk retiring)
1     8       owning arena index
2     16      chunk-list ``next`` link
3     24      chunk-list ``prev`` link
4     32      magic
====  ======  =====================================================
"""

from __future__ import annotations

from ..sim import ops
from ..sim.device import ThreadCtx, rng_randbelow
from ..sim.errors import SimError
from ..sim.memory import DeviceMemory
from .config import AllocatorConfig

# bin header word offsets (bytes)
SIZE_OFF = 0
COUNT_OFF = 8
NEXT_OFF = 16
PREV_OFF = 24
FLAGS_OFF = 32
BITMAP_OFF = 40
BITMAP_WORDS = 8
CAPACITY_OFF = 104
CHUNK_OFF = 112
MAGIC_OFF = 120

# chunk header word offsets
CH_BITMAP_OFF = 0
CH_ARENA_OFF = 8
CH_MAGIC_OFF = 32

BIN_MAGIC = 0xB13B13B13B13B13B
CHUNK_MAGIC = 0xC04FC04FC04FC04F

#: free-count sentinel marking a bin being retired (blocks unclaimable)
RETIRED = 1 << 32

# link flag values
UNLINKED = 0
LINKED = 1

_ALL_ONES = (1 << 64) - 1


class HeapCorruption(SimError):
    """A header magic check failed — wild write or routing bug."""


class DoubleFree(SimError):
    """A block's bitmap bit was already clear when freed."""


class BinOps:
    """Device-side bin header operations for one configuration."""

    __slots__ = ("cfg",)

    def __init__(self, cfg: AllocatorConfig):
        self.cfg = cfg

    # ------------------------------------------------------------------
    # init
    # ------------------------------------------------------------------
    def init_bin(self, ctx: ThreadCtx, bin_addr: int, chunk_base: int, size: int,
                 preclaim: int = 1):
        """Initialize a freshly claimed bin for ``size``-byte blocks,
        with blocks ``0..preclaim-1`` pre-allocated to the caller (the
        warp-coalesced path pre-claims a whole group's blocks for free).
        Returns the capacity."""
        cap = self.cfg.bin_capacity(size)
        if not (1 <= preclaim <= cap):
            raise ValueError(f"preclaim {preclaim} outside 1..{cap}")
        yield ops.store(bin_addr + SIZE_OFF, size)
        yield ops.store(bin_addr + CAPACITY_OFF, cap)
        yield ops.store(bin_addr + CHUNK_OFF, chunk_base)
        yield ops.store(bin_addr + FLAGS_OFF, UNLINKED)
        yield ops.store(bin_addr + MAGIC_OFF, BIN_MAGIC)
        # bitmap: the caller's pre-claimed blocks plus every bit >= cap
        for w in range(BITMAP_WORDS):
            lo, hi = w * 64, w * 64 + 64
            word = 0
            if cap <= lo:
                word = _ALL_ONES
            elif cap < hi:
                word = (_ALL_ONES << (cap - lo)) & _ALL_ONES
            if preclaim > lo:
                word |= (1 << min(preclaim - lo, 64)) - 1
            yield ops.store(bin_addr + BITMAP_OFF + 8 * w, word)
        # publish the count last: a positive count is what makes the bin
        # usable to concurrent searchers.
        yield ops.store(bin_addr + COUNT_OFF, cap - preclaim)
        return cap

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def try_take(self, ctx: ThreadCtx, bin_addr: int):
        """Reserve and claim one block from the bin.

        Returns ``(block_index, took_last)`` or ``None`` when the bin has
        no free blocks (or is being retired).  The count is decremented
        *before* the bitmap search — two-stage management in miniature:
        a successful decrement guarantees a clear bit exists.

        The decrement is a guarded fetch-and-sub (undone on overdraw),
        not a CAS loop: hot bins serve thousands of concurrent claims
        and a CAS loop would collapse (see bulk_semaphore.py).
        """
        count_addr = bin_addr + COUNT_OFF
        count = yield (ops.OP_LOAD, count_addr)
        if count == 0 or count >= RETIRED:
            return None
        cap = yield (ops.OP_LOAD, bin_addr + CAPACITY_OFF)
        old = yield (ops.OP_ADD, count_addr, _ALL_ONES)  # atomic_sub(count, 1)
        if not (1 <= old <= cap):
            # empty, retired, or transiently overdrawn: undo and give up
            yield (ops.OP_ADD, count_addr, 1)
            return None
        idx = yield from self._claim_bit(ctx, bin_addr)
        return idx, old == 1

    def _claim_bit(self, ctx: ThreadCtx, bin_addr: int):
        """Find and set a clear bitmap bit; the caller holds a count
        reservation so one is guaranteed to turn up."""
        cap = yield ops.load(bin_addr + CAPACITY_OFF)
        nwords = (cap + 63) // 64
        randbelow = rng_randbelow(ctx.rng)
        start = randbelow(nwords)
        while True:
            for i in range(nwords):
                w = (start + i) % nwords
                waddr = bin_addr + BITMAP_OFF + 8 * w
                while True:
                    word = yield ops.load(waddr)
                    if word == _ALL_ONES:
                        break
                    free = (~word) & _ALL_ONES
                    # Scatter: claim a *random* clear bit, not the lowest
                    # — concurrent claimants racing for the same bit
                    # would serialize into retry waves (the collision
                    # problem ScatterAlloc's hashing solves, paper §2.2).
                    nfree = free.bit_count()
                    pick = randbelow(nfree)
                    for _ in range(pick):
                        free &= free - 1  # drop lowest set bit
                    bit = free & (-free)
                    old = yield ops.atomic_or(waddr, bit)
                    if not (old & bit):
                        return w * 64 + bit.bit_length() - 1
                    # lost the race for that bit; rescan this word
            yield ops.cpu_yield()

    def try_take_k(self, ctx: ThreadCtx, bin_addr: int, k: int):
        """Claim up to ``k`` blocks in bulk (warp-coalesced leader path).

        Reserves min(k, count) via one fetch-and-sub, then claims whole
        groups of bits with single atomic ORs — one memory operation can
        secure up to 64 blocks.  Returns a (possibly empty) list of
        block indices; ``took_last`` semantics are folded in by checking
        the post-decrement count against zero via the returned amount.
        Returns ``(indices, took_last)``.
        """
        count = yield ops.load(bin_addr + COUNT_OFF)
        if count == 0 or count >= RETIRED:
            return [], False
        cap = yield ops.load(bin_addr + CAPACITY_OFF)
        want = min(k, count, cap)
        old = yield ops.atomic_sub(bin_addr + COUNT_OFF, want)
        if not (want <= old <= cap):
            # raced with a drain or retirement: undo, maybe retry smaller
            yield ops.atomic_add(bin_addr + COUNT_OFF, want)
            return [], False
        took_last = old == want
        got: list = []
        nwords = (cap + 63) // 64
        start = ctx.rng.randrange(nwords)
        scan = 0
        while len(got) < want:
            w = (start + scan) % nwords
            waddr = bin_addr + BITMAP_OFF + 8 * w
            word = yield ops.load(waddr)
            free = (~word) & _ALL_ONES
            if free:
                # select up to the remaining need from this word's bits
                need = want - len(got)
                pick = free
                extra = pick.bit_count() - need
                while extra > 0:
                    pick &= pick - 1  # drop lowest surplus bits
                    extra -= 1
                old_word = yield ops.atomic_or(waddr, pick)
                newly = pick & ~old_word
                b = newly
                while b:
                    low = b & (-b)
                    got.append(w * 64 + low.bit_length() - 1)
                    b &= b - 1
                if newly != pick:
                    continue  # lost some bits to a racer; rescan word
            scan += 1
            if scan >= nwords:
                scan = 0
                yield ops.cpu_yield()
        return got, took_last

    # ------------------------------------------------------------------
    # free
    # ------------------------------------------------------------------
    def release_block(self, ctx: ThreadCtx, bin_addr: int, index: int):
        """Clear block ``index``'s bit and bump the count.

        Returns the pre-increment count.  Raises :class:`DoubleFree` if
        the bit was already clear.
        """
        cap = yield ops.load(bin_addr + CAPACITY_OFF)
        if index >= cap:
            raise HeapCorruption(
                f"block index {index} beyond capacity {cap} in bin {bin_addr:#x}"
            )
        waddr = bin_addr + BITMAP_OFF + 8 * (index // 64)
        bit = 1 << (index % 64)
        old = yield ops.atomic_and(waddr, ~bit)
        if not (old & bit):
            raise DoubleFree(
                f"block {index} of bin {bin_addr:#x} freed while already free"
            )
        oldc = yield ops.atomic_add(bin_addr + COUNT_OFF, 1)
        return oldc

    # ------------------------------------------------------------------
    # host-side introspection
    # ------------------------------------------------------------------
    def host_summary(self, mem: DeviceMemory, bin_addr: int) -> dict:
        """Decode a bin header for tests/stats."""
        magic = mem.load_word(bin_addr + MAGIC_OFF)
        if magic != BIN_MAGIC:
            raise HeapCorruption(f"bad bin magic at {bin_addr:#x}: {magic:#x}")
        cap = mem.load_word(bin_addr + CAPACITY_OFF)
        bits = 0
        for w in range(BITMAP_WORDS):
            word = mem.load_word(bin_addr + BITMAP_OFF + 8 * w)
            lo = w * 64
            for b in range(64):
                if lo + b >= cap:
                    break
                if word & (1 << b):
                    bits += 1
        return {
            "size": mem.load_word(bin_addr + SIZE_OFF),
            "capacity": cap,
            "count": mem.load_word(bin_addr + COUNT_OFF),
            "flags": mem.load_word(bin_addr + FLAGS_OFF),
            "used_blocks": bits,
            "chunk": mem.load_word(bin_addr + CHUNK_OFF),
        }
