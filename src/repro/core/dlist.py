"""Intrusive circular doubly-linked list in device memory.

Used for UAlloc's per-size bin free-lists and per-arena chunk lists.
Nodes are arbitrary device structures that reserve two link words at
fixed offsets (``next_off``/``prev_off``); the list head is a sentinel
with the same link layout, so the list is circular and needs no NULL
checks.

Writers must serialize externally (UAlloc holds the list's writer lock
or a collective mutex); readers may traverse concurrently under RCU —
unlinking only rewires neighbours, so a reader holding a pointer to an
unlinked node still reads valid memory until reclamation, which UAlloc
defers with an RCU grace period.
"""

from __future__ import annotations

from ..sim import ops
from ..sim.device import ThreadCtx
from ..sim.memory import DeviceMemory

#: default link-word offsets (bin header words 2 and 3)
NEXT_OFF = 16
PREV_OFF = 24


class DList:
    """A device-resident intrusive list with a host-allocated sentinel."""

    __slots__ = ("mem", "head", "next_off", "prev_off")

    def __init__(self, mem: DeviceMemory, next_off: int = NEXT_OFF, prev_off: int = PREV_OFF):
        self.mem = mem
        self.next_off = next_off
        self.prev_off = prev_off
        # The sentinel only needs valid link words; allocate enough to
        # cover both offsets.
        span = max(next_off, prev_off) + 8
        self.head = mem.host_alloc(span)
        mem.store_word(self.head + next_off, self.head)
        mem.store_word(self.head + prev_off, self.head)

    # -- device side (writers must hold the list's external lock) ---------
    def insert_head(self, ctx: ThreadCtx, node: int):
        """Link ``node`` right after the sentinel."""
        if ctx.trace is not None:
            # Hook fires *before* the link writes so verification layers
            # can lift any reclamation quarantine on a re-inserted node.
            ctx.trace.list_inserted(ctx, self, node)
        first = yield ops.load(self.head + self.next_off)
        yield ops.store(node + self.next_off, first)
        yield ops.store(node + self.prev_off, self.head)
        yield ops.store(first + self.prev_off, node)
        # Publish last: once head.next points at the node, readers can
        # reach it and its links are already consistent.
        yield ops.store(self.head + self.next_off, node)

    def insert_tail(self, ctx: ThreadCtx, node: int):
        """Link ``node`` right before the sentinel."""
        if ctx.trace is not None:
            ctx.trace.list_inserted(ctx, self, node)
        last = yield ops.load(self.head + self.prev_off)
        yield ops.store(node + self.next_off, self.head)
        yield ops.store(node + self.prev_off, last)
        yield ops.store(last + self.next_off, node)
        yield ops.store(self.head + self.prev_off, node)

    def remove(self, ctx: ThreadCtx, node: int):
        """Unlink ``node``; its own link words are left intact so
        concurrent readers parked on it can still walk off of it."""
        if ctx.trace is not None:
            ctx.trace.list_removed(ctx, self, node)
        nxt = yield ops.load(node + self.next_off)
        prv = yield ops.load(node + self.prev_off)
        yield ops.store(prv + self.next_off, nxt)
        yield ops.store(nxt + self.prev_off, prv)

    def first(self, ctx: ThreadCtx):
        """First node address, or the sentinel if empty."""
        node = yield ops.load(self.head + self.next_off)
        return node

    def next(self, ctx: ThreadCtx, node: int):
        """Successor of ``node`` (possibly the sentinel)."""
        node = yield ops.load(node + self.next_off)
        return node

    def is_end(self, node: int) -> bool:
        """True when a traversal cursor reached the sentinel."""
        return node == self.head

    # -- host side ---------------------------------------------------------
    def host_items(self, limit: int = 1_000_000) -> list[int]:
        """Host-side snapshot of node addresses (no kernel running)."""
        items = []
        node = self.mem.load_word(self.head + self.next_off)
        while node != self.head:
            items.append(node)
            if len(items) > limit:
                raise RuntimeError("list corrupt: no sentinel reached")
            node = self.mem.load_word(node + self.next_off)
        return items

    def host_check(self) -> None:
        """Validate next/prev symmetry; raises AssertionError on corruption."""
        node = self.mem.load_word(self.head + self.next_off)
        prev = self.head
        seen = 0
        while node != self.head:
            back = self.mem.load_word(node + self.prev_off)
            assert back == prev, (
                f"list corrupt at node {node:#x}: prev={back:#x} expected {prev:#x}"
            )
            prev = node
            node = self.mem.load_word(node + self.next_off)
            seen += 1
            assert seen < 1_000_000, "list corrupt: unbounded"
        assert self.mem.load_word(self.head + self.prev_off) == prev
