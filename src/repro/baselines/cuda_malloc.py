"""CUDA-toolkit-style baseline allocator.

The paper benchmarks against the closed-source device ``malloc`` of the
CUDA 9 toolkit.  Its observable behaviour — allocation rates in the
10^4–10^6 /s range, essentially flat in thread count — is that of a
serializing allocator; we model it as the textbook design such a
profile implies: a **first-fit boundary-tag free list behind one global
lock** (see DESIGN.md, substitutions).

Block layout (all sizes multiples of 16, including overhead)::

    [ header 8B: size | USED flag ]
    [ payload ... ]               <- returned pointer (header + 16)
    [ pad 8B of header area ]
    [ footer 8B: size ]           <- enables backward coalescing

Free blocks keep list links in their first two payload words, reusing
the intrusive :class:`~repro.core.dlist.DList` machinery.
"""

from __future__ import annotations

from ..core.dlist import DList
from ..sim import ops
from ..sim.device import ThreadCtx
from ..sim.errors import SimError
from ..sim.memory import DeviceMemory
from ..sync.spinlock import SpinLock

_NULL = DeviceMemory.NULL
USED = 1

HDR = 16          # bytes before the payload
FTR = 8           # footer bytes at the end of each block
MIN_BLOCK = 48    # smallest split remainder worth keeping


class BaselineHeapError(SimError):
    """Corruption detected in the baseline allocator's heap."""


class CudaLikeAllocator:
    """Global-lock first-fit allocator over ``[base, base+size)``."""

    def __init__(self, mem: DeviceMemory, base: int, size: int):
        if base % 16 or size % 16:
            raise ValueError("heap base and size must be 16-byte aligned")
        if size < MIN_BLOCK:
            raise ValueError("heap too small")
        self.mem = mem
        self.base = base
        self.size = size
        self.lock = SpinLock(mem)
        # free-list links live in payload words 0 and 1 => offsets 16/24
        # from the block header.
        self.freelist = DList(mem, next_off=HDR, prev_off=HDR + 8)
        # one block spanning the whole heap
        mem.store_word(base, size)
        mem.store_word(base + size - FTR, size)
        self._host_link_initial()

    def _host_link_initial(self) -> None:
        m = self.mem
        head = self.freelist.head
        m.store_word(head + HDR, self.base)
        m.store_word(head + HDR + 8, self.base)
        m.store_word(self.base + HDR, head)
        m.store_word(self.base + HDR + 8, head)

    # ------------------------------------------------------------------
    # device interface
    # ------------------------------------------------------------------
    def malloc(self, ctx: ThreadCtx, nbytes: int):
        """First-fit allocation; returns payload address or NULL."""
        if nbytes <= 0:
            return _NULL
        need = (nbytes + HDR + FTR + 15) & ~15
        if need < MIN_BLOCK:
            need = MIN_BLOCK
        yield from self.lock.lock(ctx)
        # Inlined DList walk: ``first``/``next`` are one load each, and
        # spinning up a generator + yield-from delegation per hop was
        # the dominant cost of this serial walk.  The op sequence is
        # identical to the method-based traversal.
        fl = self.freelist
        head = fl.head
        next_off = fl.next_off
        _load = ops.OP_LOAD
        node = yield (_load, head + next_off)
        while node != head:
            size = yield (_load, node)
            if size >= need:
                yield from self._take(ctx, node, size, need)
                yield from self.lock.unlock(ctx)
                return node + HDR
            node = yield (_load, node + next_off)
        yield from self.lock.unlock(ctx)
        return _NULL

    def _take(self, ctx: ThreadCtx, block: int, size: int, need: int):
        yield from self.freelist.remove(ctx, block)
        remainder = size - need
        if remainder >= MIN_BLOCK:
            rest = block + need
            yield ops.store(rest, remainder)
            yield ops.store(rest + remainder - FTR, remainder)
            yield from self.freelist.insert_head(ctx, rest)
            size = need
        yield ops.store(block, size | USED)
        yield ops.store(block + size - FTR, size)

    def free(self, ctx: ThreadCtx, addr: int):
        """Release a payload pointer; coalesces with both neighbours.

        Raises :class:`BaselineHeapError` for addresses outside the
        heap *before* touching any word: the header load below would
        otherwise read unrelated memory and — whenever the garbage word
        happened to have the USED bit set — rewrite it as a block
        header, silently corrupting whatever lived there.
        """
        if addr == _NULL:
            return
        block = addr - HDR
        if not (self.base <= block < self.base + self.size):
            raise BaselineHeapError(
                f"free({addr:#x}): address outside the heap "
                f"[{self.base + HDR:#x}, {self.base + self.size:#x})"
            )
        yield from self.lock.lock(ctx)
        hdr = yield ops.load(block)
        if not hdr & USED:
            yield from self.lock.unlock(ctx)
            raise BaselineHeapError(f"double free at {addr:#x}")
        size = hdr & ~USED
        # backward coalesce
        if block > self.base:
            prev_size = yield ops.load(block - FTR)
            prev = block - prev_size
            phdr = yield ops.load(prev)
            if not phdr & USED:
                yield from self.freelist.remove(ctx, prev)
                block = prev
                size += prev_size
        # forward coalesce
        nxt = block + size
        if nxt < self.base + self.size:
            nhdr = yield ops.load(nxt)
            if not nhdr & USED:
                yield from self.freelist.remove(ctx, nxt)
                size += nhdr & ~USED
        yield ops.store(block, size)
        yield ops.store(block + size - FTR, size)
        yield from self.freelist.insert_head(ctx, block)
        yield from self.lock.unlock(ctx)

    # ------------------------------------------------------------------
    # host-side introspection
    # ------------------------------------------------------------------
    def host_free_bytes(self) -> int:
        """Sum of free-block sizes (quiescent only)."""
        return sum(self.mem.load_word(b) for b in self.freelist.host_items())

    def host_used_bytes(self) -> int:
        """Bytes in used blocks, headers included (quiescent only)."""
        return sum(size for _, size, used in self.host_walk() if used)

    def host_check(self) -> None:
        """Validate the boundary-tag layout and the free/used split:
        every heap byte is in exactly one block, footers match headers
        (:meth:`host_walk` raises otherwise), and the free list accounts
        for exactly the non-USED bytes."""
        walk_free = sum(size for _, size, used in self.host_walk() if not used)
        list_free = self.host_free_bytes()
        if walk_free != list_free:
            raise BaselineHeapError(
                f"free list holds {list_free} bytes but the heap walk "
                f"finds {walk_free} free bytes"
            )

    def host_walk(self) -> list[tuple[int, int, bool]]:
        """(addr, size, used) for every block, validating the layout."""
        out = []
        block = self.base
        while block < self.base + self.size:
            hdr = self.mem.load_word(block)
            used = bool(hdr & USED)
            size = hdr & ~USED
            if size < MIN_BLOCK or block + size > self.base + self.size:
                raise BaselineHeapError(f"bad block at {block:#x}: size {size}")
            ftr = self.mem.load_word(block + size - FTR)
            if ftr != size:
                raise BaselineHeapError(
                    f"footer mismatch at {block:#x}: {ftr} != {size}"
                )
            out.append((block, size, used))
            block += size
        return out
