"""ScatterAlloc-style baseline [Steinberger et al. 2012] (paper §2.2).

The defining idea: scatter atomic operations across page bitmaps with a
hash so that concurrent threads rarely collide.  The pool is carved
into fixed-size pages at init; a page is lazily bound to one size class
and serves blocks out of a bitmap; allocation hashes the thread id to a
starting page and probes from there.

The paper borrows the scattering idea for TBuddy's tree traversal; this
module provides the design as a standalone comparator.

Simplifications vs the original: pages hold at most 64 blocks (one
bitmap word), no region hierarchy, large allocations are simply
rejected — the paper's own comparison treats ScatterAlloc as a
small-allocation allocator layered on the CUDA allocator for big
requests.
"""

from __future__ import annotations

from ..sim import ops
from ..sim.device import ThreadCtx
from ..sim.errors import SimError
from ..sim.memory import DeviceMemory

_NULL = DeviceMemory.NULL
_ALL_ONES = (1 << 64) - 1

# page metadata: two words per page
META_SIZE_OFF = 0   # block size this page serves (0 = unbound)
META_BITMAP_OFF = 8


class ScatterAllocError(SimError):
    """Invalid free or metadata corruption."""


class ScatterAlloc:
    """Hashed-bitmap page allocator over ``[base, base+size)``."""

    def __init__(self, mem: DeviceMemory, base: int, size: int,
                 page_size: int = 4096, min_alloc: int = 16,
                 max_probe: int = 32):
        if base % page_size or size % page_size:
            raise ValueError("pool must be page aligned")
        self.mem = mem
        self.base = base
        self.size = size
        self.page_size = page_size
        self.min_alloc = min_alloc
        self.max_probe = max_probe
        self.n_pages = size // page_size
        self.meta = mem.host_alloc(16 * self.n_pages)
        mem.fill_words(self.meta, 2 * self.n_pages, 0)

    # ------------------------------------------------------------------
    def _meta_addr(self, page: int) -> int:
        return self.meta + 16 * page

    def blocks_per_page(self, size: int) -> int:
        return min(64, self.page_size // size)

    def _round(self, nbytes: int) -> int:
        size = self.min_alloc
        while size < nbytes:
            size <<= 1
        return size

    # ------------------------------------------------------------------
    def malloc(self, ctx: ThreadCtx, nbytes: int):
        """Hashed-probe allocation; returns the address or NULL.

        NULL is returned for requests beyond a page or when
        ``max_probe`` hashed pages are all full (the design trades
        worst-case coverage for collision-freedom, which is exactly the
        fragmentation behaviour the paper contrasts with).
        """
        if nbytes <= 0:
            return _NULL
        size = self._round(nbytes)
        if size > self.page_size:
            return _NULL
        nblocks = self.blocks_per_page(size)
        full_mask = (1 << nblocks) - 1
        # multiplicative hash scatters threads over pages
        start = (ctx.tid * 0x9E3779B9 + ctx.rng.randrange(1 << 16)) % self.n_pages
        for j in range(self.max_probe):
            page = (start + j * j + j) % self.n_pages  # quadratic probe
            maddr = self._meta_addr(page)
            psize = yield ops.load(maddr + META_SIZE_OFF)
            if psize == 0:
                # try to bind the page to our size class
                old = yield ops.atomic_cas(maddr + META_SIZE_OFF, 0, size)
                psize = size if old == 0 else old
            if psize != size:
                continue
            # claim a random clear bit in the page's bitmap
            while True:
                word = yield ops.load(maddr + META_BITMAP_OFF)
                free = (~word) & full_mask
                if not free:
                    break
                pick = ctx.rng.randrange(free.bit_count())
                b = free
                for _ in range(pick):
                    b &= b - 1
                bit = b & (-b)
                old = yield ops.atomic_or(maddr + META_BITMAP_OFF, bit)
                if not (old & bit):
                    k = bit.bit_length() - 1
                    return self.base + page * self.page_size + k * size
        return _NULL

    def free(self, ctx: ThreadCtx, addr: int):
        """Clear the block's bit; raises for any invalid address.

        ``free(NULL)`` is a no-op (the shared backend contract) — it
        used to fall through the range check and raise, which made
        NULL-tolerant workloads backend-dependent.
        """
        if addr == _NULL:
            return
        off = addr - self.base
        if not (0 <= off < self.size):
            raise ScatterAllocError(f"free of {addr:#x} outside the pool")
        page = off // self.page_size
        maddr = self._meta_addr(page)
        size = yield ops.load(maddr + META_SIZE_OFF)
        if size == 0:
            raise ScatterAllocError(f"free of {addr:#x} in an unbound page")
        local = off % self.page_size
        if local % size:
            raise ScatterAllocError(f"{addr:#x} is not a block base")
        bit = 1 << (local // size)
        old = yield ops.atomic_and(maddr + META_BITMAP_OFF, ~bit)
        if not (old & bit):
            raise ScatterAllocError(f"double free of {addr:#x}")
        # Pages stay bound to their size class: unbinding on the last
        # free would race a concurrent claim in the same page (and the
        # original design likewise reuses pages within their class).
        # The cost is cross-class fragmentation — part of what the
        # paper's chunk/bin recycling improves on.

    # ------------------------------------------------------------------
    def host_used_blocks(self) -> int:
        """Total blocks currently allocated (quiescent only)."""
        used = 0
        for p in range(self.n_pages):
            used += self.mem.load_word(self._meta_addr(p) + META_BITMAP_OFF).bit_count()
        return used

    def host_used_bytes(self) -> int:
        """Bytes currently allocated: per-page bitmap population times
        the page's bound block size (quiescent only)."""
        used = 0
        for p in range(self.n_pages):
            maddr = self._meta_addr(p)
            size = self.mem.load_word(maddr + META_SIZE_OFF)
            if size:
                bits = self.mem.load_word(maddr + META_BITMAP_OFF)
                used += bits.bit_count() * size
        return used

    def host_bound_pages(self) -> int:
        """Pages currently bound to a size class (quiescent only)."""
        return sum(
            1 for p in range(self.n_pages)
            if self.mem.load_word(self._meta_addr(p) + META_SIZE_OFF)
        )
