"""Classical global-lock buddy allocator (ablation baseline for TBuddy).

The textbook design the paper starts from in §4.1: a table of per-order
free lists, every operation inside one global critical section.
Functionally equivalent to TBuddy (same sizes, same alignment, same
fragmentation behaviour) but with none of the paper's concurrency
machinery — benchmarking the two isolates the value of the tree +
bulk-semaphore design.

Free blocks carry their list links in their first two words.  A side
table of one word per page records, for each live block base, its order
(+1), enabling ``free`` without a size argument.
"""

from __future__ import annotations

from typing import List

from ..core.dlist import DList
from ..sim import ops
from ..sim.device import ThreadCtx
from ..sim.errors import SimError
from ..sim.memory import DeviceMemory
from ..sync.spinlock import SpinLock

_NULL = DeviceMemory.NULL


class LockBuddyError(SimError):
    """Invalid free or heap corruption in the lock buddy."""


class LockBuddy:
    """Buddy allocator over ``2**max_order`` pages, one global lock."""

    def __init__(self, mem: DeviceMemory, base: int, page_size: int, max_order: int):
        if base % page_size:
            raise ValueError("base must be page aligned")
        self.mem = mem
        self.base = base
        self.page_size = page_size
        self.max_order = max_order
        self.n_pages = 1 << max_order
        self.pool_size = self.n_pages * page_size
        self.lock = SpinLock(mem)
        # free lists keep links in the block body (offsets 0 and 8)
        self.freelists: List[DList] = [
            DList(mem, next_off=0, prev_off=8) for _ in range(max_order + 1)
        ]
        # page -> order+1 of the free/used block based there; 0 = not a base
        self.info_addr = mem.host_alloc(8 * self.n_pages)
        mem.fill_words(self.info_addr, self.n_pages, 0)
        # seed: one max-order free block
        mem.store_word(self._info(0), max_order + 1)
        lst = self.freelists[max_order]
        mem.store_word(lst.head + 0, base)   # abuse: host-side link
        mem.store_word(lst.head + 8, base)
        mem.store_word(base + 0, lst.head)
        mem.store_word(base + 8, lst.head)
        self.used_addr = mem.host_alloc(8 * self.n_pages)  # page -> used order+1
        mem.fill_words(self.used_addr, self.n_pages, 0)

    def _info(self, page: int) -> int:
        return self.info_addr + 8 * page

    def _used(self, page: int) -> int:
        return self.used_addr + 8 * page

    def _page(self, addr: int) -> int:
        off = addr - self.base
        if off % self.page_size or not (0 <= off < self.pool_size):
            raise LockBuddyError(f"{addr:#x} is not a pool page")
        return off // self.page_size

    # ------------------------------------------------------------------
    def alloc(self, ctx: ThreadCtx, order: int):
        """Allocate a block of ``order``; returns address or NULL."""
        if order < 0 or order > self.max_order:
            return _NULL
        yield from self.lock.lock(ctx)
        # find the smallest non-empty order >= requested
        have = -1
        for o in range(order, self.max_order + 1):
            node = yield from self.freelists[o].first(ctx)
            if not self.freelists[o].is_end(node):
                have = o
                break
        if have < 0:
            yield from self.lock.unlock(ctx)
            return _NULL
        addr = node
        yield from self.freelists[have].remove(ctx, addr)
        yield ops.store(self._info(self._page(addr)), 0)
        # split down to the requested order
        while have > order:
            have -= 1
            buddy = addr + (self.page_size << have)
            yield ops.store(self._info(self._page(buddy)), have + 1)
            yield from self.freelists[have].insert_head(ctx, buddy)
        yield ops.store(self._used(self._page(addr)), order + 1)
        yield from self.lock.unlock(ctx)
        return addr

    def alloc_bytes(self, ctx: ThreadCtx, nbytes: int):
        """Allocate the smallest power-of-two block >= ``nbytes``."""
        pages = max(1, -(-nbytes // self.page_size))
        addr = yield from self.alloc(ctx, (pages - 1).bit_length())
        return addr

    def free(self, ctx: ThreadCtx, addr: int):
        """Release a block; coalesces greedily with free buddies.

        ``free(NULL)`` is a no-op; a non-page or out-of-pool address
        raises :class:`LockBuddyError`.  Both are validated *before*
        taking the global lock — ``_page`` used to run inside the
        critical section, so one bad free poisoned the lock and
        deadlocked every other thread in the launch.
        """
        if addr == _NULL:
            return
        page = self._page(addr)
        yield from self.lock.lock(ctx)
        used = yield ops.load(self._used(page))
        if not used:
            yield from self.lock.unlock(ctx)
            raise LockBuddyError(f"free of unallocated {addr:#x}")
        order = used - 1
        yield ops.store(self._used(page), 0)
        off = addr - self.base
        while order < self.max_order:
            buddy_off = off ^ (self.page_size << order)
            buddy = self.base + buddy_off
            binfo = yield ops.load(self._info(self._page(buddy)))
            if binfo != order + 1:
                break
            yield from self.freelists[order].remove(ctx, buddy)
            yield ops.store(self._info(self._page(buddy)), 0)
            off = min(off, buddy_off)
            order += 1
        merged = self.base + off
        yield ops.store(self._info(self._page(merged)), order + 1)
        yield from self.freelists[order].insert_head(ctx, merged)
        yield from self.lock.unlock(ctx)

    # ------------------------------------------------------------------
    def host_free_bytes(self) -> int:
        """Total free bytes (quiescent only)."""
        total = 0
        for o, lst in enumerate(self.freelists):
            total += len(lst.host_items()) * (self.page_size << o)
        return total

    def host_used_bytes(self) -> int:
        """Total bytes in live blocks, from the used table (quiescent
        only)."""
        total = 0
        for page in range(self.n_pages):
            used = self.mem.load_word(self._used(page))
            if used:
                total += self.page_size << (used - 1)
        return total

    def host_check(self) -> None:
        """Used and free blocks must tile the pool exactly."""
        used = self.host_used_bytes()
        free = self.host_free_bytes()
        if used + free != self.pool_size:
            raise LockBuddyError(
                f"accounting leak: {used} used + {free} free "
                f"!= {self.pool_size} pool bytes"
            )
