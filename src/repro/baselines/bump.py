"""Vinkler-style bump-pointer baseline [Vinkler & Havran 2014].

A single atomically incremented offset: allocation is one ``atomicAdd``,
``free`` is a no-op.  The paper cites this as the register-cheap design
whose price is unbounded fragmentation — memory is only recovered by
:meth:`reset`.  Used as the throughput upper bound and the
fragmentation lower bound in ablation benches.
"""

from __future__ import annotations

from ..sim import ops
from ..sim.device import ThreadCtx
from ..sim.memory import DeviceMemory

_NULL = DeviceMemory.NULL


class BumpAllocator:
    """Atomic bump allocator over ``[base, base+size)``."""

    def __init__(self, mem: DeviceMemory, base: int, size: int, align: int = 16):
        if align <= 0 or align & (align - 1):
            raise ValueError("align must be a power of two")
        self.mem = mem
        self.base = base
        self.size = size
        self.align = align
        self.off_addr = mem.host_alloc(8)
        mem.store_word(self.off_addr, 0)

    def malloc(self, ctx: ThreadCtx, nbytes: int):
        """One atomic add; returns NULL once the pool is spent."""
        if nbytes <= 0:
            return _NULL
        need = (nbytes + self.align - 1) & ~(self.align - 1)
        old = yield ops.atomic_add(self.off_addr, need)
        if old + need > self.size:
            # Burned the tail of the pool; later frees cannot recover it
            # (the defining weakness of this design).
            return _NULL
        return self.base + old

    def free(self, ctx: ThreadCtx, addr: int):
        """Individual frees are no-ops."""
        if False:  # pragma: no cover - keeps this a generator
            yield

    def reset(self) -> None:
        """Host-side wholesale reset (the only reclamation available)."""
        self.mem.store_word(self.off_addr, 0)

    @property
    def used_bytes(self) -> int:
        """Bytes consumed so far (host-side)."""
        return min(self.mem.load_word(self.off_addr), self.size)
