"""Vinkler-style bump-pointer baseline [Vinkler & Havran 2014].

A single atomically incremented offset: allocation is one ``atomicAdd``,
``free`` is a no-op.  The paper cites this as the register-cheap design
whose price is unbounded fragmentation — memory is only recovered by
:meth:`reset`.  Used as the throughput upper bound and the
fragmentation lower bound in ablation benches.
"""

from __future__ import annotations

from ..sim import ops
from ..sim.device import ThreadCtx
from ..sim.errors import SimError
from ..sim.memory import DeviceMemory

_NULL = DeviceMemory.NULL


class BumpFreeError(SimError):
    """Free of an address the bump pool never contained."""


class BumpAllocator:
    """Atomic bump allocator over ``[base, base+size)``."""

    def __init__(self, mem: DeviceMemory, base: int, size: int, align: int = 16):
        if align <= 0 or align & (align - 1):
            raise ValueError("align must be a power of two")
        self.mem = mem
        self.base = base
        self.size = size
        self.align = align
        self.off_addr = mem.host_alloc(8)
        mem.store_word(self.off_addr, 0)
        #: in-pool frees absorbed as no-ops (host-side counter) — the
        #: backend contract's "documented no-op with a counter"
        self.n_noop_frees = 0

    def malloc(self, ctx: ThreadCtx, nbytes: int):
        """One atomic add; returns NULL once the pool is spent."""
        if nbytes <= 0:
            return _NULL
        need = (nbytes + self.align - 1) & ~(self.align - 1)
        old = yield ops.atomic_add(self.off_addr, need)
        if old + need > self.size:
            # Burned the tail of the pool; later frees cannot recover it
            # (the defining weakness of this design).
            return _NULL
        return self.base + old

    def free(self, ctx: ThreadCtx, addr: int):
        """In-pool frees are counted no-ops; out-of-pool frees raise.

        The design recovers nothing per-block (only :meth:`reset`
        reclaims), but a free of an address this pool never handed out
        is still a caller bug — silently ignoring it used to mask
        cross-allocator pointer mixups in comparison benches.
        ``free(NULL)`` is the universal no-op and is not counted.
        """
        if addr != _NULL:
            if not (self.base <= addr < self.base + self.size):
                raise BumpFreeError(
                    f"free({addr:#x}): address outside the bump pool "
                    f"[{self.base:#x}, {self.base + self.size:#x})"
                )
            self.n_noop_frees += 1
        if False:  # pragma: no cover - keeps this a generator
            yield

    def reset(self) -> None:
        """Host-side wholesale reset (the only reclamation available)."""
        self.mem.store_word(self.off_addr, 0)

    @property
    def used_bytes(self) -> int:
        """Bytes consumed so far (host-side)."""
        return min(self.mem.load_word(self.off_addr), self.size)
