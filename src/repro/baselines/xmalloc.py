"""XMalloc-style baseline [Huang et al. 2010] (paper §2.2).

The first GPU allocator: lock-free stacks of pre-defined-size bins,
refilled by carving superblocks off a coarse region.  Our rendition:

* per-size-class Treiber stacks of free blocks (push/pop via CAS on the
  stack head; the pop is the classic CAS loop, so this baseline
  *exhibits* the hot-word collapse the paper's two-stage design avoids
  — that contrast is the point of including it);
* an atomic bump region supplies superblocks; an empty stack refills by
  carving one superblock into blocks and pushing the spares;
* every block is preceded by an 8-byte size header so ``free`` needs no
  out-of-band metadata.

Freed memory returns to the class stack; superblocks are never returned
to the region (the original's coarse blocks were likewise long-lived).
"""

from __future__ import annotations

from typing import Dict, List

from ..sim import ops
from ..sim.device import ThreadCtx, rng_randbelow
from ..sim.errors import SimError
from ..sim.memory import DeviceMemory

_NULL = DeviceMemory.NULL
HDR = 8  # size header ahead of each block


class XMallocError(SimError):
    """Invalid free or corrupted stack."""


class XMalloc:
    """Lock-free bin-stack allocator over ``[base, base+size)``."""

    def __init__(self, mem: DeviceMemory, base: int, size: int,
                 min_alloc: int = 16, max_alloc: int = 4096,
                 superblock: int = 1 << 16):
        if base % 8 or size % 8:
            raise ValueError("pool must be 8-byte aligned")
        self.mem = mem
        self.base = base
        self.size = size
        self.min_alloc = min_alloc
        self.max_alloc = max_alloc
        self.superblock = superblock
        self.bump_addr = mem.host_alloc(8)
        mem.store_word(self.bump_addr, 0)
        # One stack head per size class.  The head word packs a
        # 24-bit version tag above the entry (block_addr + 1, 0 = empty)
        # — the classic ABA countermeasure for Treiber stacks (XMalloc's
        # queues are likewise tagged).
        self.classes: List[int] = []
        s = min_alloc
        while s <= max_alloc:
            self.classes.append(s)
            s <<= 1
        self.heads: Dict[int, int] = {}
        for s in self.classes:
            h = mem.host_alloc(8)
            mem.store_word(h, 0)
            self.heads[s] = h

    def _round(self, nbytes: int) -> int:
        s = self.min_alloc
        while s < nbytes:
            s <<= 1
        return s

    # ------------------------------------------------------------------
    # Treiber stack.  A free block's first *payload* word holds the next
    # pointer; the size header word stays intact for the block's whole
    # life.
    # ------------------------------------------------------------------
    _TAG_SHIFT = 40
    _ENTRY_MASK = (1 << 40) - 1
    _TAG_MASK = (1 << 24) - 1

    def _push(self, ctx: ThreadCtx, head: int, block: int):
        backoff = 8
        load_head = (ops.OP_LOAD, head)
        entry_mask = self._ENTRY_MASK
        tag_mask = self._TAG_MASK
        tag_shift = self._TAG_SHIFT
        randbelow = rng_randbelow(ctx.rng)
        while True:
            word = yield load_head
            top = word & entry_mask
            tag = (word >> tag_shift) & tag_mask
            yield ops.store(block + HDR, top)
            new = (((tag + 1) & tag_mask) << tag_shift) | (block + 1)
            old = yield (ops.OP_CAS, head, word, new)
            if old == word:
                return
            yield (ops.OP_SLEEP, randbelow(backoff))
            if backoff < 8192:
                backoff <<= 1

    def _pop(self, ctx: ThreadCtx, head: int):
        backoff = 8
        load_head = (ops.OP_LOAD, head)
        entry_mask = self._ENTRY_MASK
        tag_mask = self._TAG_MASK
        tag_shift = self._TAG_SHIFT
        randbelow = rng_randbelow(ctx.rng)
        while True:
            word = yield load_head
            top = word & entry_mask
            if top == 0:
                return _NULL
            tag = (word >> tag_shift) & tag_mask
            block = top - 1
            nxt = yield (ops.OP_LOAD, block + HDR)
            new = (((tag + 1) & tag_mask) << tag_shift) | (nxt & entry_mask)
            old = yield (ops.OP_CAS, head, word, new)
            if old == word:
                return block
            yield (ops.OP_SLEEP, randbelow(backoff))
            if backoff < 8192:
                backoff <<= 1

    # ------------------------------------------------------------------
    def malloc(self, ctx: ThreadCtx, nbytes: int):
        """Pop from the class stack, refilling from the bump region."""
        if nbytes <= 0 or nbytes > self.max_alloc:
            return _NULL
        size = self._round(nbytes)
        head = self.heads[size]
        retries = 0
        while True:
            block = yield from self._pop(ctx, head)
            if block != _NULL:
                return block + HDR
            refilled = yield from self._refill(ctx, size)
            if not refilled:
                # region exhausted — but a concurrent refiller's pushes
                # may still be landing; retry the pop a bounded number
                # of times before reporting OOM
                retries += 1
                if retries > 30:
                    return _NULL
                yield ops.sleep(ctx.rng.randrange(min(64 << retries, 32768)))

    def _refill(self, ctx: ThreadCtx, size: int):
        """Carve one superblock into `size`-class blocks and splice the
        whole chain onto the stack with a single CAS (bulk push)."""
        stride = HDR + size
        count = max(1, self.superblock // stride)
        need = count * stride
        old = yield ops.atomic_add(self.bump_addr, need)
        if old + need > self.size:
            # burned tail, like any bump design
            return False
        head = self.heads[size]
        blocks = [self.base + old + i * stride for i in range(count)]
        for i, block in enumerate(blocks):
            yield ops.store(block, size)  # size header
            if i + 1 < count:
                yield ops.store(block + HDR, blocks[i + 1] + 1)
        first, last = blocks[0], blocks[-1]
        backoff = 8
        while True:
            word = yield ops.load(head)
            top = word & self._ENTRY_MASK
            tag = (word >> self._TAG_SHIFT) & self._TAG_MASK
            yield ops.store(last + HDR, top)
            new = (((tag + 1) & self._TAG_MASK) << self._TAG_SHIFT) | (first + 1)
            got = yield ops.atomic_cas(head, word, new)
            if got == word:
                return True
            yield ops.sleep(ctx.rng.randrange(backoff))
            if backoff < 8192:
                backoff <<= 1

    def free(self, ctx: ThreadCtx, addr: int):
        """Push the block back onto its class stack."""
        if addr == _NULL:
            return
        block = addr - HDR
        if not (self.base <= block < self.base + self.size):
            raise XMallocError(f"free of {addr:#x} outside the pool")
        size = yield ops.load(block)
        if size not in self.heads:
            raise XMallocError(f"free of {addr:#x}: corrupt size header {size}")
        yield from self._push(ctx, self.heads[size], block)

    # ------------------------------------------------------------------
    def host_carved(self) -> Dict[int, int]:
        """Blocks carved from the region per size class (quiescent only).

        Walks the bump region by size headers — every block keeps its
        header for life, so the carved layout is fully recoverable.
        """
        carved = {s: 0 for s in self.classes}
        end = min(self.mem.load_word(self.bump_addr), self.size)
        off = 0
        while off < end:
            size = self.mem.load_word(self.base + off)
            if size == 0:
                # burned tail: a failed refill bumps the offset without
                # carving headers, so the region ends here
                break
            if size not in carved:
                raise XMallocError(
                    f"corrupt size header {size} at offset {off}"
                )
            carved[size] += 1
            off += HDR + size
        if off > end:
            raise XMallocError(
                f"region walk overran the bump offset ({off} > {end})"
            )
        return carved

    def host_used_bytes(self) -> int:
        """Bytes in live blocks: carved minus stacked, per class
        (quiescent only).  Headers are not counted — this is payload
        capacity handed to callers, matching what ``malloc`` returned."""
        carved = self.host_carved()
        return sum(
            (carved[s] - self.host_stack_depth(s)) * s for s in self.classes
        )

    def host_check(self) -> None:
        """Every stacked block must lie in the carved region and no
        class stack may hold more blocks than were ever carved."""
        carved = self.host_carved()
        for s in self.classes:
            depth = self.host_stack_depth(s)
            if depth > carved[s]:
                raise XMallocError(
                    f"class {s}: stack holds {depth} blocks but only "
                    f"{carved[s]} were carved"
                )

    def host_stack_depth(self, size: int) -> int:
        """Free blocks on one class stack (quiescent only)."""
        depth = 0
        top = self.mem.load_word(self.heads[size]) & self._ENTRY_MASK
        while top:
            depth += 1
            top = self.mem.load_word(top - 1 + HDR) & self._ENTRY_MASK
            if depth > 10_000_000:
                raise XMallocError("stack corrupt")
        return depth
