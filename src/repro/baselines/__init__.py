"""Baseline allocators the paper's contribution is measured against.

* :class:`CudaLikeAllocator` — stands in for the CUDA 9 device
  ``malloc`` (global-lock first-fit; the Figure 7 baseline).
* :class:`BumpAllocator` — Vinkler-style atomic bump pointer
  (throughput ceiling / fragmentation floor).
* :class:`LockBuddy` — textbook global-lock buddy system (ablation
  baseline isolating TBuddy's concurrency machinery).
* :class:`ScatterAlloc` — hashed-bitmap pages [Steinberger et al. 2012].
* :class:`XMalloc` — lock-free bin stacks over a bump region
  [Huang et al. 2010].
"""

from .bump import BumpAllocator, BumpFreeError
from .cuda_malloc import BaselineHeapError, CudaLikeAllocator
from .lock_buddy import LockBuddy, LockBuddyError
from .scatteralloc import ScatterAlloc, ScatterAllocError
from .xmalloc import XMalloc, XMallocError

__all__ = [
    "CudaLikeAllocator",
    "BaselineHeapError",
    "BumpAllocator",
    "BumpFreeError",
    "LockBuddy",
    "LockBuddyError",
    "ScatterAlloc",
    "ScatterAllocError",
    "XMalloc",
    "XMallocError",
]
