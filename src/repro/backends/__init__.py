"""Pluggable allocator backends (registry + conformance contract).

Every allocator design in the repo registers here under a stable name;
benches, the perf suite, and the verify/resil harnesses resolve
backends by name and drive the uniform :class:`BackendHandle` they
build.  See DESIGN.md §11.

>>> from repro import backends
>>> backends.names()
['ours', 'ours-coalesced', 'cuda', 'xmalloc', 'scatteralloc',
 'lock-buddy', 'bump', 'hostbased']
"""

from . import builders  # noqa: F401  -- registration side effects
from .hostbased import HostBasedAllocator, HostBasedError
from .registry import (
    Backend,
    BackendCaps,
    BackendHandle,
    UnknownBackend,
    build,
    get,
    names,
    register,
)

__all__ = [
    "Backend",
    "BackendCaps",
    "BackendHandle",
    "HostBasedAllocator",
    "HostBasedError",
    "UnknownBackend",
    "build",
    "get",
    "names",
    "register",
]
