"""The allocator-backend registry: one interface over every allocator.

Every allocator in the repo — the paper's combined allocator, the §2.2
related-work baselines, and new drop-ins like the host-based design —
registers here as a :class:`Backend`.  Consumers (the shootout and fig
benches, the perf suite, verify scenarios, resil decks, the conformance
suite) resolve backends *by name* and speak only to the
:class:`BackendHandle` a backend builds, so adding an allocator never
touches bench or harness code again.

The contract a handle promises (pinned by :mod:`repro.backends.conformance`):

* ``malloc(ctx, nbytes)`` is a kernel generator returning an address or
  ``DeviceMemory.NULL``; it never raises for sizes the backend cannot
  serve (invalid and oversized requests return NULL).
* ``free(ctx, addr)`` is a kernel generator; ``free(NULL)`` is a no-op;
  an address outside the pool either raises the backend's
  :class:`~repro.sim.errors.SimError` subclass or is a *documented*
  counted no-op (``caps.invalid_free == "counted-noop"``) — never
  silent corruption.
* returned addresses are ``caps.alignment``-aligned;
* the host audit hooks (``used_bytes``, ``host_check``,
  ``host_checkpoint``) are callable at quiescence and exact to the
  degree ``caps`` advertises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.config import AllocatorConfig
from ..sim.device import GPUDevice
from ..sim.memory import DeviceMemory


@dataclass(frozen=True)
class BackendCaps:
    """What a backend can and cannot do (drives the conformance deck)."""

    #: free actually recycles memory (the bump pointer's is a no-op)
    supports_free: bool = True
    #: the handle exposes a warp-coalescing malloc entry point
    supports_coalesced: bool = False
    #: largest request the backend serves (None = pool-bounded)
    max_alloc: Optional[int] = None
    #: guaranteed alignment of every returned address
    alignment: int = 8
    #: "raises" or "counted-noop" — behaviour for in-pool invalid frees.
    #: Out-of-pool frees always raise (silent corruption is banned).
    invalid_free: str = "raises"
    #: a second free of the same address is detected and raises
    detects_double_free: bool = True
    #: used_bytes() tracks live bytes exactly (bump's is a high-water mark)
    exact_used_bytes: bool = True
    #: the verify RaceChecker knows this allocator's internal protocols
    race_checkable: bool = False


class BackendHandle:
    """A built backend: kernel entry points plus host audit hooks.

    Ducks as the ``allocator`` argument every workload builder takes
    (``.malloc`` / ``.free`` attributes are the kernel generators).
    """

    def __init__(self, name: str, allocator: object, caps: BackendCaps,
                 malloc: Callable, free: Callable,
                 pool_base: int, pool_size: int,
                 malloc_coalesced: Optional[Callable] = None,
                 used_bytes: Optional[Callable[[], int]] = None,
                 host_check: Optional[Callable[[], None]] = None,
                 invalid_free_count: Optional[Callable[[], int]] = None,
                 checkpoint: Optional[Callable[[bool], None]] = None):
        self.name = name
        self.allocator = allocator
        self.caps = caps
        self.malloc = malloc
        self.free = free
        self.malloc_coalesced = malloc_coalesced
        self.pool_base = pool_base
        self.pool_size = pool_size
        self._used_bytes = used_bytes
        self._host_check = host_check
        self._invalid_free_count = invalid_free_count
        self._checkpoint = checkpoint

    # -- host-side audit hooks -----------------------------------------
    def used_bytes(self) -> int:
        """Bytes currently handed out (quiescent only; see
        ``caps.exact_used_bytes``).  Backends without an audit return -1,
        which the conformance suite treats as a contract violation."""
        return self._used_bytes() if self._used_bytes else -1

    def host_check(self) -> None:
        """Validate the backend's structural invariants (quiescent only)."""
        if self._host_check is not None:
            self._host_check()

    def invalid_free_count(self) -> int:
        """Invalid frees absorbed as counted no-ops (0 for backends that
        raise instead)."""
        return self._invalid_free_count() if self._invalid_free_count else 0

    def host_checkpoint(self, expect_leak_free: bool = False) -> None:
        """Quiescent checkpoint: structural invariants plus (optionally)
        leak accounting.  Backends with their own checkpoint (the paper
        allocator) run it; everyone else gets the generic
        ``host_check`` + ``used_bytes() == 0`` contract."""
        if self._checkpoint is not None:
            self._checkpoint(expect_leak_free)
            return
        self.host_check()
        if expect_leak_free and self.caps.supports_free:
            used = self.used_bytes()
            assert used == 0, (
                f"[{self.name}] leak: {used} bytes still handed out at a "
                "full-free checkpoint"
            )


@dataclass(frozen=True)
class Backend:
    """One registered allocator design."""

    #: registry key (lowercase, no spaces — CLI / spec friendly)
    name: str
    #: human label used in bench tables (kept for artifact stability)
    display: str
    description: str
    #: (mem, device, pool_bytes, cfg, checked) -> BackendHandle
    builder: Callable[..., BackendHandle]
    #: alternate lookup names (e.g. historic bench display labels)
    aliases: tuple = field(default=())

    def build(self, mem: DeviceMemory, device: GPUDevice, pool: int,
              cfg: Optional[AllocatorConfig] = None,
              checked: bool = True) -> BackendHandle:
        """Construct the allocator over a ``pool``-byte heap.

        ``cfg`` only matters to backends built on
        :class:`~repro.core.config.AllocatorConfig`; ``checked`` toggles
        their self-verification (benches turn it off).
        """
        return self.builder(mem, device, pool, cfg, checked)


_REGISTRY: Dict[str, Backend] = {}
_ALIASES: Dict[str, str] = {}


class UnknownBackend(KeyError):
    """Lookup of a name no backend registered."""


def register(backend: Backend) -> Backend:
    """Add a backend; duplicate names or aliases are programming errors."""
    name = backend.name.lower()
    keys = {name}
    keys.update(k.lower() for k in (backend.display, *backend.aliases))
    for key in keys:
        if key in _REGISTRY or key in _ALIASES:
            raise ValueError(f"backend name {key!r} already registered")
    _REGISTRY[name] = backend
    for alias in keys - {name}:
        _ALIASES[alias] = name
    return backend


def get(name: str) -> Backend:
    """Resolve a backend by registry name, display label, or alias."""
    norm = name.strip().lower()
    norm = _ALIASES.get(norm, norm)
    try:
        return _REGISTRY[norm]
    except KeyError:
        raise UnknownBackend(
            f"unknown backend {name!r}; registered: {', '.join(names())}"
        ) from None


def names() -> List[str]:
    """Registered backend names, in registration order."""
    return list(_REGISTRY)


def build(name: str, mem: DeviceMemory, device: GPUDevice, pool: int,
          cfg: Optional[AllocatorConfig] = None,
          checked: bool = True) -> BackendHandle:
    """``get(name).build(...)`` in one call."""
    return get(name).build(mem, device, pool, cfg=cfg, checked=checked)
