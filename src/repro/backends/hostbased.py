"""Host-based allocator backend (Bell et al., arXiv 2405.07079).

The design point the paper argues for: keep *all* allocator metadata on
the host and let the device request memory through a command channel.
The device never touches bookkeeping words, so there is no device-side
contention at all; the price is a host round-trip on every call, and a
single host thread serializing the requests.

Our rendition maps that onto the simulator naturally:

* metadata lives in host Python structures (an address-ordered free
  list plus a live table) — zero device-memory traffic for bookkeeping;
* a ``malloc``/``free`` pays a fixed travel latency
  (``yield ops.sleep(...)``) and then queues at the host's command
  channel — modeled as a device-resident mutex held for the host's
  per-request service time.  The mutex word is a simulation stand-in
  for the queue (in hardware it lives host-side), but it charges the
  requester exactly what the real bottleneck costs: requests are
  serviced one at a time, so throughput caps at
  ``1 / service_cycles`` regardless of how many threads call in.
  That single-server ceiling is the trade the paper's host-based
  family makes for contention-free device code;
* because the host sees every allocation, invalid and double frees are
  detected *exactly* (one of the paper's selling points over
  device-side designs, where a bad free silently corrupts shared
  metadata).

Allocation policy is address-ordered first fit with eager coalescing on
free — the allocator of the paper's host-based baseline family, not a
buddy system, so external fragmentation behaviour differs measurably
from TBuddy (the comparison the backend registry exists to make).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, List, Tuple

from ..sim import ops
from ..sim.device import ThreadCtx
from ..sim.errors import SimError
from ..sim.memory import DeviceMemory
from ..sync.spinlock import SpinLock

_NULL = DeviceMemory.NULL

#: simulated cycles for one device->host->device request round trip.
#: PCIe-ish: far above an L2 atomic (a few cycles in the cost model),
#: far below a kernel launch.
REQUEST_CYCLES = 900

#: releases are fire-and-forget (the device does not need the result),
#: so they pay a shorter, one-way cost.
RELEASE_CYCLES = 300

#: cycles the single host thread spends servicing one request — the
#: serialized part.  Every request holds the command-queue mutex this
#: long, so aggregate throughput tops out at one request per
#: SERVICE_CYCLES however wide the launch is.
SERVICE_CYCLES = 200


class HostBasedError(SimError):
    """Invalid or double free detected by the host-side bookkeeping."""


class HostBasedAllocator:
    """Host-bookkept first-fit allocator over ``[base, base+size)``."""

    def __init__(self, mem: DeviceMemory, base: int, size: int,
                 align: int = 16,
                 request_cycles: int = REQUEST_CYCLES,
                 release_cycles: int = RELEASE_CYCLES,
                 service_cycles: int = SERVICE_CYCLES):
        if align <= 0 or align & (align - 1):
            raise ValueError("align must be a power of two")
        if base % align or size % align:
            raise ValueError("pool must be aligned to the block alignment")
        self.mem = mem        # kept only so the pool region is reserved
        self.base = base
        self.size = size
        self.align = align
        self.request_cycles = request_cycles
        self.release_cycles = release_cycles
        self.service_cycles = service_cycles
        #: the host command queue: one request serviced at a time
        self.queue = SpinLock(mem)
        #: address-ordered, coalesced free ranges as (offset, nbytes)
        self._free: List[Tuple[int, int]] = [(0, size)]
        #: live blocks: offset -> nbytes (host-exact accounting)
        self._live: Dict[int, int] = {}
        # host-side counters (no device words involved)
        self.n_malloc = 0
        self.n_malloc_failed = 0
        self.n_free = 0
        self.n_free_null = 0

    # ------------------------------------------------------------------
    # device-side interface (generators over simulator ops)
    # ------------------------------------------------------------------
    def malloc(self, ctx: ThreadCtx, nbytes: int):
        """Round-trip to the host; first-fit; returns address or NULL."""
        if nbytes <= 0:
            self.n_malloc += 1
            self.n_malloc_failed += 1
            return _NULL
        yield ops.sleep(self.request_cycles)
        # Queue at the host thread; the state mutation itself is atomic
        # at the moment the service completes.
        yield from self.queue.lock(ctx)
        yield ops.sleep(self.service_cycles)
        need = (nbytes + self.align - 1) & ~(self.align - 1)
        self.n_malloc += 1
        result = _NULL
        for i, (off, sz) in enumerate(self._free):
            if sz >= need:
                if sz == need:
                    del self._free[i]
                else:
                    self._free[i] = (off + need, sz - need)
                self._live[off] = need
                result = self.base + off
                break
        else:
            self.n_malloc_failed += 1
        yield from self.queue.unlock(ctx)
        return result

    def free(self, ctx: ThreadCtx, addr: int):
        """Release a block; the host validates the address exactly."""
        if addr == _NULL:
            self.n_free += 1
            self.n_free_null += 1
            return
        off = addr - self.base
        if not (0 <= off < self.size):
            raise HostBasedError(
                f"free({addr:#x}): address outside the pool "
                f"[{self.base:#x}, {self.base + self.size:#x})"
            )
        yield ops.sleep(self.release_cycles)
        yield from self.queue.lock(ctx)
        yield ops.sleep(self.service_cycles)
        need = self._live.pop(off, None)
        if need is not None:
            self.n_free += 1
            self._insert_free(off, need)
        # Unlock before raising: the host thread survives a bad request,
        # so the queue must not be left poisoned by one.
        yield from self.queue.unlock(ctx)
        if need is None:
            raise HostBasedError(
                f"free({addr:#x}): not a live block (double or invalid free)"
            )

    def _insert_free(self, off: int, nbytes: int) -> None:
        """Insert a range into the free list, coalescing both ways."""
        i = bisect_left(self._free, (off, 0))
        # merge with the successor
        if i < len(self._free) and off + nbytes == self._free[i][0]:
            nbytes += self._free[i][1]
            del self._free[i]
        # merge with the predecessor
        if i > 0:
            poff, psz = self._free[i - 1]
            if poff + psz == off:
                self._free[i - 1] = (poff, psz + nbytes)
                return
        insort(self._free, (off, nbytes))

    # ------------------------------------------------------------------
    # host-side introspection (exact by construction)
    # ------------------------------------------------------------------
    def host_used_bytes(self) -> int:
        """Bytes currently handed out (exact, any time)."""
        return sum(self._live.values())

    def host_free_bytes(self) -> int:
        """Bytes of free supply (exact, any time)."""
        return sum(sz for _, sz in self._free)

    def host_check(self) -> None:
        """Validate the host structures: sorted, disjoint, coalesced free
        ranges; live blocks disjoint from them; everything sums to the
        pool."""
        prev_end = -1
        for off, sz in self._free:
            if sz <= 0 or off < 0 or off + sz > self.size:
                raise HostBasedError(f"free range ({off}, {sz}) out of pool")
            if off < prev_end:
                raise HostBasedError("free ranges overlap or are unsorted")
            if off == prev_end:
                raise HostBasedError("adjacent free ranges left uncoalesced")
            prev_end = off + sz
        for off, sz in self._live.items():
            if off < 0 or off + sz > self.size:
                raise HostBasedError(f"live block ({off}, {sz}) out of pool")
        total = self.host_used_bytes() + self.host_free_bytes()
        if total != self.size:
            raise HostBasedError(
                f"accounting leak: live + free = {total} != pool {self.size}"
            )
