"""The backend conformance deck: one contract, every allocator.

Each check builds a **fresh** backend through the registry and drives it
with small deterministic kernels, then audits the quiescent state
through the handle's host hooks.  Checks gate themselves on
:class:`~repro.backends.registry.BackendCaps` — a capability a backend
does not claim is recorded as a *skip*, never silently passed.

The same deck backs three consumers:

* ``tests/backends/`` parameterizes pytest over
  ``product(names(), CHECKS)``;
* ``python -m repro backends conform`` runs it from the CLI (and CI);
* the mutation tests assert the deck *fails* when an allocator is
  deliberately broken (the suite has teeth, not just green lights).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..sim import DeviceMemory, GPUDevice, Scheduler
from ..sim.errors import SimError
from . import builders  # noqa: F401  -- populates the registry
from .registry import BackendHandle, get, names

_NULL = DeviceMemory.NULL

#: sizes every backend must serve (all within every ``caps.max_alloc``)
DECK_SIZES = (16, 64, 256, 1024)


class ConformanceError(AssertionError):
    """A backend broke the contract its caps advertise."""


@dataclass
class CheckOutcome:
    """Result of one (backend, check) cell of the deck."""

    backend: str
    check: str
    status: str  # "pass" | "fail" | "skip"
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status != "fail"


class Rig:
    """A fresh backend instance plus a one-call kernel launcher."""

    def __init__(self, backend: str, pool: int = 1 << 20, seed: int = 7,
                 checked: bool = True):
        self.mem = DeviceMemory(pool * 4 + (8 << 20))
        self.device = GPUDevice(num_sms=2)
        self.pool = pool
        self.seed = seed
        self.handle: BackendHandle = get(backend).build(
            self.mem, self.device, pool, checked=checked
        )

    def launch(self, kernel, nthreads: int = 1):
        sched = Scheduler(self.mem, self.device, seed=self.seed)
        sched.launch(kernel, -(-nthreads // 256), min(256, nthreads))
        return sched.run()


def _expect_simerror(rig: Rig, kernel, what: str) -> None:
    """The launch must die with the backend's SimError subclass."""
    try:
        rig.launch(kernel)
    except SimError:
        return
    raise ConformanceError(f"{what} was accepted silently (expected a "
                           "SimError subclass)")


# ----------------------------------------------------------------------
# the checks
# ----------------------------------------------------------------------
def check_roundtrip(backend: str) -> Optional[str]:
    """Alloc/free round trips: in-pool, aligned, leak-free at the end."""
    rig = Rig(backend)
    h = rig.handle
    sizes = [s for s in DECK_SIZES
             if h.caps.max_alloc is None or s <= h.caps.max_alloc]
    results: List[Tuple[int, int]] = []

    def kernel(ctx):
        got = []
        for s in sizes:
            p = yield from h.malloc(ctx, s)
            got.append((s, p))
        for _, p in got:
            yield from h.free(ctx, p)  # free(NULL) must be absorbed
        results.extend(got)

    rig.launch(kernel, nthreads=32)
    if not any(p != _NULL for _, p in results):
        raise ConformanceError("every allocation failed on an empty pool")
    for s, p in results:
        if p == _NULL:
            continue
        if not (h.pool_base <= p < h.pool_base + h.pool_size):
            raise ConformanceError(
                f"malloc({s}) returned {p:#x}, outside the pool "
                f"[{h.pool_base:#x}, {h.pool_base + h.pool_size:#x})"
            )
        if p % h.caps.alignment:
            raise ConformanceError(
                f"malloc({s}) returned {p:#x}, not "
                f"{h.caps.alignment}-byte aligned as caps promise"
            )
    audit = h.used_bytes()
    if audit < 0:
        raise ConformanceError("backend provides no used_bytes audit")
    try:
        h.host_checkpoint(expect_leak_free=h.caps.supports_free)
    except (AssertionError, SimError) as exc:
        raise ConformanceError(
            f"post-quiescence checkpoint failed: {exc}"
        ) from exc
    return None


def check_free_null(backend: str) -> Optional[str]:
    """free(NULL) is a universal, uncounted no-op."""
    rig = Rig(backend)
    h = rig.handle

    def kernel(ctx):
        yield from h.free(ctx, _NULL)

    rig.launch(kernel, nthreads=4)
    count = h.invalid_free_count()
    if count:
        raise ConformanceError(
            f"free(NULL) was counted as {count} invalid frees"
        )
    return None


def check_oversize(backend: str) -> Optional[str]:
    """Requests beyond caps.max_alloc return NULL — never raise."""
    rig = Rig(backend)
    h = rig.handle
    if h.caps.max_alloc is None:
        return "no max_alloc: pool-bounded backend"
    results: List[int] = []

    def kernel(ctx):
        p = yield from h.malloc(ctx, h.caps.max_alloc + 8)
        results.append(p)

    rig.launch(kernel)
    if results != [_NULL]:
        raise ConformanceError(
            f"malloc(max_alloc + 8) returned {results}, expected NULL"
        )
    return None


def check_invalid_free_out_of_pool(backend: str) -> Optional[str]:
    """A free outside the pool always raises — silent corruption and
    unconditional no-ops are both banned, whatever caps.invalid_free
    says about *in-pool* garbage."""
    rig = Rig(backend)
    h = rig.handle
    for probe in (h.pool_base - 64, h.pool_base + h.pool_size + 64):
        def kernel(ctx, probe=probe):
            yield from h.free(ctx, probe)

        _expect_simerror(rig, kernel, f"free of out-of-pool {probe:#x}")
    return None


def check_invalid_free_in_pool(backend: str) -> Optional[str]:
    """An in-pool address that was never allocated either raises or is
    a counted no-op, per caps.invalid_free."""
    rig = Rig(backend)
    h = rig.handle
    probe = h.pool_base  # aligned for every backend, never handed out

    def kernel(ctx):
        yield from h.free(ctx, probe)

    if h.caps.invalid_free == "raises":
        _expect_simerror(rig, kernel, f"free of unallocated {probe:#x}")
        return None
    rig.launch(kernel)
    if h.invalid_free_count() != 1:
        raise ConformanceError(
            "caps say invalid frees are counted no-ops, but the counter "
            f"reads {h.invalid_free_count()} after one invalid free"
        )
    return None


def check_double_free(backend: str) -> Optional[str]:
    """Freeing the same block twice raises (when caps claim detection)."""
    rig = Rig(backend)
    h = rig.handle
    if not h.caps.detects_double_free:
        return "caps: double frees undetectable by design"

    def kernel(ctx):
        p = yield from h.malloc(ctx, 64)
        assert p != _NULL, "empty-pool malloc(64) failed"
        yield from h.free(ctx, p)
        yield from h.free(ctx, p)

    _expect_simerror(rig, kernel, "double free")
    return None


def check_exhaustion(backend: str) -> Optional[str]:
    """Exhausting the pool yields NULL, not an exception, and the
    allocator stays auditable afterwards."""
    pool = 1 << 18
    rig = Rig(backend, pool=pool)
    h = rig.handle
    nulls: List[int] = []

    def kernel(ctx):
        p = yield from h.malloc(ctx, 4096)
        if p == _NULL:
            nulls.append(ctx.tid)

    # 128 threads x 4 KB = 2x the pool: the second half must fail.
    rig.launch(kernel, nthreads=128)
    if not nulls:
        raise ConformanceError(
            "128 x 4 KB against a 256 KB pool produced no NULLs"
        )
    try:
        h.host_check()
    except SimError as exc:
        raise ConformanceError(
            f"host_check failed after exhaustion: {exc}"
        ) from exc
    return None


#: the deck: (check name, callable(backend) -> skip reason | None)
CHECKS: List[Tuple[str, Callable[[str], Optional[str]]]] = [
    ("roundtrip", check_roundtrip),
    ("free-null", check_free_null),
    ("oversize", check_oversize),
    ("invalid-free-out-of-pool", check_invalid_free_out_of_pool),
    ("invalid-free-in-pool", check_invalid_free_in_pool),
    ("double-free", check_double_free),
    ("exhaustion", check_exhaustion),
]


def run_check(backend: str, check: str) -> CheckOutcome:
    """Run one cell of the deck."""
    fn = dict(CHECKS)[check]
    try:
        skip = fn(backend)
    except ConformanceError as exc:
        return CheckOutcome(backend, check, "fail", str(exc))
    if skip is not None:
        return CheckOutcome(backend, check, "skip", skip)
    return CheckOutcome(backend, check, "pass")


def run_backend(backend: str) -> List[CheckOutcome]:
    """Run the full deck against one backend."""
    return [run_check(backend, name) for name, _ in CHECKS]


def run_all(which: Optional[List[str]] = None) -> List[CheckOutcome]:
    """Run the full deck against every (or the named) backends."""
    return [out for b in (which or names()) for out in run_backend(b)]
