"""Registrations for every allocator the repo implements.

The builders reproduce the exact construction sequences the benches
used before the registry existed (same ``host_alloc`` order and
alignment, same constructor arguments), so resolving a backend by name
yields byte-identical op and RNG streams — the perf trajectory's
``virtual:*`` metrics must not move when a bench is rewired through the
registry.
"""

from __future__ import annotations

from typing import Optional

from ..baselines import (
    BumpAllocator,
    CudaLikeAllocator,
    LockBuddy,
    ScatterAlloc,
    XMalloc,
)
from ..core.allocator import ThroughputAllocator
from ..core.config import AllocatorConfig
from ..sim.device import GPUDevice
from ..sim.memory import DeviceMemory
from .hostbased import HostBasedAllocator
from .registry import Backend, BackendCaps, BackendHandle, register


def _ours_cfg(pool: int, cfg: Optional[AllocatorConfig]) -> AllocatorConfig:
    if cfg is not None:
        return cfg
    return AllocatorConfig(pool_order=AllocatorConfig.order_for_pool(pool))


def _build_ours(mem: DeviceMemory, device: GPUDevice, pool: int,
                cfg: Optional[AllocatorConfig], checked: bool,
                coalesced: bool = False) -> BackendHandle:
    config = _ours_cfg(pool, cfg)
    a = ThroughputAllocator(mem, device, config, checked=checked)
    return BackendHandle(
        name="ours-coalesced" if coalesced else "ours",
        allocator=a,
        caps=BackendCaps(supports_coalesced=True, alignment=8,
                         race_checkable=True),
        malloc=a.malloc_coalesced if coalesced else a.malloc,
        free=a.free,
        malloc_coalesced=a.malloc_coalesced,
        pool_base=a.pool_base,
        pool_size=config.pool_size,
        used_bytes=a.host_used_bytes,
        host_check=a.host_check,
        checkpoint=lambda leak: a.host_checkpoint(expect_leak_free=leak),
    )


def _build_cuda(mem: DeviceMemory, device: GPUDevice, pool: int,
                cfg: Optional[AllocatorConfig], checked: bool) -> BackendHandle:
    base = mem.host_alloc(pool, align=16)
    a = CudaLikeAllocator(mem, base, pool)
    return BackendHandle(
        name="cuda", allocator=a,
        caps=BackendCaps(alignment=16),
        malloc=a.malloc, free=a.free,
        pool_base=base, pool_size=pool,
        used_bytes=a.host_used_bytes,
        host_check=a.host_check,
    )


def _build_xmalloc(mem: DeviceMemory, device: GPUDevice, pool: int,
                   cfg: Optional[AllocatorConfig],
                   checked: bool) -> BackendHandle:
    base = mem.host_alloc(pool, align=4096)
    a = XMalloc(mem, base, pool)
    return BackendHandle(
        name="xmalloc", allocator=a,
        # Blocks are laid at 8-byte strides behind their size headers;
        # a re-free of a block on the stack is undetectable (it has no
        # allocated-bit — the original's weakness, kept faithfully).
        caps=BackendCaps(alignment=8, max_alloc=a.max_alloc,
                         detects_double_free=False),
        malloc=a.malloc, free=a.free,
        pool_base=base, pool_size=pool,
        used_bytes=a.host_used_bytes,
        host_check=a.host_check,
    )


def _build_scatter(mem: DeviceMemory, device: GPUDevice, pool: int,
                   cfg: Optional[AllocatorConfig],
                   checked: bool) -> BackendHandle:
    base = mem.host_alloc(pool, align=4096)
    a = ScatterAlloc(mem, base, pool)
    return BackendHandle(
        name="scatteralloc", allocator=a,
        caps=BackendCaps(alignment=16, max_alloc=a.page_size),
        malloc=a.malloc, free=a.free,
        pool_base=base, pool_size=pool,
        used_bytes=a.host_used_bytes,
    )


def _build_lock_buddy(mem: DeviceMemory, device: GPUDevice, pool: int,
                      cfg: Optional[AllocatorConfig],
                      checked: bool) -> BackendHandle:
    page = 4096
    base = mem.host_alloc(pool, align=page)
    a = LockBuddy(mem, base, page, AllocatorConfig.order_for_pool(pool, page))
    return BackendHandle(
        name="lock-buddy", allocator=a,
        caps=BackendCaps(alignment=page),
        malloc=a.alloc_bytes, free=a.free,
        pool_base=base, pool_size=a.pool_size,
        used_bytes=a.host_used_bytes,
        host_check=a.host_check,
    )


def _build_bump(mem: DeviceMemory, device: GPUDevice, pool: int,
                cfg: Optional[AllocatorConfig], checked: bool) -> BackendHandle:
    base = mem.host_alloc(pool, align=16)
    a = BumpAllocator(mem, base, pool)
    return BackendHandle(
        name="bump", allocator=a,
        # free is a documented counted no-op; used_bytes is the
        # high-water mark (individual frees recover nothing — the
        # design's defining weakness).
        caps=BackendCaps(supports_free=False, alignment=16,
                         invalid_free="counted-noop",
                         detects_double_free=False,
                         exact_used_bytes=False),
        malloc=a.malloc, free=a.free,
        pool_base=base, pool_size=pool,
        used_bytes=lambda: a.used_bytes,
        invalid_free_count=lambda: a.n_noop_frees,
    )


def _build_hostbased(mem: DeviceMemory, device: GPUDevice, pool: int,
                     cfg: Optional[AllocatorConfig],
                     checked: bool) -> BackendHandle:
    base = mem.host_alloc(pool, align=16)
    a = HostBasedAllocator(mem, base, pool)
    return BackendHandle(
        name="hostbased", allocator=a,
        caps=BackendCaps(alignment=16),
        malloc=a.malloc, free=a.free,
        pool_base=base, pool_size=pool,
        used_bytes=a.host_used_bytes,
        host_check=a.host_check,
    )


register(Backend(
    name="ours",
    display="ours (scalar)",
    description="the paper's combined allocator (UAlloc + TBuddy), "
                "scalar malloc path",
    builder=_build_ours,
))

register(Backend(
    name="ours-coalesced",
    display="ours (coalesced)",
    description="the paper's combined allocator, warp-coalescing "
                "malloc path",
    builder=lambda mem, device, pool, cfg, checked:
        _build_ours(mem, device, pool, cfg, checked, coalesced=True),
))

register(Backend(
    name="cuda",
    display="CUDA-like",
    description="CUDA-toolkit-style global-lock first-fit free list",
    builder=_build_cuda,
))

register(Backend(
    name="xmalloc",
    display="XMalloc-like",
    description="lock-free bin stacks over a bump region "
                "[Huang et al. 2010]",
    builder=_build_xmalloc,
))

register(Backend(
    name="scatteralloc",
    display="ScatterAlloc-like",
    description="hashed-bitmap pages [Steinberger et al. 2012]",
    builder=_build_scatter,
    aliases=("scatter",),
))

register(Backend(
    name="lock-buddy",
    display="lock-buddy",
    description="textbook buddy system behind one global lock "
                "(TBuddy ablation baseline)",
    builder=_build_lock_buddy,
    aliases=("lockbuddy",),
))

register(Backend(
    name="bump",
    display="bump pointer",
    description="Vinkler-style atomic bump pointer (no-op free)",
    builder=_build_bump,
))

register(Backend(
    name="hostbased",
    display="host-based",
    description="host-bookkept first-fit allocator [Bell et al. 2024]: "
                "zero device-side metadata, one host round trip per call",
    builder=_build_hostbased,
    aliases=("host-based", "bell"),
))
