"""CLI for the backend registry: ``python -m repro backends ...``.

* ``backends list`` — every registered backend with caps at a glance;
* ``backends conform [--backend NAME ...]`` — run the conformance deck
  and exit non-zero on any contract violation (the CI smoke job).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import builders  # noqa: F401  -- populates the registry
from .conformance import run_all
from .registry import get, names


def _cmd_list(args: argparse.Namespace) -> int:
    for name in names():
        b = get(name)
        if args.verbose:
            print(f"{name}")
            print(f"  display:  {b.display}")
            if b.aliases:
                print(f"  aliases:  {', '.join(b.aliases)}")
            print(f"  about:    {b.description}")
        else:
            print(f"{name:16s} {b.display:20s} {b.description}")
    return 0


def _cmd_conform(args: argparse.Namespace) -> int:
    which: Optional[List[str]] = args.backend or None
    outcomes = run_all(which)
    failed = [o for o in outcomes if o.status == "fail"]
    for o in outcomes:
        mark = {"pass": "ok  ", "skip": "skip", "fail": "FAIL"}[o.status]
        line = f"[{mark}] {o.backend:16s} {o.check}"
        if o.detail:
            line += f"  ({o.detail})"
        print(line)
    print(f"{len(outcomes) - len(failed)}/{len(outcomes)} checks passed"
          + (f", {len(failed)} FAILED" if failed else ""))
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro backends",
        description="allocator-backend registry tools",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_list = sub.add_parser("list", help="list registered backends")
    p_list.add_argument("--verbose", "-v", action="store_true",
                        help="multi-line detail per backend")
    p_list.set_defaults(fn=_cmd_list)

    p_conform = sub.add_parser(
        "conform", help="run the conformance deck against backends"
    )
    p_conform.add_argument(
        "--backend", action="append", metavar="NAME",
        help="restrict to this backend (repeatable; default: all)",
    )
    p_conform.set_defaults(fn=_cmd_conform)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
