"""Figure 5 — upper-limit two-stage allocation throughput.

Paper §5.1: each thread performs one two-stage allocation of a single
resource unit; a batch refill is a single atomic operation, factoring
out any real allocator so the measurement is the synchronization
primitive's ceiling.  Counting semaphores serialize every refill (all
arrivals block behind one refiller); bulk semaphores admit exactly as
many concurrent refills as unmet demand requires.

The paper plots allocations/second against concurrent threads for batch
size 512 (matching UAlloc) and reports that other batch sizes look
analogous — the batch-size ablation bench sweeps them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from typing import Optional

from ..sim import GPUDevice, DeviceMemory, Scheduler, ops
from ..sim.trace import Tracer
from ..sync import BulkSemaphore, CountingSemaphore
from .reporting import Series, format_table, si


@dataclass
class Fig5Result:
    """Measured throughput curves for one batch size."""

    batch: int
    counting: Series
    bulk: Series

    def table(self) -> str:
        rows = []
        for i, x in enumerate(self.counting.xs):
            c, b = self.counting.ys[i], self.bulk.ys[i]
            rows.append([int(x), si(c), si(b), f"{b / c:.2f}x" if c else "-"])
        return format_table(
            ["threads", "counting/s", "bulk/s", "bulk speedup"], rows
        )


#: cycles a batch refill takes.  The paper idealizes the refill as "a
#: single atomic"; on real hardware the batch boundary also pays the
#: latency of waking blocked threads (microseconds).  We charge a fixed
#: refill latency so the primitive's *structure* (serial vs overlapped
#: refills), not the simulator's wake-up artifacts, sets the gap.
REFILL_CYCLES = 2000


def _bulk_kernel(ctx, sem: BulkSemaphore, batch: int, refill_addr: int,
                 refill_cycles: int):
    r = yield from sem.wait(ctx, 1, batch)
    if r == -1:
        # produce a batch of resources (overlaps with other refills)
        yield ops.sleep(refill_cycles)
        yield ops.atomic_add(refill_addr, 1)
        yield from sem.fulfill(ctx, batch - 1)


def _counting_kernel(ctx, sem: CountingSemaphore, batch: int, refill_addr: int,
                     refill_cycles: int):
    r = yield from sem.wait(ctx, 1)
    if r < 1:
        # produce a batch; every other thread is blocked meanwhile
        yield ops.sleep(refill_cycles)
        yield ops.atomic_add(refill_addr, 1)
        yield from sem.signal(ctx, batch)


def run_one(kind: str, nthreads: int, batch: int, block: int = 256,
            device: GPUDevice | None = None, seed: int = 1,
            refill_cycles: int = REFILL_CYCLES,
            tracer: Optional[Tracer] = None) -> float:
    """Throughput (allocs/s) for one primitive at one thread count."""
    device = device or GPUDevice()
    mem = DeviceMemory(1 << 16)
    refill = mem.host_alloc(8)
    grid = -(-nthreads // block)
    if tracer is not None:
        tracer.begin_run(f"fig5:{kind} n={nthreads} batch={batch}")
    sched = Scheduler(mem, device, seed=seed, tracer=tracer)
    if kind == "bulk":
        sem = BulkSemaphore(mem, checked=False)
        sched.launch(_bulk_kernel, grid, block,
                     args=(sem, batch, refill, refill_cycles))
    elif kind == "counting":
        sem = CountingSemaphore(mem)
        sched.launch(_counting_kernel, grid, block,
                     args=(sem, batch, refill, refill_cycles))
    else:
        raise ValueError(f"unknown primitive kind {kind!r}")
    report = sched.run()
    return report.throughput(grid * block)


def run(
    thread_counts: Sequence[int] = (256, 1024, 4096, 16384),
    batch: int = 512,
    block: int = 256,
    device: GPUDevice | None = None,
    seed: int = 1,
    tracer: Optional[Tracer] = None,
) -> Fig5Result:
    """Reproduce Figure 5 for one batch size."""
    counting = Series("Counting Semaphores")
    bulk = Series("Bulk Semaphores")
    for n in thread_counts:
        counting.add(n, run_one("counting", n, batch, block, device, seed,
                                tracer=tracer))
        bulk.add(n, run_one("bulk", n, batch, block, device, seed,
                            tracer=tracer))
    return Fig5Result(batch=batch, counting=counting, bulk=bulk)


def run_batch_sweep(
    batches: Sequence[int] = (32, 128, 512, 2048),
    nthreads: int = 4096,
    block: int = 256,
    device: GPUDevice | None = None,
    seed: int = 1,
) -> List[Fig5Result]:
    """§5.1's 'other batch sizes are analogous' claim, one point each."""
    out = []
    for b in batches:
        counting = Series("Counting Semaphores")
        bulk = Series("Bulk Semaphores")
        counting.add(nthreads, run_one("counting", nthreads, b, block, device, seed))
        bulk.add(nthreads, run_one("bulk", nthreads, b, block, device, seed))
        out.append(Fig5Result(batch=b, counting=counting, bulk=bulk))
    return out


def main(tracer: Optional[Tracer] = None) -> Fig5Result:  # pragma: no cover
    res = run(tracer=tracer)
    print(f"Figure 5 (batch={res.batch}):")
    print(res.table())
    return res


if __name__ == "__main__":  # pragma: no cover
    main()
