"""Result containers and plain-text table rendering for the benches.

The paper's evaluation is three figures; each bench module produces
:class:`Series` objects (one per line in the figure) plus a rendered
table so results can be eyeballed in CI logs and pasted into
EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class Series:
    """One line of a figure: a label and aligned x/y vectors."""

    label: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.xs.append(x)
        self.ys.append(y)

    def y_at(self, x: float) -> float:
        """The y value recorded for ``x`` (exact match)."""
        return self.ys[self.xs.index(x)]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty input)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def si(value: float) -> str:
    """Human-scale a number: 12_300_000 -> '12.3M'."""
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= threshold:
            return f"{value / threshold:.2f}{suffix}"
    return f"{value:.2f}"


def size_label(nbytes: int) -> str:
    """'8 B', '4 KB', '512 KB' style size labels as in Figure 7."""
    if nbytes >= 1 << 20:
        return f"{nbytes >> 20} MB"
    if nbytes >= 1 << 10:
        return f"{nbytes >> 10} KB"
    return f"{nbytes} B"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
