"""Result containers and plain-text table rendering for the benches.

The paper's evaluation is three figures; each bench module produces
:class:`Series` objects (one per line in the figure) plus a rendered
table so results can be eyeballed in CI logs and pasted into
EXPERIMENTS.md.  :func:`trace_summary` renders the telemetry collected
by :class:`repro.sim.trace.Tracer` as the same style of table.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class Series:
    """One line of a figure: a label and aligned x/y vectors."""

    label: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.xs.append(x)
        self.ys.append(y)

    def y_at(self, x: float) -> float:
        """The y value recorded for ``x`` (exact match)."""
        try:
            i = self.xs.index(x)
        except ValueError:
            raise KeyError(
                f"series {self.label!r} has no point at x={x!r}; "
                f"recorded x values: {self.xs}"
            ) from None
        return self.ys[i]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty input).

    Non-positive values cannot enter a geometric mean, so they are
    skipped — with a :class:`RuntimeWarning`, because a zero in a
    throughput/speedup vector almost always marks a *failed* data point,
    and silently dropping it would inflate the mean instead of flagging
    the failure.
    """
    vals = list(values)
    bad = [v for v in vals if v <= 0]
    if bad:
        warnings.warn(
            f"geometric_mean: skipping {len(bad)} non-positive value(s) "
            f"{bad[:5]} of {len(vals)} — a zero usually marks a failed "
            "benchmark point; the mean covers only the remaining values",
            RuntimeWarning,
            stacklevel=2,
        )
    pos = [v for v in vals if v > 0]
    if not pos:
        return 0.0
    return math.exp(sum(math.log(v) for v in pos) / len(pos))


def si(value: float) -> str:
    """Human-scale a number: 12_300_000 -> '12.3M'."""
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= threshold:
            return f"{value / threshold:.2f}{suffix}"
    return f"{value:.2f}"


def signed_pct(frac: float) -> str:
    """Signed percent for a fraction: 0.123 -> '+12.3%', -0.04 -> '-4.0%'.

    Infinities render as '+inf%'/'-inf%' (a metric appearing from, or
    collapsing to, zero in the perf delta tables).
    """
    return f"{frac:+.1%}"


def size_label(nbytes: int) -> str:
    """'8 B', '4 KB', '512 KB' style size labels as in Figure 7."""
    if nbytes >= 1 << 20:
        return f"{nbytes >> 20} MB"
    if nbytes >= 1 << 10:
        return f"{nbytes >> 10} KB"
    return f"{nbytes} B"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _count(value: int) -> str:
    """Integer counts verbatim while small, SI-scaled once unwieldy."""
    return str(value) if value < 100_000 else si(value)


def _histogram_table(hist, value_header: str, bar_width: int = 30) -> str:
    """Render a :class:`repro.sim.trace.Histogram` as an aligned table."""
    rows = hist.rows()
    peak = max(n for _, n in rows)
    table_rows = [
        [label, n, "#" * max(1, round(bar_width * n / peak))]
        for label, n in rows
    ]
    table = format_table([value_header, "count", ""], table_rows)
    return (f"{table}\n"
            f"samples: {hist.n}  mean: {hist.mean:.1f}  max: {hist.max}")


def trace_summary(tracer, top: int = 10) -> str:
    """Plain-text telemetry report for a :class:`repro.sim.trace.Tracer`.

    Sections appear only when the corresponding telemetry was collected,
    so a bench that never touches RCU prints no RCU section.
    """
    parts: List[str] = ["== trace summary =="]
    if tracer.runs:
        labels = ", ".join(r["label"] for r in tracer.runs)
        parts.append(f"runs: {len(tracer.runs)} ({labels})")

    named = tracer.named_op_counts
    if named:
        parts.append("\n-- op counts --")
        parts.append(format_table(
            ["op", "count"], [[k, _count(v)] for k, v in named.items()]
        ))

    stalls = tracer.top_stall_words(top)
    if stalls:
        parts.append(f"\n-- top atomic serialization stall words (top {top}) --")
        parts.append(format_table(
            ["address", "atomics", "stall cycles", "avg stall"],
            [[f"{addr:#x}", _count(n), _count(stall), f"{stall / n:.1f}"]
             for addr, n, stall in stalls],
        ))

    if tracer.sem_wait.n:
        parts.append("\n-- semaphore wait times (cycles) --")
        parts.append(_histogram_table(tracer.sem_wait, "wait"))
        outcomes = ", ".join(
            f"{k}: {v}" for k, v in sorted(tracer.sem_outcomes.items())
        )
        parts.append(f"outcomes: {outcomes}")

    if tracer.lock_wait.n:
        parts.append("\n-- lock wait times (cycles) --")
        parts.append(_histogram_table(tracer.lock_wait, "wait"))
    if tracer.lock_hold.n:
        parts.append("\n-- lock hold times (cycles) --")
        parts.append(_histogram_table(tracer.lock_hold, "hold"))

    if tracer.collective_width.n:
        parts.append("\n-- collective acquire group widths --")
        parts.append(_histogram_table(tracer.collective_width, "width"))

    if tracer.rcu_full or tracer.rcu_delegated:
        parts.append("\n-- RCU barriers --")
        total = tracer.rcu_full + tracer.rcu_delegated
        share = tracer.rcu_delegated / total if total else 0.0
        parts.append(f"full: {tracer.rcu_full}  "
                     f"delegated: {tracer.rcu_delegated}  ({share:.0%})")
        if tracer.rcu_grace:
            g = tracer.rcu_grace
            parts.append(
                f"grace-period latency (cycles): n={len(g)}  "
                f"mean={sum(g) / len(g):.0f}  min={min(g)}  max={max(g)}"
            )

    occ = tracer.occupancy_stats()
    if occ:
        parts.append("\n-- per-SM occupancy (resident blocks) --")
        parts.append(format_table(
            ["run", "sm", "peak", "mean", "active cycles"],
            [[label, sm, peak, f"{mean:.2f}", si(span)]
             for label, sm, peak, mean, span in occ],
        ))

    parts.append(
        f"\ntimeline: {len(tracer.events)} events recorded"
        + (f", {tracer.dropped_events} dropped (cap "
           f"{tracer.max_timeline_events})" if tracer.dropped_events else "")
    )
    return "\n".join(parts)
