"""Figure 6 — speedup of RCU delegation over classical RCU.

Paper §5.2: a device doubly-linked list holds one element per *writer*
thread; every thread searches the list for its own tag under an RCU
read-side section.  Writer tags match a list element — the thread
unlinks it under the writer mutex, enqueues the reclamation callback,
and issues an RCU barrier.  Reader tags match nothing.  The
writer:reader ratio sweeps 1:32 … 1:2048.

Classical RCU makes every writer a *full* barrier: the writer's block
sits on its SM until the grace period drains, delaying every queued
block.  Delegation (conditional barriers) lets a writer return
immediately whenever another barrier has not yet flipped the epoch, so
writer blocks retire early and queued reader blocks launch sooner —
that resource-release effect is where the measured speedup comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.dlist import DList
from ..sim import GPUDevice, DeviceMemory, Scheduler, ops
from ..sim.trace import Tracer
from ..sync import RCU, SpinLock
from .reporting import Series, format_table

#: element layout: word0 tag, word1 next, word2 prev
TAG_OFF = 0
ELEM_NEXT = 8
ELEM_PREV = 16
ELEM_SIZE = 24

_NULL = DeviceMemory.NULL


def build_list(mem: DeviceMemory, n_elems: int) -> tuple[DList, List[int]]:
    """Host-side construction of the tagged device list."""
    lst = DList(mem, next_off=ELEM_NEXT, prev_off=ELEM_PREV)
    elems = []
    prev = lst.head
    for tag in range(n_elems):
        e = mem.host_alloc(ELEM_SIZE)
        mem.store_word(e + TAG_OFF, tag)
        mem.store_word(prev + (ELEM_NEXT if prev != lst.head else ELEM_NEXT), e)
        elems.append(e)
        prev = e
    # link prev pointers and close the circle
    chain = [lst.head] + elems + [lst.head]
    for a, b in zip(chain, chain[1:]):
        mem.store_word(a + ELEM_NEXT, b)
        mem.store_word(b + ELEM_PREV, a)
    return lst, elems


def _search_remove_kernel(ctx, lst: DList, rcu: RCU, wmutex: SpinLock,
                          delegated: bool, n_writers: int, stride: int,
                          reclaimed: List[int]):
    """Search for this thread's tag; remove the element if found.

    Writers are strided across the launch (one per ``stride`` threads)
    so they land in different blocks — matching the paper's Figure 4,
    where removal threads are spread over thread-blocks.  A barrier that
    parks a writer then holds its whole block's SM residency hostage,
    which is precisely the cost delegation avoids.
    """
    if ctx.tid % stride == 0 and ctx.tid // stride < n_writers:
        tag = ctx.tid // stride
    else:
        tag = (1 << 40) + ctx.tid
    idx = yield from rcu.read_lock(ctx)
    node = yield from lst.first(ctx)
    found = _NULL
    while not lst.is_end(node):
        t = yield ops.load(node + TAG_OFF)
        if t == tag:
            found = node
            break
        node = yield from lst.next(ctx, node)
    yield from rcu.read_unlock(ctx, idx)
    if found == _NULL:
        return
    yield from wmutex.lock(ctx)
    yield from lst.remove(ctx, found)
    yield from rcu.call(ctx, _reclaim_cb, found, reclaimed)
    yield from wmutex.unlock(ctx)
    if delegated:
        yield from rcu.synchronize_conditional(ctx)
    else:
        yield from rcu.synchronize(ctx)


def _reclaim_cb(ctx, elem: int, reclaimed: List[int]):
    """[RCU callback] physically reclaim the unlinked element."""
    reclaimed.append(elem)
    yield ops.sleep(10)


@dataclass
class Fig6Point:
    ratio: int
    nthreads: int
    cycles_classical: int
    cycles_delegated: int
    delegated_share: float  # fraction of barriers that were delegated

    @property
    def speedup(self) -> float:
        return self.cycles_classical / self.cycles_delegated


@dataclass
class Fig6Result:
    points: List[Fig6Point]

    def series(self) -> Dict[int, Series]:
        out: Dict[int, Series] = {}
        for p in self.points:
            out.setdefault(p.ratio, Series(f"1:{p.ratio}")).add(p.nthreads, p.speedup)
        return out

    def table(self) -> str:
        rows = [
            [f"1:{p.ratio}", p.nthreads, p.cycles_classical, p.cycles_delegated,
             f"{p.speedup:.2f}x", f"{p.delegated_share:.0%}"]
            for p in self.points
        ]
        return format_table(
            ["ratio", "threads", "classical cyc", "delegated cyc",
             "speedup", "delegated"],
            rows,
        )


def run_one(n_writers: int, ratio: int, delegated: bool, block: int = 128,
            device: GPUDevice | None = None, seed: int = 3,
            tracer: Optional[Tracer] = None):
    """One configuration; returns (cycles, delegated_share, ok)."""
    device = device or GPUDevice()
    n_threads = n_writers * (1 + ratio)
    mem = DeviceMemory(max(1 << 20, ELEM_SIZE * n_writers * 4))
    lst, elems = build_list(mem, n_writers)
    rcu = RCU(mem)
    wmutex = SpinLock(mem)
    reclaimed: List[int] = []
    grid = -(-n_threads // block)
    stride = max(1, (grid * block) // n_writers)
    if tracer is not None:
        mode = "delegated" if delegated else "classical"
        tracer.begin_run(f"fig6:{mode} ratio=1:{ratio} writers={n_writers}")
    sched = Scheduler(mem, device, seed=seed, tracer=tracer)
    sched.launch(
        _search_remove_kernel, grid, block,
        args=(lst, rcu, wmutex, delegated, n_writers, stride, reclaimed),
    )
    report = sched.run()
    rcu.drain_host()
    ok = len(reclaimed) == n_writers and not lst.host_items()
    total_barriers = rcu.barriers_full + rcu.barriers_delegated
    share = rcu.barriers_delegated / total_barriers if total_barriers else 0.0
    return report.cycles, share, ok


def run(
    ratios: Sequence[int] = (32, 128, 512, 2048),
    thread_targets: Sequence[int] = (1024, 4096, 12288),
    block: int = 128,
    device: GPUDevice | None = None,
    seed: int = 3,
    max_work: float = 2.0e6,
    tracer: Optional[Tracer] = None,
) -> Fig6Result:
    """Reproduce Figure 6: speedup of delegation across ratios/threads.

    As in the paper, the x-axis is total concurrent threads and the
    writer count follows from the ratio (list length = writers = total /
    (1 + ratio)).  Configurations whose reader x list-length product
    exceeds ``max_work`` are skipped to bound simulation time; the
    remaining grid preserves the figure's shape (speedup grows with
    thread count and with the writer share).
    """
    points = []
    for ratio in ratios:
        for target in thread_targets:
            w = max(1, target // (1 + ratio))
            if w < 2:
                continue
            n_threads = w * (1 + ratio)
            if n_threads * w > max_work:
                continue
            cyc_classic, _, ok1 = run_one(w, ratio, False, block, device, seed,
                                          tracer=tracer)
            cyc_deleg, share, ok2 = run_one(w, ratio, True, block, device, seed,
                                            tracer=tracer)
            if not (ok1 and ok2):
                raise RuntimeError(
                    f"fig6 correctness check failed (ratio={ratio}, w={w})"
                )
            points.append(Fig6Point(ratio, n_threads, cyc_classic,
                                    cyc_deleg, share))
    return Fig6Result(points)


def main(tracer: Optional[Tracer] = None) -> Fig6Result:  # pragma: no cover
    res = run(tracer=tracer)
    print("Figure 6 (RCU delegation speedup):")
    print(res.table())
    return res


if __name__ == "__main__":  # pragma: no cover
    main()
