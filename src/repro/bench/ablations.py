"""Ablation benches for the design choices DESIGN.md calls out.

* **TBuddy vs global-lock buddy** — isolates the value of the state
  tree + per-order bulk semaphores over the textbook design (§4.1).
* **Collective vs per-thread mutex** — the §4.2.2 primitive, measured
  on the list-pop workload the paper motivates it with.
* **Batch-size sweep** for Figure 5 lives in :mod:`repro.bench.fig5`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..baselines import LockBuddy
from ..core.dlist import DList
from ..core.tbuddy import TBuddy
from ..sim import GPUDevice, DeviceMemory, Scheduler, ops
from ..sync import CollectiveMutex
from .reporting import Series, format_table, si

_NULL = DeviceMemory.NULL


# ----------------------------------------------------------------------
# TBuddy vs LockBuddy
# ----------------------------------------------------------------------
@dataclass
class BuddyAblationResult:
    tbuddy: Series
    lock_buddy: Series

    def table(self) -> str:
        rows = [
            [int(x), si(self.lock_buddy.ys[i]), si(self.tbuddy.ys[i]),
             f"{self.tbuddy.ys[i] / self.lock_buddy.ys[i]:.2f}x"]
            for i, x in enumerate(self.tbuddy.xs)
        ]
        return format_table(
            ["threads", "lock buddy/s", "TBuddy/s", "speedup"], rows
        )


def _storm_tbuddy(ctx, buddy, order):
    addr = yield from buddy.alloc(ctx, order)
    return addr


def _storm_lock_buddy(ctx, buddy, order):
    addr = yield from buddy.alloc(ctx, order)
    return addr


def run_buddy_ablation(
    thread_counts: Sequence[int] = (64, 256, 1024),
    order: int = 0,
    page_size: int = 4096,
    block: int = 128,
    device: GPUDevice | None = None,
    seed: int = 5,
) -> BuddyAblationResult:
    """Order-0 allocation storm: every thread takes one page."""
    device = device or GPUDevice()
    t_series = Series("TBuddy")
    l_series = Series("Lock buddy")
    for n in thread_counts:
        max_order = (n - 1).bit_length() + 1  # pool comfortably > demand
        for series, cls, kernel in (
            (t_series, "t", _storm_tbuddy),
            (l_series, "l", _storm_lock_buddy),
        ):
            mem = DeviceMemory((page_size << max_order) + (8 << 20))
            if cls == "t":
                buddy = TBuddy(mem, 0, page_size, max_order, checked_sems=False)
            else:
                buddy = LockBuddy(mem, 0, page_size, max_order)
            sched = Scheduler(mem, device, seed=seed)
            grid = -(-n // block)
            h = sched.launch(kernel, grid, min(block, n), args=(buddy, order))
            report = sched.run()
            assert all(a != _NULL for a in h.results), "pool unexpectedly exhausted"
            series.add(n, report.throughput(h.n_threads))
    return BuddyAblationResult(tbuddy=t_series, lock_buddy=l_series)


# ----------------------------------------------------------------------
# Collective vs per-thread mutex
# ----------------------------------------------------------------------
@dataclass
class CollectiveAblationResult:
    plain: Series
    collective: Series

    def table(self) -> str:
        rows = [
            [int(x), si(self.plain.ys[i]), si(self.collective.ys[i]),
             f"{self.collective.ys[i] / self.plain.ys[i]:.2f}x"]
            for i, x in enumerate(self.plain.xs)
        ]
        return format_table(
            ["threads", "plain mutex/s", "collective/s", "speedup"], rows
        )


def _pop_plain(ctx, mutex: CollectiveMutex, lst: DList, out):
    """Each thread pops one element under its own lock acquisition."""
    yield from mutex.lock(ctx)
    node = yield from lst.first(ctx)
    if not lst.is_end(node):
        yield from lst.remove(ctx, node)
        out.append(node)
    yield from mutex.unlock(ctx)


def _pop_collective(ctx, mutex: CollectiveMutex, lst: DList, out):
    """Converged warp lanes pop k elements inside one critical section:
    one traversal splits off as many elements as there are lanes (the
    paper's 'several chunks with a single list operation')."""
    mask = yield from mutex.lock_warp(ctx)
    rank = sorted(mask).index(ctx.lane)
    if rank == 0:
        # the leader walks once and hands out popped nodes via the list
        taken = []
        node = yield from lst.first(ctx)
        while len(taken) < len(mask) and not lst.is_end(node):
            nxt = yield from lst.next(ctx, node)
            yield from lst.remove(ctx, node)
            taken.append(node)
            node = nxt
        out.extend(taken)
    yield from mutex.unlock_warp(ctx, mask)


def run_collective_ablation(
    thread_counts: Sequence[int] = (64, 256, 1024),
    block: int = 128,
    device: GPUDevice | None = None,
    seed: int = 6,
) -> CollectiveAblationResult:
    """Every thread needs one list element; compare lock regimes."""
    device = device or GPUDevice()
    plain = Series("plain mutex")
    coll = Series("collective mutex")
    for n in thread_counts:
        for series, kernel in ((plain, _pop_plain), (coll, _pop_collective)):
            mem = DeviceMemory(8 << 20)
            lst = DList(mem)
            # pre-populate one node per thread (32-byte nodes)
            for _ in range(n):
                node = mem.host_alloc(32)
                # host-side insert at head
                first = mem.load_word(lst.head + lst.next_off)
                mem.store_word(node + lst.next_off, first)
                mem.store_word(node + lst.prev_off, lst.head)
                mem.store_word(first + lst.prev_off, node)
                mem.store_word(lst.head + lst.next_off, node)
            mutex = CollectiveMutex(mem)
            out: list = []
            sched = Scheduler(mem, device, seed=seed)
            grid = -(-n // block)
            sched.launch(kernel, grid, min(block, n), args=(mutex, lst, out))
            report = sched.run()
            assert len(out) == n, f"popped {len(out)} of {n}"
            assert len(set(out)) == n, "duplicate pops"
            series.add(n, report.throughput(n))
    return CollectiveAblationResult(plain=plain, collective=coll)


def main():  # pragma: no cover - CLI convenience
    b = run_buddy_ablation()
    print("Ablation A — TBuddy vs global-lock buddy (order-0 storm):")
    print(b.table())
    c = run_collective_ablation()
    print("\nAblation B — collective vs plain mutex (list pop):")
    print(c.table())
    return b, c


if __name__ == "__main__":  # pragma: no cover
    main()
