"""Benchmark harnesses regenerating every figure in the paper's
evaluation (§5), plus the ablations DESIGN.md calls out.

* :mod:`repro.bench.fig5` — bulk vs counting semaphore throughput.
* :mod:`repro.bench.fig6` — RCU delegation speedup.
* :mod:`repro.bench.fig7` — allocator throughput/failures by size.
* :mod:`repro.bench.ablations` — TBuddy vs lock buddy; collective vs
  plain mutex.
* :mod:`repro.bench.shootout` — cross-allocator comparison including
  the §2.2 related-work designs.
* :mod:`repro.bench.fragmentation` — fragmentation-over-time study.
* :mod:`repro.bench.workloads` — shared workload builders.
* :mod:`repro.bench.reporting` — series containers and tables.
"""

from . import ablations, fig5, fig6, fig7, fragmentation, reporting, shootout, workloads
from .reporting import Series, format_table, geometric_mean, si, size_label

__all__ = [
    "fig5",
    "fig6",
    "fig7",
    "ablations",
    "shootout",
    "fragmentation",
    "workloads",
    "reporting",
    "Series",
    "format_table",
    "geometric_mean",
    "si",
    "size_label",
]
