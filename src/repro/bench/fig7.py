"""Figure 7 — allocator throughput and failure rate across sizes.

Paper §5.3: for every power-of-two size from 8 B to 512 KB, run exactly
enough single-``malloc`` threads to exhaust the memory pool; report
allocations/second and the fraction of calls that failed (the indirect
fragmentation measurement — with zero fragmentation nothing would
fail).

Scaling substitutions (DESIGN.md): the paper sizes pools from 8 MB to
512 MB and runs up to 2^20 threads; we scale both down proportionally
(pools 512 KB–1 MB, thousands of threads) which preserves the shape:

* UAlloc sizes (8 B–2 KB) allocate at high, roughly size-independent
  rates; failures stay low for sizes that use tails (<=128 B), rise for
  bin-residue sizes (512 B, 1 KB) and hit ~50% for the degenerate 2 KB
  class (a 4 KB bin fits only one 2 KB block).
* TBuddy sizes (>=4 KB) run at a lower, flat rate that rises as the
  thread count drops, with zero failures.
* The CUDA-like baseline serializes on its global lock at every size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..backends import get as get_backend
from ..core import AllocatorConfig
from ..sim import GPUDevice, DeviceMemory, Scheduler
from ..sim.trace import Tracer
from .reporting import Series, format_table, geometric_mean, si, size_label
from .workloads import malloc_storm

_NULL = DeviceMemory.NULL

#: the full Figure 7 sweep
PAPER_SIZES = tuple(8 << i for i in range(17))  # 8 B .. 512 KB


@dataclass
class Fig7Point:
    size: int
    allocator: str
    nthreads: int
    throughput: float       # malloc calls per virtual second
    failed: int
    cycles: int

    @property
    def failure_rate(self) -> float:
        return self.failed / self.nthreads if self.nthreads else 0.0


@dataclass
class Fig7Result:
    points: List[Fig7Point]

    def series(self) -> dict:
        out = {}
        for p in self.points:
            out.setdefault(p.allocator, Series(p.allocator)).add(p.size, p.throughput)
        return out

    def speedups(self) -> List[float]:
        """Per-size throughput ratio ours/CUDA (paper: 0.22x–346x)."""
        ours = {p.size: p.throughput for p in self.points if p.allocator == "ours"}
        cuda = {p.size: p.throughput for p in self.points if p.allocator == "cuda"}
        return [ours[s] / cuda[s] for s in sorted(ours) if s in cuda and cuda[s]]

    def mean_speedup(self) -> float:
        """Headline number (paper: 16.56x average)."""
        return geometric_mean(self.speedups())

    def table(self) -> str:
        by_size: dict = {}
        for p in self.points:
            by_size.setdefault(p.size, {})[p.allocator] = p
        rows = []
        for size in sorted(by_size):
            d = by_size[size]
            ours, cuda = d.get("ours"), d.get("cuda")
            rows.append([
                size_label(size),
                ours.nthreads if ours else "-",
                si(cuda.throughput) if cuda else "-",
                si(ours.throughput) if ours else "-",
                f"{ours.throughput / cuda.throughput:.2f}x" if ours and cuda else "-",
                f"{cuda.failure_rate:.1%}" if cuda else "-",
                f"{ours.failure_rate:.1%}" if ours else "-",
            ])
        return format_table(
            ["size", "threads", "CUDA/s", "ours/s", "speedup",
             "CUDA fail", "ours fail"],
            rows,
        )


def pool_bytes_for(size: int, chunk_size: int, n_arenas: int,
                   max_pool: int = 1 << 20) -> int:
    """Paper-style pool sizing, scaled: grow the pool with the size
    until the cap, never below one chunk per arena."""
    floor = chunk_size * n_arenas
    want = size * 1024
    pool = max(floor, min(want, max_pool))
    # round up to a power of two of pages
    p = 1
    while p < pool:
        p <<= 1
    return p


def run_size(
    size: int,
    allocator: str,
    device: Optional[GPUDevice] = None,
    block: int = 256,
    seed: int = 7,
    max_threads: int = 65536,
    max_pool: int = 1 << 20,
    tracer: Optional[Tracer] = None,
) -> Fig7Point:
    """Exhaust a fresh pool with single-malloc threads at one size."""
    device = device or GPUDevice(num_sms=2, max_resident_blocks=4)
    backend = get_backend(allocator)
    cfg = AllocatorConfig()  # paper layout: 4 KB bins, 64-bin chunks
    if backend.name in ("ours", "ours-coalesced"):
        pool = pool_bytes_for(size, cfg.chunk_size, device.num_sms, max_pool)
        nthreads = max(1, min(pool // size, max_threads))
    else:
        # Lock/stack baselines are dominated by their serialization, so
        # their throughput is concurrency-independent; measuring at a
        # proportionally smaller scale keeps simulation time sane
        # without changing the figure's shape (DESIGN.md substitutions).
        nthreads = max(1, min(4096, (max_pool // size), max_threads))
        pool = max(4096, (size + 48) * nthreads)
        pool = (pool + 15) & ~15
    grid = -(-nthreads // block)
    blk = min(block, nthreads)
    mem = DeviceMemory(pool * 2 + (4 << 20))
    handle = backend.build(mem, device, pool, checked=False)
    kernel, out = malloc_storm(handle, size)
    if tracer is not None:
        tracer.begin_run(
            f"fig7:{allocator} size={size_label(size)} n={grid * blk}"
        )
    sched = Scheduler(mem, device, seed=seed, tracer=tracer)
    sched.launch(kernel, grid, blk, args=())
    report = sched.run()
    n_calls = grid * blk
    failed = sum(1 for p in out if p == _NULL)
    return Fig7Point(
        size=size,
        allocator=allocator,
        nthreads=n_calls,
        throughput=report.throughput(n_calls),
        failed=failed,
        cycles=report.cycles,
    )


def run(
    sizes: Sequence[int] = PAPER_SIZES,
    device: Optional[GPUDevice] = None,
    block: int = 256,
    seed: int = 7,
    max_threads: int = 65536,
    max_pool: int = 1 << 20,
    tracer: Optional[Tracer] = None,
) -> Fig7Result:
    """Reproduce Figure 7 for both allocators across ``sizes``."""
    points = []
    for size in sizes:
        for allocator in ("cuda", "ours"):
            points.append(run_size(size, allocator, device, block, seed,
                                   max_threads, max_pool, tracer=tracer))
    return Fig7Result(points)


def main(sizes: Sequence[int] = PAPER_SIZES,
         tracer: Optional[Tracer] = None) -> Fig7Result:  # pragma: no cover
    res = run(sizes, tracer=tracer)
    print("Figure 7 (allocation throughput by size):")
    print(res.table())
    sp = res.speedups()
    print(f"\nspeedup range: {min(sp):.2f}x .. {max(sp):.2f}x  "
          f"(paper: 0.22x .. 346x)")
    print(f"mean speedup:  {res.mean_speedup():.2f}x  (paper mean: 16.56x)")
    return res


if __name__ == "__main__":  # pragma: no cover
    main()
