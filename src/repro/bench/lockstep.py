"""Whole-warp coalesced allocation ceiling — paper §4.2.

UAlloc's throughput story leans on *warp aggregation*: when the lanes
of a warp need memory at the same time, one elected leader performs a
single allocation for the whole group and broadcasts the base address,
so the shared allocator state sees one atomic per warp instead of one
per lane.  This bench isolates that mechanism the way fig5 isolates the
two-stage semaphore: the "allocator" is an idealized bump cursor (one
``atomic_add`` on a shared word), so the measurement is the ceiling of
the coalescing *pattern* itself, not any particular free-list design.

Two kernels run the same round structure at SIMT density:

``coalesced``
    Each round every warp converges (``warp_converge``), the leader
    bumps the shared cursor once for the whole converged mask and
    broadcasts the slab base (``warp_broadcast``), every lane stores
    and reads back its private slot, and the block barriers before the
    next round — the lockstep cadence real allocating kernels settle
    into.

``plain``
    Every lane bumps the shared cursor itself.  The cursor word
    serializes at ``atomic_service``, so lanes convoy and the warp
    desynchronizes — the 32× atomic-traffic amplification §4.2 is
    about.  Plain rounds cost ~32× more virtual time each, so the
    harness runs fewer of them (the convoy reaches steady state almost
    immediately).

Reported speedup is per-slot virtual throughput, coalesced over plain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim import DeviceMemory, GPUDevice, Scheduler, ops
from .reporting import Series, format_table, si

#: bytes handed to each lane per round (one 64-bit slot)
ITEM_BYTES = 8


def _coalesced_kernel(ctx, cursor: int, rounds: int, widths: List[int]):
    """Leader allocates for the converged mask; lanes share the slab."""
    checksum = 0
    seen = None  # leader/rank are derived once per distinct mask —
    lead = rank = 0  # register math on hardware, not per-round work
    for r in range(rounds):
        mask = yield ops.warp_converge()
        if mask != seen:
            seen = mask
            lanes = sorted(mask)
            lead = lanes[0]
            rank = lanes.index(ctx.lane)
        if ctx.lane == lead:
            base = yield ops.atomic_add(cursor, len(mask) * ITEM_BYTES)
            widths.append(len(mask))
            base = yield ops.warp_broadcast(mask, base)
        else:
            base = yield ops.warp_broadcast(mask)
        slot = base + rank * ITEM_BYTES
        yield ops.store(slot, (ctx.tid << 8) | (r & 0xFF))
        got = yield ops.load(slot)
        checksum += got & 0xFF
        yield ops.syncthreads()
    return checksum


def _plain_kernel(ctx, cursor: int, rounds: int, widths: List[int]):
    """Every lane allocates its own slot straight off the cursor."""
    checksum = 0
    for r in range(rounds):
        base = yield ops.atomic_add(cursor, ITEM_BYTES)
        yield ops.store(base, (ctx.tid << 8) | (r & 0xFF))
        got = yield ops.load(base)
        checksum += got & 0xFF
        yield ops.syncthreads()
    return checksum


@dataclass
class LockstepPoint:
    """One kernel variant at one launch width."""

    kind: str
    nthreads: int
    rounds: int
    slots: int              # total slots handed out (= nthreads * rounds)
    cycles: int
    slots_per_s: float
    coalesce_width_mean: float  # lanes amortized per cursor atomic


@dataclass
class LockstepResult:
    coalesced: LockstepPoint
    plain: LockstepPoint

    @property
    def speedup(self) -> float:
        """Coalesced over plain, per-slot virtual throughput."""
        return (self.coalesced.slots_per_s / self.plain.slots_per_s
                if self.plain.slots_per_s else 0.0)

    def table(self) -> str:
        rows = [
            [p.kind, p.nthreads, p.rounds, si(p.slots_per_s),
             f"{p.coalesce_width_mean:.1f}"]
            for p in (self.coalesced, self.plain)
        ]
        rows.append(["speedup", "", "", f"{self.speedup:.2f}x", ""])
        return format_table(
            ["kernel", "threads", "rounds", "slots/s", "lanes/atomic"], rows
        )


def run_one(kind: str, nthreads: int, rounds: int, block: int = 256,
            device: Optional[GPUDevice] = None, seed: int = 13,
            ) -> LockstepPoint:
    """Run one variant on a fresh heap and validate every slot landed."""
    device = device or GPUDevice()
    pool = 1 << 16
    slab = nthreads * rounds * ITEM_BYTES
    mem = DeviceMemory(pool + slab)
    cursor = mem.host_alloc(8)
    mem.store_word(cursor, mem.host_alloc(slab))
    base0 = mem.load_word(cursor)
    kernel = _coalesced_kernel if kind == "coalesced" else _plain_kernel
    widths: List[int] = []
    sched = Scheduler(mem, device, seed=seed)
    grid = -(-nthreads // block)
    handle = sched.launch(kernel, grid, min(block, nthreads), args=(cursor, rounds, widths))
    report = sched.run()
    slots = nthreads * rounds
    # every lane read back its own slot: per-round low byte sums to r
    want = sum(r & 0xFF for r in range(rounds))
    for tid, got in enumerate(handle.results):
        if got != want:
            raise AssertionError(
                f"{kind}: tid {tid} checksum {got} != {want}")
    used = mem.load_word(cursor) - base0
    if used != slots * ITEM_BYTES:
        raise AssertionError(
            f"{kind}: cursor advanced {used} bytes for {slots} slots")
    width = slots / len(widths) if widths else 1.0
    return LockstepPoint(
        kind=kind, nthreads=nthreads, rounds=rounds, slots=slots,
        cycles=report.cycles, slots_per_s=report.throughput(slots),
        coalesce_width_mean=width,
    )


def run(nthreads: int = 4096, rounds: int = 48, plain_rounds: int = 6,
        block: int = 256, seed: int = 13,
        device: Optional[GPUDevice] = None) -> LockstepResult:
    """Reproduce the §4.2 coalescing ablation at one launch width."""
    co = run_one("coalesced", nthreads, rounds, block=block, seed=seed,
                 device=device)
    pl = run_one("plain", nthreads, plain_rounds, block=block, seed=seed,
                 device=device)
    return LockstepResult(coalesced=co, plain=pl)


def main():  # pragma: no cover - CLI convenience
    res = run()
    print("Whole-warp coalesced allocation ceiling (§4.2):")
    print(res.table())
    return res


if __name__ == "__main__":  # pragma: no cover
    main()
