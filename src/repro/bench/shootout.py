"""Cross-allocator shootout (extends the paper's Figure 7 comparison to
every §2.2 related-work design we implement).

One workload — a malloc/hold/free churn at a fixed small size — run
against any set of registered backends (:mod:`repro.backends`); the
default roster is the paper's comparison set: this paper's allocator
(scalar and warp-coalesced), the CUDA-like lock allocator,
XMalloc-style bin stacks, ScatterAlloc-style hashed pages, and the bump
pointer.  Reports virtual throughput and the failure count; the bump
pointer additionally demonstrates its fragmentation pathology (it fails
once the pool's been written through, regardless of frees).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..backends import get as get_backend
from ..sim import GPUDevice, DeviceMemory, Scheduler, ops
from .reporting import format_table, si

_NULL = DeviceMemory.NULL

#: the original comparison roster (registry names, in table order)
DEFAULT_BACKENDS = (
    "ours",
    "ours-coalesced",
    "cuda",
    "xmalloc",
    "scatteralloc",
    "bump",
)


@dataclass
class ShootoutPoint:
    name: str
    throughput: float  # successful ops (malloc+free pairs) per second
    failures: int
    cycles: int


@dataclass
class ShootoutResult:
    size: int
    nthreads: int
    iters: int
    points: List[ShootoutPoint]

    def table(self) -> str:
        base = {p.name: p for p in self.points}.get("ours (scalar)")
        rows = []
        for p in sorted(self.points, key=lambda p: -p.throughput):
            if base is not None and base.throughput > 0:
                rel = f"{p.throughput / base.throughput:.2f}x"
            else:
                rel = "-"
            rows.append([p.name, si(p.throughput), p.failures, rel])
        return format_table(
            ["allocator", "pairs/s", "failures", "vs ours"], rows
        )


def _churn_kernel(malloc_fn, free_fn, size, iters, failures):
    def kernel(ctx):
        f = 0
        for _ in range(iters):
            p = yield from malloc_fn(ctx, size)
            if p == _NULL:
                f += 1
                yield ops.cpu_yield()
                continue
            yield ops.sleep(ctx.rng.randrange(100))
            yield from free_fn(ctx, p)
        failures.append(f)

    return kernel


def run(
    size: int = 64,
    nthreads: int = 2048,
    iters: int = 2,
    device: Optional[GPUDevice] = None,
    seed: int = 9,
    pool: int = 1 << 20,
    which: Optional[Sequence[str]] = None,
) -> ShootoutResult:
    """Run the churn shootout; returns per-backend results.

    ``which`` names backends by registry name, display label, or alias
    (historic callers pass display labels like ``"ours (scalar)"``);
    ``None`` runs :data:`DEFAULT_BACKENDS`.
    """
    device = device or GPUDevice(num_sms=2)
    roster = [get_backend(n) for n in (which if which is not None
                                       else DEFAULT_BACKENDS)]
    points = []
    for backend in roster:
        mem = DeviceMemory(pool * 4 + (8 << 20))
        handle = backend.build(mem, device, pool, checked=False)
        failures: List[int] = []
        kernel = _churn_kernel(handle.malloc, handle.free, size, iters,
                               failures)
        sched = Scheduler(mem, device, seed=seed)
        sched.launch(kernel, -(-nthreads // 256), min(256, nthreads))
        report = sched.run()
        n_fail = sum(failures)
        ok_pairs = nthreads * iters - n_fail
        # A total wipeout used to report throughput(1) — one phantom
        # pair per run — which ranked a 100%-failure allocator above a
        # slow-but-correct one.  Zero completed pairs is zero throughput.
        points.append(ShootoutPoint(
            name=backend.display,
            throughput=report.throughput(ok_pairs) if ok_pairs > 0 else 0.0,
            failures=n_fail,
            cycles=report.cycles,
        ))
    return ShootoutResult(size=size, nthreads=nthreads, iters=iters,
                          points=points)


def main():  # pragma: no cover - CLI convenience
    res = run()
    print(f"Allocator shootout ({res.size} B churn, {res.nthreads} threads, "
          f"{res.iters} iters):")
    print(res.table())
    return res


if __name__ == "__main__":  # pragma: no cover
    main()
