"""Cross-allocator shootout (extends the paper's Figure 7 comparison to
every §2.2 related-work design we implement).

One workload — a malloc/hold/free churn at a fixed small size — run
against: this paper's allocator (scalar and warp-coalesced), the
CUDA-like lock allocator, XMalloc-style bin stacks, ScatterAlloc-style
hashed pages, and the bump pointer.  Reports virtual throughput and the
failure count; the bump pointer additionally demonstrates its
fragmentation pathology (it fails once the pool's been written through,
regardless of frees).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..baselines import (
    BumpAllocator,
    CudaLikeAllocator,
    ScatterAlloc,
    XMalloc,
)
from ..core import AllocatorConfig, ThroughputAllocator
from ..sim import GPUDevice, DeviceMemory, Scheduler, ops
from .reporting import format_table, si

_NULL = DeviceMemory.NULL


@dataclass
class ShootoutPoint:
    name: str
    throughput: float  # successful ops (malloc+free pairs) per second
    failures: int
    cycles: int


@dataclass
class ShootoutResult:
    size: int
    nthreads: int
    iters: int
    points: List[ShootoutPoint]

    def table(self) -> str:
        base = {p.name: p for p in self.points}.get("ours (scalar)")
        rows = []
        for p in sorted(self.points, key=lambda p: -p.throughput):
            rel = (p.throughput / base.throughput) if base else 0.0
            rows.append([p.name, si(p.throughput), p.failures, f"{rel:.2f}x"])
        return format_table(
            ["allocator", "pairs/s", "failures", "vs ours"], rows
        )


def _churn_kernel(malloc_fn, free_fn, size, iters, failures):
    def kernel(ctx):
        f = 0
        for _ in range(iters):
            p = yield from malloc_fn(ctx, size)
            if p == _NULL:
                f += 1
                yield ops.cpu_yield()
                continue
            yield ops.sleep(ctx.rng.randrange(100))
            yield from free_fn(ctx, p)
        failures.append(f)

    return kernel


def run(
    size: int = 64,
    nthreads: int = 2048,
    iters: int = 2,
    device: Optional[GPUDevice] = None,
    seed: int = 9,
    pool: int = 1 << 20,
    which: Optional[List[str]] = None,
) -> ShootoutResult:
    """Run the churn shootout; returns per-allocator results."""
    device = device or GPUDevice(num_sms=2)
    points = []

    def build_ours(mem):
        cfg = AllocatorConfig(pool_order=(pool // 4096 - 1).bit_length())
        a = ThroughputAllocator(mem, device, cfg, checked=False)
        return a.malloc, a.free

    def build_ours_coalesced(mem):
        cfg = AllocatorConfig(pool_order=(pool // 4096 - 1).bit_length())
        a = ThroughputAllocator(mem, device, cfg, checked=False)
        return a.malloc_coalesced, a.free

    def build_cuda(mem):
        base = mem.host_alloc(pool, align=16)
        a = CudaLikeAllocator(mem, base, pool)
        return a.malloc, a.free

    def build_xmalloc(mem):
        base = mem.host_alloc(pool, align=4096)
        a = XMalloc(mem, base, pool)
        return a.malloc, a.free

    def build_scatter(mem):
        base = mem.host_alloc(pool, align=4096)
        a = ScatterAlloc(mem, base, pool)
        return a.malloc, a.free

    def build_bump(mem):
        base = mem.host_alloc(pool, align=16)
        a = BumpAllocator(mem, base, pool)
        return a.malloc, a.free

    builders: Dict[str, Callable] = {
        "ours (scalar)": build_ours,
        "ours (coalesced)": build_ours_coalesced,
        "CUDA-like": build_cuda,
        "XMalloc-like": build_xmalloc,
        "ScatterAlloc-like": build_scatter,
        "bump pointer": build_bump,
    }
    for name, build in builders.items():
        if which is not None and name not in which:
            continue
        mem = DeviceMemory(pool * 4 + (8 << 20))
        malloc_fn, free_fn = build(mem)
        failures: List[int] = []
        kernel = _churn_kernel(malloc_fn, free_fn, size, iters, failures)
        sched = Scheduler(mem, device, seed=seed)
        sched.launch(kernel, -(-nthreads // 256), min(256, nthreads))
        report = sched.run()
        n_fail = sum(failures)
        ok_pairs = nthreads * iters - n_fail
        points.append(ShootoutPoint(
            name=name,
            throughput=report.throughput(max(ok_pairs, 1)),
            failures=n_fail,
            cycles=report.cycles,
        ))
    return ShootoutResult(size=size, nthreads=nthreads, iters=iters,
                          points=points)


def main():  # pragma: no cover - CLI convenience
    res = run()
    print(f"Allocator shootout ({res.size} B churn, {res.nthreads} threads, "
          f"{res.iters} iters):")
    print(res.table())
    return res


if __name__ == "__main__":  # pragma: no cover
    main()
