"""Workload builders shared by benches, examples and tests.

Each builder returns a kernel (generator function) closed over its
parameters, plus whatever host-side result containers it populates.
Kernels follow the package convention: ``kernel(ctx, ...)`` yielding
simulator ops.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from ..sim import ops
from ..sim.device import rng_randbelow
from ..sim.memory import DeviceMemory

_NULL = DeviceMemory.NULL


def malloc_storm(allocator, size: int, out: Optional[List[int]] = None):
    """Every thread calls ``malloc(size)`` once (the Figure 7 workload).

    Returns ``(kernel, out)`` where ``out`` collects one address (or
    NULL) per completed thread.
    """
    if out is None:
        out = []

    def kernel(ctx):
        p = yield from allocator.malloc(ctx, size)
        out.append(p)

    return kernel, out


def churn(allocator, sizes: Sequence[int], iters: int,
          hold_cycles: int = 200, out: Optional[List[int]] = None):
    """Repeated malloc/hold/free cycles with sizes drawn per-thread.

    Exercises steady-state behaviour: bins filling and draining,
    retirement, merge traffic.  ``out`` records failed allocation counts
    per thread.
    """
    if out is None:
        out = []

    def kernel(ctx):
        failures = 0
        randbelow = rng_randbelow(ctx.rng)
        nsizes = len(sizes)
        tid = ctx.tid
        for i in range(iters):
            size = sizes[(tid + i) % nsizes]
            p = yield from allocator.malloc(ctx, size)
            if p == _NULL:
                failures += 1
                yield ops.cpu_yield()
                continue
            yield (ops.OP_SLEEP, randbelow(hold_cycles))
            yield from allocator.free(ctx, p)
        out.append(failures)

    return kernel, out


def producer_consumer(allocator, size: int, slots: int, mem, iters: int):
    """Half the threads allocate and publish pointers through a mailbox
    array; the other half consume and free them.

    Crosses frees between SMs/arenas (the paper's free-anywhere path).
    Returns ``(kernel, mailbox_addr)``; the mailbox must be zeroed
    between runs.

    Every producer iteration publishes exactly one token even when
    ``malloc`` fails: a NULL result is forwarded as a poison value the
    consumer consumes without freeing.  Skipping the publish instead
    (an earlier version did) livelocks an undersized pool — the paired
    consumer spins forever on a slot nobody will ever fill and the
    scheduler eventually reports a deadlock.
    """
    mailbox = mem.host_alloc(8 * slots)
    for i in range(slots):
        mem.store_word(mailbox + 8 * i, 0)

    # Slots hold p + 1 so that 0 means "empty"; NULL is 2**64 - 1, so
    # POISON (NULL as-is) can never collide with a published p + 1.
    poison = _NULL

    def kernel(ctx):
        half = ctx.nthreads // 2
        if ctx.tid < half:  # producer
            for i in range(iters):
                p = yield from allocator.malloc(ctx, size)
                token = poison if p == _NULL else p + 1
                slot = mailbox + 8 * ((ctx.tid + i) % slots)
                # publish; spin until the slot is empty
                while True:
                    old = yield ops.atomic_cas(slot, 0, token)
                    if old == 0:
                        break
                    yield ops.cpu_yield()
        else:  # consumer
            for i in range(iters):
                slot = mailbox + 8 * (((ctx.tid - half) + i) % slots)
                while True:
                    val = yield ops.atomic_exch(slot, 0)
                    if val:
                        break
                    yield ops.cpu_yield()
                if val != poison:
                    yield from allocator.free(ctx, val - 1)

    return kernel, mailbox


def mixed_size_trace(seed: int, n: int, classes: Sequence[int],
                     weights: Optional[Sequence[float]] = None) -> List[int]:
    """A deterministic per-call size trace for repeatable experiments."""
    rng = random.Random(seed)
    if weights is None:
        return [rng.choice(list(classes)) for _ in range(n)]
    return rng.choices(list(classes), weights=list(weights), k=n)
