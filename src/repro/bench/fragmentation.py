"""Fragmentation study: live bytes vs reserved bytes over churn rounds.

The paper's Figure 7 measures fragmentation indirectly through failed
allocations at exhaustion.  This complementary harness tracks it
directly over time: after each churn round (every thread mallocs, holds,
frees a random subset), it records

* ``live``      — bytes the application still holds;
* ``reserved``  — pool bytes the allocator cannot hand back to TBuddy
  (chunks kept by partially-used bins);
* ``overhead``  = reserved / live (1.0 is perfect).

Run against the paper's allocator and the bump pointer (whose reserved
bytes only ever grow — the Vinkler design the paper contrasts in §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..backends import get as get_backend
from ..sim import GPUDevice, DeviceMemory, Scheduler, ops
from .reporting import format_table

_NULL = DeviceMemory.NULL


@dataclass
class FragPoint:
    round: int
    live: int
    reserved: int

    @property
    def overhead(self) -> float:
        return self.reserved / self.live if self.live else float("inf")


@dataclass
class FragResult:
    ours: List[FragPoint] = field(default_factory=list)
    bump: List[FragPoint] = field(default_factory=list)

    def table(self) -> str:
        rows = []
        for o, b in zip(self.ours, self.bump):
            rows.append([
                o.round, o.live, o.reserved, f"{o.overhead:.2f}x",
                b.reserved, f"{b.overhead:.2f}x",
            ])
        return format_table(
            ["round", "live B", "ours reserved", "ours ovh",
             "bump reserved", "bump ovh"],
            rows,
        )


def _round_kernel(alloc, sizes, keep_mod, slots, round_no):
    """Each thread allocates one block; threads with
    ``tid % keep_mod != 0`` free it again at the end of the round."""

    def kernel(ctx):
        size = sizes[(ctx.tid * 7 + round_no) % len(sizes)]
        p = yield from alloc.malloc(ctx, size)
        if p == _NULL:
            return
        yield ops.sleep(ctx.rng.randrange(200))
        if ctx.tid % keep_mod != 0:
            yield from alloc.free(ctx, p)
        else:
            slots.append((p, size))

    return kernel


def run(
    rounds: int = 6,
    nthreads: int = 1024,
    keep_mod: int = 8,
    sizes=(8, 32, 64, 200, 1024),
    device: Optional[GPUDevice] = None,
    pool_order: int = 10,
    seed: int = 23,
) -> FragResult:
    """Run the churn-with-leak-in workload against both allocators."""
    device = device or GPUDevice(num_sms=2)
    res = FragResult()

    pool = 4096 << pool_order

    # --- ours -----------------------------------------------------------
    mem = DeviceMemory(pool * 2 + (16 << 20))
    handle = get_backend("ours").build(mem, device, pool, checked=False)
    alloc = handle.allocator
    kept: List[tuple] = []
    for r in range(rounds):
        sched = Scheduler(mem, device, seed=seed + r)
        sched.launch(_round_kernel(handle, sizes, keep_mod, kept, r),
                     -(-nthreads // 256), min(256, nthreads))
        sched.run()
        alloc.ualloc.host_gc()
        live = handle.used_bytes()
        reserved = alloc.cfg.pool_size - alloc.tbuddy.host_free_bytes()
        res.ours.append(FragPoint(r, live, reserved))

    # --- bump -----------------------------------------------------------
    mem2 = DeviceMemory(pool * 2 + (16 << 20))
    bhandle = get_backend("bump").build(mem2, device, pool, checked=False)
    kept2: List[tuple] = []
    live2 = 0
    for r in range(rounds):
        sched = Scheduler(mem2, device, seed=seed + r)
        before = len(kept2)
        sched.launch(_round_kernel(bhandle, sizes, keep_mod, kept2, r),
                     -(-nthreads // 256), min(256, nthreads))
        sched.run()
        live2 += sum(s for _, s in kept2[before:])
        res.bump.append(FragPoint(r, live2, bhandle.used_bytes()))

    return res


def main():  # pragma: no cover - CLI convenience
    res = run()
    print("Fragmentation over churn rounds (1/8 of blocks kept live):")
    print(res.table())
    return res


if __name__ == "__main__":  # pragma: no cover
    main()
