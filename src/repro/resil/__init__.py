"""repro.resil — deterministic fault injection and graceful degradation.

Forces the allocator's failure-recovery paths (renege arms, NULL
returns, lock-holder stalls, delayed RCU grace periods) to fire on a
replayable schedule, then checks that the system degrades gracefully
and recovers to a clean quiescent state.

Layout:

- :mod:`repro.resil.plan` — :class:`FaultPlan` / :class:`FaultRule`
  specs, the :data:`~repro.resil.plan.SITES` registry, and the
  :class:`FaultInjector` the scheduler consults at each
  :func:`~repro.sim.ops.fault_point`.
- :mod:`repro.resil.runner` — resilience cases (verify scenario x seed
  x plan), post-fault recovery assertions, byte-for-byte replay check.
- :mod:`repro.resil.bench` — throughput-degradation benchmark under
  injected fault rates (registered as the ``resil`` perf case).
- :mod:`repro.resil.cli` — ``python -m repro resil``.
"""

from .plan import (
    ALL_KINDS,
    SITES,
    STALL_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultRule,
)

__all__ = [
    "ALL_KINDS",
    "SITES",
    "STALL_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
]
