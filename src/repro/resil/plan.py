"""Deterministic fault plans: what to break, where, and when.

The allocator's failure-recovery machinery — ``renege`` after a failed
batch allocation (paper §3.3), NULL returns under pool exhaustion,
reserved waiters re-triaging when the expectation collapses — only
fires incidentally under organic pressure.  A :class:`FaultPlan` forces
those paths deterministically: device code yields
:func:`~repro.sim.ops.fault_point` probes at designated *sites*, and a
:class:`FaultInjector` (attached to the scheduler) decides, per
occurrence, whether the site fires.

Sites and their fault kinds
---------------------------

==================  ===========  ==============================================
site                kind         effect when fired
==================  ===========  ==============================================
``tbuddy.alloc``    null-alloc   ``TBuddy.alloc`` returns NULL before triage
                                 (``detail`` = requested order, so a rule can
                                 target one controlled depth)
``tbuddy.split``    renege       the split ascent fails *after* the order
                                 semaphore promised a batch — the failure arm
                                 must ``renege(1)`` (``detail`` = order)
``ualloc.new_chunk``  renege     the chunk allocation fails after the bin
                                 semaphore promised a batch — the failure arm
                                 must ``renege(n_regular_bins - 1)``
``tbuddy.lock``     stall        hold a TBuddy node lock for ``cycles`` extra
                                 cycles (``detail`` = node index)
``spinlock.hold``   stall        hold a :class:`~repro.sync.spinlock.SpinLock`
                                 for ``cycles`` extra cycles
``rcu.grace``       rcu-delay    stretch an RCU grace period by ``cycles``
                                 after the epoch flip (the barrier holder
                                 sleeps while holding the writer mutex)
==================  ===========  ==============================================

Fail-kind sites resume with ``"fail"``; stall-kind sites resume with
``None`` after the scheduler has charged the delay — the site code does
not branch on them.

Determinism and replay
----------------------

Decisions are pure functions of ``(plan, seed, occurrence order)``:
each rule owns a dedicated ``random.Random`` derived from the injector
seed, consumed once per considered occurrence, and occurrence order is
itself deterministic because the simulator is.  Re-running the same
``(scenario, seed, plan)`` therefore reproduces the identical fault
trace byte-for-byte — :meth:`FaultInjector.trace_text` is compared
verbatim by the resil runner's replay check.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: site name -> (fault kind, human description)
SITES: Dict[str, Tuple[str, str]] = {
    "tbuddy.alloc": (
        "null-alloc",
        "TBuddy alloc returns NULL before triage (detail = order)",
    ),
    "tbuddy.split": (
        "renege",
        "split ascent fails after the batch promise -> renege(1) "
        "(detail = order)",
    ),
    "ualloc.new_chunk": (
        "renege",
        "chunk allocation fails after the bin-sem batch promise -> "
        "renege(n_regular_bins - 1)",
    ),
    "tbuddy.lock": (
        "stall",
        "hold a TBuddy node lock for extra cycles (detail = node)",
    ),
    "spinlock.hold": (
        "stall",
        "hold a SpinLock for extra cycles",
    ),
    "rcu.grace": (
        "rcu-delay",
        "stretch an RCU grace period after the epoch flip",
    ),
}

#: kinds whose effect is a scheduler-applied delay (not a failure arm)
STALL_KINDS = frozenset({"stall", "rcu-delay"})

#: every distinct fault kind a plan can inject
ALL_KINDS = tuple(sorted({kind for kind, _ in SITES.values()}))

_RULE_DEFAULTS = {"p": 1.0, "every": 0, "max": 0, "after": 0,
                  "cycles": 2000, "detail": None}


class FaultPlanError(ValueError):
    """A fault plan or rule spec is malformed."""


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: a site plus a firing schedule.

    Parameters
    ----------
    site:
        One of :data:`SITES`.
    p:
        Firing probability per matching occurrence (ignored when
        ``every`` is set).
    every:
        Fire deterministically on every ``every``-th matching
        occurrence instead of sampling (0 = use ``p``).
    max:
        Cap on total fires (0 = unlimited).
    after:
        Skip the first ``after`` occurrences of the site.
    cycles:
        Stall duration for stall-kind sites (ignored by fail kinds).
    detail:
        If set, only occurrences whose ``detail`` equals this fire —
        e.g. NULL-allocs at one controlled TBuddy order.
    """

    site: str
    p: float = 1.0
    every: int = 0
    max: int = 0
    after: int = 0
    cycles: int = 2000
    detail: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r}; "
                f"choose from {', '.join(sorted(SITES))}"
            )
        if not (0.0 < self.p <= 1.0):
            raise FaultPlanError(f"{self.site}: p must be in (0, 1] (got {self.p})")
        for name in ("every", "max", "after"):
            if getattr(self, name) < 0:
                raise FaultPlanError(f"{self.site}: {name} must be >= 0")
        if self.cycles <= 0:
            raise FaultPlanError(f"{self.site}: cycles must be > 0")

    @property
    def kind(self) -> str:
        """The fault kind this rule injects (derived from the site)."""
        return SITES[self.site][0]

    @property
    def spec(self) -> str:
        """Canonical ``key=value`` spec (defaults omitted)."""
        parts = [f"site={self.site}"]
        for key in ("p", "every", "max", "after", "cycles", "detail"):
            value = getattr(self, key)
            if value != _RULE_DEFAULTS[key]:
                parts.append(f"p={value:g}" if key == "p" else f"{key}={value}")
        return ",".join(parts)

    @classmethod
    def parse(cls, spec: str) -> "FaultRule":
        """Inverse of :attr:`spec`."""
        kwargs: Dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep:
                raise FaultPlanError(f"bad rule item {part!r} (want key=value)")
            if key == "site":
                kwargs["site"] = value.strip()
            elif key == "p":
                kwargs["p"] = float(value)
            elif key in ("every", "max", "after", "cycles", "detail"):
                kwargs[key] = int(value)
            else:
                raise FaultPlanError(f"unknown rule key {key!r}")
        if "site" not in kwargs:
            raise FaultPlanError(f"rule {spec!r} is missing site=")
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, replayable set of :class:`FaultRule`\\ s."""

    rules: Tuple[FaultRule, ...] = ()

    @property
    def spec(self) -> str:
        """Canonical ``rule;rule;...`` wire format (empty = no faults)."""
        return ";".join(r.spec for r in self.rules)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Inverse of :attr:`spec`; accepts the empty string."""
        spec = spec.strip()
        if not spec:
            return cls()
        return cls(tuple(FaultRule.parse(part)
                         for part in spec.split(";") if part.strip()))

    @property
    def kinds(self) -> Tuple[str, ...]:
        """Distinct fault kinds this plan can inject, sorted."""
        return tuple(sorted({r.kind for r in self.rules}))

    def __len__(self) -> int:
        return len(self.rules)

    def __bool__(self) -> bool:
        return bool(self.rules)

    def __str__(self) -> str:
        return self.spec or "<no faults>"


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the trace."""

    index: int
    t: int
    tid: int
    site: str
    detail: int
    kind: str
    arg: int  # stall cycles for stall kinds, 0 otherwise

    @property
    def line(self) -> str:
        """Canonical one-line rendering (the replay-compared format)."""
        return (f"#{self.index} t={self.t} tid={self.tid} "
                f"{self.site}[{self.detail}] -> {self.kind}({self.arg})")


class FaultInjector:
    """Binds a :class:`FaultPlan` to a seed; attached to a Scheduler.

    The scheduler calls :meth:`decide` once per executed
    :func:`~repro.sim.ops.fault_point`; every fired fault is appended
    to :attr:`events` with its exact virtual time, forming the
    deterministic fault trace.

    One injector may observe several consecutive ``run()`` phases of
    the same scheduler (occurrence counters persist), but must not be
    shared between schedulers of different cases.
    """

    __slots__ = ("plan", "seed", "events", "_by_site", "_occurrences",
                 "_fired", "_rngs")

    def __init__(self, plan: FaultPlan, seed: int = 0):
        self.plan = plan
        self.seed = seed
        self.events: List[FaultEvent] = []
        self._by_site: Dict[str, List[Tuple[int, FaultRule]]] = {}
        for idx, rule in enumerate(plan.rules):
            self._by_site.setdefault(rule.site, []).append((idx, rule))
        self._occurrences: Dict[str, int] = {}
        self._fired: Dict[int, int] = {}
        self._rngs: Dict[int, random.Random] = {
            idx: random.Random((seed * 0x9E3779B9) ^ (idx + 1))
            for idx in range(len(plan.rules))
        }

    # -- scheduler side -------------------------------------------------
    def decide(self, tid: int, site: str, detail: int,
               t: int) -> Tuple[Optional[str], int]:
        """Decide one fault-point occurrence.

        Returns ``(outcome, delay)``: ``outcome`` is ``"fail"`` or
        ``None`` (sent back to the device code), ``delay`` the stall in
        cycles the scheduler charges before resuming the thread.
        """
        occ = self._occurrences.get(site, 0)
        self._occurrences[site] = occ + 1
        for idx, rule in self._by_site.get(site, ()):
            if rule.detail is not None and detail != rule.detail:
                continue
            if occ < rule.after:
                continue
            if rule.max and self._fired.get(idx, 0) >= rule.max:
                continue
            if rule.every:
                if (occ - rule.after) % rule.every != 0:
                    continue
            elif self._rngs[idx].random() >= rule.p:
                continue
            kind = rule.kind
            stall = kind in STALL_KINDS
            arg = rule.cycles if stall else 0
            self._fired[idx] = self._fired.get(idx, 0) + 1
            self.events.append(FaultEvent(
                index=len(self.events), t=t, tid=tid, site=site,
                detail=detail, kind=kind, arg=arg,
            ))
            return (None, arg) if stall else ("fail", 0)
        return (None, 0)

    # -- host side ------------------------------------------------------
    @property
    def n_injected(self) -> int:
        return len(self.events)

    @property
    def counts_by_kind(self) -> Dict[str, int]:
        """Injected fault counts keyed by kind, sorted by kind."""
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return dict(sorted(out.items()))

    @property
    def counts_by_site(self) -> Dict[str, int]:
        """Injected fault counts keyed by site, sorted by site."""
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.site] = out.get(ev.site, 0) + 1
        return dict(sorted(out.items()))

    def trace_lines(self) -> List[str]:
        return [ev.line for ev in self.events]

    def trace_text(self) -> str:
        """The canonical fault trace; byte-for-byte reproducible for a
        fixed ``(workload, seed, plan)``."""
        return "\n".join(self.trace_lines())
