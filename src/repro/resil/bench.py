"""Throughput degradation under injected fault rates (the resil bench).

One churn workload — every thread runs ``malloc_robust``/hold/``free``
cycles over a size mix spanning both allocators (UAlloc bins plus a
TBuddy-routed coarse size, so every fault site is live) — executed at
several *fault levels*: the same ``(seed,
workload)`` with no fault plan ("clean"), a light plan, and a heavy
plan layering null-allocs, split-ascent reneges and lock-holder stalls.
Reported per level:

* virtual throughput (successful malloc/free pairs per virtual second),
* the retained-throughput ratio vs the clean run (the graceful-
  degradation headline: how much of the fault-free rate survives),
* the hard-failure rate (robust retries exhausted -> NULL handed to the
  caller), and
* the injected-fault and retry counts.

Every level must end quiescent and leak-free — a fault plan that
corrupts recovery fails the bench rather than reporting a throughput
for a broken heap — so the bench doubles as a coarse resilience check
on exactly the configuration it measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..backends import get as get_backend
from ..sim import DeviceMemory, GPUDevice, Scheduler, ops
from ..bench.reporting import format_table, si
from .plan import FaultInjector, FaultPlan

_NULL = DeviceMemory.NULL

#: (level name, fault-plan spec) — "" means no injector at all.
DEFAULT_LEVELS: Tuple[Tuple[str, str], ...] = (
    ("clean", ""),
    ("light",
     "site=tbuddy.alloc,p=0.05,max=32;"
     "site=tbuddy.lock,p=0.03,cycles=4000;"
     "site=spinlock.hold,p=0.02,cycles=4000"),
    ("heavy",
     "site=tbuddy.alloc,p=0.5,max=256;"
     "site=tbuddy.split,p=0.3,max=64;"
     "site=tbuddy.lock,p=0.15,cycles=12000;"
     "site=spinlock.hold,p=0.1,cycles=12000"),
)


@dataclass
class ResilBenchPoint:
    """One fault level's measured outcome."""

    level: str
    plan: str
    throughput: float      # successful malloc/free pairs per virtual second
    failures: int          # NULLs surfaced to the workload (retries exhausted)
    retries: int           # robust retry attempts across all threads
    faults: int            # faults injected by the plan
    cycles: int
    attempts: int = 0      # malloc_robust calls issued

    @property
    def failure_rate(self) -> float:
        return self.failures / self.attempts if self.attempts else 0.0


@dataclass
class ResilBenchResult:
    sizes: Tuple[int, ...]
    nthreads: int
    iters: int
    points: List[ResilBenchPoint]

    def point(self, level: str) -> ResilBenchPoint:
        for p in self.points:
            if p.level == level:
                return p
        raise KeyError(f"no level {level!r} in resil bench result")

    def retained(self, level: str) -> float:
        """Fraction of clean throughput retained at ``level``."""
        clean = self.point("clean").throughput
        return self.point(level).throughput / clean if clean else 0.0

    def table(self) -> str:
        rows = []
        for p in self.points:
            rows.append([
                p.level, si(p.throughput),
                f"{self.retained(p.level):.2f}x",
                p.faults, p.retries, p.failures,
            ])
        return format_table(
            ["level", "pairs/s", "retained", "faults", "retries", "failures"],
            rows,
        )


def _run_level(plan_spec: str, sizes: Sequence[int], nthreads: int,
               iters: int, seed: int, pool_order: int,
               hold_cycles: int) -> ResilBenchPoint:
    mem = DeviceMemory(16 << 20)
    device = GPUDevice(num_sms=4, max_resident_blocks=2)
    # The degradation bench measures ``malloc_robust``, which only the
    # paper allocator has; build it through the registry all the same so
    # its construction matches every other consumer.
    handle = get_backend("ours").build(mem, device, 4096 << pool_order)
    alloc = handle.allocator
    plan = FaultPlan.parse(plan_spec) if plan_spec else FaultPlan()
    inj = FaultInjector(plan, seed=seed) if plan else None
    failures: List[int] = []

    def kernel(ctx):
        f = 0
        for i in range(iters):
            size = sizes[(ctx.tid + i) % len(sizes)]
            p = yield from alloc.malloc_robust(ctx, size)
            if p == _NULL:
                f += 1
                yield ops.cpu_yield()
                continue
            yield ops.sleep(ctx.rng.randrange(hold_cycles))
            yield from alloc.free(ctx, p)
        failures.append(f)

    sched = Scheduler(mem, device, seed=seed, fault_injector=inj)
    sched.launch(kernel, -(-nthreads // 64), min(64, nthreads))
    report = sched.run()
    # The measured configuration must also *recover*: quiescent heap,
    # clean semaphore ledgers, zero live bytes.
    alloc.host_checkpoint(expect_leak_free=True)
    n_fail = sum(failures)
    ok_pairs = nthreads * iters - n_fail
    return ResilBenchPoint(
        level="",  # caller fills in
        plan=plan.spec,
        throughput=report.throughput(ok_pairs) if ok_pairs > 0 else 0.0,
        failures=n_fail,
        retries=alloc.stats.n_robust_retries,
        faults=inj.n_injected if inj is not None else 0,
        cycles=report.cycles,
        attempts=nthreads * iters,
    )


def run(sizes: Sequence[int] = (64, 256, 4096), nthreads: int = 128,
        iters: int = 2, seed: int = 17, pool_order: int = 9,
        hold_cycles: int = 200,
        levels: Sequence[Tuple[str, str]] = DEFAULT_LEVELS,
        ) -> ResilBenchResult:
    """Run the degradation sweep; one fresh allocator per level."""
    points = []
    for name, spec in levels:
        p = _run_level(spec, sizes, nthreads, iters, seed,
                       pool_order, hold_cycles)
        p.level = name
        points.append(p)
    return ResilBenchResult(sizes=tuple(sizes), nthreads=nthreads,
                            iters=iters, points=points)


def main() -> Optional[ResilBenchResult]:  # pragma: no cover - CLI convenience
    res = run()
    sizes = "/".join(str(s) for s in res.sizes)
    print(f"Throughput under injected faults ({sizes} B churn, "
          f"{res.nthreads} threads, {res.iters} iters):")
    print(res.table())
    return res


if __name__ == "__main__":  # pragma: no cover
    main()
