"""``python -m repro resil`` — the fault-injection / resilience CLI.

Usage::

    python -m repro resil run --tier quick      # CI smoke deck
    python -m repro resil run --tier full       # nightly deck
    python -m repro resil run --workers 4       # shard the deck (see par)
    python -m repro resil run --scenario churn  # restrict scenarios
    python -m repro resil run --case 'storm:1:site=tbuddy.split,p=0.5'
    python -m repro resil replay 'storm:1:site=tbuddy.split,p=0.5,max=8'
    python -m repro resil list                  # sites, kinds, decks

Every case runs a verify scenario under a deterministic fault plan and
must pass the post-fault recovery assertions (quiescent
``host_checkpoint``, pressure-gauge/tree agreement, no lost supply).
``run`` executes each case twice and compares the fault traces
byte-for-byte (``--no-replay-check`` skips the second run); ``replay``
re-executes one case and prints its full fault trace.  Exit status is
0 iff every case passed.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from ..sim.scheduler import ENGINES
from ..verify.runner import SCENARIOS
from .plan import SITES
from .runner import (
    TIERS,
    ResilResult,
    ResilSpec,
    deck_for,
    kinds_injected,
    run_case,
    run_deck,
)


def _report(results: List[ResilResult], elapsed: float) -> int:
    failures = [r for r in results if not r.ok]
    kinds = kinds_injected(results)
    total = sum(r.n_injected for r in results)
    summary = ", ".join(f"{k}: {v}" for k, v in kinds.items()) or "none"
    print(f"\n{total} faults injected across {len(results)} case(s) "
          f"({summary})")
    if not failures:
        print(f"all {len(results)} cases recovered ({elapsed:.1f}s)")
        return 0
    print(f"{len(failures)} failing case(s):")
    for res in failures:
        print(res.describe())
        print(f"  replay: python -m repro resil replay '{res.spec.replay}'")
    print(f"({elapsed:.1f}s)")
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro resil",
        description="Deterministic fault injection: verify scenarios run "
                    "under replayable fault plans with post-fault recovery "
                    "assertions.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a resilience deck")
    p_run.add_argument(
        "--tier", choices=TIERS, default="quick",
        help="deck size: quick (CI smoke) or full (nightly); default quick",
    )
    p_run.add_argument(
        "--scenario", action="append", choices=sorted(SCENARIOS),
        metavar="NAME", default=None,
        help="restrict the deck to cases of a scenario (repeatable)",
    )
    p_run.add_argument(
        "--case", action="append", metavar="SPEC", default=None,
        help="run explicit case(s) 'scenario:seed:fault-plan' instead of "
             "a deck (repeatable)",
    )
    p_run.add_argument(
        "--engine", choices=ENGINES, default="event",
        help="scheduler run loop for deck cases (default 'event'); "
             "explicit --case specs carry their own [/engine] qualifier",
    )
    p_run.add_argument(
        "--no-replay-check", action="store_true",
        help="skip the second run that verifies the fault trace is "
             "reproduced byte-for-byte",
    )
    p_run.add_argument(
        "--fail-fast", action="store_true",
        help="stop at the first failing case",
    )
    p_run.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard the deck across N worker processes (0 = one per "
             "CPU; default 1 = serial); results merge in deck order and "
             "are identical to a serial run",
    )

    p_replay = sub.add_parser(
        "replay", help="re-execute one case and print its fault trace"
    )
    p_replay.add_argument(
        "spec", metavar="SPEC",
        help="case spec 'scenario:seed:fault-plan' (as printed by run)",
    )

    sub.add_parser("list", help="print fault sites, kinds, and decks")

    args = parser.parse_args(argv)

    if args.command == "list":
        print("fault sites:")
        for site, (kind, desc) in sorted(SITES.items()):
            print(f"  {site:18s} {kind:10s} {desc}")
        for tier in TIERS:
            deck = deck_for(tier)
            print(f"\n{tier} deck ({len(deck)} cases):")
            for spec in deck:
                print(f"  {spec.replay}")
        return 0

    t0 = time.time()
    if args.command == "replay":
        try:
            spec = ResilSpec.parse(args.spec)
        except ValueError as e:
            parser.error(str(e))
        print(f"replaying {spec.replay} ...")
        res = run_case(spec, replay_check=True)
        print(res.describe())
        if res.trace:
            print("fault trace:")
            for line in res.trace.splitlines():
                print(f"  {line}")
        print(f"({time.time() - t0:.1f}s)")
        return 0 if res.ok else 1

    # run
    if args.case:
        try:
            deck = [ResilSpec.parse(s) for s in args.case]
        except ValueError as e:
            parser.error(str(e))
    else:
        deck = deck_for(args.tier, engine=args.engine)
        if args.scenario:
            deck = [s for s in deck if s.scenario in args.scenario]
            if not deck:
                parser.error(
                    f"no {args.tier}-deck cases for scenario(s) "
                    f"{', '.join(args.scenario)}"
                )
    print(f"resil: running {len(deck)} case(s)"
          + (" (replay check off)" if args.no_replay_check else ""))
    results = run_deck(
        deck, replay_check=not args.no_replay_check,
        fail_fast=args.fail_fast, log=print, workers=args.workers,
    )
    return _report(results, time.time() - t0)


if __name__ == "__main__":  # pragma: no cover - python -m repro resil is the entry
    sys.exit(main())
