"""Resilience cases: verify scenarios run under a fault plan.

A resilience *case* is one :mod:`repro.verify` scenario executed with a
:class:`~repro.resil.plan.FaultInjector` attached to the scheduler.
The scenario's own quiescent checkpoints run as usual — so a fault
whose failure arm leaks a promise (``E != 0``), strands a waiter
(``R != 0``), corrupts the tree, or loses bytes fails the case exactly
like an organic bug would — and the runner layers post-fault recovery
assertions on top:

* the final ``host_checkpoint`` must pass *after* the injected faults
  (every injected renege left ``E == R == 0`` at quiescence, no leaked
  promises);
* the host pressure gauge must agree with the quiescent tree — the
  semaphore ledgers and the tree shape reconcile byte-for-byte, and a
  leak-free scenario ends with the whole pool free;
* the case must actually inject (``min_injected``) — a plan whose site
  is never reached verifies nothing and is reported as a failure, not
  silently passed;
* replaying the same ``(scenario, seed, plan)`` must reproduce the
  identical fault trace byte-for-byte (``--no-replay-check`` skips the
  second run).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from ..sim.errors import SimError
from ..sim.scheduler import ENGINES, use_engine
from ..verify.perturbation import Perturbation
from ..verify.runner import SCENARIOS, _Harness
from .plan import FaultInjector, FaultPlan

#: nominal sizes for ``run_deck(tier=...)``
TIERS = ("quick", "full")


@dataclass(frozen=True)
class ResilSpec:
    """One replayable resilience case."""

    scenario: str
    seed: int
    plan: FaultPlan = FaultPlan()
    #: fail the case unless at least this many faults were injected
    min_injected: int = 1
    #: registry name of the allocator under test (fault sites that live
    #: in shared machinery — ``spinlock.hold`` — fire for any backend
    #: built on it; ours-specific sites only fire for ours)
    backend: str = "ours"
    #: scheduler run loop the case executes under; part of the replay
    #: spec so a fault trace reproduces under the engine that made it
    engine: str = "event"

    @property
    def replay(self) -> str:
        """``scenario[@backend][/engine]:seed:planspec`` — the ``replay``
        CLI argument.  Plan specs never contain ``:``, so the triple
        splits cleanly; the ``@backend`` and ``/engine`` qualifiers are
        omitted for the defaults (``ours``, ``event``) so historic
        replay strings stay valid."""
        scen = self.scenario
        if self.backend != "ours":
            scen = f"{scen}@{self.backend}"
        if self.engine != "event":
            scen = f"{scen}/{self.engine}"
        return f"{scen}:{self.seed}:{self.plan.spec}"

    @classmethod
    def parse(cls, replay: str) -> "ResilSpec":
        parts = replay.split(":", 2)
        if len(parts) < 2:
            raise ValueError(
                f"bad resil replay spec {replay!r} "
                "(want scenario[@backend][/engine]:seed[:fault-plan])"
            )
        scenario, seed = parts[0], int(parts[1])
        engine = "event"
        if "/" in scenario:
            scenario, engine = scenario.rsplit("/", 1)
            if engine not in ENGINES:
                raise ValueError(
                    f"bad resil replay spec {replay!r}: unknown engine "
                    f"{engine!r} (choose from {', '.join(ENGINES)})"
                )
        backend = "ours"
        if "@" in scenario:
            scenario, backend = scenario.split("@", 1)
        if not scenario or not backend:
            raise ValueError(
                f"bad resil replay spec {replay!r}: empty "
                f"{'scenario' if not scenario else 'backend'} fragment "
                "(want scenario[@backend][/engine]:seed[:fault-plan])"
            )
        plan = FaultPlan.parse(parts[2]) if len(parts) == 3 else FaultPlan()
        return cls(scenario, seed, plan, backend=backend, engine=engine)

    def __str__(self) -> str:
        return self.replay


@dataclass
class ResilResult:
    """Outcome of one executed resilience case."""

    spec: ResilSpec
    error: Optional[str] = None
    n_injected: int = 0
    counts_by_kind: Dict[str, int] = field(default_factory=dict)
    trace: str = ""
    #: None = replay check not run; True/False = trace reproduced or not
    replay_ok: Optional[bool] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.replay_ok is not False

    def describe(self) -> str:
        kinds = ",".join(f"{k}={v}" for k, v in self.counts_by_kind.items())
        tag = f"[{self.n_injected} faults: {kinds}]" if kinds else "[0 faults]"
        if self.ok:
            return f"PASS {self.spec} {tag}"
        lines = [f"FAIL {self.spec} {tag}"]
        if self.error:
            lines.append(f"  error: {self.error}")
        if self.replay_ok is False:
            lines.append("  error: fault trace not reproduced on replay")
        return "\n".join(lines)


def _run_once(spec: ResilSpec) -> ResilResult:
    """Execute the case once and apply the recovery assertions."""
    if spec.scenario not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {spec.scenario!r}; "
            f"choose from {', '.join(sorted(SCENARIOS))}"
        )
    harness_kwargs, scenario = SCENARIOS[spec.scenario]
    inj = FaultInjector(spec.plan, seed=spec.seed)
    result = ResilResult(spec)
    try:
        # Pinned for the whole case (scenarios re-enter Scheduler.run),
        # so the fault trace reproduces under the spec's engine.
        with use_engine(spec.engine):
            h = _Harness(spec.seed, Perturbation(), checker=None,
                         fault_injector=inj, backend=spec.backend,
                         **harness_kwargs)
            scenario(h)
        # Post-fault recovery assertions.  The scenario's final
        # checkpoint already validated every structural and accounting
        # invariant after the faults; re-assert the parts the paper's
        # failure protocol owes us, explicitly and in resilience terms.
        # The checkpoint itself is backend-uniform; the gauge/tree
        # reconciliation below is the paper allocator's own ledger and
        # only exists there.
        h.handle.host_checkpoint(expect_leak_free=True)
        if hasattr(h.alloc, "host_pressure"):
            gauge = h.alloc.host_pressure()
            tree_free = h.alloc.tbuddy.host_free_bytes()
            assert gauge.free_bytes == tree_free, (
                f"pressure gauge reads {gauge.free_bytes} free bytes but "
                f"the quiescent tree holds {tree_free}: semaphore ledgers "
                "and tree shape disagree after fault recovery"
            )
            assert gauge.free_bytes == h.cfg.pool_size, (
                f"only {gauge.free_bytes}/{h.cfg.pool_size} bytes free "
                "after a leak-free scenario: fault recovery lost supply"
            )
        assert inj.n_injected >= spec.min_injected, (
            f"only {inj.n_injected} faults injected "
            f"(expected >= {spec.min_injected}): the plan's sites were "
            "not reached and the case verified nothing"
        )
    except (SimError, AssertionError) as exc:
        result.error = f"{type(exc).__name__}: {exc}"
    result.n_injected = inj.n_injected
    result.counts_by_kind = inj.counts_by_kind
    result.trace = inj.trace_text()
    return result


def run_case(spec: ResilSpec, replay_check: bool = True) -> ResilResult:
    """Execute one resilience case; never raises for case failures.

    With ``replay_check`` (the default) the case runs twice and the two
    fault traces are compared byte-for-byte — determinism of the whole
    (workload, scheduler, injector) stack is part of the contract.
    """
    result = _run_once(spec)
    if replay_check:
        second = _run_once(spec)
        result.replay_ok = (second.trace == result.trace
                            and second.error == result.error)
    return result


# ----------------------------------------------------------------------
# decks
# ----------------------------------------------------------------------
def _spec(scenario: str, seed: int, planspec: str,
          min_injected: int = 1, backend: str = "ours") -> ResilSpec:
    return ResilSpec(scenario, seed, FaultPlan.parse(planspec),
                     min_injected, backend)


#: CI smoke deck — covers all four fault kinds (renege, null-alloc,
#: stall, rcu-delay) across both allocators' failure arms.
QUICK_DECK: List[ResilSpec] = [
    # renege: TBuddy split ascent fails after the order-sem promise
    _spec("storm", 1, "site=tbuddy.split,p=0.5,max=8"),
    # null-alloc: TBuddy returns NULL at uncontrolled depths
    _spec("storm", 2, "site=tbuddy.alloc,p=0.25,max=12"),
    # null-alloc at one controlled depth: only chunk-order allocations
    # fail, driving UAlloc's new-chunk renege arm specifically
    _spec("storm", 3, "site=tbuddy.alloc,detail=6,p=1,max=4"),
    # renege: chunk allocation fails after the bin-sem batch promise
    _spec("churn", 1, "site=ualloc.new_chunk,p=1,max=4"),
    # stall: lock holders hold SpinLocks for 3k extra cycles
    _spec("churn", 2, "site=spinlock.hold,p=0.05,cycles=3000"),
    # stall: TBuddy node locks held mid-transition
    _spec("storm", 4, "site=tbuddy.lock,p=0.05,cycles=2000,max=50"),
    # rcu-delay: grace periods stretched while holding the writer mutex
    _spec("churn", 3, "site=rcu.grace,p=1,cycles=5000,max=8"),
    # mixed plan: reneges under oom pressure plus lock-holder stalls
    _spec("storm_oom", 1,
          "site=tbuddy.split,p=0.3,max=6;"
          "site=tbuddy.lock,p=0.02,cycles=1500,max=20"),
    # stall the *baselines'* global locks: spinlock.hold lives in the
    # shared SpinLock, so the same scenarios exercise any backend built
    # on it through the registry
    _spec("churn", 1, "site=spinlock.hold,p=0.05,cycles=3000",
          backend="cuda"),
    _spec("churn", 2, "site=spinlock.hold,p=0.05,cycles=2000",
          backend="lock-buddy"),
    # multi-tenant workload under faults: per-tenant accounting and the
    # leak-free end must survive NULL injections (skipped-free protocol)
    # and lock-holder stalls alike
    _spec("multi_tenant", 1, "site=tbuddy.alloc,p=0.2,max=10"),
    _spec("multi_tenant", 2, "site=spinlock.hold,p=0.05,cycles=2000"),
    # served session under faults: admission ledgers, episode batching
    # and the skipped-free protocol must reconcile when NULLs are
    # injected mid-episode (the refund path) and recovery must still
    # end leak-free
    _spec("serve_session", 1, "site=tbuddy.alloc,p=0.2,max=8"),
]

#: nightly deck — quick plus higher rates, more seeds, more scenarios.
FULL_DECK: List[ResilSpec] = QUICK_DECK + [
    _spec("storm", 5, "site=tbuddy.split,p=1,max=20"),
    _spec("storm", 6, "site=tbuddy.alloc,p=0.5,max=40"),
    _spec("churn", 4, "site=ualloc.new_chunk,every=2,max=8"),
    _spec("churn", 5, "site=spinlock.hold,p=0.15,cycles=8000"),
    _spec("producer_consumer", 1, "site=spinlock.hold,every=3,cycles=4000"),
    _spec("producer_consumer", 2, "site=rcu.grace,p=1,cycles=10000,max=4"),
    _spec("storm_oom", 2, "site=tbuddy.alloc,p=0.4,max=30"),
    _spec("storm_oom", 3,
          "site=tbuddy.split,p=0.5,max=10;"
          "site=ualloc.new_chunk,p=0.5,max=6;"
          "site=spinlock.hold,p=0.05,cycles=2000"),
    _spec("storm", 7, "site=spinlock.hold,p=0.1,cycles=4000",
          backend="cuda"),
    _spec("producer_consumer", 3,
          "site=spinlock.hold,every=4,cycles=3000", backend="lock-buddy"),
    _spec("multi_tenant", 3, "site=tbuddy.split,p=0.5,max=8"),
    _spec("trace_replay", 1, "site=tbuddy.alloc,p=0.3,max=12"),
    _spec("multi_tenant", 1, "site=spinlock.hold,p=0.05,cycles=2000",
          backend="cuda"),
    _spec("serve_session", 2, "site=spinlock.hold,p=0.05,cycles=2000"),
    _spec("serve_session", 3, "site=tbuddy.split,p=0.4,max=6"),
]


def deck_for(tier: str, engine: str = "event") -> List[ResilSpec]:
    if tier == "quick":
        deck = list(QUICK_DECK)
    elif tier == "full":
        deck = list(FULL_DECK)
    else:
        raise ValueError(
            f"unknown tier {tier!r}; choose from {', '.join(TIERS)}")
    if engine != "event":
        deck = [replace(spec, engine=engine) for spec in deck]
    return deck


def run_deck(deck: Sequence[ResilSpec], replay_check: bool = True,
             fail_fast: bool = False,
             log: Optional[Callable[[str], None]] = None,
             workers: int = 1) -> List[ResilResult]:
    """Run every case in ``deck``; returns all results.

    ``workers > 1`` shards the deck across processes.  Every case is
    self-contained (seeded simulator + deterministic fault plan), so
    the merged results — returned in deck order, the canonical order —
    are identical to a serial run's.  A sharded ``fail_fast`` run still
    executes the whole deck but truncates the returned list at the
    first failure, preserving the serial contract.
    """
    if workers > 1 and len(deck) > 1:
        from ..par.pool import map_sharded

        results = map_sharded(
            functools.partial(run_case, replay_check=replay_check),
            list(deck), workers=workers, log=log,
            label=lambda s: s.replay,
        )
        if log is not None:
            for res in results:
                log(res.describe())
        if fail_fast:
            for i, res in enumerate(results):
                if not res.ok:
                    return results[:i + 1]
        return results
    results: List[ResilResult] = []
    for spec in deck:
        res = run_case(spec, replay_check=replay_check)
        results.append(res)
        if log is not None:
            log(res.describe())
        if fail_fast and not res.ok:
            break
    return results


def kinds_injected(results: Sequence[ResilResult]) -> Dict[str, int]:
    """Aggregate injected fault counts by kind across results."""
    out: Dict[str, int] = {}
    for res in results:
        for kind, n in res.counts_by_kind.items():
            out[kind] = out.get(kind, 0) + n
    return dict(sorted(out.items()))
