"""Scheduler-hook-based race detection for the allocator's protocols.

:class:`RaceChecker` subclasses :class:`~repro.sim.trace.Tracer` and
overrides the per-memory-op hook (``mem_op``), so it sees every load,
store and atomic the scheduler executes, plus the structured attach
points (lock spans, list unlinks, RCU grace periods).  It checks three
protocol families:

**Bit-locks** (TBuddy node words, ``LOCK_BIT`` 0b100).  A successful CAS
that sets the bit acquires; clearing the bit releases.  Violations:

* a plain store to any tree word by a thread that does not hold that
  node's lock — this clobbers a concurrent holder's lock bit (a DFS
  that loaded the word before the subtree went BUSY may transiently
  lock a now-BUSY node: ``_lock`` CASes whatever word it re-loads, and
  ``expect_state`` is only checked *after* locking);
* the lock bit cleared (AND/CAS/store) by a thread that never acquired
  it;
* raw read-modify-write atomics that could forge or drop the bit.

**Spinlocks** (one word, 0 free / 1 held).  ``CAS(0→1)`` acquires,
``exch(→0)`` releases.  Violations: release by a non-owner, release of
an unheld lock, any plain store to a lock word.

**RCU deferred reclamation.**  When a node is unlinked from a watched
list (:meth:`~repro.sim.trace.Tracer.list_removed`), its *identity*
header words — links, size, capacity, magic — are quarantined: a write
by any other thread before the domain's next grace period is a
use-after-unlink.  Mutable words that legitimately change while
unlinked (block counts, bitmaps, flags) are not quarantined.
Re-insertion lifts the quarantine (the hook fires *before* the link
writes), and a grace period lifts every quarantine whose unlink
happened before the epoch flip — the hook fires before callbacks run,
so post-grace reuse by reclamation callbacks is clean.

The checker never throws from the hot path; findings accumulate in
:attr:`RaceChecker.findings` (bounded), and the runner fails a case
when any survive.  At quiescent checkpoints, call :meth:`quiesce` —
it flags locks still held with no device thread running, then resets
transient state so host-side activity between phases cannot go stale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core import bin_ as _bin
from ..core.tbuddy import LOCK_BIT, TBuddy
from ..sim import ops as _ops
from ..sim.trace import Tracer

#: quarantined (identity) header offsets for an unlinked UAlloc bin:
#: size, list links, capacity, owning chunk, magic.  COUNT, FLAGS and
#: the block bitmap words legitimately change while unlinked (frees,
#: relink bookkeeping) and are exempt.
BIN_IDENTITY_OFFSETS = (
    _bin.SIZE_OFF,
    _bin.NEXT_OFF,
    _bin.PREV_OFF,
    _bin.CAPACITY_OFF,
    _bin.CHUNK_OFF,
    _bin.MAGIC_OFF,
)

#: quarantined header offsets for an unlinked chunk: owning arena, list
#: links, magic.  The bin bitmap (offset 0) is exempt — releases of
#: retired bins clear bits on chunks that may themselves be unlinked.
CHUNK_IDENTITY_OFFSETS = (
    _bin.CH_ARENA_OFF,
    _bin.NEXT_OFF,
    _bin.PREV_OFF,
    _bin.CH_MAGIC_OFF,
)


@dataclass
class RaceFinding:
    """One detected protocol violation."""

    rule: str      #: short rule identifier (``tree-store-unlocked``, ...)
    addr: int      #: word address the violation touched
    tid: int       #: device thread that performed the access
    time: int      #: virtual time of the access
    detail: str    #: human-readable description

    def __str__(self) -> str:
        return (f"[{self.rule}] tid={self.tid} t={self.time} "
                f"addr={self.addr:#x}: {self.detail}")


class _Quarantine:
    """Identity words of one node unlinked from an RCU-protected list."""

    __slots__ = ("node", "domain", "tid", "t_unlink", "label", "words")

    def __init__(self, node: int, domain, tid: int, t_unlink: int,
                 label: str, words: Tuple[int, ...]):
        self.node = node
        self.domain = domain
        self.tid = tid
        self.t_unlink = t_unlink
        self.label = label
        self.words = words


class RaceChecker(Tracer):
    """Protocol-violation detector; attach as the scheduler's tracer.

    Register the structures to watch (usually just
    :meth:`watch_allocator`), run kernels, then inspect
    :attr:`findings`.  Call :meth:`quiesce` at quiescent phase
    checkpoints.
    """

    def __init__(self, max_findings: int = 64):
        super().__init__(timeline=False)
        self.max_findings = max_findings
        self.findings: List[RaceFinding] = []
        self.dropped_findings = 0
        # bit-lock state: watched tree address ranges + current holders
        self._tree_ranges: List[Tuple[int, int]] = []
        self._bit_holders: Dict[int, int] = {}     # word addr -> tid
        # spinlock state: watched words -> holder tid (None = free)
        self._spin_holders: Dict[int, Optional[int]] = {}
        # RCU state: id(dlist) -> (domain, identity offsets, label)
        self._rcu_lists: Dict[int, Tuple[object, Tuple[int, ...], str]] = {}
        self._quarantine: Dict[int, _Quarantine] = {}  # word addr -> rec
        self._q_by_node: Dict[int, _Quarantine] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def watch_tbuddy(self, tb: TBuddy) -> None:
        """Watch a TBuddy's node array for bit-lock violations."""
        self._tree_ranges.append((tb.tree_addr, tb.tree_addr + 8 * tb.n_nodes))

    def watch_spinlock(self, lock) -> None:
        """Watch a :class:`~repro.sync.spinlock.SpinLock`'s word."""
        self._spin_holders.setdefault(lock.addr, None)

    def watch_rcu_list(self, dlist, domain, identity_offsets, label: str) -> None:
        """Quarantine ``identity_offsets`` of nodes unlinked from
        ``dlist`` until ``domain``'s next grace period."""
        self._rcu_lists[id(dlist)] = (domain, tuple(identity_offsets), label)

    def watch_allocator(self, alloc) -> None:
        """Watch every protocol surface of a
        :class:`~repro.core.allocator.ThroughputAllocator`: the TBuddy
        tree, all size-class / chunk-list / RCU-writer spinlocks, and
        the RCU-protected bin and chunk lists."""
        self.watch_tbuddy(alloc.tbuddy)
        for arena in alloc.ualloc.arenas:
            self.watch_spinlock(arena.rcu._mutex)
            self.watch_spinlock(arena.chunk_mutex._mutex)
            self.watch_rcu_list(arena.chunks, arena.rcu,
                                CHUNK_IDENTITY_OFFSETS,
                                f"arena{arena.index}.chunks")
            for sc in arena.classes:
                self.watch_spinlock(sc.lock)
                self.watch_rcu_list(sc.bins, arena.rcu,
                                    BIN_IDENTITY_OFFSETS,
                                    f"arena{arena.index}.bins[{sc.size}]")

    # ------------------------------------------------------------------
    # findings
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.findings and not self.dropped_findings

    def _report(self, rule: str, addr: int, tid: int, t: int, detail: str) -> None:
        if len(self.findings) >= self.max_findings:
            self.dropped_findings += 1
            return
        self.findings.append(RaceFinding(rule, addr, tid, t, detail))

    def quiesce(self) -> None:
        """Quiescent-checkpoint reset: no device thread is running, so
        any lock still registered as held is a leak (flagged), and all
        reclamation quarantines are void (host-side drains finish them
        outside the device's instruction stream)."""
        for addr, tid in self._bit_holders.items():
            self._report("bitlock-leak", addr, tid, 0,
                         "node lock still held at quiescence")
        for addr, tid in self._spin_holders.items():
            if tid is not None:
                self._report("spinlock-leak", addr, tid, 0,
                             "spinlock still held at quiescence")
        self._bit_holders.clear()
        for addr in self._spin_holders:
            self._spin_holders[addr] = None
        self._quarantine.clear()
        self._q_by_node.clear()

    # ------------------------------------------------------------------
    # per-memory-op hook (scheduler hot path)
    # ------------------------------------------------------------------
    def mem_op(self, th, op, t, result) -> None:
        code = op[0]
        if code == _ops.OP_LOAD:
            return
        addr = op[1]
        tid = th.tid
        spin = self._spin_holders
        if addr in spin:
            self._spin_op(spin, code, op, addr, tid, t, result)
            return
        for lo, hi in self._tree_ranges:
            if lo <= addr < hi:
                self._tree_op(code, op, addr, tid, t, result)
                return
        q = self._quarantine.get(addr)
        if q is not None and tid != q.tid:
            self._report(
                "rcu-use-after-unlink", addr, tid, t,
                f"write to identity word +{addr - q.node} of {q.label} node "
                f"{q.node:#x}, unlinked at t={q.t_unlink} by tid={q.tid}, "
                "before a grace period",
            )

    def _spin_op(self, spin, code, op, addr, tid, t, result) -> None:
        holder = spin[addr]
        if code == _ops.OP_CAS:
            if op[2] == 0 and op[3] == 1 and result == 0:
                spin[addr] = tid  # acquired
            return
        if code == _ops.OP_EXCH and op[2] == 0:
            if holder is None:
                self._report("spinlock-release-unheld", addr, tid, t,
                             "released a spinlock nobody holds")
            elif holder != tid:
                self._report(
                    "spinlock-release-nonowner", addr, tid, t,
                    f"released a spinlock held by tid={holder}")
            spin[addr] = None
            return
        if code == _ops.OP_STORE:
            self._report("spinlock-plain-store", addr, tid, t,
                         f"plain store of {op[2]:#x} to a spinlock word")
            spin[addr] = tid if op[2] else None
            return
        self._report(
            "spinlock-raw-atomic", addr, tid, t,
            f"{_ops.OP_NAMES.get(code, code)} on a spinlock word",
        )

    def _tree_op(self, code, op, addr, tid, t, result) -> None:
        holders = self._bit_holders
        holder = holders.get(addr)
        if code == _ops.OP_CAS:
            expected, new = op[2], op[3]
            if result != expected:
                return  # failed CAS: no effect
            if not (expected & LOCK_BIT) and (new & LOCK_BIT):
                holders[addr] = tid  # lock acquired
            elif (expected & LOCK_BIT) and not (new & LOCK_BIT):
                if holder != tid:
                    self._report(
                        "bitlock-release-nonowner", addr, tid, t,
                        f"CAS cleared a node lock held by tid={holder}")
                holders.pop(addr, None)
            return
        if code == _ops.OP_AND:
            if not (op[2] & LOCK_BIT):  # mask clears the lock bit
                if holder is None:
                    self._report("bitlock-release-unheld", addr, tid, t,
                                 "unlocked a node nobody holds")
                elif holder != tid:
                    self._report(
                        "bitlock-release-nonowner", addr, tid, t,
                        f"unlocked a node lock held by tid={holder}")
                holders.pop(addr, None)
            return  # AND preserving the lock bit (flag updates) is fine
        if code == _ops.OP_OR:
            if (op[2] & LOCK_BIT) and holder != tid:
                self._report("bitlock-forged", addr, tid, t,
                             "OR set a node lock bit without a CAS acquire")
            return  # OR of non-lock bits (flag updates) is fine
        if code == _ops.OP_STORE:
            value = op[2]
            if holder is None:
                self._report(
                    "tree-store-unlocked", addr, tid, t,
                    f"plain store of {value:#x} to a tree word whose node "
                    "lock the thread does not hold")
            elif holder != tid:
                self._report(
                    "tree-store-clobbers-lock", addr, tid, t,
                    f"plain store of {value:#x} over a node lock held by "
                    f"tid={holder}")
                if not (value & LOCK_BIT):
                    holders.pop(addr, None)
            elif not (value & LOCK_BIT):
                holders.pop(addr, None)  # store-release by the holder
            return
        self._report(
            "tree-raw-atomic", addr, tid, t,
            f"{_ops.OP_NAMES.get(code, code)} on a tree node word",
        )

    # ------------------------------------------------------------------
    # structured attach points
    # ------------------------------------------------------------------
    def list_removed(self, ctx, dlist, node: int) -> None:
        watched = self._rcu_lists.get(id(dlist))
        if watched is None:
            return
        domain, offsets, label = watched
        old = self._q_by_node.pop(node, None)
        if old is not None:
            for w in old.words:
                self._quarantine.pop(w, None)
        words = tuple(node + off for off in offsets)
        rec = _Quarantine(node, domain, ctx.tid, self.now(ctx), label, words)
        self._q_by_node[node] = rec
        for w in words:
            self._quarantine[w] = rec

    def list_inserted(self, ctx, dlist, node: int) -> None:
        rec = self._q_by_node.pop(node, None)
        if rec is not None:
            for w in rec.words:
                self._quarantine.pop(w, None)

    def rcu_grace_period(self, ctx, t_flip: int, t_drained: int,
                         domain=None) -> None:
        super().rcu_grace_period(ctx, t_flip, t_drained, domain=domain)
        if not self._q_by_node:
            return
        # Lift every quarantine of this domain whose unlink precedes the
        # epoch flip: the grace period covers all readers that could
        # still see those nodes, and the hook fires before callbacks
        # run, so reclamation's own writes land after the lift.
        lifted = [rec for rec in self._q_by_node.values()
                  if rec.domain is domain and rec.t_unlink < t_flip]
        for rec in lifted:
            del self._q_by_node[rec.node]
            for w in rec.words:
                self._quarantine.pop(w, None)

    def summary(self, top: int = 10) -> str:
        lines = [f"race checker: {len(self.findings)} finding(s)"
                 + (f" (+{self.dropped_findings} dropped)"
                    if self.dropped_findings else "")]
        lines += [f"  {f}" for f in self.findings]
        return "\n".join(lines)
