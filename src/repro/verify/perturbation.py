"""Schedule perturbations: deterministic knobs over the cost model.

A :class:`Perturbation` is a frozen set of ``(knob, value)`` pairs.
Cost-model knobs are *multipliers* applied to the corresponding
:class:`~repro.sim.cost_model.CostModel` field; the special ``jitter``
knob is an *absolute* bound (cycles) passed to the scheduler's
``dispatch_jitter``, and the special ``steer`` knob is an integer salt
for the scheduler's deterministic dispatch-phase offset (the
exploration engine's steering decision — see :mod:`repro.verify.explore`).
Stretching latencies relative to each other moves
every inter-thread timing relationship, so a fixed seed explores a
different interleaving under each perturbation — that, plus the seed
sweep, is the fuzzing dimension of :mod:`repro.verify`.

Perturbations serialize to a stable spec string
(``"atomic_latency=4,jitter=256"``) so a failure can be replayed
exactly: ``python -m repro verify --replay scenario:seed:spec``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable, Tuple

from ..sim.cost_model import CostModel

#: cost-model fields a perturbation may scale
COST_KNOBS = (
    "load_latency",
    "store_latency",
    "atomic_latency",
    "atomic_service",
    "step_cost",
    "yield_cost",
    "barrier_cost",
    "warp_conv_cost",
    "block_dispatch",
)

#: absolute dispatch-jitter knob (cycles, not a multiplier)
JITTER_KNOB = "jitter"

#: steering-decision knob: an integer salt handed to the scheduler's
#: deterministic per-thread dispatch-phase offset (see
#: ``Scheduler.steer``).  The exploration engine mints fresh salts to
#: visit new interleavings; because it rides in the perturbation set, a
#: steered schedule replays and shrinks through the existing
#: ``scenario[@backend]:seed:perturbation`` machinery unchanged.
STEER_KNOB = "steer"

#: knobs that are absolute integers (>= 1), not cost multipliers
_INT_KNOBS = frozenset({JITTER_KNOB, STEER_KNOB})

_VALID = frozenset(COST_KNOBS) | _INT_KNOBS


def _fmt(value: float) -> str:
    return f"{value:g}"


@dataclass(frozen=True)
class Perturbation:
    """An immutable, canonically-ordered set of ``(knob, value)`` pairs."""

    items: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for name, value in self.items:
            if name not in _VALID:
                raise ValueError(f"unknown perturbation knob {name!r}")
            if name in seen:
                raise ValueError(f"duplicate perturbation knob {name!r}")
            if not math.isfinite(value):
                # nan slips through every ordering comparison (nan <= 0
                # is False) and inf round-trips into a spec no replay
                # can execute; both are spec-corruption, not knobs.
                raise ValueError(
                    f"{name}: perturbation values must be finite "
                    f"(got {value!r})"
                )
            if value <= 0:
                raise ValueError(f"{name}: perturbation values must be > 0")
            if name in _INT_KNOBS and value < 1:
                # A sub-1 jitter validates as > 0 but used to truncate
                # to a 0-cycle jitter at apply time — a "perturbed" spec
                # silently identical to the baseline schedule.
                raise ValueError(
                    f"{name}: absolute knob needs a value >= 1 "
                    f"(got {value:g}; cost knobs scale, {name} does not)"
                )
            if name == STEER_KNOB and not float(value).is_integer():
                raise ValueError(
                    f"steer: steering salts are integers (got {value:g}); "
                    "two specs differing only in a fractional salt would "
                    "replay the same schedule"
                )
            seen.add(name)
        object.__setattr__(self, "items", tuple(sorted(self.items)))

    # ------------------------------------------------------------------
    # spec string (the replayable wire format)
    # ------------------------------------------------------------------
    @property
    def spec(self) -> str:
        """Canonical ``knob=value,knob=value`` string (empty = baseline)."""
        return ",".join(f"{n}={_fmt(v)}" for n, v in self.items)

    @classmethod
    def parse(cls, spec: str) -> "Perturbation":
        """Inverse of :attr:`spec`; accepts the empty string."""
        spec = spec.strip()
        if not spec:
            return cls()
        items = []
        for part in spec.split(","):
            name, _, value = part.partition("=")
            if not _:
                raise ValueError(f"bad perturbation item {part!r} (want knob=value)")
            items.append((name.strip(), float(value)))
        return cls(tuple(items))

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply(self, base: CostModel) -> Tuple[CostModel, int]:
        """Resolve against ``base``; returns ``(cost_model, dispatch_jitter)``.

        Multiplied latencies are rounded and floored at 1 cycle so a
        shrinking perturbation can never zero out a cost the scheduler
        divides by.  Jitter is rounded, not truncated (construction
        already rejects sub-1 values, so it can never collapse to the
        baseline's 0).  The ``steer`` salt is not a timing knob and is
        exposed via :attr:`steer` instead.
        """
        changes = {}
        jitter = 0
        for name, value in self.items:
            if name == JITTER_KNOB:
                jitter = int(round(value))
            elif name == STEER_KNOB:
                continue
            else:
                changes[name] = max(1, int(round(getattr(base, name) * value)))
        return (replace(base, **changes) if changes else base), jitter

    @property
    def steer(self) -> int:
        """The steering salt (0 when the knob is absent)."""
        for name, value in self.items:
            if name == STEER_KNOB:
                return int(value)
        return 0

    # ------------------------------------------------------------------
    # shrinking support
    # ------------------------------------------------------------------
    def without(self, name: str) -> "Perturbation":
        """A copy with the ``name`` knob removed."""
        return Perturbation(tuple((n, v) for n, v in self.items if n != name))

    def __len__(self) -> int:
        return len(self.items)

    def __bool__(self) -> bool:
        return bool(self.items)

    def __str__(self) -> str:
        return self.spec or "<baseline>"


def deck(specs: Iterable[str]) -> Tuple[Perturbation, ...]:
    """Build a perturbation deck from spec strings."""
    return tuple(Perturbation.parse(s) for s in specs)


#: The default sweep deck.  Entries are chosen to bend the timing
#: relationships the allocator's protocols depend on: atomic service
#: pressure (semaphore/lock words), load/store skew (plain accesses
#: racing atomics), cheap yields (hot spin loops re-polling faster than
#: publishes land), and dispatch jitter (desynchronized block starts).
DEFAULT_DECK: Tuple[Perturbation, ...] = deck([
    "",                                   # baseline schedule
    "atomic_latency=4",
    "atomic_service=4",
    "load_latency=4,store_latency=0.25",
    "store_latency=8",
    "yield_cost=0.25",
    "jitter=256",
    "atomic_latency=4,jitter=512",
])

#: Reduced deck for CI smoke runs (still crosses every knob family).
SMOKE_DECK: Tuple[Perturbation, ...] = deck([
    "",
    "atomic_service=4",
    "load_latency=4,store_latency=0.25",
    "jitter=256",
])
