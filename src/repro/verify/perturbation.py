"""Schedule perturbations: deterministic knobs over the cost model.

A :class:`Perturbation` is a frozen set of ``(knob, value)`` pairs.
Cost-model knobs are *multipliers* applied to the corresponding
:class:`~repro.sim.cost_model.CostModel` field; the special ``jitter``
knob is an *absolute* bound (cycles) passed to the scheduler's
``dispatch_jitter``.  Stretching latencies relative to each other moves
every inter-thread timing relationship, so a fixed seed explores a
different interleaving under each perturbation — that, plus the seed
sweep, is the fuzzing dimension of :mod:`repro.verify`.

Perturbations serialize to a stable spec string
(``"atomic_latency=4,jitter=256"``) so a failure can be replayed
exactly: ``python -m repro verify --replay scenario:seed:spec``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Tuple

from ..sim.cost_model import CostModel

#: cost-model fields a perturbation may scale
COST_KNOBS = (
    "load_latency",
    "store_latency",
    "atomic_latency",
    "atomic_service",
    "step_cost",
    "yield_cost",
    "barrier_cost",
    "warp_conv_cost",
    "block_dispatch",
)

#: absolute dispatch-jitter knob (cycles, not a multiplier)
JITTER_KNOB = "jitter"

_VALID = frozenset(COST_KNOBS) | {JITTER_KNOB}


def _fmt(value: float) -> str:
    return f"{value:g}"


@dataclass(frozen=True)
class Perturbation:
    """An immutable, canonically-ordered set of ``(knob, value)`` pairs."""

    items: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for name, value in self.items:
            if name not in _VALID:
                raise ValueError(f"unknown perturbation knob {name!r}")
            if name in seen:
                raise ValueError(f"duplicate perturbation knob {name!r}")
            if value <= 0:
                raise ValueError(f"{name}: perturbation values must be > 0")
            seen.add(name)
        object.__setattr__(self, "items", tuple(sorted(self.items)))

    # ------------------------------------------------------------------
    # spec string (the replayable wire format)
    # ------------------------------------------------------------------
    @property
    def spec(self) -> str:
        """Canonical ``knob=value,knob=value`` string (empty = baseline)."""
        return ",".join(f"{n}={_fmt(v)}" for n, v in self.items)

    @classmethod
    def parse(cls, spec: str) -> "Perturbation":
        """Inverse of :attr:`spec`; accepts the empty string."""
        spec = spec.strip()
        if not spec:
            return cls()
        items = []
        for part in spec.split(","):
            name, _, value = part.partition("=")
            if not _:
                raise ValueError(f"bad perturbation item {part!r} (want knob=value)")
            items.append((name.strip(), float(value)))
        return cls(tuple(items))

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply(self, base: CostModel) -> Tuple[CostModel, int]:
        """Resolve against ``base``; returns ``(cost_model, dispatch_jitter)``.

        Multiplied latencies are rounded and floored at 1 cycle so a
        shrinking perturbation can never zero out a cost the scheduler
        divides by.
        """
        changes = {}
        jitter = 0
        for name, value in self.items:
            if name == JITTER_KNOB:
                jitter = int(value)
            else:
                changes[name] = max(1, int(round(getattr(base, name) * value)))
        return (replace(base, **changes) if changes else base), jitter

    # ------------------------------------------------------------------
    # shrinking support
    # ------------------------------------------------------------------
    def without(self, name: str) -> "Perturbation":
        """A copy with the ``name`` knob removed."""
        return Perturbation(tuple((n, v) for n, v in self.items if n != name))

    def __len__(self) -> int:
        return len(self.items)

    def __bool__(self) -> bool:
        return bool(self.items)

    def __str__(self) -> str:
        return self.spec or "<baseline>"


def deck(specs: Iterable[str]) -> Tuple[Perturbation, ...]:
    """Build a perturbation deck from spec strings."""
    return tuple(Perturbation.parse(s) for s in specs)


#: The default sweep deck.  Entries are chosen to bend the timing
#: relationships the allocator's protocols depend on: atomic service
#: pressure (semaphore/lock words), load/store skew (plain accesses
#: racing atomics), cheap yields (hot spin loops re-polling faster than
#: publishes land), and dispatch jitter (desynchronized block starts).
DEFAULT_DECK: Tuple[Perturbation, ...] = deck([
    "",                                   # baseline schedule
    "atomic_latency=4",
    "atomic_service=4",
    "load_latency=4,store_latency=0.25",
    "store_latency=8",
    "yield_cost=0.25",
    "jitter=256",
    "atomic_latency=4,jitter=512",
])

#: Reduced deck for CI smoke runs (still crosses every knob family).
SMOKE_DECK: Tuple[Perturbation, ...] = deck([
    "",
    "atomic_service=4",
    "load_latency=4,store_latency=0.25",
    "jitter=256",
])
