"""Failure shrinking: reduce a perturbation set to a minimal reproducer.

A failing case carries a perturbation of up to a handful of knobs; for
debugging, the interesting question is which knobs *matter*.  The
shrinker greedily re-runs the case with each knob removed (ddmin over a
set this small degenerates to greedy subset removal) and keeps any
reduction that still fails, iterating to a fixpoint.  Determinism makes
this sound: the same ``(seed, perturbation)`` is the same schedule.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from .runner import CaseResult, CaseSpec, run_case


def shrink_case(
    spec: CaseSpec,
    rerun: Optional[Callable[[CaseSpec], CaseResult]] = None,
    log: Optional[Callable[[str], None]] = None,
) -> CaseSpec:
    """Return ``spec`` with a 1-minimal perturbation (removing any single
    remaining knob makes the failure disappear).

    ``rerun`` defaults to :func:`~repro.verify.runner.run_case`; tests
    inject counting/stub runners through it.
    """
    if rerun is None:
        rerun = run_case
    current = spec
    progress = True
    while progress and current.perturbation:
        progress = False
        for name, _ in current.perturbation.items:
            candidate = replace(
                current, perturbation=current.perturbation.without(name)
            )
            if not rerun(candidate).ok:
                if log is not None:
                    log(f"shrink: dropped {name} -> {candidate.replay}")
                current = candidate
                progress = True
                break
    return current
