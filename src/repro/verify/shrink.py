"""Failure shrinking: reduce a perturbation set to a minimal reproducer.

A failing case carries a perturbation of up to a handful of knobs; for
debugging, the interesting question is which knobs *matter*.  The
shrinker greedily re-runs the case with each knob removed (ddmin over a
set this small degenerates to greedy subset removal) and keeps any
reduction that still fails, iterating to a fixpoint.  Determinism makes
this sound: the same ``(seed, perturbation)`` is the same schedule.

Two failure hygiene rules:

* The unmodified spec is re-run first.  Shrinking a spec that does not
  actually fail used to return it unchanged — indistinguishable from
  "already 1-minimal" — so a stale or mistyped replay string silently
  produced a bogus "minimal reproducer".  Now it raises.
* A reduction only counts if it fails *the same way* (the
  :attr:`~repro.verify.runner.CaseResult.kind` matches): a protocol
  failure must not shrink into an event-budget artifact, which would
  hand debugging a livelock-guard trip instead of the actual bug.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from .runner import CaseResult, CaseSpec, run_case


def shrink_case(
    spec: CaseSpec,
    rerun: Optional[Callable[[CaseSpec], CaseResult]] = None,
    log: Optional[Callable[[str], None]] = None,
) -> CaseSpec:
    """Return ``spec`` with a 1-minimal perturbation (removing any single
    remaining knob makes the failure disappear).

    Raises :class:`ValueError` when ``spec`` has knobs to shrink but
    does not fail under ``rerun`` — a passing spec has no failure to
    minimize, and returning it unchanged would misreport it as a
    reproducer.

    ``rerun`` defaults to :func:`~repro.verify.runner.run_case`; tests
    inject counting/stub runners through it.
    """
    if rerun is None:
        rerun = run_case
    current = spec
    if not current.perturbation:
        return current  # baseline schedule: nothing to remove
    baseline = rerun(current)
    if baseline.ok:
        raise ValueError(
            f"shrink_case: {current.replay!r} does not fail — nothing to "
            "shrink (stale replay string, or a fixed bug?)"
        )
    kind = baseline.kind
    progress = True
    while progress and current.perturbation:
        progress = False
        for name, _ in current.perturbation.items:
            candidate = replace(
                current, perturbation=current.perturbation.without(name)
            )
            res = rerun(candidate)
            if not res.ok and res.kind == kind:
                if log is not None:
                    log(f"shrink: dropped {name} -> {candidate.replay}")
                current = candidate
                progress = True
                break
    return current
