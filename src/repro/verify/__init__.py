"""Deterministic concurrency verification for the simulator.

The simulator executes device code in virtual-time order, so every run
is a *schedule* fully determined by ``(seed, perturbation)`` — the
scheduler seed plus a small set of cost-model/dispatch knobs that bend
which interleavings the seed explores.  This package turns that
determinism into a verification workflow:

* **Schedule fuzzing** (:mod:`.runner`): sweep seeds x perturbations
  over allocator torture scenarios, validating structural and
  semaphore-accounting invariants plus leak accounting at quiescent
  phase checkpoints.
* **Race detection** (:mod:`.race`): a :class:`~repro.sim.trace.Tracer`
  subclass that watches every memory op for protocol violations —
  plain stores clobbering held node locks, lock words released by
  non-owners, RCU-unlinked nodes written before their grace period.
* **Replay + shrink** (:mod:`.cli`, :mod:`.shrink`): every failure
  reports a ``scenario:seed:perturbation`` triple replayable with
  ``python -m repro verify --replay``, and the perturbation set can be
  bisected to a minimal reproducer.
* **Coverage-guided exploration** (:mod:`.explore`): scheduler
  state-digest feedback steers the case budget toward unvisited
  interleavings instead of a fixed grid; coverage is reported as
  distinct schedules visited, and every explored case is an ordinary
  replay triple (the steering decision rides in the ``steer`` knob).

Entry points: ``python -m repro verify`` and
``python -m repro verify explore`` (see ``--help``).
"""

from .explore import (
    ExploreReport,
    Explorer,
    ScheduleCoverage,
    deck_coverage,
    explore,
)
from .perturbation import DEFAULT_DECK, SMOKE_DECK, Perturbation
from .race import RaceChecker, RaceFinding
from .runner import CaseResult, CaseSpec, SCENARIOS, run_case, sweep
from .shrink import shrink_case

__all__ = [
    "DEFAULT_DECK",
    "SMOKE_DECK",
    "Perturbation",
    "RaceChecker",
    "RaceFinding",
    "CaseResult",
    "CaseSpec",
    "SCENARIOS",
    "run_case",
    "sweep",
    "shrink_case",
    "Explorer",
    "ExploreReport",
    "ScheduleCoverage",
    "explore",
    "deck_coverage",
]
