"""Schedule-fuzzing runner: scenarios, cases, and the sweep loop.

A *scenario* is an allocator torture workload with quiescent phase
checkpoints; a *case* is one scenario executed under one
``(seed, perturbation)`` pair with a :class:`~repro.verify.race.RaceChecker`
attached.  A case fails when

* a simulator or allocator exception escapes (deadlock, heap
  corruption, double free, ...),
* a checkpoint invariant fails (TBuddy tree shape, bulk-semaphore
  accounting ``E == R == 0`` / supply ledgers, list symmetry, leak
  accounting ``host_used_bytes() == 0`` after a full-free phase), or
* the race checker reports any finding.

Every failure carries its replay triple ``scenario:seed:perturbation``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .. import backends as backend_registry
from ..bench import workloads
from ..sim import ops
from ..sim.cost_model import DEFAULT_COST_MODEL
from ..sim.device import GPUDevice
from ..sim.errors import EventBudgetExceeded, SimError
from ..sim.memory import DeviceMemory
from ..sim.scheduler import ENGINES, PROBE_EVERY, Scheduler, use_engine
from .perturbation import DEFAULT_DECK, Perturbation
from .race import RaceChecker, RaceFinding

_NULL = DeviceMemory.NULL

#: livelock guard per case (scheduler events)
EVENT_BUDGET = 30_000_000


@dataclass(frozen=True)
class CaseSpec:
    """One replayable verification case."""

    scenario: str
    seed: int
    perturbation: Perturbation = Perturbation()
    #: registry name of the allocator under test (scenarios drive the
    #: uniform BackendHandle, so any registered backend fits)
    backend: str = "ours"
    #: scheduler run loop the case executes under.  Part of the replay
    #: spec: the engines are parity-locked, but a failure found under
    #: one must replay under that one — "same bug, other engine" is a
    #: claim the harness proves, never assumes.
    engine: str = "event"

    @property
    def replay(self) -> str:
        """``scenario[@backend][/engine]:seed:perturbation`` — the
        ``--replay`` argument.  The ``@backend`` and ``/engine``
        qualifiers are omitted for the defaults (``ours``, ``event``)
        so historic replay strings stay valid and stable."""
        scen = self.scenario
        if self.backend != "ours":
            scen = f"{scen}@{self.backend}"
        if self.engine != "event":
            scen = f"{scen}/{self.engine}"
        return f"{scen}:{self.seed}:{self.perturbation.spec}"

    @classmethod
    def parse(cls, replay: str) -> "CaseSpec":
        parts = replay.split(":", 2)
        if len(parts) < 2:
            raise ValueError(
                f"bad replay spec {replay!r} "
                "(want scenario[@backend][/engine]:seed[:perturbation])"
            )
        scenario, seed = parts[0], int(parts[1])
        engine = "event"
        if "/" in scenario:
            scenario, engine = scenario.rsplit("/", 1)
            if engine not in ENGINES:
                raise ValueError(
                    f"bad replay spec {replay!r}: unknown engine "
                    f"{engine!r} (choose from {', '.join(ENGINES)})"
                )
        backend = "ours"
        if "@" in scenario:
            scenario, backend = scenario.split("@", 1)
        if not scenario or not backend:
            # Catch `@:3` / `scen@:3` / `@cuda:3` here with a pointed
            # message instead of constructing a spec that only fails
            # later with an opaque registry/scenario KeyError.
            raise ValueError(
                f"bad replay spec {replay!r}: empty "
                f"{'scenario' if not scenario else 'backend'} fragment "
                "(want scenario[@backend][/engine]:seed[:perturbation])"
            )
        pert = Perturbation.parse(parts[2]) if len(parts) == 3 else Perturbation()
        return cls(scenario, seed, pert, backend, engine)

    def __str__(self) -> str:
        return self.replay


@dataclass
class CaseResult:
    """Outcome of one executed case."""

    spec: CaseSpec
    error: Optional[str] = None
    findings: List[RaceFinding] = field(default_factory=list)
    #: True when the failure is the EVENT_BUDGET livelock guard tripping,
    #: not a protocol violation — a budget artifact must not be chased
    #: by the explorer or accepted by the shrinker as "the same bug".
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and not self.findings

    @property
    def kind(self) -> str:
        """``"pass"``, ``"budget"`` (event-budget exhaustion) or
        ``"protocol"`` (invariant / race / simulator failure)."""
        if self.ok:
            return "pass"
        # Race findings are protocol violations even if the run *also*
        # tripped the budget; only a bare budget trip classifies as one.
        return "budget" if (self.budget_exhausted and not self.findings) \
            else "protocol"

    def describe(self) -> str:
        if self.ok:
            return f"PASS {self.spec}"
        tag = " [budget-exhausted]" if self.budget_exhausted else ""
        lines = [f"FAIL{tag} {self.spec}"]
        if self.error:
            lines.append(f"  error: {self.error}")
        lines += [f"  {f}" for f in self.findings]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# scenario harness
# ----------------------------------------------------------------------
class _Harness:
    """Allocator + scheduler wired to one case's knobs and checker.

    The allocator is resolved by backend name through
    :mod:`repro.backends`; scenarios speak to ``self.handle`` (the
    uniform :class:`~repro.backends.BackendHandle`), so the same torture
    deck runs against any registered design.  ``self.alloc`` remains
    the raw allocator object for backend-specific hooks (mutation
    tests, the resil runner's tree asserts).
    """

    def __init__(self, seed: int, perturbation: Perturbation,
                 checker: Optional[RaceChecker], pool_order: int,
                 num_sms: int = 4, mem_bytes: int = 16 << 20,
                 fault_injector: object = None, backend: str = "ours",
                 probe: Optional[Callable[[tuple], None]] = None,
                 probe_every: int = PROBE_EVERY):
        cost, jitter = perturbation.apply(DEFAULT_COST_MODEL)
        self.mem = DeviceMemory(mem_bytes)
        self.device = GPUDevice(num_sms=num_sms, max_resident_blocks=2)
        self.backend = backend_registry.get(backend)
        self.handle = self.backend.build(
            self.mem, self.device, 4096 << pool_order
        )
        self.alloc = self.handle.allocator
        self.cfg = getattr(self.alloc, "cfg", None)
        self.sched = Scheduler(
            self.mem, self.device, cost, seed=seed,
            tracer=checker, dispatch_jitter=jitter,
            fault_injector=fault_injector,
            steer=perturbation.steer,
            schedule_probe=probe, probe_every=probe_every,
        )
        self.checker = checker
        if checker is not None and self.handle.caps.race_checkable:
            checker.watch_allocator(self.alloc)

    def run(self) -> None:
        self.sched.run(max_events=EVENT_BUDGET)

    def checkpoint(self, expect_leak_free: bool = False) -> None:
        """Quiescent phase checkpoint: full invariant validation plus
        (optionally) leak accounting, then checker reset."""
        self.handle.host_checkpoint(expect_leak_free=expect_leak_free)
        if self.checker is not None:
            self.checker.quiesce()


def _free_by_tid(alloc, ptr_lists, base: int):
    """Kernel: thread ``tid`` frees every pointer in
    ``ptr_lists[tid - base]`` (tids are global across the scheduler's
    launches, so the follow-up launch starts at ``base``)."""

    def kernel(ctx):
        for p in ptr_lists[ctx.tid - base]:
            if p != _NULL:
                yield from alloc.free(ctx, p)

    return kernel


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
def _storm(h: _Harness, grid: int = 2, block: int = 32,
           sizes: Sequence[int] = (16, 64, 256, 1024, 8192)) -> None:
    """Malloc storm -> checkpoint -> free storm -> leak-free checkpoint.

    Sizes mix UAlloc classes with one TBuddy-routed coarse size so both
    allocators and the chunk path are live concurrently.  NULL results
    (pool pressure) are recorded and skipped by the free phase.
    """
    alloc = h.handle

    def malloc_kernel(ctx):
        got = []
        for i in range(len(sizes)):
            size = sizes[(ctx.tid + i) % len(sizes)]
            p = yield from alloc.malloc(ctx, size)
            got.append(p)
        return got

    handle = h.sched.launch(malloc_kernel, grid=grid, block=block)
    h.run()
    h.checkpoint()
    ptrs = handle.results
    h.sched.launch(_free_by_tid(alloc, ptrs, grid * block),
                   grid=grid, block=block)
    h.run()
    h.checkpoint(expect_leak_free=True)


def _churn(h: _Harness, grid: int = 2, block: int = 32, iters: int = 4) -> None:
    """Steady-state malloc/hold/free churn (bin fill/drain, retirement,
    merge traffic), ending leak-free by construction."""
    sizes = (8, 32, 128, 512)
    kernel, _ = workloads.churn(h.handle, sizes, iters, hold_cycles=400)
    h.sched.launch(kernel, grid=grid, block=block)
    h.run()
    h.checkpoint(expect_leak_free=True)


def _producer_consumer(h: _Harness, grid: int = 2, block: int = 32,
                       iters: int = 3) -> None:
    """Cross-arena free traffic: producers on some SMs allocate and
    publish, consumers on others free (the paper's free-anywhere path)."""
    kernel, mailbox = workloads.producer_consumer(
        h.handle, size=48, slots=8, mem=h.mem, iters=iters
    )
    h.sched.launch(kernel, grid=grid, block=block)
    h.run()
    for i in range(8):
        slot = h.mem.load_word(mailbox + 8 * i)
        assert slot == 0, f"mailbox slot {i} still holds {slot:#x} after the run"
    h.checkpoint(expect_leak_free=True)


def _storm_oom(h: _Harness, grid: int = 2, block: int = 32) -> None:
    """Malloc storm against a deliberately undersized pool, driving the
    batch-promise failure paths (``renege``) in both UAlloc's chunk/bin
    stages and TBuddy's split ascent.  The final checkpoint's
    ``E == R == 0`` accounting proves every failed promise was undone."""
    alloc = h.handle
    sizes = (1024, 1024, 8192)

    def malloc_kernel(ctx):
        got = []
        for i in range(len(sizes)):
            p = yield from alloc.malloc(ctx, sizes[(ctx.tid + i) % len(sizes)])
            got.append(p)
        return got

    handle = h.sched.launch(malloc_kernel, grid=grid, block=block)
    h.run()
    h.checkpoint()
    n_null = sum(1 for got in handle.results for p in got if p == _NULL)
    assert n_null > 0, (
        "storm_oom did not exhaust the pool; shrink pool_order or grow the "
        "request mix so the renege paths are actually exercised"
    )
    h.sched.launch(_free_by_tid(alloc, handle.results, grid * block),
                   grid=grid, block=block)
    h.run()
    h.checkpoint(expect_leak_free=True)


def _check_replay_accounting(trace, stats, totals) -> None:
    """Per-tenant stats must reconcile exactly with the replayed trace:
    every recorded event is accounted to its tenant, failures and
    completions partition the stream, and nothing is double-counted."""
    from ..workloads.trace import validate as validate_trace

    summary = validate_trace(trace)
    assert totals.n_malloc == summary["mallocs"], (
        f"{totals.n_malloc} mallocs accounted vs {summary['mallocs']} "
        "recorded: per-tenant accounting lost calls"
    )
    assert totals.n_free + totals.n_free_skipped == summary["frees"], (
        f"{totals.n_free} frees + {totals.n_free_skipped} skipped vs "
        f"{summary['frees']} recorded"
    )
    assert totals.n_free_skipped == totals.n_malloc_failed, (
        "a balanced trace must skip exactly one free per failed malloc "
        f"(skipped {totals.n_free_skipped}, failed {totals.n_malloc_failed})"
    )
    for t, st in stats.items():
        assert st.n_malloc == summary["mallocs_per_tenant"][t], (
            f"tenant {t}: {st.n_malloc} mallocs accounted vs "
            f"{summary['mallocs_per_tenant'][t]} recorded"
        )
        assert st.bytes_served <= st.bytes_requested, (
            f"tenant {t}: served {st.bytes_served} > requested "
            f"{st.bytes_requested}"
        )


def _replay_trace_scenario(h: _Harness, trace, lanes: int) -> None:
    """Shared tail of the workload scenarios: replay, reconcile the
    per-tenant accounting, cross-check the allocator's own AllocStats
    (paper backend only), and end with a leak-free checkpoint."""
    from ..workloads.replay import TenantStats, replay_on_scheduler

    stats, _ = replay_on_scheduler(h.sched, h.handle, trace,
                                   lanes_per_tenant=lanes,
                                   max_events=EVENT_BUDGET)
    totals = TenantStats()
    for st in stats.values():
        totals.add(st)
    _check_replay_accounting(trace, stats, totals)
    alloc_stats = getattr(h.alloc, "stats", None)
    if alloc_stats is not None:
        # The allocator's own counters and the tenant ledgers describe
        # the same call stream from two vantage points; they must agree.
        assert alloc_stats.n_malloc == totals.n_malloc, (
            f"AllocStats saw {alloc_stats.n_malloc} mallocs, tenant "
            f"ledgers {totals.n_malloc}"
        )
        assert alloc_stats.n_malloc_failed == totals.n_malloc_failed, (
            f"AllocStats saw {alloc_stats.n_malloc_failed} failures, "
            f"tenant ledgers {totals.n_malloc_failed}"
        )
        assert alloc_stats.n_free == totals.n_free, (
            f"AllocStats saw {alloc_stats.n_free} frees, tenant ledgers "
            f"{totals.n_free}"
        )
    h.checkpoint(expect_leak_free=True)


def _multi_tenant(h: _Harness, events: int = 160, tenants: int = 4,
                  lanes: int = 2) -> None:
    """Multi-tenant Zipfian contention: skewed per-tenant rates and size
    mixes over one pool, replayed across two lanes per tenant (frees can
    cross lanes), with exact per-tenant accounting and a leak-free end."""
    from ..workloads import families as workload_families

    trace = workload_families.generate(
        "multi_tenant_zipf", h.sched.seed,
        events=events, tenants=tenants, mean_gap=60,
    )
    _replay_trace_scenario(h, trace, lanes)


def _trace_replay(h: _Harness, lanes: int = 1) -> None:
    """Recorded-trace replay: the bundled recorded request stream drives
    the backend under schedule fuzzing (the trace is fixed data; the
    seed/perturbation vary the interleaving around it)."""
    from ..workloads.trace import load_bundled

    _replay_trace_scenario(h, load_bundled("mt_small"), lanes)


def _serve_session(h: _Harness, events: int = 120, tenants: int = 3,
                   batch_max: int = 16) -> None:
    """Served session: the allocator-as-a-service engine drives the
    backend over the harness scheduler — admission control, episode
    batching and the skipped-free protocol all under schedule fuzzing,
    ending with the same exact-accounting and leak-free contract as the
    replay scenarios (AllocStats cross-check deliberately omitted:
    admission rejects never reach the allocator)."""
    from ..serve.bench import feed_trace
    from ..serve.engine import ServeEngine
    from ..workloads import families as workload_families

    trace = workload_families.generate(
        "multi_tenant_zipf", h.sched.seed,
        events=events, tenants=tenants, mean_gap=60,
    )
    engine = ServeEngine(sched=h.sched, handle=h.handle)
    feed_trace(engine, trace, batch_max=batch_max)
    _check_replay_accounting(trace, engine.stats, engine.totals())
    assert engine.live_allocations == 0, (
        f"balanced trace left {engine.live_allocations} served "
        "allocation(s) live"
    )
    h.checkpoint(expect_leak_free=True)


#: scenario name -> (builder kwargs for _Harness, scenario function)
SCENARIOS: Dict[str, tuple] = {
    "storm": ({"pool_order": 9}, _storm),
    "churn": ({"pool_order": 8}, _churn),
    "producer_consumer": ({"pool_order": 8}, _producer_consumer),
    "storm_oom": ({"pool_order": 7}, _storm_oom),
    "multi_tenant": ({"pool_order": 8}, _multi_tenant),
    "trace_replay": ({"pool_order": 8}, _trace_replay),
    "serve_session": ({"pool_order": 8}, _serve_session),
}


# ----------------------------------------------------------------------
# case execution + sweep
# ----------------------------------------------------------------------
def run_case(spec: CaseSpec, check_races: bool = True,
             allocator_hook: Optional[Callable] = None,
             probe: Optional[Callable[[tuple], None]] = None,
             probe_every: int = PROBE_EVERY) -> CaseResult:
    """Execute one case; never raises for verification failures.

    ``allocator_hook(harness)`` runs after setup — mutation tests use it
    to sabotage the allocator under an otherwise identical case.
    ``probe`` attaches a scheduler state-digest hook (see
    :meth:`~repro.sim.scheduler.Scheduler.state_digest`); the
    exploration engine records schedule coverage through it.

    An :class:`~repro.sim.errors.EventBudgetExceeded` trip is classified
    as a *budget* outcome (``result.budget_exhausted``), distinct from
    protocol failures: the livelock guard firing says nothing about the
    allocator's invariants, and downstream consumers (explorer,
    shrinker) must not chase it as one.
    """
    if spec.scenario not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {spec.scenario!r}; "
            f"choose from {', '.join(sorted(SCENARIOS))}"
        )
    harness_kwargs, scenario = SCENARIOS[spec.scenario]
    checker = RaceChecker() if check_races else None
    result = CaseResult(spec)
    try:
        # The engine is pinned for the whole case, not just the harness
        # constructor: scenarios launch follow-up kernels and re-enter
        # Scheduler.run, and every one of those must replay the spec's
        # engine.
        with use_engine(spec.engine):
            h = _Harness(spec.seed, spec.perturbation, checker,
                         backend=spec.backend, probe=probe,
                         probe_every=probe_every, **harness_kwargs)
            if allocator_hook is not None:
                allocator_hook(h)
            scenario(h)
    except EventBudgetExceeded as exc:
        result.error = f"{type(exc).__name__}: {exc}"
        result.budget_exhausted = True
    except (SimError, AssertionError) as exc:
        result.error = f"{type(exc).__name__}: {exc}"
    if checker is not None:
        result.findings = list(checker.findings)
    return result


def sweep(seeds: Sequence[int], deck: Sequence[Perturbation] = DEFAULT_DECK,
          scenarios: Optional[Sequence[str]] = None,
          fail_fast: bool = False,
          log: Optional[Callable[[str], None]] = None,
          workers: int = 1, backend: str = "ours",
          engine: str = "event") -> List[CaseResult]:
    """Run the full seeds x deck x scenarios grid; returns all results.

    The seeds -> deck -> scenarios nesting order is the grid's
    *canonical* order: replay listings, failure reports and sharded
    merges all follow it.  ``workers > 1`` fans the grid out across
    processes (each case builds its own seeded simulator, so results
    are identical to the serial sweep's and are merged back in
    canonical order).  A sharded ``fail_fast`` sweep still runs every
    case — shards cannot see each other's failures — but the returned
    list is truncated at the first failure so callers observe the
    serial contract.
    """
    names = list(scenarios) if scenarios else list(SCENARIOS)
    grid = [CaseSpec(name, seed, pert, backend, engine)
            for seed in seeds for pert in deck for name in names]
    if workers > 1 and len(grid) > 1:
        from ..par.pool import map_sharded

        results = map_sharded(run_case, grid, workers=workers,
                              log=log, label=lambda s: s.replay)
        if log is not None:
            for res in results:
                log(res.describe())
        if fail_fast:
            for i, res in enumerate(results):
                if not res.ok:
                    return results[:i + 1]
        return results
    results: List[CaseResult] = []
    for spec in grid:
        res = run_case(spec)
        results.append(res)
        if log is not None:
            log(res.describe())
        if fail_fast and not res.ok:
            return results
    return results
