"""Coverage-guided schedule-space exploration.

The random sweep (:func:`~repro.verify.runner.sweep`) executes a fixed
``seeds x DEFAULT_DECK`` grid with no notion of which *schedules* it
actually visited: two grid cells frequently collapse onto the same
interleaving, and the interesting corners of the schedule space (renege
storms on a contended bulk semaphore, TBuddy lock convoys, RCU grace
windows) are reached only by luck.  This module replaces luck with
feedback, simsched-style:

1. Every explored case runs with the scheduler's
   :meth:`~repro.sim.scheduler.Scheduler.state_digest` probe attached,
   producing a digest trace — an abstraction of the schedule the run
   took (pending-event multiset, parked set, contended sync words).
2. The trace is hash-chained into *schedule-prefix* hashes.  The full
   chain identifies the (abstract) schedule; each link identifies a
   schedule-tree node.  Coverage is reported as **distinct schedules
   visited**, not raw case count.
3. A LoopController-style loop keeps a corpus of specs scored by how
   much new coverage they found and how *interesting* their states were
   (peak same-word convoy depth, the digest's contention signal), and
   mutates high-energy parents: minting a fresh ``steer`` salt (a new
   deterministic dispatch phasing — the cheapest new-interleaving
   lever), bending a timing knob, dropping one, or re-seeding.

Every explored case is an ordinary :class:`~repro.verify.runner.CaseSpec`
— the steering decision rides in the perturbation's ``steer`` knob — so
failures replay with ``python -m repro verify --replay`` and shrink with
:func:`~repro.verify.shrink.shrink_case`, unchanged.

Budget-exhausted cases (:attr:`CaseResult.budget_exhausted`) are
reported separately and never enter the corpus: a livelock-guard trip
is an artifact of the budget, not a protocol violation to chase.

Entry point: ``python -m repro verify explore`` (see ``--help``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..sim.scheduler import PROBE_EVERY
from .perturbation import DEFAULT_DECK, STEER_KNOB, Perturbation
from .runner import SCENARIOS, CaseResult, CaseSpec, run_case

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1

#: cap on perturbation size the mutator will grow a spec to (shrinkable,
#: replayable reproducers; unbounded stacks of knobs explain nothing)
MAX_KNOBS = 4

#: candidates generated (and run) per steering round.  A constant —
#: independent of ``--workers`` — so the explored sequence, coverage and
#: failures are identical no matter how the batch is sharded.
BATCH = 4

#: timing-knob mutation catalog: knob -> candidate values.  Values
#: bracket the DEFAULT_DECK's (the deck is a subset of this space) and
#: stay within 8x so mutated cases cannot blow the event budget by
#: construction.
MUTATION_KNOBS: Dict[str, Tuple[float, ...]] = {
    "atomic_latency": (0.25, 2.0, 4.0, 8.0),
    "atomic_service": (0.25, 2.0, 4.0, 8.0),
    "load_latency": (0.25, 2.0, 4.0),
    "store_latency": (0.25, 4.0, 8.0),
    "yield_cost": (0.25, 0.5, 4.0),
    "step_cost": (0.25, 4.0),
    "block_dispatch": (0.25, 4.0),
    "jitter": (64.0, 256.0, 512.0, 1024.0),
}
_MUTATION_KNOB_NAMES = tuple(sorted(MUTATION_KNOBS))


def _fold(h: int, v: int) -> int:
    return ((h ^ (v & _MASK64)) * _FNV_PRIME) & _MASK64


def _fold_str(h: int, s: str) -> int:
    for b in s.encode():
        h = _fold(h, b)
    return h


class DigestTrace:
    """Schedule-probe collector: digest sequence + peak contention."""

    __slots__ = ("digests", "peak_contention")

    def __init__(self) -> None:
        self.digests: List[int] = []
        self.peak_contention = 0

    def __call__(self, state: tuple) -> None:
        digest, contended = state
        self.digests.append(digest)
        if contended > self.peak_contention:
            self.peak_contention = contended


@dataclass(frozen=True)
class ExploreItem:
    """One unit of exploration work (picklable for ``map_sharded``)."""

    spec: CaseSpec
    probe_every: int = PROBE_EVERY


@dataclass
class ExploreOutcome:
    """A probed case execution: result + schedule identity."""

    spec: CaseSpec
    result: CaseResult
    #: hash chain over the digest trace; element k identifies the
    #: schedule prefix up to probe k (a schedule-tree node)
    prefixes: Tuple[int, ...]
    #: identity of the full (abstract) schedule this run took
    schedule: int
    peak_contention: int


def run_probed(item: ExploreItem) -> ExploreOutcome:
    """Execute one case with the digest probe attached.

    Module-level so ``--workers`` sharding can pickle it; the probe is
    created here, inside the worker.  A failing case's trace is simply
    truncated at the failure point — the prefix chain still credits the
    schedule walked up to it.
    """
    trace = DigestTrace()
    result = run_case(item.spec, probe=trace, probe_every=item.probe_every)
    # Seed the chain with the case identity axes that change what a
    # digest *means* (scenario workload, backend layout, probe cadence)
    # so prefix/schedule hashes never collide across them.  The engine
    # rides along too: cross-engine digests are parity-locked, but an
    # exploration session is an engine-pinned artifact and its schedule
    # identities should say so.
    h = _fold_str(_FNV_OFFSET, item.spec.scenario)
    h = _fold_str(h, item.spec.backend)
    h = _fold_str(h, item.spec.engine)
    h = _fold(h, item.probe_every)
    prefixes = []
    for d in trace.digests:
        h = _fold(h, d)
        prefixes.append(h)
    schedule = _fold(h, len(prefixes))
    return ExploreOutcome(
        spec=item.spec,
        result=result,
        prefixes=tuple(prefixes),
        schedule=schedule,
        peak_contention=trace.peak_contention,
    )


class ScheduleCoverage:
    """The visited schedule-tree: prefix nodes and complete schedules."""

    def __init__(self) -> None:
        self.prefixes: Set[int] = set()
        self.schedules: Set[int] = set()

    def observe(self, out: ExploreOutcome) -> Tuple[int, bool]:
        """Fold one outcome in; returns ``(new_prefixes, new_schedule)``."""
        fresh = set(out.prefixes) - self.prefixes
        self.prefixes.update(fresh)
        new_schedule = out.schedule not in self.schedules
        self.schedules.add(out.schedule)
        return len(fresh), new_schedule


@dataclass
class ExploreReport:
    """Outcome of one exploration session."""

    cases: int
    distinct_schedules: int
    distinct_prefixes: int
    peak_contention: int
    failures: List[CaseResult] = field(default_factory=list)
    budget_failures: List[CaseResult] = field(default_factory=list)
    scenarios: Sequence[str] = ()
    backend: str = "ours"
    label: str = "explore"

    @property
    def coverage_per_case(self) -> float:
        return self.distinct_schedules / self.cases if self.cases else 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        lines = [
            f"{self.label}: {self.cases} case(s) over "
            f"{len(self.scenarios)} scenario(s) on backend "
            f"'{self.backend}'",
            f"  coverage: {self.distinct_schedules} distinct schedule(s) "
            f"({self.coverage_per_case:.2f}/case), "
            f"{self.distinct_prefixes} distinct prefix state(s)",
            f"  peak same-word convoy depth: {self.peak_contention}",
            f"  failures: {len(self.failures)} protocol, "
            f"{len(self.budget_failures)} budget-exhausted",
        ]
        for res in self.failures + self.budget_failures:
            lines.append(res.describe())
            lines.append(
                f"  replay: python -m repro verify --replay "
                f"'{res.spec.replay}'"
            )
        return "\n".join(lines)


@dataclass
class _CorpusEntry:
    spec: CaseSpec
    energy: float
    picks: int = 0


class Explorer:
    """LoopController-style coverage-guided exploration session.

    Fully deterministic in ``(scenarios, budget, backend, master_seed,
    probe_every)``: steering draws come from an owned
    :class:`random.Random`, fresh ``steer`` salts from a counter, and
    rounds are a fixed :data:`BATCH` wide regardless of ``workers`` —
    sharding parallelizes a round, never reshapes it, so coverage and
    failures are identical at any ``--workers``.
    """

    #: corpus size cap: beyond this, the lowest-energy entry is evicted
    CORPUS_CAP = 64

    def __init__(
        self,
        scenarios: Optional[Sequence[str]] = None,
        budget: int = 64,
        backend: str = "ours",
        master_seed: int = 0,
        workers: int = 1,
        probe_every: int = PROBE_EVERY,
        engine: str = "event",
    ) -> None:
        names = list(scenarios) if scenarios else sorted(SCENARIOS)
        for name in names:
            if name not in SCENARIOS:
                raise ValueError(
                    f"unknown scenario {name!r}; "
                    f"choose from {', '.join(sorted(SCENARIOS))}"
                )
        if budget < 1:
            raise ValueError(f"budget must be >= 1 (got {budget})")
        self.scenarios = names
        self.budget = budget
        self.backend = backend
        self.engine = engine
        self.workers = workers
        self.probe_every = probe_every
        self._rng = random.Random(0x5EED ^ (master_seed * 0x9E3779B1))
        self._salt = 0
        self._seen: Set[str] = set()
        self._corpus: List[_CorpusEntry] = []

    # ------------------------------------------------------------------
    # steering decisions
    # ------------------------------------------------------------------
    def _fresh_salt(self) -> float:
        self._salt += 1
        return float(self._salt)

    def _with_knob(self, pert: Perturbation, name: str,
                   value: float) -> Perturbation:
        items = tuple((n, v) for n, v in pert.items if n != name)
        if len(items) >= MAX_KNOBS:
            # evict a deterministic victim so specs stay shrinkable
            victim = self._rng.choice([n for n, _ in items])
            items = tuple((n, v) for n, v in items if n != victim)
        return Perturbation(items + ((name, value),))

    def _mutate(self, spec: CaseSpec) -> CaseSpec:
        """One steering decision: derive a new candidate from a parent."""
        rng = self._rng
        pert = spec.perturbation
        r = rng.random()
        if r < 0.50:
            # fresh steer salt: a new dispatch phasing of the same case
            pert = self._with_knob(pert, STEER_KNOB, self._fresh_salt())
            return replace(spec, perturbation=pert)
        if r < 0.75:
            name = rng.choice(_MUTATION_KNOB_NAMES)
            value = rng.choice(MUTATION_KNOBS[name])
            return replace(spec,
                           perturbation=self._with_knob(pert, name, value))
        if r < 0.85 and len(pert):
            name = rng.choice([n for n, _ in pert.items])
            return replace(spec, perturbation=pert.without(name))
        return replace(spec, seed=rng.randrange(1 << 16))

    def _pick_parent(self) -> _CorpusEntry:
        entries = self._corpus
        weights = [e.energy / (1.0 + e.picks) for e in entries]
        total = sum(weights)
        x = self._rng.random() * total
        for entry, w in zip(entries, weights):
            x -= w
            if x <= 0:
                return entry
        return entries[-1]

    def _next_spec(self) -> Tuple[CaseSpec, _CorpusEntry]:
        parent = self._pick_parent()
        parent.picks += 1
        for _ in range(8):
            cand = self._mutate(parent.spec)
            if cand.replay not in self._seen:
                self._seen.add(cand.replay)
                return cand, parent
        # mutation kept landing on visited specs: force a fresh salt,
        # which is unvisited by construction
        cand = replace(
            parent.spec,
            perturbation=self._with_knob(parent.spec.perturbation,
                                         STEER_KNOB, self._fresh_salt()),
        )
        self._seen.add(cand.replay)
        return cand, parent

    # ------------------------------------------------------------------
    # the exploration loop
    # ------------------------------------------------------------------
    def _observe(self, out: ExploreOutcome, parent: Optional[_CorpusEntry],
                 coverage: ScheduleCoverage,
                 report: ExploreReport) -> Tuple[int, bool]:
        novel, new_schedule = coverage.observe(out)
        if out.peak_contention > report.peak_contention:
            report.peak_contention = out.peak_contention
        res = out.result
        if not res.ok:
            if res.kind == "budget":
                report.budget_failures.append(res)
            else:
                report.failures.append(res)
            return novel, new_schedule
        # weighted steering: novelty (schedule-tree growth) plus the
        # "interesting state" bonus for contended sync words.  Round-0
        # specs (parent is None) were pre-seeded into the corpus.
        if new_schedule and parent is not None:
            energy = (
                1.0
                + 4.0 * (novel / max(1, len(out.prefixes)))
                + 0.25 * out.peak_contention
            )
            self._corpus.append(_CorpusEntry(out.spec, energy))
            if len(self._corpus) > self.CORPUS_CAP:
                victim = min(range(len(self._corpus)),
                             key=lambda i: self._corpus[i].energy)
                del self._corpus[victim]
        if parent is not None:
            if novel:
                parent.energy += 0.5
            else:
                parent.energy *= 0.7  # decay dead-end parents
        return novel, new_schedule

    def run(self, log: Optional[Callable[[str], None]] = None) -> ExploreReport:
        from ..par.pool import map_sharded

        coverage = ScheduleCoverage()
        report = ExploreReport(
            cases=0, distinct_schedules=0, distinct_prefixes=0,
            peak_contention=0, scenarios=self.scenarios,
            backend=self.backend,
        )
        # round 0: the baseline corpus — every scenario at its first
        # seeds, unperturbed (these anchor the schedule tree's trunk)
        initial = [
            CaseSpec(name, seed, Perturbation(), self.backend, self.engine)
            for seed in (0, 1) for name in self.scenarios
        ][: self.budget]
        for spec in initial:
            self._seen.add(spec.replay)
            self._corpus.append(_CorpusEntry(spec, 1.0))
        queue: List[Tuple[CaseSpec, Optional[_CorpusEntry]]] = [
            (spec, None) for spec in initial
        ]
        while report.cases < self.budget:
            if not queue:
                remaining = self.budget - report.cases
                for _ in range(min(BATCH, remaining)):
                    queue.append(self._next_spec())
            batch = queue[:BATCH]
            queue = queue[BATCH:]
            items = [ExploreItem(spec, self.probe_every)
                     for spec, _ in batch]
            outcomes = map_sharded(run_probed, items, workers=self.workers,
                                   label=lambda it: it.spec.replay)
            for (spec, parent), out in zip(batch, outcomes):
                report.cases += 1
                novel, new_schedule = self._observe(
                    out, parent, coverage, report)
                if log is not None:
                    mark = "+" if new_schedule else "="
                    log(f"  [{report.cases}/{self.budget}] {mark} "
                        f"{out.result.describe().splitlines()[0]}"
                        f" (prefixes +{novel}, convoy {out.peak_contention})")
        report.distinct_schedules = len(coverage.schedules)
        report.distinct_prefixes = len(coverage.prefixes)
        return report


def explore(
    scenarios: Optional[Sequence[str]] = None,
    budget: int = 64,
    backend: str = "ours",
    master_seed: int = 0,
    workers: int = 1,
    probe_every: int = PROBE_EVERY,
    engine: str = "event",
    log: Optional[Callable[[str], None]] = None,
) -> ExploreReport:
    """Run one coverage-guided exploration session (see :class:`Explorer`)."""
    return Explorer(
        scenarios=scenarios, budget=budget, backend=backend,
        master_seed=master_seed, workers=workers, probe_every=probe_every,
        engine=engine,
    ).run(log=log)


def deck_coverage(
    scenarios: Optional[Sequence[str]] = None,
    budget: int = 64,
    backend: str = "ours",
    deck: Sequence[Perturbation] = DEFAULT_DECK,
    workers: int = 1,
    probe_every: int = PROBE_EVERY,
    engine: str = "event",
    log: Optional[Callable[[str], None]] = None,
) -> ExploreReport:
    """Measure the random sweep's schedule coverage at an equal budget.

    Runs the canonical ``seeds -> deck -> scenarios`` grid (the exact
    order :func:`~repro.verify.runner.sweep` uses), truncated at
    ``budget`` cases, with the same digest probes and coverage metric as
    the explorer — the apples-to-apples baseline for the
    coverage-vs-budget comparison in EXPERIMENTS.md.
    """
    from ..par.pool import map_sharded

    names = list(scenarios) if scenarios else sorted(SCENARIOS)
    specs: List[CaseSpec] = []
    seed = 0
    while len(specs) < budget:
        for pert in deck:
            for name in names:
                specs.append(CaseSpec(name, seed, pert, backend, engine))
        seed += 1
    specs = specs[:budget]
    coverage = ScheduleCoverage()
    report = ExploreReport(
        cases=0, distinct_schedules=0, distinct_prefixes=0,
        peak_contention=0, scenarios=names, backend=backend,
        label="deck",
    )
    items = [ExploreItem(spec, probe_every) for spec in specs]
    outcomes = map_sharded(run_probed, items, workers=workers,
                           label=lambda it: it.spec.replay)
    for out in outcomes:
        report.cases += 1
        novel, new_schedule = coverage.observe(out)
        if out.peak_contention > report.peak_contention:
            report.peak_contention = out.peak_contention
        if not out.result.ok:
            if out.result.kind == "budget":
                report.budget_failures.append(out.result)
            else:
                report.failures.append(out.result)
        if log is not None:
            mark = "+" if new_schedule else "="
            log(f"  [{report.cases}/{budget}] {mark} "
                f"{out.result.describe().splitlines()[0]}")
    report.distinct_schedules = len(coverage.schedules)
    report.distinct_prefixes = len(coverage.prefixes)
    return report
