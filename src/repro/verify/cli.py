"""``python -m repro verify`` — the concurrency-verification CLI.

Usage::

    python -m repro verify                    # default sweep
    python -m repro verify --smoke            # reduced CI sweep
    python -m repro verify --seeds 8          # more seeds
    python -m repro verify --scenario churn   # restrict scenarios
    python -m repro verify --workers 4        # shard the grid (see par)
    python -m repro verify --replay 'storm:3:atomic_latency=4,jitter=512'
    python -m repro verify --replay ... --shrink

The sweep runs every scenario under every (seed, perturbation) pair
with the race checker attached and invariant/leak checkpoints enabled.
Each failure prints a replay triple; ``--replay`` re-executes exactly
that schedule, and ``--shrink`` bisects the perturbation set down to a
minimal reproducer.  Exit status is 0 iff every case passed.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .perturbation import DEFAULT_DECK, SMOKE_DECK
from .runner import SCENARIOS, CaseResult, CaseSpec, sweep, run_case
from .shrink import shrink_case


def _report_failures(failures: List[CaseResult], do_shrink: bool) -> None:
    print(f"\n{len(failures)} failing case(s):")
    for res in failures:
        print(res.describe())
        print(f"  replay: python -m repro verify --replay '{res.spec.replay}'")
    if do_shrink and failures:
        first = failures[0]
        if first.spec.perturbation:
            print(f"\nshrinking {first.spec.replay} ...")
            minimal = shrink_case(first.spec, log=print)
            print(f"minimal reproducer: python -m repro verify "
                  f"--replay '{minimal.replay}'")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro verify",
        description="Deterministic concurrency verification: schedule "
                    "fuzzing over allocator torture scenarios with race "
                    "detection and invariant checkpoints.",
    )
    parser.add_argument(
        "--seeds", type=int, default=4, metavar="N",
        help="number of scheduler seeds to sweep (default 4)",
    )
    parser.add_argument(
        "--seed-start", type=int, default=0, metavar="K",
        help="first seed of the sweep (default 0)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced perturbation deck and 2 seeds (CI smoke budget)",
    )
    parser.add_argument(
        "--scenario", action="append", choices=sorted(SCENARIOS),
        metavar="NAME", default=None,
        help=f"restrict to a scenario (repeatable); "
             f"default all: {', '.join(sorted(SCENARIOS))}",
    )
    parser.add_argument(
        "--backend", metavar="NAME", default="ours",
        help="allocator backend to sweep (a repro.backends registry "
             "name; default 'ours')",
    )
    parser.add_argument(
        "--replay", metavar="SPEC", default=None,
        help="replay one failing case: 'scenario[@backend]:seed:"
             "perturbation' (as printed by a failing sweep)",
    )
    parser.add_argument(
        "--shrink", action="store_true",
        help="after a failure, bisect the perturbation set to a minimal "
             "reproducer",
    )
    parser.add_argument(
        "--fail-fast", action="store_true",
        help="stop the sweep at the first failing case",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard the sweep grid across N worker processes "
             "(0 = one per CPU; default 1 = serial); results are merged "
             "in canonical grid order and identical to a serial sweep",
    )
    args = parser.parse_args(argv)

    t0 = time.time()
    if args.replay is not None:
        try:
            spec = CaseSpec.parse(args.replay)
        except ValueError as e:
            parser.error(str(e))
        print(f"replaying {spec.replay} ...")
        res = run_case(spec)
        print(res.describe())
        if res.ok:
            print(f"({time.time() - t0:.1f}s)")
            return 0
        _report_failures([res], args.shrink)
        print(f"({time.time() - t0:.1f}s)")
        return 1

    if args.smoke:
        deck = SMOKE_DECK
        n_seeds = min(args.seeds, 2) if args.seeds != 4 else 2
    else:
        deck = DEFAULT_DECK
        n_seeds = args.seeds
    seeds = range(args.seed_start, args.seed_start + n_seeds)
    names = args.scenario or sorted(SCENARIOS)
    n_cases = len(seeds) * len(deck) * len(names)
    print(f"verify: sweeping {len(seeds)} seed(s) x {len(deck)} "
          f"perturbation(s) x {len(names)} scenario(s) = {n_cases} cases")
    results = sweep(seeds, deck=deck, scenarios=names,
                    fail_fast=args.fail_fast, log=print,
                    workers=args.workers, backend=args.backend)
    failures = [r for r in results if not r.ok]
    elapsed = time.time() - t0
    if not failures:
        print(f"\nall {len(results)} cases passed ({elapsed:.1f}s)")
        return 0
    _report_failures(failures, args.shrink)
    print(f"({elapsed:.1f}s)")
    return 1


if __name__ == "__main__":  # pragma: no cover - python -m repro verify is the entry
    sys.exit(main())
