"""``python -m repro verify`` — the concurrency-verification CLI.

Usage::

    python -m repro verify                    # default sweep
    python -m repro verify --smoke            # reduced CI sweep
    python -m repro verify --seeds 8          # more seeds
    python -m repro verify --scenario churn   # restrict scenarios
    python -m repro verify --workers 4        # shard the grid (see par)
    python -m repro verify --replay 'storm:3:atomic_latency=4,jitter=512'
    python -m repro verify --replay ... --shrink
    python -m repro verify explore --budget 64      # coverage-guided
    python -m repro verify explore --compare-deck   # vs random deck

The sweep runs every scenario under every (seed, perturbation) pair
with the race checker attached and invariant/leak checkpoints enabled.
Each failure prints a replay triple; ``--replay`` re-executes exactly
that schedule, and ``--shrink`` bisects the perturbation set down to a
minimal reproducer.  Exit status is 0 iff every case passed.

``explore`` swaps the fixed grid for the coverage-guided engine
(:mod:`repro.verify.explore`): schedule-state digests steer the case
budget toward unvisited interleavings, and coverage is reported as
distinct schedules visited.  Explorer failures print the same replay
triples (the steering decision rides in the ``steer`` knob).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from ..sim.scheduler import ENGINES
from .perturbation import DEFAULT_DECK, SMOKE_DECK
from .runner import SCENARIOS, CaseResult, CaseSpec, sweep, run_case
from .shrink import shrink_case


def _report_failures(failures: List[CaseResult], do_shrink: bool) -> None:
    print(f"\n{len(failures)} failing case(s):")
    for res in failures:
        print(res.describe())
        print(f"  replay: python -m repro verify --replay '{res.spec.replay}'")
    if do_shrink and failures:
        first = failures[0]
        if first.spec.perturbation:
            print(f"\nshrinking {first.spec.replay} ...")
            minimal = shrink_case(first.spec, log=print)
            print(f"minimal reproducer: python -m repro verify "
                  f"--replay '{minimal.replay}'")


def main_explore(argv: Optional[List[str]] = None) -> int:
    """``python -m repro verify explore`` — coverage-guided exploration."""
    from .explore import deck_coverage, explore
    from ..sim.scheduler import PROBE_EVERY

    parser = argparse.ArgumentParser(
        prog="python -m repro verify explore",
        description="Coverage-guided schedule exploration: steer the case "
                    "budget toward unvisited interleavings using scheduler "
                    "state digests; report distinct schedules visited.",
    )
    parser.add_argument(
        "--budget", type=int, default=64, metavar="N",
        help="number of cases to explore (default 64)",
    )
    parser.add_argument(
        "--scenario", action="append", choices=sorted(SCENARIOS),
        metavar="NAME", default=None,
        help=f"restrict to a scenario (repeatable); "
             f"default all: {', '.join(sorted(SCENARIOS))}",
    )
    parser.add_argument(
        "--backend", metavar="NAME", default="ours",
        help="allocator backend to explore (default 'ours')",
    )
    parser.add_argument(
        "--engine", choices=ENGINES, default="event",
        help="scheduler run loop to explore under (default 'event'); "
             "part of every replay spec the session prints",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="K",
        help="master seed for the steering RNG (default 0); coverage and "
             "failures are deterministic in (budget, scenarios, seed)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard each steering batch across N worker processes "
             "(0 = one per CPU; default 1); the explored sequence is "
             "identical at any worker count",
    )
    parser.add_argument(
        "--probe-every", type=int, default=PROBE_EVERY, metavar="E",
        help="scheduler events between digest probes (default "
             f"{PROBE_EVERY}; smaller = finer schedule distinctions, "
             "more probe overhead)",
    )
    parser.add_argument(
        "--min-coverage", type=int, default=0, metavar="S",
        help="fail (exit 1) when fewer than S distinct schedules were "
             "visited — the CI floor that keeps the explorer honest",
    )
    parser.add_argument(
        "--compare-deck", action="store_true",
        help="also run the random DEFAULT_DECK grid at the same budget "
             "with the same coverage metric, and print both",
    )
    parser.add_argument(
        "--shrink", action="store_true",
        help="shrink the first protocol failure to a minimal reproducer",
    )
    parser.add_argument(
        "--fail-on-budget", action="store_true",
        help="treat event-budget exhaustions as failures (default: "
             "reported but non-fatal — the livelock guard tripping is a "
             "budget artifact, not a protocol violation)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-case progress lines",
    )
    args = parser.parse_args(argv)

    t0 = time.time()
    log = None if args.quiet else print
    print(f"explore: coverage-guided, budget {args.budget} case(s), "
          f"master seed {args.seed}")
    report = explore(
        scenarios=args.scenario, budget=args.budget, backend=args.backend,
        master_seed=args.seed, workers=args.workers,
        probe_every=args.probe_every, engine=args.engine, log=log,
    )
    print()
    print(report.describe())
    if args.compare_deck:
        print(f"\ndeck: random DEFAULT_DECK grid at the same budget "
              f"({args.budget} case(s))")
        baseline = deck_coverage(
            scenarios=args.scenario, budget=args.budget,
            backend=args.backend, workers=args.workers,
            probe_every=args.probe_every, engine=args.engine, log=log,
        )
        print()
        print(baseline.describe())
    if args.shrink and report.failures:
        first = report.failures[0]
        if first.spec.perturbation:
            print(f"\nshrinking {first.spec.replay} ...")
            minimal = shrink_case(first.spec, log=print)
            print(f"minimal reproducer: python -m repro verify "
                  f"--replay '{minimal.replay}'")
    elapsed = time.time() - t0
    status = 0
    if report.failures:
        status = 1
    if args.fail_on_budget and report.budget_failures:
        status = 1
    if report.distinct_schedules < args.min_coverage:
        print(f"\ncoverage floor missed: {report.distinct_schedules} "
              f"distinct schedule(s) < required {args.min_coverage}")
        status = 1
    print(f"({elapsed:.1f}s)")
    return status


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "explore":
        return main_explore(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro verify",
        description="Deterministic concurrency verification: schedule "
                    "fuzzing over allocator torture scenarios with race "
                    "detection and invariant checkpoints.",
    )
    parser.add_argument(
        "--seeds", type=int, default=4, metavar="N",
        help="number of scheduler seeds to sweep (default 4)",
    )
    parser.add_argument(
        "--seed-start", type=int, default=0, metavar="K",
        help="first seed of the sweep (default 0)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced perturbation deck and 2 seeds (CI smoke budget)",
    )
    parser.add_argument(
        "--scenario", action="append", choices=sorted(SCENARIOS),
        metavar="NAME", default=None,
        help=f"restrict to a scenario (repeatable); "
             f"default all: {', '.join(sorted(SCENARIOS))}",
    )
    parser.add_argument(
        "--backend", metavar="NAME", default="ours",
        help="allocator backend to sweep (a repro.backends registry "
             "name; default 'ours')",
    )
    parser.add_argument(
        "--engine", choices=ENGINES, default="event",
        help="scheduler run loop to sweep under (default 'event'); "
             "recorded in every replay spec the sweep prints",
    )
    parser.add_argument(
        "--replay", metavar="SPEC", default=None,
        help="replay one failing case: 'scenario[@backend][/engine]:seed:"
             "perturbation' (as printed by a failing sweep)",
    )
    parser.add_argument(
        "--shrink", action="store_true",
        help="after a failure, bisect the perturbation set to a minimal "
             "reproducer",
    )
    parser.add_argument(
        "--fail-fast", action="store_true",
        help="stop the sweep at the first failing case",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard the sweep grid across N worker processes "
             "(0 = one per CPU; default 1 = serial); results are merged "
             "in canonical grid order and identical to a serial sweep",
    )
    args = parser.parse_args(argv)

    t0 = time.time()
    if args.replay is not None:
        try:
            spec = CaseSpec.parse(args.replay)
        except ValueError as e:
            parser.error(str(e))
        print(f"replaying {spec.replay} ...")
        res = run_case(spec)
        print(res.describe())
        if res.ok:
            print(f"({time.time() - t0:.1f}s)")
            return 0
        _report_failures([res], args.shrink)
        print(f"({time.time() - t0:.1f}s)")
        return 1

    if args.smoke:
        deck = SMOKE_DECK
        n_seeds = min(args.seeds, 2) if args.seeds != 4 else 2
    else:
        deck = DEFAULT_DECK
        n_seeds = args.seeds
    seeds = range(args.seed_start, args.seed_start + n_seeds)
    names = args.scenario or sorted(SCENARIOS)
    n_cases = len(seeds) * len(deck) * len(names)
    print(f"verify: sweeping {len(seeds)} seed(s) x {len(deck)} "
          f"perturbation(s) x {len(names)} scenario(s) = {n_cases} cases")
    results = sweep(seeds, deck=deck, scenarios=names,
                    fail_fast=args.fail_fast, log=print,
                    workers=args.workers, backend=args.backend,
                    engine=args.engine)
    failures = [r for r in results if not r.ok]
    elapsed = time.time() - t0
    if not failures:
        print(f"\nall {len(results)} cases passed ({elapsed:.1f}s)")
        return 0
    _report_failures(failures, args.shrink)
    print(f"({elapsed:.1f}s)")
    return 1


if __name__ == "__main__":  # pragma: no cover - python -m repro verify is the entry
    sys.exit(main())
