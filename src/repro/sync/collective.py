"""Collective synchronization primitives — paper §4.2.2.

A *collective* primitive lets a group of cooperating threads acquire a
synchronization object together: one elected thread performs the actual
acquire, a group barrier ensures nobody enters the critical section
before the acquire lands, the group cooperates inside the critical
section (e.g. taking k list elements with one traversal), and the
release happens only after every member has left.

Two group flavours are provided:

* **warp-collective** — the group is the set of warp lanes that reach
  the collective call together (discovered with the simulator's
  ``warp_converge``, the ``__activemask()`` analogue).  This is what
  UAlloc uses for chunk allocation: whichever lanes of a warp need a
  chunk at the same time grab the chunk-list mutex once.
* **block-collective** — the group is the whole thread block,
  synchronized with ``syncthreads``; usable when every thread of the
  block participates (the paper's presentation).
"""

from __future__ import annotations

from ..sim import ops
from ..sim.device import ThreadCtx
from ..sim.memory import DeviceMemory
from .spinlock import SpinLock


class CollectiveMutex:
    """A mutex with collective acquire/release operations.

    Warp-collective use (any subset of a warp may participate)::

        mask = yield from cmutex.lock_warp(ctx)
        rank = sorted(mask).index(ctx.lane)      # my index in the group
        ...cooperate: thread `rank` handles the rank-th element...
        yield from cmutex.unlock_warp(ctx, mask)

    Block-collective use (every live thread of the block participates)::

        yield from cmutex.lock_block(ctx)
        ...
        yield from cmutex.unlock_block(ctx)
    """

    __slots__ = ("_mutex",)

    def __init__(self, mem: DeviceMemory):
        self._mutex = SpinLock(mem)

    # -- warp-collective -------------------------------------------------
    def lock_warp(self, ctx: ThreadCtx):
        """Collectively acquire with the lanes that converge here.

        Returns the converged mask (a frozenset of lane indices); pass it
        to :meth:`unlock_warp`.  The elected leader (lowest lane) takes
        the underlying mutex; the trailing ``warp_sync`` guarantees no
        member proceeds before the mutex is held.
        """
        mask = yield ops.warp_converge()
        if ctx.lane == min(mask):
            if ctx.trace is not None:
                # one sample per group: the coalescing width this
                # collective acquire amortized the mutex over
                ctx.trace.collective_joined(ctx, len(mask))
            yield from self._mutex.lock(ctx)
        mask = yield ops.warp_sync(mask)
        return mask

    def unlock_warp(self, ctx: ThreadCtx, mask: frozenset):
        """Collectively release; the mutex drops only after every member
        of ``mask`` has arrived."""
        yield ops.warp_sync(mask)
        if ctx.lane == min(mask):
            yield from self._mutex.unlock(ctx)

    # -- block-collective ------------------------------------------------
    def lock_block(self, ctx: ThreadCtx):
        """Collectively acquire with the entire thread block."""
        if ctx.tid_in_block == 0:
            if ctx.trace is not None:
                ctx.trace.collective_joined(ctx, ctx.block_dim)
            yield from self._mutex.lock(ctx)
        yield ops.syncthreads()

    def unlock_block(self, ctx: ThreadCtx):
        """Collectively release with the entire thread block."""
        yield ops.syncthreads()
        if ctx.tid_in_block == 0:
            yield from self._mutex.unlock(ctx)

    # -- degenerate (per-thread) ------------------------------------------
    def lock(self, ctx: ThreadCtx):
        """Plain single-thread acquire (for baselines/ablation)."""
        yield from self._mutex.lock(ctx)

    def unlock(self, ctx: ThreadCtx):
        """Plain single-thread release."""
        yield from self._mutex.unlock(ctx)

    # -- host side ---------------------------------------------------------
    def is_locked(self) -> bool:
        return self._mutex.is_locked()


def group_rank(ctx: ThreadCtx, mask: frozenset) -> int:
    """This thread's 0-based index within a converged group mask."""
    return sorted(mask).index(ctx.lane)
