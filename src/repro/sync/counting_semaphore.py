"""Counting semaphore with the paper's grow/shrink extension (§3.2).

The semaphore value ``S`` is a signed 64-bit word.  On top of Dijkstra's
``wait``/``signal``, the paper extends ``wait(N)`` for resource pools
that can grow:

* if ``S >= N``: ``S -= N``, return ``N`` (the caller got all units);
* if ``N > S >= 0``: ``S <- -1``, return ``S`` (the caller got the last
  ``S`` units and is now *the* batch allocator — everyone else blocks);
* if ``S < 0``: block (someone is already allocating a batch).

The batch allocator later calls ``signal(B)``; the ``-1`` flag absorbs
one unit, so after ``signal(B)`` the value is ``B - 1`` — exactly the
new batch minus the unit the allocator consumed itself (paper Fig. 1a).

This primitive is the Figure 5 baseline: only one batch refill can be in
flight, so at high thread counts everybody piles up behind a single
refiller — the scalability barrier bulk semaphores remove.
"""

from __future__ import annotations

from ..sim import ops
from ..sim.device import ThreadCtx, rng_randbelow
from ..sim.memory import DeviceMemory
from ..sim.ops import to_signed, to_unsigned

_MASK64 = (1 << 64) - 1


class CountingSemaphore:
    """A growable counting semaphore at a device address."""

    __slots__ = ("mem", "addr", "max_backoff", "_op_cache")

    #: value stored while a batch allocation is in flight
    GROWING = -1

    def __init__(self, mem: DeviceMemory, initial: int = 0, addr: int | None = None,
                 max_backoff: int = 65536):
        if initial < 0:
            raise ValueError("initial semaphore value must be non-negative")
        self.mem = mem
        self.addr = mem.host_alloc(8) if addr is None else addr
        mem.store_word(self.addr, to_unsigned(initial))
        self.max_backoff = max_backoff
        # n -> (load_op, sub_op, add_op): wait()'s invariant op tuples,
        # cached per requested unit count (usually just n=1)
        self._op_cache: dict = {}

    # -- device side ---------------------------------------------------
    def wait(self, ctx: ThreadCtx, n: int = 1):
        """Acquire up to ``n`` units (grow-variant semantics).

        Returns ``n`` when all units were acquired, or ``r < n`` when
        only ``r`` remained — the caller is then responsible for growing
        the pool by allocating a new batch and calling :meth:`signal`.
        """
        tr = ctx.trace
        t0 = tr.now(ctx) if tr is not None else 0
        # Hot loop: the load/sub/add op tuples are invariant in
        # (self.addr, n); build them once per n and cache on the instance.
        addr = self.addr
        max_backoff = self.max_backoff
        randbelow = rng_randbelow(ctx.rng)
        cached = self._op_cache.get(n)
        if cached is None:
            cached = self._op_cache[n] = (
                (ops.OP_LOAD, addr),
                (ops.OP_ADD, addr, (-n) & _MASK64),
                (ops.OP_ADD, addr, n & _MASK64),
            )
        load_op, sub_op, add_op = cached
        growing = to_unsigned(self.GROWING)
        backoff = 32
        cas_backoff = 8
        while True:
            s = to_signed((yield load_op))
            if s < 0:
                # a batch allocation is in flight; everyone blocks — this
                # stop-the-world window is the primitive's scalability
                # barrier (§3.3).
                yield (ops.OP_SLEEP, randbelow(backoff))
                if backoff < max_backoff:
                    backoff <<= 1
                continue
            if s >= n:
                # fetch-and-sub fast path (always succeeds; undo on
                # overdraw) — a pure CAS loop here livelocks under
                # massive contention, see bulk_semaphore.py.
                old = to_signed((yield sub_op))
                if old >= n:
                    if tr is not None:
                        tr.sem_waited(ctx, addr, t0, "acquired")
                    return n
                yield add_op
                continue
            # 0 <= s < n: try to become the batch allocator (rare: only
            # at batch boundaries, so CAS contention stays bounded)
            old = yield (ops.OP_CAS, addr, to_unsigned(s), growing)
            if to_signed(old) == s:
                if tr is not None:
                    tr.sem_waited(ctx, addr, t0, "grower")
                return s
            yield (ops.OP_SLEEP, randbelow(cas_backoff))
            if cas_backoff < max_backoff:
                cas_backoff <<= 1

    def try_wait(self, ctx: ThreadCtx, n: int = 1):
        """Acquire ``n`` units only if immediately available.

        Returns True on success.  Never blocks and never takes the
        batch-allocator role.
        """
        while True:
            s = to_signed((yield ops.load(self.addr)))
            if s < n:
                return False
            old = yield ops.atomic_cas(self.addr, to_unsigned(s), to_unsigned(s - n))
            if to_signed(old) == s:
                return True

    def signal(self, ctx: ThreadCtx, n: int = 1):
        """Release ``n`` units (also used to publish a new batch)."""
        yield ops.atomic_add(self.addr, n)

    # -- host side -----------------------------------------------------
    @property
    def value(self) -> int:
        """Host-side read of the semaphore value."""
        return to_signed(self.mem.load_word(self.addr))
