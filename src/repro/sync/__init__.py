"""Synchronization primitives for massive concurrency (paper §3, §4.2).

Contains the paper's three synchronization contributions plus the
classical primitives they are measured against:

* :class:`SpinLock` — baseline CAS spin mutex.
* :class:`CountingSemaphore` — Dijkstra semaphore with the grow/shrink
  extension of §3.2 (the Figure 5 baseline).
* :class:`BulkSemaphore` — the paper's bulk semaphore (§3.3).
* :class:`RCU` — SRCU with delegated conditional barriers (§4.2.1).
* :class:`CollectiveMutex` — collective acquire/release (§4.2.2).
"""

from .bulk_semaphore import BulkSemaphore, BulkSemaphoreOverflow, pack, unpack
from .collective import CollectiveMutex, group_rank
from .counting_semaphore import CountingSemaphore
from .rcu import RCU
from .spinlock import SpinLock

__all__ = [
    "SpinLock",
    "CountingSemaphore",
    "BulkSemaphore",
    "BulkSemaphoreOverflow",
    "pack",
    "unpack",
    "RCU",
    "CollectiveMutex",
    "group_rank",
]
