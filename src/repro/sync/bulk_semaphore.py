"""Bulk semaphores — the paper's first contribution (§3.3).

A bulk semaphore packs three counters into one 64-bit word:

* ``C`` — current value: units available right now;
* ``E`` — expected: units promised by in-flight batch allocations;
* ``R`` — reserved: units claimed by threads waiting for expected units.

``wait(N, B)`` implements paper Algorithm 1's triage:

1. ``C >= N`` → take units now, return ``0``;
2. expected availability ``C + E - R < N`` → promise a new batch
   (``E += B - N``) and return ``-1``; the caller must allocate ``B``
   units, keep ``N``, and publish the rest with :meth:`fulfill` (or
   undo the promise with :meth:`renege`);
3. otherwise → reserve (``R += N``), spin until ``C >= N`` (claim) or
   ``R >= C + E`` (expectation collapsed: un-reserve and re-triage).

``signal(N, B)`` (Algorithm 2) performs ``C += N + B; E -= B``.

Implementation note (divergence from the paper's sketch): the paper
suggests updating the packed word with compare-and-swap.  A pure CAS
loop on one hot word livelocks under massive contention — each wave of
K stale CASes yields one success, collapsing throughput quadratically —
in our simulator exactly as in published GPU spinlock studies.  We
therefore express **every** transition as an unconditional
fetch-and-add with field-local deltas:

* adds/subs to distinct bit fields commute, so concurrent updates never
  need retry;
* a claim that overdraws ``C`` momentarily borrows from ``E``; the
  claimant detects it (``C``'s observed old value lands in the upper
  guard half of the field) and immediately adds the exact inverse, so
  all corruption cancels arithmetically;
* threads only *branch* on snapshots, and every misjudgment a corrupted
  snapshot can cause is benign (a spurious extra batch promise, a
  spurious re-triage) — never a phantom unit;
* batch-promise admission is made exact without CAS: the reserve's
  returned pre-state totally orders waiters, and only the thread at
  each (B - N)-unit demand boundary is designated to promise.

Semantics (including Figure 1(b)'s concurrent batch allocation) are
identical to the paper's CAS formulation.

Field widths: C:22, E:21, R:21 bits.  Legitimate ``C`` values must stay
below ``C_GUARD`` (2^21) so borrowed states are recognizable.
"""

from __future__ import annotations

from ..sim import ops
from ..sim.device import ThreadCtx, rng_randbelow
from ..sim.errors import SimError
from ..sim.memory import DeviceMemory

C_BITS = 22
E_BITS = 21
R_BITS = 21
C_SHIFT = 0
E_SHIFT = C_BITS
R_SHIFT = C_BITS + E_BITS
C_MAX = (1 << C_BITS) - 1
E_MAX = (1 << E_BITS) - 1
R_MAX = (1 << R_BITS) - 1
#: observed C at/above this is a transient borrow, not real availability
C_GUARD = 1 << (C_BITS - 1)
_MASK64 = (1 << 64) - 1


class BulkSemaphoreOverflow(SimError):
    """A bulk-semaphore counter left its field's range."""


def pack(c: int, e: int, r: int) -> int:
    """Pack (C, E, R) into a 64-bit word; raises on out-of-range fields."""
    if not (0 <= c < C_GUARD and 0 <= e <= E_MAX and 0 <= r <= R_MAX):
        raise BulkSemaphoreOverflow(f"counters out of range: C={c} E={e} R={r}")
    return (c << C_SHIFT) | (e << E_SHIFT) | (r << R_SHIFT)


def unpack(word: int) -> tuple[int, int, int]:
    """Unpack a 64-bit word into (C, E, R)."""
    return (
        (word >> C_SHIFT) & C_MAX,
        (word >> E_SHIFT) & E_MAX,
        (word >> R_SHIFT) & R_MAX,
    )


class BulkSemaphore:
    """A bulk semaphore at a device address.

    Device-side calls are generators (``yield from sem.wait(ctx, 1, 4)``).
    Host-side inspection via :attr:`counters` / :attr:`value` (valid at
    quiescence, when all transient borrows have cancelled).
    """

    __slots__ = ("mem", "addr", "checked", "max_backoff", "_op_cache")

    def __init__(
        self,
        mem: DeviceMemory,
        initial: int = 0,
        addr: int | None = None,
        checked: bool = True,
        max_backoff: int = 16384,
    ):
        self.mem = mem
        self.addr = mem.host_alloc(8) if addr is None else addr
        mem.store_word(self.addr, pack(initial, 0, 0))
        # `checked` is kept for API stability; the F&A implementation is
        # identical either way and validated at quiescence by tests.
        self.checked = checked
        self.max_backoff = max_backoff
        # (n, b) -> the six invariant op tuples wait() yields.  A size
        # class calls wait() with one (n, b) pair for almost every
        # malloc, so this caches the whole tuple-build preamble.
        self._op_cache: dict = {}

    # -- device side ---------------------------------------------------
    def _claim(self, n: int):
        """Fetch-and-sub claim of ``n`` units from C.  Returns True on
        success; on overdraw the exact inverse is applied immediately."""
        old = yield ops.atomic_sub(self.addr, n << C_SHIFT)
        c = (old >> C_SHIFT) & C_MAX
        if n <= c < C_GUARD:
            return True
        yield ops.atomic_add(self.addr, n << C_SHIFT)
        return False

    def wait(self, ctx: ThreadCtx, n: int, b: int):
        """Paper Algorithm 1.  Returns 0 (units acquired) or -1 (caller
        must allocate a batch of ``b`` units: it owns ``n`` of them and
        owes ``b - n`` via :meth:`fulfill`/:meth:`renege`)."""
        if n <= 0 or b < n:
            raise ValueError(f"wait requires 0 < n <= b (got n={n}, b={b})")
        tr = ctx.trace
        t0 = tr.now(ctx) if tr is not None else 0
        # Hot path: every op tuple below is invariant in (self.addr, n, b),
        # so they are built once per (n, b) and cached on the instance;
        # the unpack() calls are likewise inlined into shift/mask locals.
        addr = self.addr
        max_backoff = self.max_backoff
        randbelow = rng_randbelow(ctx.rng)
        cached = self._op_cache.get((n, b))
        if cached is None:
            take = (n << C_SHIFT) + (n << R_SHIFT)
            cached = self._op_cache[(n, b)] = (
                (ops.OP_ADD, addr, (n << R_SHIFT) & _MASK64),
                (ops.OP_ADD, addr, (-(n << R_SHIFT)) & _MASK64),
                (ops.OP_LOAD, addr),
                (ops.OP_ADD, addr, (-take) & _MASK64),
                (ops.OP_ADD, addr, take & _MASK64),
                (ops.OP_ADD, addr,
                 (((b - n) << E_SHIFT) - (n << R_SHIFT)) & _MASK64),
            )
        reserve_op, unreserve_op, load_op, take_op, untake_op, promise_op = cached
        backoff = 32
        while True:
            # Reserve first.  The returned pre-state is the word's exact
            # value at our serialization point, so the triage decision is
            # totally ordered across threads: exactly one batch gets
            # promised per (b - n) units of uncovered demand — the
            # Figure 1(b) admission pattern — with no CAS anywhere.
            old = yield reserve_op
            c = (old >> C_SHIFT) & C_MAX
            e = (old >> E_SHIFT) & E_MAX
            r = (old >> R_SHIFT) & R_MAX
            if c >= C_GUARD:
                # transient borrow in flight; cannot judge — undo, retry
                yield unreserve_op
                yield (ops.OP_SLEEP, randbelow(64))
                continue
            depth = r - (c + e)  # our position past the covered demand
            if depth > -n:
                # Uncovered.  The serialized reserve order partitions the
                # uncovered demand into groups of ``b`` (each batch
                # serves its promiser's own n plus b - n fulfilled
                # units); exactly the thread at each group boundary is
                # *designated* to promise, so the promise itself can be
                # an unconditional F&A — the decision was already totally
                # ordered by the reserve.  Depth collisions under churn
                # merely over-provision; gaps are healed by the
                # collapse-exit below.  Non-designated threads back off
                # and re-triage until a promise covers them.
                # depth <= 0 means our (multi-unit) reservation straddles
                # the supply boundary — we are the first uncovered
                # thread and must promise ourselves (partial supply can
                # never grow to cover us otherwise).
                if b == n or depth <= 0 or depth % b < n:
                    yield promise_op
                    if tr is not None:
                        tr.sem_waited(ctx, addr, t0, "batch")
                    return -1
                yield unreserve_op
                yield (ops.OP_SLEEP, randbelow(backoff))
                if backoff < max_backoff:
                    backoff <<= 1
                continue
            # covered: wait for supply, then claim C and drop the
            # reservation in a single F&A
            while True:
                word = yield load_op
                c = (word >> C_SHIFT) & C_MAX
                e = (word >> E_SHIFT) & E_MAX
                r = (word >> R_SHIFT) & R_MAX
                if c >= C_GUARD:
                    yield (ops.OP_SLEEP, randbelow(64))
                    continue
                if c >= n:
                    old = yield take_op
                    oc = (old >> C_SHIFT) & C_MAX
                    if n <= oc < C_GUARD:
                        if tr is not None:
                            tr.sem_waited(ctx, addr, t0, "acquired")
                        return 0
                    yield untake_op
                elif r >= c + e:
                    break  # expectation collapsed (renege); re-triage
                yield (ops.OP_SLEEP, randbelow(backoff))
                if backoff < max_backoff:
                    backoff <<= 1
            # un-reserve, then re-triage from the top.  Reset the backoff:
            # it grew while we idled on a promise that no longer exists,
            # and the re-triage is a fresh contention episode — most
            # likely we are about to become the new designated promiser
            # ourselves, and carrying a maxed-out backoff into that role
            # would stall every waiter behind the collapsed expectation.
            yield unreserve_op
            backoff = 32

    def try_wait(self, ctx: ThreadCtx, n: int = 1):
        """Decrement ``C`` by ``n`` iff possible; returns True/False.

        Used by TBuddy merges: only a failed ``try_wait`` *guarantees*
        the buddy block cannot be taken (paper §4.1).  Gated on a
        snapshot so an empty semaphore is not churned into a borrowed
        state by every attempt.
        """
        word = yield ops.load(self.addr)
        c = (word >> C_SHIFT) & C_MAX
        if c < n or c >= C_GUARD:
            return False
        got = yield from self._claim(n)
        return got

    def signal(self, ctx: ThreadCtx, n: int, b: int = 0):
        """Paper Algorithm 2: ``C += n + b; E -= b`` in one F&A."""
        delta = (((n + b) << C_SHIFT) - (b << E_SHIFT)) & _MASK64
        yield ops.atomic_add(self.addr, delta)

    def post(self, ctx: ThreadCtx, n: int = 1):
        """Release ``n`` fresh units (plain semaphore signal)."""
        yield from self.signal(ctx, n, 0)

    def fulfill(self, ctx: ThreadCtx, k: int):
        """Publish ``k`` promised units: ``C += k; E -= k``.

        After ``wait(n, b)`` returned -1 and the batch of ``b`` was
        allocated, call ``fulfill(b - n)`` (the caller keeps ``n``)."""
        if k:
            yield from self.signal(ctx, 0, k)

    def renege(self, ctx: ThreadCtx, k: int):
        """Withdraw a promise of ``k`` units: ``E -= k`` (C unchanged).

        Call after ``wait(n, b)`` returned -1 but the batch allocation
        failed; reserved waiters will observe the shrunken expectation,
        re-triage, and take over batch allocation themselves."""
        if k:
            yield from self.signal(ctx, -k, k)

    # -- host side -----------------------------------------------------
    @property
    def counters(self) -> tuple[int, int, int]:
        """Host-side (C, E, R) snapshot (exact at quiescence)."""
        return unpack(self.mem.load_word(self.addr))

    @property
    def value(self) -> int:
        """Host-side read of ``C``."""
        return self.counters[0]
