"""Sleepable RCU with delegated (conditional) barriers — paper §4.2.1.

The paper adapts SRCU [McKenney 2006] to GPUs: a global epoch counter
plus one reader counter per epoch parity.  Readers increment/decrement
the counter of the epoch they entered in; a barrier (grace-period wait)
flips the epoch under a writer-side mutex and spins until the previous
epoch's reader count drains to zero.

The contribution is the **conditional barrier**: if another barrier is
already *waiting to flip the epoch* (it holds or is queued on the RCU
mutex but has not yet incremented the epoch), the conditional barrier
returns immediately, delegating its queued callbacks to that waiter.
The delegation is safe because the waiter's grace period starts at its
(future) flip, which happens after our callbacks were enqueued — so the
waiter's grace period covers every reader that could still see our
logically-removed elements.  Delegation hastens the release of SM
resources: a writer block that would otherwise spin on the barrier
retires instead, letting queued blocks launch (Figure 6's speedup
mechanism).

Callbacks are device generator functions ``cb(ctx)``; the thread whose
barrier completes the grace period executes all callbacks enqueued
before its flip (deferred reclamation is *delegated to a thread already
blocked*, per the paper's third design principle).
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from ..sim import ops
from ..sim.device import ThreadCtx, rng_randbelow
from ..sim.memory import DeviceMemory
from .spinlock import SpinLock


class RCU:
    """SRCU-style RCU domain in device memory.

    Words: ``epoch``, ``cnt[0]``, ``cnt[1]``, ``pre_flip_waiters``; plus a
    writer-side :class:`SpinLock` serializing epoch flips.  The callback
    queue is an ordered host-side list — the simulator executes device
    code in strict virtual-time order, so appends/snapshots are
    naturally atomic and deterministic (see DESIGN.md §5).
    """

    __slots__ = ("mem", "epoch_addr", "cnt_addr", "waiters_addr", "_mutex",
                 "_callbacks", "callbacks_run", "barriers_full", "barriers_delegated",
                 "_load_epoch_op", "_inc_ops", "_dec_ops")

    def __init__(self, mem: DeviceMemory):
        self.mem = mem
        self.epoch_addr = mem.host_alloc(8)
        self.cnt_addr = mem.host_alloc(16)  # cnt[0], cnt[1]
        self.waiters_addr = mem.host_alloc(8)
        mem.store_word(self.epoch_addr, 0)
        mem.store_word(self.cnt_addr, 0)
        mem.store_word(self.cnt_addr + 8, 0)
        mem.store_word(self.waiters_addr, 0)
        self._mutex = SpinLock(mem)
        # read_lock/read_unlock run once per list traversal — the hottest
        # non-spin path in UAlloc — and their op tuples are invariant per
        # epoch parity, so build all five once.
        self._load_epoch_op = ops.load(self.epoch_addr)
        self._inc_ops = (ops.atomic_add(self.cnt_addr, 1),
                         ops.atomic_add(self.cnt_addr + 8, 1))
        self._dec_ops = (ops.atomic_sub(self.cnt_addr, 1),
                         ops.atomic_sub(self.cnt_addr + 8, 1))
        self._callbacks: List[Tuple[Callable, tuple]] = []
        # host-visible statistics
        self.callbacks_run = 0
        self.barriers_full = 0
        self.barriers_delegated = 0

    # -- read side -------------------------------------------------------
    def read_lock(self, ctx: ThreadCtx):
        """Enter a read-side critical section; returns an epoch token that
        must be passed to :meth:`read_unlock`."""
        e = yield self._load_epoch_op
        idx = e & 1
        yield self._inc_ops[idx]
        return idx

    def read_unlock(self, ctx: ThreadCtx, idx: int):
        """Leave the read-side critical section entered with token ``idx``."""
        yield self._dec_ops[idx]

    # -- write side ------------------------------------------------------
    def call(self, ctx: ThreadCtx, callback: Callable, *args):
        """Enqueue ``callback(ctx, *args)`` (a device generator function)
        to run after a grace period.  Typically called while holding the
        data structure's writer lock, right after logically unlinking an
        element."""
        self._callbacks.append((callback, args))
        # enqueueing costs one store's worth of time
        yield ops.sleep(1)

    def synchronize(self, ctx: ThreadCtx):
        """Classical full barrier: flip the epoch, wait for the previous
        epoch's readers to drain, run all callbacks enqueued before the
        flip."""
        yield from self._full_barrier(ctx)

    def synchronize_conditional(self, ctx: ThreadCtx):
        """Conditional (delegating) barrier — the paper's extension.

        Returns immediately if another barrier has not yet flipped the
        epoch (our callbacks are covered by its grace period); otherwise
        behaves as :meth:`synchronize`."""
        waiting = yield ops.load(self.waiters_addr)
        if waiting > 0:
            self.barriers_delegated += 1
            if ctx.trace is not None:
                ctx.trace.rcu_delegation(ctx)
            return False
        yield from self._full_barrier(ctx)
        return True

    def _full_barrier(self, ctx: ThreadCtx):
        self.barriers_full += 1
        yield ops.atomic_add(self.waiters_addr, 1)
        yield from self._mutex.lock(ctx)
        # Flip the epoch.  From this point on, our grace period no longer
        # covers new callbacks, so leave the pre-flip waiter set first
        # and snapshot the callback queue.
        n_cbs = len(self._callbacks)
        e = yield ops.atomic_add(self.epoch_addr, 1)
        tr = ctx.trace
        t_flip = tr.now(ctx) if tr is not None else 0
        yield ops.atomic_sub(self.waiters_addr, 1)
        if ctx.fault is not None:
            # rcu-delay site: stretch the grace period after the flip
            # (the barrier holder stalls while holding the writer mutex)
            yield ops.fault_point("rcu.grace", e & 1)
        old_idx = e & 1
        backoff = 32
        randbelow = rng_randbelow(ctx.rng)
        load_cnt_op = ops.load(self.cnt_addr + 8 * old_idx)
        while True:
            readers = yield load_cnt_op
            if readers == 0:
                break
            yield (ops.OP_SLEEP, randbelow(backoff))
            if backoff < 2048:
                backoff <<= 1
        if tr is not None:
            # grace-period latency: epoch flip -> previous epoch drained
            tr.rcu_grace_period(ctx, t_flip, tr.now(ctx), domain=self)
        # Run every callback enqueued before our flip (including ones
        # delegated by conditional barriers).
        to_run = self._callbacks[:n_cbs]
        del self._callbacks[:n_cbs]
        for cb, args in to_run:
            self.callbacks_run += 1
            yield from cb(ctx, *args)
        yield from self._mutex.unlock(ctx)

    # -- host side -------------------------------------------------------
    @property
    def pending_callbacks(self) -> int:
        """Number of callbacks still awaiting a grace period."""
        return len(self._callbacks)

    def drain_host(self) -> int:
        """Host-side callback drain (valid only when no kernel is running
        and hence no reader can exist).  Returns the number executed."""
        from ..sim.hostrun import drive, host_ctx

        ctx = host_ctx()
        n = 0
        while self._callbacks:
            cb, args = self._callbacks.pop(0)
            drive(self.mem, cb(ctx, *args))
            n += 1
            self.callbacks_run += 1
        return n
