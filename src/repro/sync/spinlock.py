"""Spin mutex in simulated device memory.

A single 64-bit word: 0 = free, 1 = held.  Lock is a CAS loop with
randomized exponential backoff (the device analogue of
``__nanosleep``-based backoff); unlock is an atomic exchange.

This is the baseline synchronization primitive the paper's techniques
are designed to out-scale: every lock/unlock round-trips the lock word,
so a contended SpinLock serializes at the word's atomic service rate.
"""

from __future__ import annotations

from ..sim import ops
from ..sim.device import ThreadCtx, rng_randbelow
from ..sim.memory import DeviceMemory

_FREE = 0
_HELD = 1


class SpinLock:
    """A test-and-test-and-set spin mutex living at a device address.

    Device-side use::

        yield from lock.lock(ctx)
        ...critical section...
        yield from lock.unlock(ctx)
    """

    __slots__ = ("mem", "addr", "max_backoff", "_load_op", "_cas_op")

    def __init__(self, mem: DeviceMemory, addr: int | None = None, max_backoff: int = 65536):
        self.mem = mem
        self.addr = mem.host_alloc(8) if addr is None else addr
        mem.store_word(self.addr, _FREE)
        self.max_backoff = max_backoff
        # lock()/try_lock() run once per critical section on the hottest
        # paths; their op tuples are invariant, so build them once.
        self._load_op = ops.load(self.addr)
        self._cas_op = ops.atomic_cas(self.addr, _FREE, _HELD)

    # -- device side ---------------------------------------------------
    def try_lock(self, ctx: ThreadCtx):
        """Single attempt; returns True if the lock was taken."""
        tr = ctx.trace
        t0 = tr.now(ctx) if tr is not None else 0
        old = yield self._cas_op
        if old == _FREE:
            if tr is not None:
                tr.lock_acquired(ctx, self.addr, t0)
            if ctx.fault is not None:
                # stall site: hold the lock for extra cycles
                yield ops.fault_point("spinlock.hold", self.addr)
            return True
        return False

    def lock(self, ctx: ThreadCtx):
        """Acquire, spinning with randomized exponential backoff."""
        tr = ctx.trace
        t0 = tr.now(ctx) if tr is not None else 0
        # Hot loop: the op tuples are prebuilt on the instance, so only
        # the RNG draw needs binding out of the loop.
        addr = self.addr
        max_backoff = self.max_backoff
        load_op = self._load_op
        cas_op = self._cas_op
        randbelow = rng_randbelow(ctx.rng)
        backoff = 32
        while True:
            # test-and-test-and-set: read before attempting the CAS so a
            # held lock costs loads, not atomic slots.
            val = yield load_op
            if val == _FREE:
                old = yield cas_op
                if old == _FREE:
                    if tr is not None:
                        tr.lock_acquired(ctx, addr, t0)
                    if ctx.fault is not None:
                        # stall site: hold the lock for extra cycles
                        yield ops.fault_point("spinlock.hold", addr)
                    return
            yield (ops.OP_SLEEP, randbelow(backoff))
            if backoff < max_backoff:
                backoff <<= 1

    def unlock(self, ctx: ThreadCtx):
        """Release.  The caller must hold the lock."""
        yield ops.atomic_exch(self.addr, _FREE)
        if ctx.trace is not None:
            ctx.trace.lock_released(ctx, self.addr)

    # -- host side -----------------------------------------------------
    def is_locked(self) -> bool:
        """Host-side inspection (valid only while no kernel is running)."""
        return self.mem.load_word(self.addr) == _HELD
