"""Hotspot attribution: where does the *host* time of a bench go?

The simulator is pure Python, so host wall-clock — not virtual cycles —
bounds every sweep in this repo.  This module answers "what should a
perf PR optimize?" two ways:

* :func:`profile_case` runs one quick-tier case under :mod:`cProfile`
  and reduces the stats to a top-N table by own-time (``tottime``), the
  direct "this function burns the CPU" view, with cumulative time kept
  alongside for call-tree context.
* :func:`trace_report` re-runs the case with a
  :class:`repro.sim.trace.Tracer` attached (for the benches that accept
  one) and renders the simulator-level telemetry — op mix, hottest
  atomic serialization words, event-queue volume — so a host hotspot
  can be tied back to the simulated behavior generating it.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from ..bench.reporting import format_table, trace_summary
from ..sim.scheduler import use_engine
from ..sim.trace import Tracer
from .suite import BenchCase


@dataclass
class Hotspot:
    """One row of the top-N profile table."""

    ncalls: int
    tottime: float     # seconds spent in the function itself
    cumtime: float     # seconds including callees
    where: str         # 'file.py:123(function)'


@dataclass
class ProfileReport:
    case: str
    tier: str
    wall_seconds: float      # total profiled run (includes cProfile overhead)
    hotspots: List[Hotspot]

    def table(self) -> str:
        rows = [
            [h.ncalls, f"{h.tottime:.3f}", f"{h.cumtime:.3f}", h.where]
            for h in self.hotspots
        ]
        return format_table(["calls", "tottime s", "cumtime s", "where"], rows)


def _where(func) -> str:
    """pstats (file, line, name) -> a short clickable-ish location."""
    filename, line, name = func
    if filename.startswith("~") or filename == "<built-in>":
        return f"<builtin>({name})"
    short = "/".join(Path(filename).parts[-2:])
    return f"{short}:{line}({name})"


def profile_case(case: BenchCase, tier: str = "quick",
                 top: int = 10,
                 engine: Optional[str] = None) -> ProfileReport:
    """Run ``case`` once under cProfile; return the top-N own-time rows.

    ``engine`` profiles the case under that scheduler run loop
    (``None`` inherits the process default) — the direct way to answer
    "where does the batch engine spend the time the event engine
    doesn't?".
    """
    runner = case.runner(tier)
    prof = cProfile.Profile()
    with use_engine(engine):
        prof.enable()
        try:
            runner()
        finally:
            prof.disable()
    stats = pstats.Stats(prof)
    total = getattr(stats, "total_tt", 0.0)
    rows = sorted(
        stats.stats.items(),          # {(file, line, name): (cc, nc, tt, ct, callers)}
        key=lambda kv: kv[1][2],
        reverse=True,
    )
    hotspots = [
        Hotspot(ncalls=nc, tottime=tt, cumtime=ct, where=_where(func))
        for func, (cc, nc, tt, ct, callers) in rows[:top]
    ]
    return ProfileReport(case=case.name, tier=tier, wall_seconds=total,
                         hotspots=hotspots)


def trace_report(case: BenchCase, top: int = 10) -> Optional[str]:
    """Simulator telemetry for the case's traced quick run, if it has one."""
    if case.traced_quick is None:
        return None
    tracer = Tracer()
    case.traced_quick(tracer)
    return trace_summary(tracer, top=top)
