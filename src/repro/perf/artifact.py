"""Versioned, deterministically-serialized benchmark artifacts.

One ``perf run`` produces one JSON document.  The copy committed at the
repo root as ``BENCH_PR<k>.json`` is the perf trajectory: one artifact
per PR, comparable pairwise by :mod:`repro.perf.compare`.  Per-case
twins are also written next to the human tables in ``results/`` (those
are build droppings — gitignored; only the root ``BENCH_PR<k>.json``
baselines are tracked).

Serialization is deterministic modulo the measurement itself: keys are
sorted, indentation is fixed, seeds and bench parameters are recorded,
and no timestamps are embedded — re-running the same code on the same
host differs only in the ``wall_seconds`` samples.
"""

from __future__ import annotations

import json
import os
import platform
import re
import sys
from pathlib import Path
from typing import Dict, List, Union

from ..sim.cost_model import DEFAULT_COST_MODEL, CostModel
from .suite import SuiteResult

#: schema identifier; bump the suffix on breaking layout changes
SCHEMA = "repro.perf/1"

#: the trajectory naming convention at the repo root
ARTIFACT_GLOB = "BENCH_*.json"
_LABEL_RE = re.compile(r"^BENCH_(?P<label>[A-Za-z0-9_.-]+)\.json$")
_PR_RE = re.compile(r"^PR(?P<num>\d+)$")


class ArtifactError(ValueError):
    """A benchmark artifact is malformed or has the wrong schema."""


def environment_info() -> Dict[str, object]:
    """Host metadata recorded for context (never compared)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "cpu_count": os.cpu_count() or 0,
    }


def suite_to_doc(result: SuiteResult, label: str,
                 cost_model: CostModel = DEFAULT_COST_MODEL) -> dict:
    """Build the schema-v1 document for one suite run."""
    cases = {}
    for run in result.cases:
        cases[run.case] = {
            "seed": run.seed,
            "repeats": run.repeats,
            "engine": run.engine,
            "wall_seconds": [round(w, 6) for w in run.wall_seconds],
            "metrics": dict(run.metrics),
            "params": dict(run.params),
        }
    return {
        "schema": SCHEMA,
        "label": label,
        "tier": result.tier,
        "cost_model": cost_model.as_dict(),
        "environment": environment_info(),
        "cases": cases,
    }


def dumps(doc: dict) -> str:
    """Canonical serialization: sorted keys, 2-space indent, newline."""
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def validate(doc: object, *, path: Union[str, Path, None] = None) -> dict:
    """Check a loaded document against the schema; return it typed."""
    where = f" ({path})" if path else ""
    if not isinstance(doc, dict):
        raise ArtifactError(f"artifact is not a JSON object{where}")
    schema = doc.get("schema")
    if schema != SCHEMA:
        raise ArtifactError(
            f"unsupported artifact schema {schema!r}, expected {SCHEMA!r}{where}"
        )
    for key in ("label", "tier", "cost_model", "cases"):
        if key not in doc:
            raise ArtifactError(f"artifact missing key {key!r}{where}")
    if doc["tier"] not in ("quick", "full"):
        raise ArtifactError(f"unknown tier {doc['tier']!r}{where}")
    if not isinstance(doc["cases"], dict) or not doc["cases"]:
        raise ArtifactError(f"artifact has no cases{where}")
    for name, case in doc["cases"].items():
        if not isinstance(case, dict):
            raise ArtifactError(f"case {name!r} is not an object{where}")
        for key in ("seed", "repeats", "metrics"):
            if key not in case:
                raise ArtifactError(f"case {name!r} missing {key!r}{where}")
        # "engine" is optional for backward compatibility with pre-batch
        # artifacts (their cases all ran the event engine)
        if not isinstance(case.get("engine", "event"), str):
            raise ArtifactError(f"case {name!r} engine not a string{where}")
        metrics = case["metrics"]
        if not isinstance(metrics, dict):
            raise ArtifactError(f"case {name!r} metrics not an object{where}")
        for mname, value in metrics.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ArtifactError(
                    f"case {name!r} metric {mname!r} is not a number{where}"
                )
    return doc


def write_artifact(path: Union[str, Path], doc: dict) -> Path:
    """Validate and write one artifact document."""
    path = Path(path)
    validate(doc, path=path)
    path.write_text(dumps(doc))
    return path


def load_artifact(path: Union[str, Path]) -> dict:
    """Load and validate one artifact document."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except OSError as e:
        raise ArtifactError(f"cannot read artifact {path}: {e}") from None
    except json.JSONDecodeError as e:
        raise ArtifactError(f"artifact {path} is not valid JSON: {e}") from None
    return validate(doc, path=path)


def write_twins(doc: dict, results_dir: Union[str, Path]) -> List[Path]:
    """Write one machine-readable twin per case into ``results/``.

    Each twin repeats the run-level context (schema, label, tier, cost
    model) so a single file is self-describing next to its ``.txt``
    sibling.
    """
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name, case in doc["cases"].items():
        twin = {
            "schema": SCHEMA,
            "label": doc["label"],
            "tier": doc["tier"],
            "cost_model": doc["cost_model"],
            "case": name,
            **case,
        }
        out = results_dir / f"{name}.json"
        out.write_text(json.dumps(twin, sort_keys=True, indent=2) + "\n")
        written.append(out)
    return written


def _sort_key(path: Path):
    """PR-numbered artifacts in PR order, then everything else by name."""
    m = _LABEL_RE.match(path.name)
    label = m.group("label") if m else path.stem
    pr = _PR_RE.match(label)
    if pr:
        return (0, int(pr.group("num")), label)
    return (1, 0, label)


def find_artifacts(root: Union[str, Path]) -> List[Path]:
    """All ``BENCH_*.json`` trajectory files under ``root``, oldest first."""
    root = Path(root)
    return sorted(root.glob(ARTIFACT_GLOB), key=_sort_key)


def label_of(path: Union[str, Path]) -> str:
    """'BENCH_PR3.json' -> 'PR3' (falls back to the stem)."""
    name = Path(path).name
    m = _LABEL_RE.match(name)
    return m.group("label") if m else Path(path).stem


def next_label(root: Union[str, Path]) -> str:
    """The next free PR<k> label for the trajectory at ``root``.

    With no prior artifacts this is ``PR3`` — the trajectory starts at
    this repo's PR 3, which introduced the subsystem.
    """
    best = 2
    for path in find_artifacts(root):
        pr = _PR_RE.match(label_of(path))
        if pr:
            best = max(best, int(pr.group("num")))
    return f"PR{best + 1}"
