"""``repro.perf`` — performance benchmark, profiling & regression gate.

The paper's whole argument is throughput, so this repo needs a perf
story that survives across PRs.  This package provides it:

* :mod:`repro.perf.suite` — a registry of :class:`~repro.perf.suite.BenchCase`
  entries wrapping the existing fig5/fig6/fig7, shootout, fragmentation
  and ablation runners behind one interface, each recording **virtual**
  throughput (simulated cycles via the cost model) and **host
  wall-clock** (how fast the pure-Python simulator itself runs — the
  binding constraint on every sweep in this repo).
* :mod:`repro.perf.artifact` — a versioned, deterministically-serialized
  JSON schema; ``BENCH_PR<k>.json`` files at the repo root form the perf
  trajectory, with machine-readable twins next to ``results/*.txt``.
* :mod:`repro.perf.compare` — loads prior artifacts, computes per-metric
  deltas with noise-aware tolerances (virtual metrics are deterministic
  and gated tightly; wall-clock is noisy and gated loosely or not at
  all), and exits nonzero on regression.
* :mod:`repro.perf.profile` — cProfile hotspot attribution per case plus
  tracer-derived hot-word/telemetry stats, so optimization PRs know
  where to aim.

CLI: ``python -m repro perf run|compare|profile`` (see
:mod:`repro.perf.cli`).
"""

from .suite import CASES, BenchCase, CaseRun, SuiteResult, run_case, run_suite
from .artifact import (
    SCHEMA,
    ArtifactError,
    find_artifacts,
    load_artifact,
    suite_to_doc,
    write_artifact,
)
from .compare import Delta, compare_docs, has_regressions, render_deltas

__all__ = [
    "CASES",
    "BenchCase",
    "CaseRun",
    "SuiteResult",
    "run_case",
    "run_suite",
    "SCHEMA",
    "ArtifactError",
    "find_artifacts",
    "load_artifact",
    "suite_to_doc",
    "write_artifact",
    "Delta",
    "compare_docs",
    "has_regressions",
    "render_deltas",
]
