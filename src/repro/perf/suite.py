"""Benchmark registry: the existing bench runners behind one interface.

Every :class:`BenchCase` wraps one of the repo's evaluation harnesses
(:mod:`repro.bench.fig5` … :mod:`repro.bench.ablations`) and reduces its
result object to a flat ``{metric: float}`` dict.  Two metric classes
are recorded, distinguished by prefix:

``virtual:*``
    Simulated-throughput metrics derived from the cost model (ops per
    virtual second, cycle totals, speedups, overhead ratios).  These
    are **deterministic**: the simulator is seeded, so the same code at
    the same seed produces bit-identical values — any delta across PRs
    is a real behavior change.

``wall:seconds``
    Host wall-clock for one run of the case — how fast the pure-Python
    simulator itself executes the workload.  This is the binding
    constraint on every sweep in this repo (a fig7 full sweep is
    minutes of host time for milliseconds of virtual time), so it is
    tracked as a first-class metric, but it is *noisy* and
    machine-dependent; :mod:`repro.perf.compare` gates it with a loose
    tolerance that can be disabled entirely for cross-machine runs.

Each case has a ``quick`` tier (seconds of host time — CI smoke and the
regression gate) and a ``full`` tier (the paper-scale sweeps behind
EXPERIMENTS.md).  Wall-clock is measured per repeat and the median is
recorded; virtual metrics must agree across repeats, and a mismatch
raises — determinism is part of the simulator's contract.

Metric-name convention (relied on by :mod:`repro.perf.compare` to pick
a comparison direction): names containing ``seconds``, ``cycles``,
``overhead``, ``failure``, ``reserved`` or ``wait`` are lower-is-better;
everything else (throughput, speedup) is higher-is-better.
"""

from __future__ import annotations

import functools
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..bench import (ablations, fig5, fig6, fig7, fragmentation, lockstep,
                     shootout)
from ..bench.reporting import geometric_mean
from ..resil import bench as resil_bench
from ..sim.scheduler import default_engine, use_engine
from ..sim.trace import Tracer

#: (metrics, params) as produced by one tier-runner invocation
RunnerOutput = Tuple[Dict[str, float], Dict[str, object]]

#: default wall-clock repeats per tier (median is recorded)
DEFAULT_REPEATS = {"quick": 3, "full": 1}

TIERS = ("quick", "full")


@dataclass(frozen=True)
class BenchCase:
    """One registered benchmark: tiered runners plus metadata."""

    name: str
    seed: int
    description: str
    quick: Callable[[], RunnerOutput]
    full: Callable[[], RunnerOutput]
    #: optional quick-tier runner that accepts a Tracer, for
    #: tracer-derived profiling (only fig5/6/7 support tracing today)
    traced_quick: Optional[Callable[[Tracer], object]] = None

    def runner(self, tier: str) -> Callable[[], RunnerOutput]:
        if tier not in TIERS:
            raise ValueError(f"unknown tier {tier!r} (expected one of {TIERS})")
        return self.quick if tier == "quick" else self.full


@dataclass
class CaseRun:
    """Measured result of one case at one tier."""

    case: str
    tier: str
    seed: int
    repeats: int
    wall_seconds: List[float]          # one entry per repeat
    metrics: Dict[str, float]          # "virtual:*" plus "wall:seconds"
    params: Dict[str, object] = field(default_factory=dict)
    #: scheduler engine the case ran under (part of the artifact schema;
    #: ``virtual:*`` metrics are engine-invariant by the parity contract,
    #: ``wall:seconds`` is not)
    engine: str = "event"


@dataclass
class SuiteResult:
    """All case runs from one ``perf run`` invocation."""

    tier: str
    cases: List[CaseRun] = field(default_factory=list)

    def case(self, name: str) -> CaseRun:
        for c in self.cases:
            if c.case == name:
                return c
        raise KeyError(f"no case {name!r} in suite result")


def _slug(name: str) -> str:
    """'ours (scalar)' -> 'ours_scalar' — metric-key-safe labels."""
    out = "".join(c if c.isalnum() else "_" for c in name.lower())
    while "__" in out:
        out = out.replace("__", "_")
    return out.strip("_")


# ----------------------------------------------------------------------
# per-bench metric extractors
# ----------------------------------------------------------------------
def _fig5(thread_counts: Sequence[int], batch: int = 512) -> RunnerOutput:
    res = fig5.run(thread_counts=thread_counts, batch=batch)
    peak = thread_counts[-1]
    c = res.counting.y_at(peak)
    b = res.bulk.y_at(peak)
    metrics = {
        "counting_ops_per_s_peak": c,
        "bulk_ops_per_s_peak": b,
        "bulk_speedup_peak": (b / c) if c else 0.0,
    }
    return metrics, {"thread_counts": list(thread_counts), "batch": batch}


def _fig5_traced(tracer: Tracer) -> object:
    return fig5.run(thread_counts=(256, 1024), tracer=tracer)


def _fig6(ratios: Sequence[int], thread_targets: Sequence[int]) -> RunnerOutput:
    res = fig6.run(ratios=ratios, thread_targets=thread_targets)
    speedups = [p.speedup for p in res.points]
    metrics = {
        "delegation_speedup_gmean": geometric_mean(speedups),
        "classical_cycles_total": float(sum(p.cycles_classical for p in res.points)),
        "delegated_cycles_total": float(sum(p.cycles_delegated for p in res.points)),
    }
    return metrics, {"ratios": list(ratios),
                     "thread_targets": list(thread_targets),
                     "points": len(res.points)}


def _fig6_traced(tracer: Tracer) -> object:
    return fig6.run(ratios=(32,), thread_targets=(1024,), tracer=tracer)


def _fig7(sizes: Sequence[int]) -> RunnerOutput:
    res = fig7.run(sizes=sizes)
    ours = [p for p in res.points if p.allocator == "ours"]
    cuda = [p for p in res.points if p.allocator == "cuda"]
    metrics = {
        "ours_ops_per_s_gmean": geometric_mean([p.throughput for p in ours]),
        "cuda_ops_per_s_gmean": geometric_mean([p.throughput for p in cuda]),
        "mean_speedup": res.mean_speedup(),
        "ours_failure_rate_mean":
            sum(p.failure_rate for p in ours) / len(ours) if ours else 0.0,
    }
    return metrics, {"sizes": list(sizes)}


def _fig7_traced(tracer: Tracer) -> object:
    return fig7.run(sizes=(64, 4096), tracer=tracer)


def _shootout(nthreads: int, iters: int, seed: int = 9,
              backends: Optional[Sequence[str]] = None) -> RunnerOutput:
    res = shootout.run(nthreads=nthreads, iters=iters, seed=seed,
                       which=backends)
    metrics: Dict[str, float] = {}
    for p in res.points:
        metrics[f"pairs_per_s_{_slug(p.name)}"] = p.throughput
    base = {p.name: p for p in res.points}.get("ours (scalar)")
    cuda = {p.name: p for p in res.points}.get("CUDA-like")
    if base and cuda and cuda.throughput:
        metrics["ours_vs_cuda_speedup"] = base.throughput / cuda.throughput
    params: Dict[str, object] = {"nthreads": nthreads, "iters": iters,
                                 "size": res.size}
    if backends is not None:
        params["backends"] = list(backends)
    return metrics, params


def _lockstep(nthreads: int, rounds: int, plain_rounds: int) -> RunnerOutput:
    res = lockstep.run(nthreads=nthreads, rounds=rounds,
                       plain_rounds=plain_rounds)
    metrics = {
        "coalesced_slots_per_s": res.coalesced.slots_per_s,
        "plain_slots_per_s": res.plain.slots_per_s,
        "coalesce_speedup": res.speedup,
        "coalesce_width_mean": res.coalesced.coalesce_width_mean,
        "coalesced_cycles_total": float(res.coalesced.cycles),
    }
    return metrics, {"nthreads": nthreads, "rounds": rounds,
                     "plain_rounds": plain_rounds}


def _fragmentation(rounds: int, nthreads: int) -> RunnerOutput:
    res = fragmentation.run(rounds=rounds, nthreads=nthreads)
    o, b = res.ours[-1], res.bump[-1]
    metrics = {
        "ours_overhead_final": o.overhead,
        "bump_overhead_final": b.overhead,
        "ours_reserved_final_bytes": float(o.reserved),
    }
    return metrics, {"rounds": rounds, "nthreads": nthreads}


def _resil(nthreads: int, iters: int) -> RunnerOutput:
    res = resil_bench.run(nthreads=nthreads, iters=iters)
    heavy = res.point("heavy")
    metrics = {
        "pairs_per_s_clean": res.point("clean").throughput,
        "pairs_per_s_light": res.point("light").throughput,
        "pairs_per_s_heavy": heavy.throughput,
        # graceful-degradation headline: fraction of fault-free
        # throughput retained under each plan (higher is better)
        "throughput_retained_light": res.retained("light"),
        "throughput_retained_heavy": res.retained("heavy"),
        # hard failures surfaced to callers after robust retries
        "heavy_failure_rate": heavy.failure_rate,
    }
    params = {
        "nthreads": nthreads, "iters": iters, "sizes": list(res.sizes),
        "faults_light": res.point("light").faults,
        "faults_heavy": heavy.faults,
        "retries_heavy": heavy.retries,
    }
    return metrics, params


def _workload_metrics(metrics: Dict[str, float], report,
                      backend_key: str) -> None:
    """Fold one :class:`~repro.workloads.replay.ReplayReport` into the
    case's metric dict under the backend's slug.  Metric names follow
    the module convention: ``failure`` keys gate lower-is-better,
    ``ops_per_s``/``fairness`` higher-is-better."""
    slug = _slug(backend_key)
    totals = report.totals
    metrics[f"ops_per_s_{slug}"] = report.ops_per_s
    metrics[f"failure_rate_{slug}"] = totals.failure_rate
    metrics[f"fairness_{slug}"] = report.fairness()
    metrics[f"worst_tenant_failure_{slug}"] = max(
        st.failure_rate for st in report.tenants.values())


def _workload_family(family: str, seed: int, events: int,
                     lanes: int = 2,
                     backends: Sequence[str] = ("ours",),
                     **overrides) -> RunnerOutput:
    """Generate a workload-family trace and replay it per backend."""
    from ..workloads import families as workload_families
    from ..workloads.replay import replay as replay_trace

    trace = workload_families.generate(family, seed, events=events,
                                       **overrides)
    metrics: Dict[str, float] = {}
    for b in backends:
        rep = replay_trace(trace, backend=b, seed=seed,
                           lanes_per_tenant=lanes)
        _workload_metrics(metrics, rep, b)
    params: Dict[str, object] = {
        "family": family, "events": len(trace.events),
        "tenants": trace.tenants, "lanes_per_tenant": lanes,
        "backends": list(backends),
    }
    params.update(overrides)
    return metrics, params


def _workload_trace(name: str, seed: int, lanes: int = 1,
                    backends: Sequence[str] = ("ours",)) -> RunnerOutput:
    """Replay a bundled recorded trace per backend — the committed
    fixture makes the workload identical on every machine, so the
    ``virtual:*`` metrics gate exactly across the trajectory."""
    from ..workloads.replay import replay as replay_trace
    from ..workloads.trace import load_bundled

    trace = load_bundled(name)
    metrics: Dict[str, float] = {}
    for b in backends:
        rep = replay_trace(trace, backend=b, seed=seed,
                           lanes_per_tenant=lanes)
        _workload_metrics(metrics, rep, b)
    params: Dict[str, object] = {
        "trace": name, "events": len(trace.events),
        "tenants": trace.tenants, "lanes_per_tenant": lanes,
        "backends": list(backends),
    }
    return metrics, params


def _serve_replay(name: str, seed: int, batch_max: int = 16,
                  quota_bytes: Optional[int] = None,
                  pool: int = 1 << 20,
                  backends: Sequence[str] = ("ours",)) -> RunnerOutput:
    """Serve a bundled trace through the allocator service's
    deterministic feeder, per backend: admission control (quota +
    pressure) in front of episode batching over a persistent heap.
    Latency percentiles are virtual cycles (lower-is-better by the
    metric-name convention), and the admission split is gated separately
    from backend NULLs."""
    from ..serve.bench import run_backend as serve_one_backend
    from ..workloads.trace import load_bundled

    trace = load_bundled(name)
    metrics: Dict[str, float] = {}
    for b in backends:
        pt = serve_one_backend(trace, b, seed=seed, pool=pool,
                               batch_max=batch_max, quota_bytes=quota_bytes)
        slug = _slug(b)
        metrics[f"ops_per_s_{slug}"] = pt.ops_per_s
        metrics[f"latency_cycles_p50_{slug}"] = float(pt.latency_p50)
        metrics[f"latency_cycles_p99_{slug}"] = float(pt.latency_p99)
        metrics[f"failure_rate_{slug}"] = pt.failure_rate
        metrics[f"admission_failure_rate_{slug}"] = pt.admission_failure_rate
    params: Dict[str, object] = {
        "trace": name, "events": len(trace.events),
        "tenants": trace.tenants, "batch_max": batch_max,
        "quota_bytes": quota_bytes, "pool": pool,
        "backends": list(backends),
    }
    return metrics, params


def _ablation_buddy(thread_counts: Sequence[int]) -> RunnerOutput:
    res = ablations.run_buddy_ablation(thread_counts=thread_counts)
    peak = thread_counts[-1]
    ratios = [t / l for t, l in zip(res.tbuddy.ys, res.lock_buddy.ys) if l]
    metrics = {
        "tbuddy_ops_per_s_peak": res.tbuddy.y_at(peak),
        "lock_buddy_ops_per_s_peak": res.lock_buddy.y_at(peak),
        "tbuddy_speedup_gmean": geometric_mean(ratios),
    }
    return metrics, {"thread_counts": list(thread_counts)}


def _ablation_collective(thread_counts: Sequence[int]) -> RunnerOutput:
    res = ablations.run_collective_ablation(thread_counts=thread_counts)
    peak = thread_counts[-1]
    ratios = [c / p for c, p in zip(res.collective.ys, res.plain.ys) if p]
    metrics = {
        "collective_ops_per_s_peak": res.collective.y_at(peak),
        "plain_ops_per_s_peak": res.plain.y_at(peak),
        "collective_speedup_gmean": geometric_mean(ratios),
    }
    return metrics, {"thread_counts": list(thread_counts)}


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
CASES: Dict[str, BenchCase] = {}


def _register(case: BenchCase) -> BenchCase:
    if case.name in CASES:
        raise ValueError(f"duplicate bench case {case.name!r}")
    CASES[case.name] = case
    return case


_register(BenchCase(
    name="fig5",
    seed=1,
    description="two-stage allocation ceiling: counting vs bulk semaphores",
    quick=lambda: _fig5((256, 1024)),
    full=lambda: _fig5((256, 1024, 4096, 16384)),
    traced_quick=_fig5_traced,
))

_register(BenchCase(
    name="fig6",
    seed=3,
    description="RCU delegation speedup over classical barriers",
    quick=lambda: _fig6((32, 128), (1024,)),
    full=lambda: _fig6((32, 128, 512, 2048), (1024, 4096, 12288)),
    traced_quick=_fig6_traced,
))

_register(BenchCase(
    name="fig7",
    seed=7,
    description="allocator throughput & failure rate across sizes",
    quick=lambda: _fig7((64, 4096, 65536)),
    full=lambda: _fig7(fig7.PAPER_SIZES),
    traced_quick=_fig7_traced,
))

_register(BenchCase(
    name="shootout",
    seed=9,
    description="cross-allocator churn shootout (§2.2 designs)",
    quick=lambda: _shootout(nthreads=512, iters=1),
    full=lambda: _shootout(nthreads=2048, iters=2),
))

_register(BenchCase(
    name="lockstep",
    seed=13,
    description="whole-warp coalesced allocation ceiling (§4.2 "
                "aggregation vs per-lane atomics)",
    quick=lambda: _lockstep(nthreads=4096, rounds=48, plain_rounds=6),
    full=lambda: _lockstep(nthreads=16384, rounds=64, plain_rounds=8),
))

_register(BenchCase(
    name="fragmentation",
    seed=23,
    description="live vs reserved bytes over churn rounds",
    quick=lambda: _fragmentation(rounds=2, nthreads=256),
    full=lambda: _fragmentation(rounds=6, nthreads=1024),
))

_register(BenchCase(
    name="resil",
    seed=17,
    description="throughput degradation under injected fault plans",
    quick=lambda: _resil(nthreads=128, iters=2),
    full=lambda: _resil(nthreads=512, iters=3),
))

_register(BenchCase(
    name="ablation_buddy",
    seed=5,
    description="TBuddy vs global-lock buddy (order-0 storm)",
    quick=lambda: _ablation_buddy((64, 256)),
    full=lambda: _ablation_buddy((64, 256, 1024)),
))

_register(BenchCase(
    name="ablation_collective",
    seed=6,
    description="collective vs per-thread mutex (list pop)",
    quick=lambda: _ablation_collective((64, 256)),
    full=lambda: _ablation_collective((64, 256, 1024)),
))

_register(BenchCase(
    name="workload_multitenant",
    seed=29,
    description="multi-tenant Zipfian contention: per-tenant QoS under "
                "one shared pool",
    quick=lambda: _workload_family("multi_tenant_zipf", 29, events=600),
    full=lambda: _workload_family("multi_tenant_zipf", 29, events=2400,
                                  tenants=8),
))

_register(BenchCase(
    name="workload_diurnal",
    seed=31,
    description="bursty open-loop diurnal arrivals (triangle-wave rate)",
    quick=lambda: _workload_family("diurnal_burst", 31, events=600),
    full=lambda: _workload_family("diurnal_burst", 31, events=2400,
                                  tenants=4),
))

_register(BenchCase(
    name="workload_trace_replay",
    seed=37,
    description="bundled recorded-trace replay across backends "
                "(committed fixture)",
    quick=lambda: _workload_trace("mt_small", 37,
                                  backends=("ours", "cuda")),
    full=lambda: _workload_trace("mt_small", 37, lanes=2,
                                 backends=("ours", "cuda", "hostbased")),
))

#: roster for the host-based backend case: the paper allocator, the two
#: global-lock baselines it is usually compared with, and the Bell-style
#: host-based design the backend registry added (see EXPERIMENTS.md)
_HOSTBASED_ROSTER = ("ours", "cuda", "lock-buddy", "hostbased")

_register(BenchCase(
    name="serve_replay",
    seed=41,
    description="allocator-as-a-service: admission (quota+pressure) + "
                "episode batching over the bundled trace",
    quick=lambda: _serve_replay("mt_small", 41, quota_bytes=16 << 10,
                                backends=("ours", "cuda")),
    full=lambda: _serve_replay("serve_small", 41, batch_max=32,
                               quota_bytes=16 << 10,
                               backends=("ours", "cuda", "hostbased")),
))

_register(BenchCase(
    name="backends_hostbased",
    seed=11,
    description="registry shootout incl. the host-based backend "
                "[Bell et al. 2024]",
    quick=lambda: _shootout(nthreads=256, iters=1, seed=11,
                            backends=_HOSTBASED_ROSTER),
    full=lambda: _shootout(nthreads=1024, iters=2, seed=11,
                           backends=_HOSTBASED_ROSTER),
))


# ----------------------------------------------------------------------
# running
# ----------------------------------------------------------------------
def run_case(case: BenchCase, tier: str = "quick",
             repeats: Optional[int] = None,
             engine: Optional[str] = None) -> CaseRun:
    """Run one case: ``repeats`` timed repetitions, median wall-clock.

    Virtual metrics are required to be identical across repeats — the
    simulator is seeded, so any drift means nondeterminism crept into a
    bench runner, which would silently poison the perf trajectory.

    ``engine`` selects the scheduler run loop for every scheduler the
    runner constructs (``None`` inherits the process default).  The
    resolved engine is recorded on the returned :class:`CaseRun`;
    ``virtual:*`` metrics are engine-invariant (the parity contract),
    so only ``wall:seconds`` should move with this knob.
    """
    runner = case.runner(tier)
    n = repeats if repeats is not None else DEFAULT_REPEATS[tier]
    if n < 1:
        raise ValueError(f"repeats must be >= 1 (got {n})")
    eng = engine if engine is not None else default_engine()
    walls: List[float] = []
    metrics: Optional[Dict[str, float]] = None
    params: Dict[str, object] = {}
    with use_engine(eng):
        for i in range(n):
            t0 = time.perf_counter()
            virt, params = runner()
            walls.append(time.perf_counter() - t0)
            if metrics is not None and virt != metrics:
                changed = sorted(
                    k for k in virt if virt.get(k) != metrics.get(k))
                raise RuntimeError(
                    f"case {case.name!r} ({tier}) is nondeterministic: "
                    f"virtual metrics changed across repeats "
                    f"({', '.join(changed)})"
                )
            metrics = virt
    assert metrics is not None
    out = {f"virtual:{k}": float(v) for k, v in sorted(metrics.items())}
    out["wall:seconds"] = statistics.median(walls)
    return CaseRun(case=case.name, tier=tier, seed=case.seed, repeats=n,
                   wall_seconds=walls, metrics=out, params=params,
                   engine=eng)


def resolve_case(name: str) -> BenchCase:
    """A registered case, or a dynamic ``shootout@b1+b2+...`` case.

    The ``@`` form parameterizes the shootout over any registered
    backend roster (``python -m repro perf run --backends ours,cuda``):
    the case name *is* the full parameterization, so it resolves
    identically in every shard worker and in the artifact's case list.
    """
    if name in CASES:
        return CASES[name]
    if name.startswith("shootout@"):
        from ..backends import UnknownBackend, get as get_backend

        raw = [b.strip() for b in name.split("@", 1)[1].split("+")]
        roster = tuple(b for b in raw if b)
        if not roster:
            raise KeyError(f"case {name!r} names no backends")
        try:
            labels = ", ".join(get_backend(b).name for b in roster)
        except UnknownBackend as exc:
            raise KeyError(f"case {name!r}: {exc.args[0]}") from None
        return BenchCase(
            name=name,
            seed=9,
            description=f"parameterized churn shootout over {labels}",
            quick=lambda: _shootout(nthreads=512, iters=1, backends=roster),
            full=lambda: _shootout(nthreads=2048, iters=2, backends=roster),
        )
    raise KeyError(
        f"unknown case {name!r}; registered: {sorted(CASES)} "
        "(or 'shootout@b1+b2' to parameterize the shootout by backend)"
    )


def _run_case_named(name: str, tier: str, repeats: Optional[int],
                    engine: Optional[str] = None) -> CaseRun:
    """Module-level shard worker: run one case by *name*.

    ``BenchCase`` runners are lambdas and cannot cross a process
    boundary; the name can (including the ``shootout@...`` form, which
    re-resolves from the name alone), and every worker rebuilds the
    registry on import — so this is the picklable unit
    :func:`run_suite` shards.  The engine travels by name for the same
    reason (a fresh worker process starts on the default engine).
    """
    return run_case(resolve_case(name), tier, repeats, engine=engine)


def run_suite(tier: str = "quick", names: Optional[Sequence[str]] = None,
              repeats: Optional[int] = None,
              progress: Optional[Callable[[str], None]] = None,
              workers: int = 1,
              engine: Optional[str] = None) -> SuiteResult:
    """Run the registered cases (all, or the ``names`` subset) at a tier.

    ``workers > 1`` shards the cases across processes via
    :func:`repro.par.pool.map_sharded`; the merged result is identical
    to the serial run's (cases are seeded and independent), except that
    ``wall:seconds`` reflects a time-shared host — artifacts meant as
    wall-clock baselines should be recorded serially.

    ``engine`` selects the scheduler run loop for every case (``None``
    inherits the process default; shard workers receive it explicitly
    because a fresh process starts on the default engine).
    """
    if names is None:
        selected = list(CASES.values())
    else:
        selected = [resolve_case(n) for n in names]
    result = SuiteResult(tier=tier)
    if workers > 1 and len(selected) > 1:
        from ..par.pool import map_sharded, resolve_workers

        if progress:
            progress(f"[{tier}] sharding {len(selected)} case(s) across "
                     f"{resolve_workers(workers)} worker(s) ...")
        runs = map_sharded(
            functools.partial(_run_case_named, tier=tier, repeats=repeats,
                              engine=engine),
            [case.name for case in selected],
            workers=workers, log=progress,
        )
        result.cases.extend(runs)
        return result
    for case in selected:
        if progress:
            progress(f"[{tier}] {case.name}: {case.description} ...")
        run = run_case(case, tier, repeats, engine=engine)
        if progress:
            progress(f"    {run.metrics['wall:seconds']:.2f}s wall "
                     f"(median of {run.repeats})")
        result.cases.append(run)
    return result
