"""Pairwise artifact comparison: the perf regression gate.

Deltas are computed per (case, metric) with *noise-aware* tolerances:

* ``virtual:*`` metrics come from the seeded simulator and are
  bit-deterministic, so any delta is a real behavior change.  The
  default tolerance (10%) is slack for *intentional* drift — a cost
  model tweak, a workload rebalance — not for measurement noise.
* ``wall:seconds`` measures the host, which is noisy and
  machine-dependent.  It gets a loose tolerance (default: 50% slower
  fails) and can be excluded from gating entirely (``gate_wall=False``)
  for cross-machine comparisons like CI against a committed baseline.

Direction is inferred from the metric name (see
:mod:`repro.perf.suite`): ``seconds``/``cycles``/``overhead``/
``failure``/``reserved``/``wait`` metrics are lower-is-better,
everything else higher-is-better.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..bench.reporting import format_table, si, signed_pct

#: substrings marking a lower-is-better metric (after the class prefix)
LOWER_BETTER_MARKERS = ("seconds", "cycles", "overhead", "failure",
                        "reserved", "wait")

#: default allowed fractional worsening per metric class
DEFAULT_VIRTUAL_TOL = 0.10
DEFAULT_WALL_TOL = 0.50

#: denominator floor for wall-clock deltas: a baseline wall below timer
#: resolution must not turn a microseconds-level jitter into an
#: infinite (or astronomically large) "regression"
WALL_FLOOR_SECONDS = 1e-6

#: synthetic per-artifact row: the sum of every case's wall:seconds —
#: the deck's end-to-end host cost, the metric sharding improves
DECK_CASE = "(deck)"


class CompareError(ValueError):
    """The two artifacts cannot be meaningfully compared."""


def metric_class(name: str) -> str:
    """'virtual:mean_speedup' -> 'virtual'; 'wall:seconds' -> 'wall'."""
    return name.split(":", 1)[0] if ":" in name else "virtual"


def lower_is_better(name: str) -> bool:
    base = name.split(":", 1)[-1]
    return any(marker in base for marker in LOWER_BETTER_MARKERS)


@dataclass
class Delta:
    """One (case, metric) comparison row."""

    case: str
    metric: str
    baseline: float
    current: float
    #: signed fractional *worsening* (+0.2 = 20% worse, -0.1 = 10% better)
    worsening: float
    klass: str        # "virtual" | "wall"
    gated: bool       # does this row participate in the pass/fail verdict
    status: str       # "ok" | "regression" | "improved" | "new" | "gone"


def _worsening(baseline: float, current: float, lower_better: bool,
               floor: float = 0.0) -> float:
    """Signed fractional worsening of ``current`` relative to ``baseline``.

    ``floor`` clamps the denominator: wall-clock metrics use
    :data:`WALL_FLOOR_SECONDS` so a sub-resolution baseline (a case so
    fast the timer reads ~0) yields a large-but-finite delta instead of
    ``inf`` / a zero-division — those rows should read as noise against
    the wall tolerance, not explode the gate.
    """
    if baseline == current:
        return 0.0
    denom = max(abs(baseline), floor)
    if denom == 0:
        # a metric appearing from zero: worse iff it moved the bad way
        worse = current > 0 if lower_better else current < 0
        return math.inf if worse else -math.inf
    frac = (current - baseline) / denom
    return frac if lower_better else -frac


def compare_docs(current: dict, baseline: dict, *,
                 virtual_tol: float = DEFAULT_VIRTUAL_TOL,
                 wall_tol: float = DEFAULT_WALL_TOL,
                 gate_wall: bool = True) -> List[Delta]:
    """Per-metric deltas of ``current`` against ``baseline``.

    Both documents must be the same tier — a quick run regressing
    against a full baseline would compare different workloads and
    produce nonsense deltas.
    """
    if current.get("tier") != baseline.get("tier"):
        raise CompareError(
            f"tier mismatch: current is {current.get('tier')!r}, baseline "
            f"is {baseline.get('tier')!r} — artifacts compare only within "
            "a tier"
        )
    tols = {"virtual": virtual_tol, "wall": wall_tol}
    deltas: List[Delta] = []
    cur_cases: Dict[str, dict] = current["cases"]
    base_cases: Dict[str, dict] = baseline["cases"]
    for case in sorted(set(cur_cases) | set(base_cases)):
        cur_metrics = cur_cases.get(case, {}).get("metrics", {})
        base_metrics = base_cases.get(case, {}).get("metrics", {})
        for metric in sorted(set(cur_metrics) | set(base_metrics)):
            klass = metric_class(metric)
            gated = klass != "wall" or gate_wall
            cur = cur_metrics.get(metric)
            base = base_metrics.get(metric)
            if base is None or cur is None:
                deltas.append(Delta(
                    case=case, metric=metric,
                    baseline=base if base is not None else math.nan,
                    current=cur if cur is not None else math.nan,
                    worsening=0.0, klass=klass, gated=False,
                    status="new" if base is None else "gone",
                ))
                continue
            floor = WALL_FLOOR_SECONDS if klass == "wall" else 0.0
            worsening = _worsening(base, cur, lower_is_better(metric), floor)
            tol = tols[klass]
            if gated and worsening > tol:
                status = "regression"
            elif worsening < -tol:
                status = "improved"
            else:
                status = "ok"
            deltas.append(Delta(case=case, metric=metric, baseline=base,
                                current=cur, worsening=worsening,
                                klass=klass, gated=gated, status=status))
    deck = _deck_delta(cur_cases, base_cases, wall_tol, gate_wall)
    if deck is not None:
        deltas.append(deck)
    return deltas


def _deck_delta(cur_cases: Dict[str, dict], base_cases: Dict[str, dict],
                wall_tol: float, gate_wall: bool) -> "Optional[Delta]":
    """The synthetic ``(deck)`` row: summed ``wall:seconds`` per side.

    Reported only when both artifacts cover the *same* multi-case set —
    a partial run's deck total would compare different workloads, and a
    single-case artifact's total is just that case again.  The row is
    informational (never gated): per-case walls already gate, and the
    total exists to make end-to-end deck cost — the thing ``--workers``
    and scheduler work improve — visible in one line.
    """
    if set(cur_cases) != set(base_cases) or len(cur_cases) < 2:
        return None
    sums = []
    for cases in (cur_cases, base_cases):
        walls = [c.get("metrics", {}).get("wall:seconds") for c in cases.values()]
        if any(w is None for w in walls):
            return None
        sums.append(float(sum(walls)))
    cur_sum, base_sum = sums
    worsening = _worsening(base_sum, cur_sum, lower_better=True,
                           floor=WALL_FLOOR_SECONDS)
    status = "improved" if worsening < -wall_tol else "ok"
    return Delta(case=DECK_CASE, metric="wall:seconds", baseline=base_sum,
                 current=cur_sum, worsening=worsening, klass="wall",
                 gated=False, status=status)


def has_regressions(deltas: List[Delta]) -> bool:
    return any(d.status == "regression" for d in deltas)


def _fmt_value(v: float) -> str:
    if isinstance(v, float):
        if math.isnan(v):
            return "-"
        if math.isinf(v):
            # si() would scale inf to "infG"; render it as itself
            return "inf" if v > 0 else "-inf"
    return si(v)


def render_deltas(deltas: List[Delta], *, only_interesting: bool = False) -> str:
    """The delta table (via :mod:`repro.bench.reporting`).

    ``only_interesting`` drops rows whose status is plain ``ok`` —
    useful when a full-tier artifact has dozens of flat metrics.
    """
    rows = []
    for d in deltas:
        if only_interesting and d.status == "ok":
            continue
        arrow = "better" if d.worsening < 0 else ("worse" if d.worsening > 0 else "=")
        rows.append([
            d.case, d.metric, _fmt_value(d.baseline), _fmt_value(d.current),
            signed_pct(d.worsening) if d.worsening else "0.0%",
            arrow if d.status not in ("new", "gone") else "",
            d.status if d.gated or d.status in ("new", "gone")
            else f"{d.status} (ungated)",
        ])
    if not rows:
        return "(no deltas to show)"
    return format_table(
        ["case", "metric", "baseline", "current", "delta", "", "status"],
        rows,
    )


def summarize(deltas: List[Delta]) -> str:
    """One-line verdict for CLI output and CI logs."""
    counts: Dict[str, int] = {}
    for d in deltas:
        counts[d.status] = counts.get(d.status, 0) + 1
    bits = [f"{counts[k]} {k}" for k in
            ("regression", "improved", "ok", "new", "gone") if k in counts]
    return ", ".join(bits) if bits else "no comparable metrics"
