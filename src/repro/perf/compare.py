"""Pairwise artifact comparison: the perf regression gate.

Deltas are computed per (case, metric) with *noise-aware* tolerances:

* ``virtual:*`` metrics come from the seeded simulator and are
  bit-deterministic, so any delta is a real behavior change.  The
  default tolerance (10%) is slack for *intentional* drift — a cost
  model tweak, a workload rebalance — not for measurement noise.
* ``wall:seconds`` measures the host, which is noisy and
  machine-dependent.  It gets a loose tolerance (default: 50% slower
  fails) and can be excluded from gating entirely (``gate_wall=False``)
  for cross-machine comparisons like CI against a committed baseline.

Direction is inferred from the metric name (see
:mod:`repro.perf.suite`): ``seconds``/``cycles``/``overhead``/
``failure``/``reserved``/``wait`` metrics are lower-is-better,
everything else higher-is-better.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..bench.reporting import format_table, si, signed_pct

#: substrings marking a lower-is-better metric (after the class prefix)
LOWER_BETTER_MARKERS = ("seconds", "cycles", "overhead", "failure",
                        "reserved", "wait")

#: default allowed fractional worsening per metric class
DEFAULT_VIRTUAL_TOL = 0.10
DEFAULT_WALL_TOL = 0.50


class CompareError(ValueError):
    """The two artifacts cannot be meaningfully compared."""


def metric_class(name: str) -> str:
    """'virtual:mean_speedup' -> 'virtual'; 'wall:seconds' -> 'wall'."""
    return name.split(":", 1)[0] if ":" in name else "virtual"


def lower_is_better(name: str) -> bool:
    base = name.split(":", 1)[-1]
    return any(marker in base for marker in LOWER_BETTER_MARKERS)


@dataclass
class Delta:
    """One (case, metric) comparison row."""

    case: str
    metric: str
    baseline: float
    current: float
    #: signed fractional *worsening* (+0.2 = 20% worse, -0.1 = 10% better)
    worsening: float
    klass: str        # "virtual" | "wall"
    gated: bool       # does this row participate in the pass/fail verdict
    status: str       # "ok" | "regression" | "improved" | "new" | "gone"


def _worsening(baseline: float, current: float, lower_better: bool) -> float:
    """Signed fractional worsening of ``current`` relative to ``baseline``."""
    if baseline == current:
        return 0.0
    if baseline == 0:
        # a metric appearing from zero: worse iff it moved the bad way
        worse = current > 0 if lower_better else current < 0
        return math.inf if worse else -math.inf
    frac = (current - baseline) / abs(baseline)
    return frac if lower_better else -frac


def compare_docs(current: dict, baseline: dict, *,
                 virtual_tol: float = DEFAULT_VIRTUAL_TOL,
                 wall_tol: float = DEFAULT_WALL_TOL,
                 gate_wall: bool = True) -> List[Delta]:
    """Per-metric deltas of ``current`` against ``baseline``.

    Both documents must be the same tier — a quick run regressing
    against a full baseline would compare different workloads and
    produce nonsense deltas.
    """
    if current.get("tier") != baseline.get("tier"):
        raise CompareError(
            f"tier mismatch: current is {current.get('tier')!r}, baseline "
            f"is {baseline.get('tier')!r} — artifacts compare only within "
            "a tier"
        )
    tols = {"virtual": virtual_tol, "wall": wall_tol}
    deltas: List[Delta] = []
    cur_cases: Dict[str, dict] = current["cases"]
    base_cases: Dict[str, dict] = baseline["cases"]
    for case in sorted(set(cur_cases) | set(base_cases)):
        cur_metrics = cur_cases.get(case, {}).get("metrics", {})
        base_metrics = base_cases.get(case, {}).get("metrics", {})
        for metric in sorted(set(cur_metrics) | set(base_metrics)):
            klass = metric_class(metric)
            gated = klass != "wall" or gate_wall
            cur = cur_metrics.get(metric)
            base = base_metrics.get(metric)
            if base is None or cur is None:
                deltas.append(Delta(
                    case=case, metric=metric,
                    baseline=base if base is not None else math.nan,
                    current=cur if cur is not None else math.nan,
                    worsening=0.0, klass=klass, gated=False,
                    status="new" if base is None else "gone",
                ))
                continue
            worsening = _worsening(base, cur, lower_is_better(metric))
            tol = tols[klass]
            if gated and worsening > tol:
                status = "regression"
            elif worsening < -tol:
                status = "improved"
            else:
                status = "ok"
            deltas.append(Delta(case=case, metric=metric, baseline=base,
                                current=cur, worsening=worsening,
                                klass=klass, gated=gated, status=status))
    return deltas


def has_regressions(deltas: List[Delta]) -> bool:
    return any(d.status == "regression" for d in deltas)


def _fmt_value(v: float) -> str:
    return "-" if isinstance(v, float) and math.isnan(v) else si(v)


def render_deltas(deltas: List[Delta], *, only_interesting: bool = False) -> str:
    """The delta table (via :mod:`repro.bench.reporting`).

    ``only_interesting`` drops rows whose status is plain ``ok`` —
    useful when a full-tier artifact has dozens of flat metrics.
    """
    rows = []
    for d in deltas:
        if only_interesting and d.status == "ok":
            continue
        arrow = "better" if d.worsening < 0 else ("worse" if d.worsening > 0 else "=")
        rows.append([
            d.case, d.metric, _fmt_value(d.baseline), _fmt_value(d.current),
            signed_pct(d.worsening) if d.worsening else "0.0%",
            arrow if d.status not in ("new", "gone") else "",
            d.status if d.gated or d.status in ("new", "gone")
            else f"{d.status} (ungated)",
        ])
    if not rows:
        return "(no deltas to show)"
    return format_table(
        ["case", "metric", "baseline", "current", "delta", "", "status"],
        rows,
    )


def summarize(deltas: List[Delta]) -> str:
    """One-line verdict for CLI output and CI logs."""
    counts: Dict[str, int] = {}
    for d in deltas:
        counts[d.status] = counts.get(d.status, 0) + 1
    bits = [f"{counts[k]} {k}" for k in
            ("regression", "improved", "ok", "new", "gone") if k in counts]
    return ", ".join(bits) if bits else "no comparable metrics"
