"""``python -m repro perf`` — run benchmarks, gate regressions, profile.

Usage::

    python -m repro perf run --quick            # CI tier, ~seconds
    python -m repro perf run --full             # paper-scale, ~minutes
    python -m repro perf run --quick --case fig5 --case shootout
    python -m repro perf run --quick --workers 4   # shard cases (see par)
    python -m repro perf compare                # latest BENCH_* vs previous
    python -m repro perf compare --current /tmp/now.json \\
                                 --baseline BENCH_PR3.json --no-gate-wall
    python -m repro perf profile                # hotspots for fig5 + shootout
    python -m repro perf profile --case fig7 --top 20

``run`` writes the trajectory artifact ``BENCH_<label>.json`` at the
repo root (label defaults to the next free ``PR<k>``) plus per-case
JSON twins under ``results/``.  ``compare`` exits nonzero on any gated
regression — wire it into CI after a quick run to gate perf.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..bench.reporting import format_table, si
from ..sim.scheduler import ENGINES
from . import artifact, compare, profile as profiling
from .suite import CASES, run_suite


def _cmd_run(args) -> int:
    root = Path(args.root)
    tier = "full" if args.full else "quick"
    label = args.label or artifact.next_label(root)
    out = Path(args.out) if args.out else root / f"BENCH_{label}.json"
    names = list(args.case) if args.case else None
    if args.backends:
        # One extra dynamic case per --backends flag: the shootout
        # parameterized over that roster (resolved by name everywhere,
        # so it shards and records like any registered case).
        names = names or list(CASES)
        names += ["shootout@" + "+".join(
            b.strip() for b in spec.split(",") if b.strip()
        ) for spec in args.backends]
    suite = run_suite(tier, names=names, repeats=args.repeats,
                      progress=print, workers=args.workers,
                      engine=args.engine)
    doc = artifact.suite_to_doc(suite, label)
    artifact.write_artifact(out, doc)
    print(f"\nartifact: {out} (schema {artifact.SCHEMA}, tier {tier}, "
          f"label {label})")
    if not args.no_results:
        twins = artifact.write_twins(doc, Path(args.results_dir))
        print(f"twins: {len(twins)} case file(s) under {args.results_dir}/")
    rows = []
    for run in suite.cases:
        for metric, value in run.metrics.items():
            rows.append([run.case, metric, si(value)])
    print("\n" + format_table(["case", "metric", "value"], rows))
    return 0


def _pick_pair(root: Path, current: Optional[str], baseline: Optional[str]):
    """Resolve the artifact pair: explicit paths beat trajectory order."""
    history = artifact.find_artifacts(root)
    if current is None:
        if not history:
            raise artifact.ArtifactError(
                f"no BENCH_*.json found under {root}; run "
                "`python -m repro perf run` first"
            )
        current = history[-1]
    current = Path(current)
    if baseline is None:
        prior = [p for p in history if p.resolve() != current.resolve()]
        # A one-artifact trajectory gates against itself: zero deltas,
        # always passes — that's the seed state of the trajectory.
        baseline = prior[-1] if prior else current
    return Path(current), Path(baseline)


def _cmd_compare(args) -> int:
    root = Path(args.root)
    try:
        cur_path, base_path = _pick_pair(root, args.current, args.baseline)
        cur = artifact.load_artifact(cur_path)
        base = artifact.load_artifact(base_path)
        deltas = compare.compare_docs(
            cur, base,
            virtual_tol=args.virtual_tol,
            wall_tol=args.wall_tol,
            gate_wall=not args.no_gate_wall,
        )
    except (artifact.ArtifactError, compare.CompareError) as e:
        print(f"perf compare: {e}", file=sys.stderr)
        return 2
    print(f"current:  {cur_path}  (label {cur['label']}, tier {cur['tier']})")
    print(f"baseline: {base_path}  (label {base['label']}, "
          f"tier {base['tier']})")
    if base_path.resolve() == cur_path.resolve():
        print("note: single-artifact trajectory — comparing against itself")
    gates = (f"virtual ±{args.virtual_tol:.0%}, wall "
             + ("ungated" if args.no_gate_wall else f"±{args.wall_tol:.0%}"))
    print(f"tolerances: {gates}\n")
    print(compare.render_deltas(deltas, only_interesting=args.brief))
    print(f"\nverdict: {compare.summarize(deltas)}")
    if compare.has_regressions(deltas):
        print("PERF GATE: FAIL", file=sys.stderr)
        return 1
    print("PERF GATE: ok")
    return 0


def _cmd_profile(args) -> int:
    names = args.case or ["fig5", "shootout"]
    unknown = [n for n in names if n not in CASES]
    if unknown:
        print(f"perf profile: unknown case(s) {unknown}; registered: "
              f"{sorted(CASES)}", file=sys.stderr)
        return 2
    for name in names:
        case = CASES[name]
        print(f"== {name}: top {args.top} host hotspots "
              f"({args.tier} tier, cProfile by own time) ==")
        report = profiling.profile_case(case, tier=args.tier, top=args.top,
                                        engine=args.engine)
        print(report.table())
        print(f"profiled wall: {report.wall_seconds:.2f}s\n")
        if not args.no_trace:
            trace = profiling.trace_report(case, top=args.top)
            if trace is not None:
                print(trace)
                print()
    return 0


def _cmd_parity(args) -> int:
    from . import parity

    deck = list(args.item) if args.item else None
    report = parity.run_parity(deck=deck, tier=args.tier,
                               workers=args.workers,
                               log=None if args.quiet else print)
    print("\n" + report.table())
    for item in report.items:
        if not item.ok:
            print(f"parity: {item.spec}: {item.detail}", file=sys.stderr)
    if args.record:
        out = Path(args.record)
        out.write_text(json.dumps(report.to_doc(), sort_keys=True,
                                  indent=2) + "\n")
        print(f"record: {out}")
    if not report.ok:
        print("ENGINE PARITY: FAIL", file=sys.stderr)
        return 1
    print(f"ENGINE PARITY: ok ({len(report.items)} items, "
          f"event/batch wall {report.speedup:.2f}x)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro perf",
        description="Performance benchmark suite, regression gate and "
                    "profiler for the allocator reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run the benchmark suite, write an "
                                       "artifact")
    tier = p_run.add_mutually_exclusive_group()
    tier.add_argument("--quick", action="store_true", default=True,
                      help="quick tier (default): seconds of host time")
    tier.add_argument("--full", action="store_true",
                      help="full tier: the paper-scale sweeps")
    p_run.add_argument("--case", action="append", metavar="NAME",
                       help=f"run only this case (repeatable); "
                            f"registered: {', '.join(sorted(CASES))}, "
                            "plus 'shootout@b1+b2' parameterized by "
                            "backend roster")
    p_run.add_argument("--backends", action="append", metavar="B1,B2,...",
                       help="also run the churn shootout over this "
                            "comma-separated backend roster (repeatable; "
                            "names from `python -m repro backends list`)")
    p_run.add_argument("--engine", choices=ENGINES, default=None,
                       help="scheduler run loop for every case (default: "
                            "the process default, i.e. event). Recorded "
                            "per case in the artifact; virtual metrics "
                            "are engine-invariant by contract")
    p_run.add_argument("--label", default=None,
                       help="artifact label (default: next free PR<k>)")
    p_run.add_argument("--out", default=None, metavar="PATH",
                       help="artifact path (default: <root>/BENCH_<label>.json)")
    p_run.add_argument("--repeats", type=int, default=None,
                       help="wall-clock repeats per case (default: 3 quick, "
                            "1 full)")
    p_run.add_argument("--workers", type=int, default=1, metavar="N",
                       help="shard cases across N worker processes "
                            "(0 = one per CPU; default 1 = serial). "
                            "Virtual metrics are identical either way; "
                            "wall:seconds reflects a time-shared host, so "
                            "record committed baselines serially")
    p_run.add_argument("--root", default=".",
                       help="repo root holding the BENCH_* trajectory")
    p_run.add_argument("--results-dir", default="results",
                       help="directory for per-case JSON twins")
    p_run.add_argument("--no-results", action="store_true",
                       help="skip writing the results/ twins")
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="diff two artifacts, exit nonzero "
                                           "on regression")
    p_cmp.add_argument("--current", default=None, metavar="PATH",
                       help="artifact under test (default: newest BENCH_*)")
    p_cmp.add_argument("--baseline", default=None, metavar="PATH",
                       help="reference artifact (default: previous BENCH_*)")
    p_cmp.add_argument("--root", default=".",
                       help="repo root holding the BENCH_* trajectory")
    p_cmp.add_argument("--virtual-tol", type=float,
                       default=compare.DEFAULT_VIRTUAL_TOL,
                       help="allowed fractional worsening for virtual "
                            "metrics (default %(default)s)")
    p_cmp.add_argument("--wall-tol", type=float,
                       default=compare.DEFAULT_WALL_TOL,
                       help="allowed fractional worsening for wall-clock "
                            "(default %(default)s)")
    p_cmp.add_argument("--no-gate-wall", action="store_true",
                       help="report wall-clock deltas but never fail on them "
                            "(use across machines, e.g. CI vs a committed "
                            "baseline)")
    p_cmp.add_argument("--brief", action="store_true",
                       help="hide metrics whose status is plain ok")
    p_cmp.set_defaults(func=_cmd_compare)

    p_prof = sub.add_parser("profile", help="cProfile hotspots + simulator "
                                            "telemetry per case")
    p_prof.add_argument("--case", action="append", metavar="NAME",
                        help="case to profile (repeatable; default: fig5 and "
                             "shootout)")
    p_prof.add_argument("--top", type=int, default=10,
                        help="rows in the hotspot table (default %(default)s)")
    p_prof.add_argument("--tier", choices=("quick", "full"), default="quick")
    p_prof.add_argument("--engine", choices=ENGINES, default=None,
                        help="profile under this scheduler run loop "
                             "(default: the process default)")
    p_prof.add_argument("--no-trace", action="store_true",
                        help="skip the tracer-derived telemetry section")
    p_prof.set_defaults(func=_cmd_profile)

    p_par = sub.add_parser(
        "parity",
        help="run every bench case + verify scenario under both engines "
             "and fail on any observable divergence")
    p_par.add_argument("--item", action="append", metavar="SPEC",
                       help="deck item (repeatable): 'bench:<case>' or "
                            "'verify:<scenario>/<seed>'; default: the "
                            "full deck")
    p_par.add_argument("--tier", choices=("quick", "full"), default="quick",
                       help="bench tier for bench: items (default quick)")
    p_par.add_argument("--workers", type=int, default=1, metavar="N",
                       help="shard deck items across N worker processes "
                            "(0 = one per CPU; default 1 = serial)")
    p_par.add_argument("--record", default=None, metavar="PATH",
                       help="write the per-item timings and verdicts as "
                            "JSON (includes the deck engine_wall split)")
    p_par.add_argument("--quiet", action="store_true",
                       help="suppress per-item progress lines")
    p_par.set_defaults(func=_cmd_parity)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
