"""Cross-engine parity deck: prove ``batch`` observably equals ``event``.

The batch engine (:mod:`repro.sim.engine_batch`) is only admissible if
it is *observationally identical* to the event engine — same results,
same virtual time, same schedule, case by case.  This module is the
enforcement: a deck spanning every registered bench case and every
verification scenario, each executed under both engines and compared on
engine-invariant fingerprints:

* **bench items** (``bench:<case>``) — every ``virtual:*`` metric must
  match exactly (no tolerance: the engines replay the same seeded
  schedule, so a one-cycle drift is a bug, not noise);
* **verify items** (``verify:<scenario>/<seed>``) — the case outcome
  kind, the full :class:`~repro.verify.explore.DigestTrace` digest
  sequence (a state fingerprint every ``PROBE_EVERY`` events) and the
  peak contention depth must all match, which pins the *interleaving*
  itself, not just the end state.

Wall-clock per engine is recorded alongside so one parity run doubles
as an honest (if single-sample) event-vs-batch timing sweep.  Items are
named by spec string so the deck shards through
:func:`repro.par.pool.map_sharded` — ``check_item`` is module-level and
picklable by design.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..sim.scheduler import use_engine
from .suite import CASES, resolve_case, run_case

#: seeds exercised per verify scenario — two schedules each keeps the
#: deck quick-tier sized while still varying the interleaving under test
VERIFY_SEEDS = (1, 3)

#: parity record schema identifier
SCHEMA = "repro.parity/1"


@dataclass
class ParityItem:
    """One deck item compared across both engines."""

    spec: str              # "bench:fig7" | "verify:storm/3"
    ok: bool
    detail: str            # first divergence, "" when ok
    event_seconds: float
    batch_seconds: float


def default_deck() -> List[str]:
    """Every bench case plus every verify scenario × :data:`VERIFY_SEEDS`."""
    from ..verify.runner import SCENARIOS

    deck = [f"bench:{name}" for name in sorted(CASES)]
    deck += [f"verify:{scen}/{seed}"
             for scen in sorted(SCENARIOS) for seed in VERIFY_SEEDS]
    return deck


def _diff_metrics(event: dict, batch: dict) -> str:
    keys = sorted(set(event) | set(batch))
    bad = [k for k in keys if event.get(k) != batch.get(k)]
    parts = [f"{k}: event={event.get(k)!r} batch={batch.get(k)!r}"
             for k in bad[:4]]
    if len(bad) > 4:
        parts.append(f"... {len(bad) - 4} more")
    return "virtual metrics diverge — " + "; ".join(parts)


def _check_bench(name: str, tier: str) -> ParityItem:
    case = resolve_case(name)
    fps = {}
    walls = {}
    for eng in ("event", "batch"):
        run = run_case(case, tier=tier, repeats=1, engine=eng)
        walls[eng] = run.wall_seconds[0]
        fps[eng] = {k: v for k, v in run.metrics.items()
                    if k.startswith("virtual:")}
    ok = fps["event"] == fps["batch"]
    return ParityItem(
        spec=f"bench:{name}", ok=ok,
        detail="" if ok else _diff_metrics(fps["event"], fps["batch"]),
        event_seconds=walls["event"], batch_seconds=walls["batch"],
    )


def _diff_trace(event: tuple, batch: tuple) -> str:
    ek, ed, ec = event
    bk, bd, bc = batch
    if ek != bk:
        return f"outcome kind diverges — event={ek!r} batch={bk!r}"
    if ed != bd:
        n = min(len(ed), len(bd))
        for i in range(n):
            if ed[i] != bd[i]:
                return (f"state digest diverges at probe {i}/{n} — "
                        f"event={ed[i]:#x} batch={bd[i]:#x}")
        return (f"digest count diverges — event recorded {len(ed)} "
                f"probes, batch {len(bd)}")
    return f"peak contention diverges — event={ec} batch={bc}"


def _check_verify(frag: str) -> ParityItem:
    from ..verify.explore import DigestTrace
    from ..verify.runner import CaseSpec
    from ..verify.runner import run_case as run_verify_case

    scenario, _, seed = frag.rpartition("/")
    spec = CaseSpec(scenario, int(seed))
    fps = {}
    walls = {}
    for eng in ("event", "batch"):
        trace = DigestTrace()
        t0 = time.perf_counter()
        with use_engine(eng):
            res = run_verify_case(spec, probe=trace)
        walls[eng] = time.perf_counter() - t0
        fps[eng] = (res.kind, tuple(trace.digests), trace.peak_contention)
    ok = fps["event"] == fps["batch"]
    return ParityItem(
        spec=f"verify:{frag}", ok=ok,
        detail="" if ok else _diff_trace(fps["event"], fps["batch"]),
        event_seconds=walls["event"], batch_seconds=walls["batch"],
    )


def check_item(spec: str, tier: str = "quick") -> ParityItem:
    """Run one deck item under both engines; module-level so a sharded
    deck can pickle it (bind ``tier`` with :func:`functools.partial`)."""
    kind, _, frag = spec.partition(":")
    if kind == "bench":
        return _check_bench(frag, tier)
    if kind == "verify":
        return _check_verify(frag)
    raise ValueError(
        f"bad parity spec {spec!r} (want bench:<case> or "
        "verify:<scenario>/<seed>)"
    )


@dataclass
class ParityReport:
    """All deck items plus the aggregate engine wall split."""

    tier: str
    items: List[ParityItem]

    @property
    def ok(self) -> bool:
        return all(item.ok for item in self.items)

    @property
    def event_seconds(self) -> float:
        return sum(item.event_seconds for item in self.items)

    @property
    def batch_seconds(self) -> float:
        return sum(item.batch_seconds for item in self.items)

    @property
    def speedup(self) -> float:
        """Deck wall under event over deck wall under batch."""
        return (self.event_seconds / self.batch_seconds
                if self.batch_seconds else 0.0)

    def table(self) -> str:
        from ..bench.reporting import format_table

        rows = []
        for item in self.items:
            ratio = (item.event_seconds / item.batch_seconds
                     if item.batch_seconds else 0.0)
            rows.append([
                item.spec,
                "ok" if item.ok else "DIVERGED",
                f"{item.event_seconds:.3f}",
                f"{item.batch_seconds:.3f}",
                f"{ratio:.2f}x",
            ])
        rows.append([
            "deck", "ok" if self.ok else "DIVERGED",
            f"{self.event_seconds:.3f}", f"{self.batch_seconds:.3f}",
            f"{self.speedup:.2f}x",
        ])
        return format_table(
            ["item", "parity", "event s", "batch s", "event/batch"], rows
        )

    def to_doc(self) -> dict:
        return {
            "schema": SCHEMA,
            "tier": self.tier,
            "ok": self.ok,
            "items": [
                {
                    "spec": item.spec,
                    "ok": item.ok,
                    "detail": item.detail,
                    "event_seconds": round(item.event_seconds, 6),
                    "batch_seconds": round(item.batch_seconds, 6),
                }
                for item in self.items
            ],
            "engine_wall": {
                "event_seconds": round(self.event_seconds, 6),
                "batch_seconds": round(self.batch_seconds, 6),
                "speedup": round(self.speedup, 4),
            },
        }


def run_parity(deck: Optional[Sequence[str]] = None, tier: str = "quick",
               workers: int = 1,
               log: Optional[Callable[[str], None]] = None) -> ParityReport:
    """Execute the deck; every item runs both engines and compares.

    ``workers > 1`` shards items across processes (each item is
    self-contained: both of its engine runs stay in the same worker, so
    the per-item wall ratio is measured on one time-shared core pair and
    the parity verdict is scheduling-independent).
    """
    specs = list(deck) if deck is not None else default_deck()
    if workers > 1 and len(specs) > 1:
        from ..par.pool import map_sharded

        items = map_sharded(functools.partial(check_item, tier=tier),
                            specs, workers=workers, log=log)
    else:
        items = []
        for spec in specs:
            item = check_item(spec, tier=tier)
            items.append(item)
            if log is not None:
                verdict = "ok" if item.ok else f"DIVERGED ({item.detail})"
                log(f"parity {spec}: {verdict}")
    return ParityReport(tier=tier, items=items)
