"""repro — a full reproduction of *Throughput-Oriented GPU Memory
Allocation* (Gelado & Garland, PPoPP 2019) on a deterministic SIMT
simulator.

Layering (bottom-up):

* :mod:`repro.sim` — the execution substrate: device memory, serialized
  same-word atomics, warps/blocks/SM residency, virtual-cycle costs.
* :mod:`repro.sync` — the paper's synchronization contributions: bulk
  semaphores, RCU with delegated barriers, collective mutexes.
* :mod:`repro.core` — the allocator: TBuddy + UAlloc behind standard
  ``malloc``/``free``.
* :mod:`repro.baselines` — CUDA-like, bump-pointer and lock-buddy
  comparators.
* :mod:`repro.bench` — harnesses regenerating every evaluation figure.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from . import baselines, bench, core, sim, sync
from .core import AllocatorConfig, ThroughputAllocator
from .sim import DeviceMemory, GPUDevice, Scheduler
from .sync import RCU, BulkSemaphore, CollectiveMutex

__version__ = "1.0.0"

__all__ = [
    "sim",
    "sync",
    "core",
    "baselines",
    "bench",
    "ThroughputAllocator",
    "AllocatorConfig",
    "DeviceMemory",
    "GPUDevice",
    "Scheduler",
    "BulkSemaphore",
    "RCU",
    "CollectiveMutex",
    "__version__",
]
