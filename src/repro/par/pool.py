"""Process-pool sharding with a deterministic, order-preserving merge.

Design constraints (why this is not just ``Pool.map``):

* **Canonical merge order.**  Results are returned in *submission*
  order, never completion order — the caller's deck order is the
  canonical order, and a sharded run must be indistinguishable from the
  serial run.  Completion order is surfaced only through the ``log``
  progress callback, which is explicitly ephemeral.
* **Inline fallback.**  ``workers <= 1`` (or a single-item deck) runs in
  the calling process with no executor, no pickling and no forked
  children — the serial path stays the reference implementation, and
  environments without working multiprocessing lose nothing.
* **Fork preferred.**  The fork start method inherits the registry
  modules (benchmark lambdas and scenario closures need never pickle);
  ``spawn`` is the fallback where fork is unavailable.  Only the worker
  *function and items* must pickle, so callers shard by name/spec, not
  by closure.
* **Fail loudly, fail fast.**  A worker exception cancels the queued
  shards and re-raises in the parent immediately — without waiting for
  in-flight shards to drain; a sharded run never silently drops a case
  and never parks a failure behind its slowest sibling.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["map_sharded", "resolve_workers", "preferred_start_method"]


def preferred_start_method() -> str:
    """``fork`` where the platform offers it, else ``spawn``."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def resolve_workers(workers: int = 0) -> int:
    """Normalize a ``--workers`` value to a concrete worker count.

    ``0`` (the CLI default) means *auto*: one worker per CPU, capped at
    8 — decks are short, and past that the fork/import overhead beats
    the parallelism.  Negative values are an error; any positive value
    is taken literally (``1`` = serial inline execution).
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 0 (got {workers})")
    if workers == 0:
        return min(os.cpu_count() or 1, 8)
    return workers


#: seconds between liveness heartbeats while shards are in flight
HEARTBEAT_S = 30.0


def map_sharded(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    workers: int = 0,
    log: Optional[Callable[[str], None]] = None,
    label: Callable[[Any], str] = str,
    heartbeat_s: float = HEARTBEAT_S,
) -> List[Any]:
    """Apply ``fn`` to every item, sharded across worker processes.

    Returns ``[fn(item) for item in items]`` — same values, same order —
    regardless of ``workers``.  With ``workers > 1`` the items fan out
    over a process pool and the results are merged back by submission
    index, so worker scheduling can never reorder (or drop) a result.

    ``fn`` and each item must be picklable when ``workers > 1`` (use a
    module-level function or :func:`functools.partial` over one; shard
    by case *name* or *spec*, not by closure).  ``log``, when given,
    receives one progress line per completed item in completion order —
    and exactly one ``[0/0]`` summary line for an empty deck, so a
    logging caller always sees a final ``[done/total]`` line no matter
    which execution path ran.  When no shard completes for
    ``heartbeat_s`` seconds, ``log`` also receives a liveness line
    naming the still-running shards — long decks (full-tier perf,
    nightly resil) otherwise sit silent for minutes and are
    indistinguishable from a hang.
    """
    n = len(items)
    workers = resolve_workers(workers)
    if workers <= 1 or n <= 1:
        results = []
        for i, item in enumerate(items):
            results.append(fn(item))
            if log is not None:
                log(f"  [{i + 1}/{n}] {label(item)}")
        if n == 0 and log is not None:
            log("  [0/0] empty deck — nothing to run")
        return results

    ctx = multiprocessing.get_context(preferred_start_method())
    results: List[Any] = [None] * n
    done_count = 0
    pool = ProcessPoolExecutor(max_workers=min(workers, n), mp_context=ctx)
    try:
        futures = {pool.submit(fn, item): i for i, item in enumerate(items)}
        pending = set(futures)
        while pending:
            finished, pending = wait(pending, timeout=heartbeat_s,
                                     return_when=FIRST_EXCEPTION)
            if not finished and log is not None:
                # Heartbeat: nothing completed within the window.
                running = sorted(futures[f] for f in pending)
                shown = ", ".join(label(items[i])
                                  for i in running[:4])
                more = len(running) - 4
                if more > 0:
                    shown += f", +{more} more"
                log(f"  [{done_count}/{n}] {len(running)} shard(s) "
                    f"still running: {shown}")
                continue
            for fut in finished:
                i = futures[fut]
                results[i] = fut.result()  # re-raises worker exceptions
                done_count += 1
                if log is not None:
                    log(f"  [{done_count}/{n}] {label(items[i])}")
    except BaseException:
        # Fail fast: drop queued shards and re-raise *now*.  A ``with``
        # block (or ``shutdown(wait=True)``) would park the raise behind
        # the slowest in-flight shard — a failing deck used to report
        # its failure only after every running case finished.  In-flight
        # workers finish their current item and exit on their own.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    return results
