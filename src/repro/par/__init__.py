"""Parallel deck execution: multiprocess sharding with deterministic merge.

The simulator is single-threaded Python, so a deck of independent cases
(benchmark cases, verify sweeps, resilience plans) is embarrassingly
parallel across *processes*.  Each case constructs its own simulator
from a seed, so sharding cannot perturb results — the contract, enforced
by tests, is that a sharded run's merged output is byte-identical to the
serial run's, independent of worker count and completion order.

:mod:`repro.par.pool` holds the sharding engine (:func:`map_sharded`);
:mod:`repro.par.cli` is the ``python -m repro par`` front end.  The
``perf run``, ``verify`` and ``resil run`` CLIs each take ``--workers N``
and shard through the same engine.
"""

from .pool import map_sharded, resolve_workers

__all__ = ["map_sharded", "resolve_workers"]
